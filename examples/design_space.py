#!/usr/bin/env python
"""Design-space sweep: Figure 7 in miniature.

Runs a subset of the SPEC2000-like workloads under all six schemes at
two L2 sizes and prints normalized IPC (baseline: decrypt-only), the way
the paper's evaluation section presents it.

Run:  python examples/design_space.py [instructions]
"""

import sys

from repro import FIGURE7_POLICIES, PolicySweep, SimConfig
from repro.sim.report import render_table
from repro.sim.sweep import normalized_ipc_table

BENCHMARKS = ["mcf", "twolf", "vpr", "ammp", "mgrid", "swim"]


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    for l2 in (256 * 1024, 1024 * 1024):
        config = SimConfig().with_l2_size(l2)
        sweep = PolicySweep(BENCHMARKS, list(FIGURE7_POLICIES),
                            config=config, num_instructions=count,
                            warmup=count).run()
        rows = normalized_ipc_table(sweep, list(FIGURE7_POLICIES))
        print("Normalized IPC, %dKB L2 (baseline: decryption only)"
              % (l2 // 1024))
        table = [[b] + [v[p] for p in FIGURE7_POLICIES] for b, v in rows]
        print(render_table(["benchmark"] + list(FIGURE7_POLICIES), table))
        print()


if __name__ == "__main__":
    main()
