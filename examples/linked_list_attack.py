#!/usr/bin/env python
"""The linked-list pointer-conversion attack (paper Section 3.2.1),
end to end on real encrypted memory.

A victim program walks an encrypted linked list.  The adversary flips
ciphertext bits of the final NULL pointer so it decrypts to the secret's
address; when the walk dereferences it, the *secret value* appears as a
plaintext fetch address on the memory bus.

The demo runs the same attack under four authentication control points
and shows which ones leak.

Run:  python examples/linked_list_attack.py
"""

from repro import make_policy
from repro.attacks.pointer_conversion import (
    SECRET_VALUE,
    PointerConversionAttack,
)

POLICIES = ["authen-then-write", "authen-then-commit",
            "authen-then-fetch", "authen-then-issue"]


def main():
    attack = PointerConversionAttack()
    print("Secret value stored in protected memory: 0x%08x" % SECRET_VALUE)
    print("Adversary flips one word of ciphertext (NULL -> secret's "
          "address) and lets the program run.\n")

    for policy_name in POLICIES:
        policy = make_policy(policy_name)
        machine, result = attack.run(policy)
        leaked = attack.leaked_secret(machine, result)
        print("=== %s ===" % policy_name)
        print("  executed %d instructions; integrity violation %s"
              % (result.steps,
                 "RAISED" if result.detected else "never raised"))
        data_fetches = [e for e in result.bus_trace if e.kind == "data"]
        print("  data addresses on the bus: %s"
              % ", ".join("0x%06x" % e.addr for e in data_fetches[-6:]))
        if leaked:
            print("  -> LEAKED: the secret's line (0x%06x) crossed the bus"
                  % (SECRET_VALUE & ~31))
        else:
            print("  -> blocked: secret never appeared as a fetch address")
        print()


if __name__ == "__main__":
    main()
