#!/usr/bin/env python
"""Quickstart: simulate one benchmark under several authentication
control points and compare IPC.

Run:  python examples/quickstart.py [benchmark] [instructions]
"""

import sys

from repro import SimConfig, run_benchmark, table3_parameters

POLICIES = [
    "decrypt-only",
    "authen-then-issue",
    "authen-then-commit",
    "authen-then-write",
    "authen-then-fetch",
    "commit+fetch",
]


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000
    config = SimConfig()

    print("Machine (Table 3):")
    for name, value in table3_parameters(config):
        print("  %-22s %s" % (name, value))
    print()
    print("Benchmark: %s (%d instructions)" % (benchmark, count))
    print()
    print("%-22s %8s %12s" % ("policy", "IPC", "vs baseline"))

    baseline = None
    for policy in POLICIES:
        result = run_benchmark(benchmark, count, config=config,
                               policy=policy)
        if baseline is None:
            baseline = result.ipc
        print("%-22s %8.4f %11.1f%%"
              % (policy, result.ipc, 100.0 * result.ipc / baseline))


if __name__ == "__main__":
    main()
