#!/usr/bin/env python
"""Replay attack vs the CHTree hash tree (paper Section 5.2.3).

Per-line MACs bind (address, counter, ciphertext) -- but when counters
and MACs live in untrusted memory, an adversary can record a line's full
triple and restore it later: the MAC check passes on the stale data.
Only a hash tree whose root stays on-chip catches the rollback.

Run:  python examples/replay_and_tree.py
"""

from repro import make_policy
from repro.attacks.replay import ReplayAttack


def main():
    attack = ReplayAttack()
    policy = make_policy("authen-then-commit")

    print("Victim: revokes a privilege flag (1 -> 0), re-reads it, acts "
          "on it.")
    print("Adversary: records the flag line's (ciphertext, MAC, counter) "
          "before revocation and restores it afterwards.\n")

    for hash_tree in (False, True):
        effective, result = attack.run(policy, hash_tree=hash_tree)
        label = "per-line MACs + hash tree" if hash_tree else \
            "per-line MACs only"
        print("=== %s ===" % label)
        print("  integrity violation %s"
              % ("RAISED" if result.detected else "never raised"))
        print("  program observed flag value(s): %s" % result.io_log)
        if effective:
            print("  -> REPLAY SUCCEEDED: stale privilege honoured\n")
        else:
            print("  -> replay defeated\n")


if __name__ == "__main__":
    main()
