#!/usr/bin/env python
"""Figure 6 timeline: authen-then-fetch vs authen-then-issue for two
dependent external memory fetches.

Under authen-then-issue the dependent computation waits for the first
line's *verification*; under authen-then-fetch it runs on decrypted data
immediately and only the second fetch's bus grant waits.

Run:  python examples/timeline_fig6.py [compute_latency]
"""

import sys

from repro.experiments import fig6


def main():
    compute = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    print(fig6.render(compute_latency=compute))
    print()
    print("Sweep of the compute latency between the two fetches:")
    print("%10s %22s %22s %10s" % ("compute", "issue finishes",
                                   "fetch finishes", "advantage"))
    for latency in (0, 10, 20, 40, 80, 160):
        timelines = fig6.run(compute_latency=latency)
        issue = timelines["authen-then-issue"].finish
        fetch = timelines["authen-then-fetch"].finish
        print("%10d %22d %22d %10d" % (latency, issue, fetch,
                                       issue - fetch))


if __name__ == "__main__":
    main()
