#!/usr/bin/env python
"""Disclosing-kernel demo (paper Section 3.2.3 + Figure 4).

The adversary knows the plaintext of a function's invariant prologue and
splices a 10-instruction "disclosing kernel" over it with two XORs:

    cipher' = cipher XOR known_plaintext XOR kernel

The kernel loads a 32-bit secret and discloses it 8 bits at a time by
using each byte (ORed onto a valid page base) as a fetch address -- the
shift-window technique that works even under virtual memory.

Run:  python examples/disclosing_kernel_demo.py
"""

from repro import make_policy
from repro.attacks.disclosing_kernel import (
    SECRET_VALUE,
    DisclosingKernelAttack,
    IoKernelAttack,
)
from repro.attacks.page_mask import PageMaskAttack


def show(name, attack, policy_name):
    machine, result = attack.run(make_policy(policy_name))
    leaked = attack.leaked_secret(machine, result)
    verdict = "LEAKED" if leaked else "blocked"
    print("  %-22s -> %s" % (policy_name, verdict))
    return result


def main():
    print("Secret in protected memory: 0x%08x" % SECRET_VALUE)

    print("\nFetch-channel kernel (physical addressing):")
    attack = DisclosingKernelAttack()
    result = show("kernel", attack, "authen-then-commit")
    buckets = attack.recovered_bytes(result)
    print("    window-page offsets observed on the bus: %s" % buckets[:6])
    print("    (each pins one secret byte to a 32-byte bucket)")
    show("kernel", DisclosingKernelAttack(), "commit+fetch")

    print("\nSame kernel under virtual memory (page-mask variant):")
    show("page-mask", PageMaskAttack(), "authen-then-commit")
    show("page-mask", PageMaskAttack(), "authen-then-issue")

    print("\nI/O-channel kernel (outputs the secret to a port):")
    show("io-kernel", IoKernelAttack(), "authen-then-write")
    show("io-kernel", IoKernelAttack(), "authen-then-commit")
    print("\nNote the asymmetry the paper highlights: authen-then-commit "
          "stops the I/O\nchannel but NOT the fetch channel; only "
          "fetch-gating (or obfuscation) closes that.")


if __name__ == "__main__":
    main()
