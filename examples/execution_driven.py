#!/usr/bin/env python
"""Execution-driven simulation: run a *real program* on the functional
secure machine, capture its committed trace, and replay it on the timing
model under every authentication control point.

This bridges the repository's two halves: the program's dataflow and
addresses are exact (not synthetic), so policy costs reflect its real
pointer-chasing structure.

Run:  python examples/execution_driven.py
"""

from repro import SimConfig, load_program, make_policy, run_trace
from repro.func import programs
from repro.func.machine import SecureMachine
from repro.sim.metrics import render_metrics, run_with_metrics
from repro.workloads.capture import capture_trace

POLICIES = ["decrypt-only", "authen-then-issue", "authen-then-commit",
            "authen-then-write", "commit+fetch"]


def main():
    machine = SecureMachine(make_policy("decrypt-only"))
    load_program(machine, programs.LIST_WALK,
                 data=programs.list_walk_data(nodes=64, stride=0x100))
    trace = capture_trace(machine, max_steps=20_000, name="list-walk")
    print("Captured %d committed instructions from a linked-list walk "
          "(io=%s)" % (len(trace), machine.io_log))
    print("Op mix: %s" % {k: round(v, 2) for k, v in trace.op_mix().items()})
    print()

    print("%-22s %8s %12s" % ("policy", "IPC", "vs baseline"))
    baseline = None
    for policy in POLICIES:
        result = run_trace(trace, SimConfig(), policy)
        if baseline is None:
            baseline = result.ipc
        print("%-22s %8.4f %11.1f%%"
              % (policy, result.ipc, 100 * result.ipc / baseline))

    print("\nDetailed metrics under authen-then-commit:")
    result, metrics = run_with_metrics(trace, SimConfig(),
                                       "authen-then-commit")
    print(render_metrics(metrics))


if __name__ == "__main__":
    main()
