#!/usr/bin/env python
"""Passive control-flow reconstruction (no tampering at all).

The natural-execution fetch trace leaks secret-dependent control flow:
an adversary who knows the binary layout reads branch directions straight
off the address bus.  No authentication policy can help -- nothing was
tampered with -- which is exactly why the paper discusses address
obfuscation as a *complement* to the authentication architecture
(Section 4.3).

Run:  python examples/passive_control_flow.py
"""

from repro import make_policy
from repro.attacks.control_flow import ControlFlowAttack
from repro.attacks.harness import _make_obfuscator

SECRET = 0xB3C5


def main():
    print("Victim branches on each bit of a 16-bit secret (0x%04x)."
          % SECRET)
    print("The adversary only *watches* the bus; nothing is modified.\n")

    for policy_name in ("decrypt-only", "authen-then-issue",
                        "commit+obfuscation"):
        policy = make_policy(policy_name)
        kwargs = {}
        if policy.obfuscation:
            kwargs["obfuscator"] = _make_obfuscator()
        attack = ControlFlowAttack(secret=SECRET)
        machine, result = attack.run(policy, **kwargs)
        recovered, observed = attack.reconstruct(result)
        print("=== %s ===" % policy_name)
        print("  path observations: %d; reconstructed value: 0x%04x"
              % (observed, recovered))
        if attack.leaked_secret(machine, result):
            print("  -> LEAKED: full secret recovered passively\n")
        else:
            print("  -> blocked: bus addresses no longer identify the "
                  "paths\n")

    print("Even the most conservative authentication (authen-then-issue) "
          "cannot stop\nthis: integrity was never violated.  Only address "
          "obfuscation closes the\npassive channel -- and only "
          "obfuscation+commit closes both (Table 2).")


if __name__ == "__main__":
    main()
