"""Execution-driven trace capture.

Bridges the two models: run a *real program* on the functional secure
machine, record its committed instruction stream, annotate branches with
a bimodal predictor, and replay the result on the timing simulator.
This gives execution-driven traces (exact dataflow, exact addresses) in
addition to the synthetic SPEC-like generators.

    machine = SecureMachine(make_policy("decrypt-only"))
    load_program(machine, source)
    trace = capture_trace(machine, max_steps=50_000)
    result = run_trace(trace, SimConfig(), "authen-then-commit")
"""

from repro.cpu.branch import BimodalPredictor
from repro.isa.instructions import OpClass
from repro.workloads.trace import Op, Trace, TraceInst

_OPCLASS_TO_OP = {
    OpClass.IALU: Op.IALU,
    OpClass.IMUL: Op.IMUL,
    OpClass.FPU: Op.FPU,
    OpClass.LOAD: Op.LOAD,
    OpClass.STORE: Op.STORE,
    OpClass.BRANCH: Op.BRANCH,
    OpClass.JUMP: Op.JUMP,
    OpClass.SYSTEM: Op.SYSTEM,
}


def capture_trace(machine, max_steps=10_000, name="captured",
                  predictor=None):
    """Execute ``machine`` and return the committed path as a Trace.

    The machine runs until HALT, a fault, or ``max_steps``.  Faults and
    integrity exceptions simply end the capture (the committed prefix is
    returned) -- capture is meant for *benign* runs feeding the timing
    model.
    """
    predictor = predictor or BimodalPredictor()
    records = []
    footprint_low = None
    footprint_high = None

    while machine.steps < max_steps:
        try:
            alive = machine.step()
        except Exception:
            break
        if machine.last_executed is None:
            break
        pc, inst, mem_vaddr = machine.last_executed
        op = _OPCLASS_TO_OP[inst.op_class]

        dest = inst.destination()
        srcs = tuple(inst.sources())
        mispredict = False
        if inst.is_control:
            taken = machine.pc != pc + 4
            target = machine.pc if taken else None
            mispredict = predictor.predict_update(pc, taken, target)

        if mem_vaddr >= 0:
            if footprint_low is None or mem_vaddr < footprint_low:
                footprint_low = mem_vaddr
            if footprint_high is None or mem_vaddr > footprint_high:
                footprint_high = mem_vaddr

        records.append(TraceInst(
            pc, op,
            dest if dest is not None else -1,
            srcs,
            mem_vaddr if mem_vaddr >= 0 else -1,
            mispredict,
        ))
        if not alive:
            break

    footprint = 0
    if footprint_low is not None:
        footprint = footprint_high - footprint_low + 4
    return Trace(name, records, footprint_bytes=footprint,
                 suite="captured")
