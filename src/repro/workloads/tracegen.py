"""Synthetic trace generator.

Turns a :class:`~repro.workloads.spec.BenchmarkProfile` into a committed-
path instruction trace with the profile's statistical structure:

- a small *hot* data region (cache-resident) plus a large *cold* region;
- cold accesses either stream (sequential line-granular walks, one miss
  per line, prefetch-friendly DRAM row hits) or scatter randomly;
- a configurable fraction of loads are *pointer-chasing*: their address
  register is the destination of an earlier load, creating the dependent
  miss chains that authen-then-fetch serialises;
- branch mispredict flags drawn at the profile's rate;
- register dataflow with profile-controlled dependency depth (ILP).

Generation is deterministic given (profile, seed).
"""

from repro.util.rng import DeterministicRng
from repro.workloads.trace import Op, Trace, TraceInst

DATA_BASE = 1 << 20           # data region starts at 1 MB
HOT_BYTES = 8 * 1024          # hot set: comfortably L1-resident
_NUM_REGS = 64


def generate_trace(profile, num_instructions, seed=2006, name=None):
    """Generate ``num_instructions`` committed instructions for ``profile``."""
    if num_instructions < 0:
        raise ValueError("num_instructions must be non-negative")
    rng = DeterministicRng(seed).stream("workload.%s" % profile.name)
    rand = rng.random
    randrange = rng.randrange

    p_load = profile.load_fraction
    p_store = p_load + profile.store_fraction
    p_branch = p_store + profile.branch_fraction
    p_fp = p_branch + profile.fp_fraction
    p_mul = p_fp + profile.mul_fraction

    code_bytes = profile.code_bytes
    cold_bytes = max(profile.footprint_bytes, 64)
    cold_base = DATA_BASE
    hot_base = cold_base + cold_bytes

    pc = 0
    stream_ptr = randrange(cold_bytes) & ~63
    recent_dests = [1]                  # ring of recent dest registers
    recent_load_dests = [1]
    next_reg = 1
    out = []

    # Registers 56..63 are *induction* registers: loop counters and array
    # indices updated by short ALU self-chains, never by loads.  Addresses
    # of non-chasing accesses derive from them, which is what gives real
    # loop nests their memory-level parallelism.
    induction_regs = tuple(range(_NUM_REGS - 8, _NUM_REGS))

    def pick_src():
        # Geometric recency: deeper dependency_depth -> older sources ->
        # more independent work in flight.
        depth = min(len(recent_dests), profile.dependency_depth)
        return recent_dests[-1 - randrange(depth)] if depth else 0

    def pick_addr_src():
        return induction_regs[randrange(8)]

    def pick_dest():
        nonlocal next_reg
        next_reg = next_reg % (_NUM_REGS - 9) + 1  # skip r0 and induction
        return next_reg

    def data_address(is_store):
        nonlocal stream_ptr
        if rand() < profile.hot_fraction:
            return hot_base + (randrange(HOT_BYTES) & ~3)
        if rand() < profile.stream_fraction:
            stream_ptr = (stream_ptr + 8) % cold_bytes
            return cold_base + stream_ptr
        return cold_base + (randrange(cold_bytes) & ~3)

    for _ in range(num_instructions):
        roll = rand()
        mispredict = False
        addr = -1
        srcs = ()
        dest = -1

        if roll < p_load:
            op = Op.LOAD
            dest = pick_dest()
            if recent_load_dests and rand() < profile.chase_fraction:
                # Pointer chase: address depends on an earlier load's value
                # and lands somewhere cold (a fresh node).
                srcs = (recent_load_dests[-1 - randrange(
                    min(len(recent_load_dests), 4))],)
                addr = cold_base + (randrange(cold_bytes) & ~3)
            else:
                srcs = (pick_addr_src(),)
                addr = data_address(is_store=False)
            recent_load_dests.append(dest)
            if len(recent_load_dests) > 16:
                del recent_load_dests[0]
        elif roll < p_store:
            op = Op.STORE
            srcs = (pick_addr_src(), pick_src())
            addr = data_address(is_store=True)
        elif roll < p_branch:
            op = Op.BRANCH
            # Branches predominantly test recently loaded values (list
            # walks, compares against table entries): their resolution
            # then inherits the load's (policy-gated) availability.
            if recent_load_dests and rand() < 0.5:
                srcs = (recent_load_dests[-1 - randrange(
                    min(len(recent_load_dests), 4))], pick_src())
            else:
                srcs = (pick_src(),)
            mispredict = rand() < profile.mispredict_rate
        elif roll < p_fp:
            op = Op.FPU
            dest = pick_dest()
            srcs = (pick_src(), pick_src())
        elif roll < p_mul:
            op = Op.IMUL
            dest = pick_dest()
            srcs = (pick_src(), pick_src())
        elif rand() < 0.30:
            # Induction update: i = i + const (a pure ALU self-chain).
            op = Op.IALU
            reg = induction_regs[randrange(8)]
            dest = reg
            srcs = (reg,)
        else:
            op = Op.IALU
            dest = pick_dest()
            srcs = (pick_src(), pick_src())

        out.append(TraceInst(pc, op, dest, srcs, addr, mispredict))
        if dest >= 0:
            recent_dests.append(dest)
            if len(recent_dests) > 64:
                del recent_dests[0]

        # Program counter walk: sequential, with taken control transfers
        # jumping within the code footprint (loop-biased short hops).
        if op == Op.BRANCH and rand() < 0.45:
            hop = randrange(16, 2048) & ~3
            pc = (pc - hop) % code_bytes if rand() < 0.7 else \
                (pc + hop) % code_bytes
        else:
            pc = (pc + 4) % code_bytes

    return Trace(
        name or profile.name,
        out,
        footprint_bytes=profile.footprint_bytes,
        suite=profile.suite,
    )
