"""Workloads: trace containers and SPEC2000-like synthetic generators.

The paper evaluates 18 SPEC2000 INT/FP benchmarks with high L2 miss rates
on SimpleScalar.  SPEC binaries and SimPoint traces are not redistributable,
so this package provides statistically parameterised synthetic generators
(one profile per benchmark: footprint, memory mix, pointer-chasing depth,
branch predictability, ILP) that reproduce the *relative* behaviour the
policies are sensitive to.  See DESIGN.md for the substitution rationale.
"""

from repro.workloads.spec import (
    BenchmarkProfile,
    SPEC2000_PROFILES,
    fp_benchmarks,
    get_profile,
    int_benchmarks,
)
from repro.workloads.trace import (
    Op,
    PackedTrace,
    Trace,
    TraceInst,
    pack_instructions,
)
from repro.workloads.tracegen import generate_trace

__all__ = [
    "Op",
    "TraceInst",
    "Trace",
    "PackedTrace",
    "pack_instructions",
    "BenchmarkProfile",
    "SPEC2000_PROFILES",
    "get_profile",
    "int_benchmarks",
    "fp_benchmarks",
    "generate_trace",
]
