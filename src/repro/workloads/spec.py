"""SPEC2000-like benchmark profiles.

Each profile parameterises the synthetic trace generator with the
characteristics that drive the paper's results: data footprint (L2 miss
exposure), the memory access pattern mix (streaming vs random vs
dependent pointer-chasing -- the last is what authen-then-fetch
serialises), store intensity (authen-then-write pressure), branch
behaviour, and available ILP (how much latency the window can hide).

Values are drawn from the published characterisations of the SPEC2000
suite (memory-bound: mcf, art, swim, mgrid, ammp, applu; pointer-chasers:
mcf, parser, ammp; branchy: gcc, parser, twolf, vpr).  They are *shape*
parameters, not measurements; see DESIGN.md.
"""

from dataclasses import dataclass

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of one benchmark."""

    name: str
    suite: str                 # "int" | "fp"
    footprint_bytes: int       # cold data region size
    code_bytes: int            # instruction footprint
    load_fraction: float
    store_fraction: float
    branch_fraction: float
    fp_fraction: float         # FPU ops (0 for INT)
    mul_fraction: float
    hot_fraction: float        # accesses hitting a small hot set
    stream_fraction: float     # cold accesses that stream (spatial reuse)
    chase_fraction: float      # loads whose address depends on a load
    mispredict_rate: float     # per-branch mispredict probability
    dependency_depth: int      # how far back sources reach (ILP proxy)

    def __post_init__(self):
        total = (self.load_fraction + self.store_fraction
                 + self.branch_fraction + self.fp_fraction
                 + self.mul_fraction)
        if total >= 1.0:
            raise ValueError("%s: op fractions sum to %.2f >= 1"
                             % (self.name, total))
        for field in ("hot_fraction", "stream_fraction", "chase_fraction",
                      "mispredict_rate"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError("%s: %s out of [0,1]" % (self.name, field))


def _p(name, suite, fp_mb, code_kb, loads, stores, branches, fp, mul, hot,
       stream, chase, mispred, depth):
    return BenchmarkProfile(
        name=name, suite=suite,
        footprint_bytes=int(fp_mb * MB), code_bytes=code_kb * KB,
        load_fraction=loads, store_fraction=stores,
        branch_fraction=branches, fp_fraction=fp, mul_fraction=mul,
        hot_fraction=hot, stream_fraction=stream, chase_fraction=chase,
        mispredict_rate=mispred, dependency_depth=depth,
    )


#: The 18 high-memory-throughput SPEC2000 benchmarks of Section 5.1.
SPEC2000_PROFILES = {
    p.name: p
    for p in (
        # --- INT ------------------------------------------------------
        _p("bzip2",  "int", 4,   24,  0.26, 0.11, 0.12, 0.00, 0.01,
           0.85, 0.70, 0.05, 0.07, 12),
        _p("gap",    "int", 6,   32,  0.25, 0.09, 0.14, 0.00, 0.02,
           0.95, 0.45, 0.12, 0.06, 10),
        _p("gcc",    "int", 4,   96,  0.24, 0.12, 0.16, 0.00, 0.01,
           0.94, 0.40, 0.10, 0.09, 8),
        _p("gzip",   "int", 2,   16,  0.22, 0.10, 0.12, 0.00, 0.01,
           0.985, 0.75, 0.03, 0.06, 14),
        _p("mcf",    "int", 24,  16,  0.34, 0.09, 0.17, 0.00, 0.00,
           0.82, 0.10, 0.40, 0.10, 6),
        _p("parser", "int", 5,   48,  0.26, 0.10, 0.17, 0.00, 0.01,
           0.94, 0.25, 0.28, 0.09, 7),
        _p("twolf",  "int", 2,   32,  0.27, 0.09, 0.15, 0.00, 0.02,
           0.85, 0.20, 0.18, 0.11, 7),
        _p("vpr",    "int", 2.5, 24,  0.28, 0.10, 0.14, 0.00, 0.02,
           0.85, 0.25, 0.15, 0.10, 8),
        # --- FP -------------------------------------------------------
        _p("ammp",   "fp",  10,  24,  0.28, 0.09, 0.07, 0.22, 0.01,
           0.82, 0.15, 0.30, 0.04, 6),
        _p("applu",  "fp",  12,  32,  0.25, 0.12, 0.03, 0.28, 0.01,
           0.92, 0.85, 0.02, 0.02, 14),
        _p("art",    "fp",  8,   12,  0.30, 0.08, 0.09, 0.24, 0.00,
           0.9, 0.55, 0.06, 0.03, 12),
        _p("equake", "fp",  10,  24,  0.29, 0.08, 0.06, 0.24, 0.01,
           0.92, 0.60, 0.10, 0.04, 10),
        _p("facerec","fp",  6,   24,  0.26, 0.09, 0.05, 0.26, 0.01,
           0.96, 0.70, 0.04, 0.03, 14),
        _p("galgel", "fp",  6,   24,  0.27, 0.10, 0.04, 0.28, 0.01,
           0.96, 0.75, 0.03, 0.03, 14),
        _p("lucas",  "fp",  12,  16,  0.24, 0.11, 0.02, 0.30, 0.01,
           0.92, 0.80, 0.02, 0.02, 14),
        _p("mesa",   "fp",  3,   48,  0.24, 0.11, 0.08, 0.22, 0.02,
           0.97, 0.55, 0.05, 0.05, 12),
        _p("mgrid",  "fp",  16,  16,  0.30, 0.10, 0.02, 0.28, 0.01,
           0.82, 0.88, 0.02, 0.02, 14),
        _p("swim",   "fp",  16,  12,  0.27, 0.13, 0.02, 0.28, 0.01,
           0.88, 0.90, 0.01, 0.02, 14),
    )
}


def get_profile(name):
    """Look up a benchmark profile by name."""
    try:
        return SPEC2000_PROFILES[name]
    except KeyError:
        raise KeyError(
            "unknown benchmark %r (known: %s)"
            % (name, ", ".join(sorted(SPEC2000_PROFILES)))
        ) from None


def int_benchmarks():
    """INT benchmark names, sorted."""
    return sorted(p.name for p in SPEC2000_PROFILES.values()
                  if p.suite == "int")


def fp_benchmarks():
    """FP benchmark names, sorted."""
    return sorted(p.name for p in SPEC2000_PROFILES.values()
                  if p.suite == "fp")
