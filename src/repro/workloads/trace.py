"""Trace containers for the timing simulator.

A trace is the committed-path instruction stream: the timestamp core
replays it, so wrong-path effects are folded into the branch-mispredict
redirect penalty (standard practice for trace-driven models).
"""


class Op:
    """Execution classes (small ints for speed in the hot loop)."""

    IALU = 0
    IMUL = 1
    FPU = 2
    LOAD = 3
    STORE = 4
    BRANCH = 5
    JUMP = 6
    SYSTEM = 7

    NAMES = {
        IALU: "ialu",
        IMUL: "imul",
        FPU: "fpu",
        LOAD: "load",
        STORE: "store",
        BRANCH: "branch",
        JUMP: "jump",
        SYSTEM: "system",
    }


class PackedTrace:
    """Columnar (structure-of-arrays) view of an instruction stream.

    Six parallel tuples -- ``pcs``, ``ops``, ``dests``, ``srcss``,
    ``addrs``, ``mispredicts`` -- with row ``i`` holding the fields of
    instruction ``i``.  The timing core iterates ``zip`` over these
    columns instead of touching :class:`TraceInst` objects: one tuple
    unpack per instruction replaces six attribute lookups plus the
    ``is_mem`` property call, which is worth ~2x in the replay loop.

    Rows are immutable; build a new trace rather than mutating one that
    has already been packed.
    """

    __slots__ = ("pcs", "ops", "dests", "srcss", "addrs", "mispredicts")

    def __init__(self, pcs, ops, dests, srcss, addrs, mispredicts):
        self.pcs = pcs
        self.ops = ops
        self.dests = dests
        self.srcss = srcss
        self.addrs = addrs
        self.mispredicts = mispredicts

    def __len__(self):
        return len(self.pcs)

    def rows(self):
        """Iterate ``(pc, op, dest, srcs, addr, mispredict)`` rows."""
        return zip(self.pcs, self.ops, self.dests, self.srcss,
                   self.addrs, self.mispredicts)

    def columns(self):
        """The six parallel columns, in row order."""
        return (self.pcs, self.ops, self.dests, self.srcss, self.addrs,
                self.mispredicts)


def pack_instructions(instructions):
    """Pack any iterable of :class:`TraceInst` into a :class:`PackedTrace`."""
    pcs = []
    ops = []
    dests = []
    srcss = []
    addrs = []
    mispredicts = []
    for inst in instructions:
        pcs.append(inst.pc)
        ops.append(inst.op)
        dests.append(inst.dest)
        srcss.append(inst.srcs)
        addrs.append(inst.addr)
        mispredicts.append(inst.mispredict)
    return PackedTrace(tuple(pcs), tuple(ops), tuple(dests), tuple(srcss),
                       tuple(addrs), tuple(mispredicts))


class TraceInst:
    """One committed instruction.

    ``srcs`` are architectural source register ids; ``dest`` is -1 when
    the instruction produces no register value.  ``addr`` is the effective
    byte address for loads/stores (-1 otherwise).  ``mispredict`` marks
    branches the front-end predicted wrongly (redirect penalty applies
    when the branch resolves).
    """

    __slots__ = ("pc", "op", "dest", "srcs", "addr", "mispredict")

    def __init__(self, pc, op, dest=-1, srcs=(), addr=-1, mispredict=False):
        self.pc = pc
        self.op = op
        self.dest = dest
        self.srcs = srcs
        self.addr = addr
        self.mispredict = mispredict

    @property
    def is_mem(self):
        return self.op == Op.LOAD or self.op == Op.STORE

    def __repr__(self):
        return "TraceInst(pc=0x%x, op=%s, dest=%d, srcs=%s, addr=0x%x)" % (
            self.pc,
            Op.NAMES.get(self.op, self.op),
            self.dest,
            self.srcs,
            self.addr if self.addr >= 0 else 0,
        )


class Trace:
    """A named instruction trace plus workload metadata."""

    def __init__(self, name, instructions, footprint_bytes=0, suite=""):
        self.name = name
        self.instructions = instructions
        self.footprint_bytes = footprint_bytes
        self.suite = suite
        self._packed = None

    def __len__(self):
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def packed(self):
        """The trace's :class:`PackedTrace` columns (built once, cached)."""
        if self._packed is None or len(self._packed) != len(self.instructions):
            self._packed = pack_instructions(self.instructions)
        return self._packed

    def op_mix(self):
        """Fraction of instructions per op class (diagnostics)."""
        counts = {}
        for inst in self.instructions:
            counts[inst.op] = counts.get(inst.op, 0) + 1
        total = len(self.instructions) or 1
        return {Op.NAMES[op]: count / total for op, count in counts.items()}
