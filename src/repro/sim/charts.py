"""Plain-text bar charts for the figure experiments.

The paper's evaluation figures are grouped bar charts of normalized IPC.
``render_bars`` draws a horizontal-bar version in a terminal; the figure
benches use it so the regenerated results *look* like figures, not just
tables.
"""


def render_bars(series, width=40, value_format="%.3f", max_value=None):
    """Render ``{label: value}`` as horizontal bars.

    >>> print(render_bars({"a": 1.0, "b": 0.5}, width=4))
    a  ████  1.000
    b  ██    0.500
    """
    if not series:
        return ""
    labels = list(series)
    peak = max_value if max_value is not None else max(series.values())
    peak = peak or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label in labels:
        value = series[label]
        filled = int(round(width * min(value, peak) / peak))
        bar = "█" * filled + " " * (width - filled)
        lines.append("%-*s  %s  %s"
                     % (label_width, label, bar, value_format % value))
    return "\n".join(lines)


def render_grouped_bars(rows, policies, width=30, value_format="%.2f"):
    """Render sweep-style rows ``[(benchmark, {policy: value}), ...]`` as
    per-benchmark bar groups (the Figure 7 layout)."""
    blocks = []
    for benchmark, values in rows:
        series = {policy: values[policy] for policy in policies}
        blocks.append(benchmark)
        block = render_bars(series, width=width,
                            value_format=value_format, max_value=1.0)
        blocks.append("\n".join("  " + line
                                for line in block.splitlines()))
    return "\n".join(blocks)
