"""Simulation drivers: assembly, runners, sweeps and report rendering."""

from repro.sim.metrics import RunMetrics, collect_metrics, run_with_metrics
from repro.sim.report import render_table
from repro.sim.runner import build_simulator, run_benchmark, run_trace
from repro.sim.sweep import PolicySweep, normalized_ipc_table, speedup_over

__all__ = [
    "build_simulator",
    "run_trace",
    "run_benchmark",
    "PolicySweep",
    "normalized_ipc_table",
    "speedup_over",
    "render_table",
    "RunMetrics",
    "collect_metrics",
    "run_with_metrics",
]
