"""Simulation drivers: assembly, runners, sweeps and report rendering."""

from repro.sim.runner import build_simulator, run_benchmark, run_trace
from repro.sim.sweep import PolicySweep, normalized_ipc_table, speedup_over
from repro.sim.report import render_table

__all__ = [
    "build_simulator",
    "run_trace",
    "run_benchmark",
    "PolicySweep",
    "normalized_ipc_table",
    "speedup_over",
    "render_table",
]
