"""Experiment sweeps: benchmarks x policies through the job pipeline.

A :class:`PolicySweep` describes one benchmark x policy grid, expands it
into job specs and hands them to an
:class:`~repro.exec.executor.Executor` -- serial by default, or a
process pool via ``run(executor=...)`` / the ``REPRO_JOBS`` env var.

By default the grid is expanded *grouped*: one
:class:`~repro.exec.job.MultiPolicySimJob` per benchmark decodes the
trace once and evaluates every policy against it through the shared
timestamp kernel (``run(grouped=False)`` keeps the historical
one-job-per-cell expansion; results are bit-identical either way, and
both shapes journal under the same per-cell job_ids).  Results
normalise against the decrypt-only baseline (the paper's Figure 7
presentation) or against authen-then-issue (Figures 8/11/13).
"""

from repro.config import SimConfig
from repro.exec import build_jobs, executor_scope
from repro.exec.job import build_job_groups

BASELINE = "decrypt-only"


class PolicySweep:
    """Run a set of benchmarks under a set of policies."""

    def __init__(self, benchmarks, policies, config=None,
                 num_instructions=20_000, seed=None, warmup=None):
        # Deduped (first occurrence wins): a duplicated benchmark would
        # collapse to one normalized_series entry anyway, and keeping
        # the duplicate used to deflate average_normalized, which
        # divided by the raw list length.
        self.benchmarks = list(dict.fromkeys(benchmarks))
        self.policies = list(policies)
        self.config = config or SimConfig()
        self.num_instructions = num_instructions
        self.warmup = warmup if warmup is not None else num_instructions // 3
        self.seed = seed if seed is not None else self.config.seed
        self.results = {}       # (benchmark, policy) -> RunResult
        self.job_ids = {}       # (benchmark, policy) -> job_id
        self.job_outcomes = {}  # job_id -> JobResult (attempts, status)
        self.executed_policies = list(self.policies)
        self.backend = None     # executor.describe() of the last run
        self.grouped = None     # whether the last run used grouped jobs

    def policy_order(self, include_baseline=True):
        """Deterministic execution order for the sweep's policies.

        Duplicates are dropped (first occurrence wins) and the baseline,
        when requested and absent, is appended *last* -- always, so the
        order recorded in manifests does not depend on how or when
        ``run`` was called.
        """
        policies = list(dict.fromkeys(self.policies))
        if include_baseline and BASELINE not in policies:
            policies.append(BASELINE)
        return policies

    def jobs(self, include_baseline=True):
        """The sweep's per-cell job list (benchmark-major, deterministic).

        This is the journal-facing view: one :class:`SimJob` id per
        (benchmark, policy) cell, whether or not execution is grouped.
        """
        return build_jobs(self.benchmarks,
                          self.policy_order(include_baseline),
                          config=self.config,
                          num_instructions=self.num_instructions,
                          warmup=self.warmup, seed=self.seed)

    def job_groups(self, include_baseline=True):
        """One grouped job per benchmark covering the whole policy set."""
        return build_job_groups(self.benchmarks,
                                self.policy_order(include_baseline),
                                config=self.config,
                                num_instructions=self.num_instructions,
                                warmup=self.warmup, seed=self.seed)

    def run(self, include_baseline=True, profiler=None, tracer=None,
            executor=None, journal=None, progress=None,
            failure_policy=None, metrics=None, grouped=True):
        """Execute the sweep; returns self for chaining.

        ``executor`` picks the backend (default: serial, or whatever
        ``REPRO_JOBS`` selects); a borrowed executor is left open for
        the caller, a default one is closed.  ``journal`` (a
        :class:`~repro.sim.checkpoint.JobJournal`) makes the sweep
        resumable: completed job_ids are skipped.  ``failure_policy``
        (a :class:`~repro.exec.retry.FailurePolicy`) governs retries,
        timeouts and skip-vs-abort; per-job attempt counts land in
        ``self.job_outcomes`` and the sweep manifest.  Jobs that failed
        terminally under a skipping policy are absent from
        ``self.results`` (see :meth:`failed_jobs`).  ``profiler``
        accumulates phase wall clock over the whole sweep; ``tracer``
        receives per-run events (serial backend only) plus one
        ``JOB_DONE`` progress event per completed job; ``progress`` is
        called as ``progress(job, result, done, total)``; ``metrics``
        (a :class:`~repro.obs.metrics.MetricsRegistry`) receives the
        execution-layer families plus a per-cell
        ``repro_sweep_cells_total{benchmark,policy,status}`` rollup.

        ``grouped`` (default True) runs each benchmark as one
        :class:`~repro.exec.job.MultiPolicySimJob` -- decode once,
        evaluate every policy -- instead of one job per cell; cycle
        counts, stats, journal records and per-cell bookkeeping are
        identical either way.
        """
        jobs = self.jobs(include_baseline)
        units = self.job_groups(include_baseline) if grouped else jobs
        with executor_scope(executor) as active:
            results = active.run(units, journal=journal, tracer=tracer,
                                 profiler=profiler, progress=progress,
                                 failure_policy=failure_policy,
                                 metrics=metrics)
            self.backend = active.describe()
            self.job_outcomes.update(active.last_outcomes)
        self.executed_policies = self.policy_order(include_baseline)
        self.grouped = grouped
        for job in jobs:
            self.job_ids[(job.benchmark, job.policy)] = job.job_id
            if job in results:
                self.results[(job.benchmark, job.policy)] = results[job]
        if metrics is not None and metrics.enabled:
            cells = metrics.counter(
                "repro_sweep_cells_total",
                "Sweep grid cells settled, by benchmark, policy and "
                "terminal status", ("benchmark", "policy", "status"))
            for job in jobs:
                outcome = self.job_outcomes.get(job.job_id)
                if outcome is not None:
                    cells.labels(job.benchmark, job.policy,
                                 outcome.status).inc()
        return self

    def failed_jobs(self):
        """``{(benchmark, policy): JobResult}`` for terminal failures."""
        from repro.exec.retry import STATUS_FAILED

        failed = {}
        for key, job_id in self.job_ids.items():
            outcome = self.job_outcomes.get(job_id)
            if outcome is not None and outcome.status == STATUS_FAILED:
                failed[key] = outcome
        return failed

    def write_manifest(self, path, profiler=None):
        """Write the sweep's JSON manifest (see repro.obs.export)."""
        from repro.obs.export import build_sweep_manifest, write_json

        return write_json(build_sweep_manifest(self, profiler=profiler),
                          path)

    def write_csv(self, path, baseline=BASELINE):
        """Write one CSV row per (benchmark, policy) run."""
        from repro.obs.export import write_sweep_csv

        return write_sweep_csv(self, path, baseline=baseline)

    def ipc(self, benchmark, policy):
        """IPC of one run; raises KeyError if the run is absent."""
        return self.results[(benchmark, policy)].ipc

    def ipc_or_none(self, benchmark, policy):
        """IPC of one run, or None when the job failed terminally under
        a skipping failure policy (absent from ``results``)."""
        result = self.results.get((benchmark, policy))
        return None if result is None else result.ipc

    def normalized(self, benchmark, policy, baseline=BASELINE):
        """IPC of ``policy`` normalised to ``baseline`` for a benchmark.

        None when either run is missing (a terminal failure under
        ``skip-and-report``/``retry-then-skip``); renderers show such
        cells as ``--`` and averages exclude them.
        """
        base = self.ipc_or_none(benchmark, baseline)
        ipc = self.ipc_or_none(benchmark, policy)
        if base is None or ipc is None:
            return None
        return ipc / base if base else 0.0

    def normalized_series(self, policy, baseline=BASELINE):
        """Per-benchmark normalised IPC for one policy (None: failed)."""
        return {
            benchmark: self.normalized(benchmark, policy, baseline)
            for benchmark in self.benchmarks
        }

    def average_normalized(self, policy, baseline=BASELINE):
        """Average over the benchmarks that completed (None: none did)."""
        values = [v for v in self.normalized_series(policy,
                                                    baseline).values()
                  if v is not None]
        if not values:
            return None
        return sum(values) / len(values)


def normalized_ipc_table(sweep, policies=None, baseline=BASELINE):
    """Rows of (benchmark, {policy: normalized ipc}) plus an average row.

    Cells whose job (or baseline) failed terminally under a skipping
    failure policy hold None -- rendered as ``--`` -- and the average
    row covers only the benchmarks that completed.
    """
    policies = policies or sweep.policies
    rows = []
    for benchmark in sweep.benchmarks:
        rows.append((
            benchmark,
            {p: sweep.normalized(benchmark, p, baseline) for p in policies},
        ))
    rows.append((
        "average",
        {p: sweep.average_normalized(p, baseline) for p in policies},
    ))
    return rows


def speedup_over(sweep, reference, policies=None):
    """Figure 8/11/13 presentation: IPC speedup over ``reference``.

    Returns rows of (benchmark, {policy: speedup}) where speedup is
    ``ipc(policy) / ipc(reference)``.  Cells with a failed run (policy
    or reference) hold None and are excluded from the average row.
    """
    policies = policies or [p for p in sweep.policies if p != reference]
    rows = []
    for benchmark in sweep.benchmarks:
        ref = sweep.ipc_or_none(benchmark, reference)
        cells = {}
        for p in policies:
            ipc = sweep.ipc_or_none(benchmark, p)
            if ref is None or ipc is None:
                cells[p] = None
            else:
                cells[p] = ipc / ref if ref else 0.0
        rows.append((benchmark, cells))
    averages = {}
    for p in policies:
        values = [row[1][p] for row in rows if row[1][p] is not None]
        averages[p] = sum(values) / len(values) if values else None
    rows.append(("average", averages))
    return rows
