"""Experiment sweeps: benchmarks x policies with shared traces.

A :class:`PolicySweep` generates each benchmark's trace once and replays
it under every requested policy, then normalises against the decrypt-only
baseline (the paper's Figure 7 presentation) or against authen-then-issue
(Figures 8/11/13).
"""

from repro.config import SimConfig
from repro.sim.runner import build_simulator
from repro.workloads.spec import get_profile
from repro.workloads.tracegen import generate_trace

BASELINE = "decrypt-only"


class PolicySweep:
    """Run a set of benchmarks under a set of policies."""

    def __init__(self, benchmarks, policies, config=None,
                 num_instructions=20_000, seed=None, warmup=None):
        self.benchmarks = list(benchmarks)
        self.policies = list(policies)
        self.config = config or SimConfig()
        self.num_instructions = num_instructions
        self.warmup = warmup if warmup is not None else num_instructions // 3
        self.seed = seed if seed is not None else self.config.seed
        self.results = {}  # (benchmark, policy) -> RunResult

    def run(self, include_baseline=True, profiler=None, tracer=None):
        """Execute the sweep; returns self for chaining.

        ``profiler`` accumulates tracegen/warmup/measure wall clock over
        the whole sweep; ``tracer`` records every run into the same sinks
        (callers usually reserve it for single-run recordings instead).
        """
        policies = list(self.policies)
        if include_baseline and BASELINE not in policies:
            policies.append(BASELINE)
        for benchmark in self.benchmarks:
            profile = get_profile(benchmark)
            if profiler is not None:
                with profiler.phase("tracegen"):
                    trace = generate_trace(
                        profile, self.num_instructions + self.warmup,
                        seed=self.seed)
            else:
                trace = generate_trace(profile,
                                       self.num_instructions + self.warmup,
                                       seed=self.seed)
            for policy in policies:
                core, _ = build_simulator(self.config, policy,
                                          tracer=tracer)
                self.results[(benchmark, policy)] = core.run(
                    trace, warmup=self.warmup, profiler=profiler)
        return self

    def write_manifest(self, path, profiler=None):
        """Write the sweep's JSON manifest (see repro.obs.export)."""
        from repro.obs.export import build_sweep_manifest, write_json

        return write_json(build_sweep_manifest(self, profiler=profiler),
                          path)

    def write_csv(self, path, baseline=BASELINE):
        """Write one CSV row per (benchmark, policy) run."""
        from repro.obs.export import write_sweep_csv

        return write_sweep_csv(self, path, baseline=baseline)

    def ipc(self, benchmark, policy):
        return self.results[(benchmark, policy)].ipc

    def normalized(self, benchmark, policy, baseline=BASELINE):
        """IPC of ``policy`` normalised to ``baseline`` for a benchmark."""
        base = self.ipc(benchmark, baseline)
        return self.ipc(benchmark, policy) / base if base else 0.0

    def normalized_series(self, policy, baseline=BASELINE):
        """Per-benchmark normalised IPC for one policy."""
        return {
            benchmark: self.normalized(benchmark, policy, baseline)
            for benchmark in self.benchmarks
        }

    def average_normalized(self, policy, baseline=BASELINE):
        values = self.normalized_series(policy, baseline).values()
        return sum(values) / len(self.benchmarks)


def normalized_ipc_table(sweep, policies=None, baseline=BASELINE):
    """Rows of (benchmark, {policy: normalized ipc}) plus an average row."""
    policies = policies or sweep.policies
    rows = []
    for benchmark in sweep.benchmarks:
        rows.append((
            benchmark,
            {p: sweep.normalized(benchmark, p, baseline) for p in policies},
        ))
    rows.append((
        "average",
        {p: sweep.average_normalized(p, baseline) for p in policies},
    ))
    return rows


def speedup_over(sweep, reference, policies=None):
    """Figure 8/11/13 presentation: IPC speedup over ``reference``.

    Returns rows of (benchmark, {policy: speedup}) where speedup is
    ``ipc(policy) / ipc(reference)``.
    """
    policies = policies or [p for p in sweep.policies if p != reference]
    rows = []
    for benchmark in sweep.benchmarks:
        ref = sweep.ipc(benchmark, reference)
        rows.append((
            benchmark,
            {p: (sweep.ipc(benchmark, p) / ref if ref else 0.0)
             for p in policies},
        ))
    averages = {
        p: sum(row[1][p] for row in rows) / len(rows) for p in policies
    }
    rows.append(("average", averages))
    return rows
