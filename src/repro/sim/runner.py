"""Assemble and run one simulation: config + policy + trace -> RunResult."""

from repro.config import SimConfig
from repro.cpu.core import TimestampCore
from repro.cpu.hierarchy import MemoryHierarchy
from repro.exec.cache import cached_trace
from repro.policies.registry import make_policy
from repro.util.rng import DeterministicRng
from repro.util.statistics import StatGroup


def build_simulator(config=None, policy="decrypt-only", tracer=None):
    """Build a fresh (core, hierarchy) pair for one run.

    ``policy`` may be a name or an :class:`~repro.policies.base.AuthPolicy`
    instance.  Every run gets private caches, DRAM state, and an
    authentication queue -- no state leaks between runs.  ``tracer`` (a
    :class:`~repro.obs.tracer.Tracer`) is threaded through every layer;
    None keeps the zero-overhead disabled path.
    """
    config = config or SimConfig()
    if isinstance(policy, str):
        policy = make_policy(policy)
    stats = StatGroup("sim")
    rng = DeterministicRng(config.seed).stream("remap")
    hierarchy = MemoryHierarchy(config, policy, rng=rng, stats=stats,
                                tracer=tracer)
    core = TimestampCore(config, policy, hierarchy, stats=stats,
                         tracer=tracer)
    return core, hierarchy


def run_trace(trace, config=None, policy="decrypt-only", tracer=None,
              profiler=None, warmup=0):
    """Run ``trace`` under ``policy``; returns a RunResult."""
    core, _ = build_simulator(config, policy, tracer=tracer)
    return core.run(trace, warmup=warmup, profiler=profiler)


def run_benchmark(benchmark, num_instructions=20_000, config=None,
                  policy="decrypt-only", seed=None, tracer=None,
                  profiler=None, warmup=0):
    """Generate the named benchmark's trace and run it under ``policy``.

    The trace comes from the process-wide cache
    (:mod:`repro.exec.cache`), so repeated runs of the same
    ``(benchmark, scale, seed)`` generate it once.
    """
    config = config or SimConfig()
    trace = cached_trace(benchmark, num_instructions + warmup,
                         seed if seed is not None else config.seed,
                         profiler=profiler)
    return run_trace(trace, config, policy, tracer=tracer,
                     profiler=profiler, warmup=warmup)
