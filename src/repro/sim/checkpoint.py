"""Persist sweep results as JSON.

Experiment runs are minutes-long; checkpointing lets EXPERIMENTS.md
regeneration, notebooks and regression comparisons reuse results without
re-simulating.  Checkpoints are versioned (``format_version``) and carry
each run's full :class:`~repro.util.statistics.StatGroup` snapshot, so a
saved sweep can answer the same questions as a live one; ``load_sweep``
refuses files written by an incompatible version with a
:class:`~repro.errors.CheckpointError` instead of a cryptic KeyError.
"""

import json

from repro.errors import CheckpointError

#: Bump when the checkpoint shape changes incompatibly.
#: v1: unversioned seed format (no stats, no format_version field).
#: v2: adds format_version and per-run "stats" StatGroup snapshots.
FORMAT_VERSION = 2


def sweep_to_dict(sweep):
    """Flatten a finished PolicySweep into a JSON-able dict."""
    runs = []
    for (benchmark, policy), result in sorted(sweep.results.items()):
        runs.append({
            "benchmark": benchmark,
            "policy": policy,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "miss_rates": result.miss_summary,
            "stats": result.stats.as_dict(),
        })
    return {
        "format_version": FORMAT_VERSION,
        "benchmarks": list(sweep.benchmarks),
        "policies": list(sweep.policies),
        "num_instructions": sweep.num_instructions,
        "warmup": sweep.warmup,
        "seed": sweep.seed,
        "runs": runs,
    }


def save_sweep(sweep, path):
    """Write a finished sweep to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(sweep_to_dict(sweep), handle, indent=1, sort_keys=True)


class SweepView:
    """Read-only view over a saved sweep with the PolicySweep accessors."""

    def __init__(self, payload):
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                "sweep checkpoint has format_version %r; this build reads "
                "version %d -- regenerate the checkpoint with save_sweep"
                % (version, FORMAT_VERSION))
        try:
            self.benchmarks = payload["benchmarks"]
            self.policies = payload["policies"]
            self.num_instructions = payload["num_instructions"]
            self.warmup = payload["warmup"]
            self.seed = payload["seed"]
            runs = payload["runs"]
            self._ipc = {
                (run["benchmark"], run["policy"]): run["ipc"]
                for run in runs
            }
            self._stats = {
                (run["benchmark"], run["policy"]): run.get("stats", {})
                for run in runs
            }
        except KeyError as missing:
            raise CheckpointError(
                "sweep checkpoint is missing key %s" % missing) from None

    def ipc(self, benchmark, policy):
        return self._ipc[(benchmark, policy)]

    def stats(self, benchmark, policy):
        """The run's persisted StatGroup snapshot (name -> value/buckets)."""
        return self._stats[(benchmark, policy)]

    def normalized(self, benchmark, policy, baseline="decrypt-only"):
        base = self.ipc(benchmark, baseline)
        return self.ipc(benchmark, policy) / base if base else 0.0

    def average_normalized(self, policy, baseline="decrypt-only"):
        values = [self.normalized(b, policy, baseline)
                  for b in self.benchmarks]
        return sum(values) / len(values)


def load_sweep(path):
    """Load a saved sweep as a :class:`SweepView`.

    Raises :class:`~repro.errors.CheckpointError` when the file was
    written by an incompatible format version or is missing fields.
    """
    with open(path) as handle:
        return SweepView(json.load(handle))
