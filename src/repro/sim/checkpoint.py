"""Persist sweep results: whole-sweep JSON plus a per-job resume journal.

Experiment runs are minutes-long; checkpointing lets EXPERIMENTS.md
regeneration, notebooks and regression comparisons reuse results without
re-simulating.  Checkpoints are versioned (``format_version``) and carry
each run's full :class:`~repro.util.statistics.StatGroup` snapshot, so a
saved sweep can answer the same questions as a live one; ``load_sweep``
refuses files written by an incompatible version with a
:class:`~repro.errors.CheckpointError` instead of a cryptic KeyError.

Two granularities:

- :func:`save_sweep` / :func:`load_sweep` persist a *finished* sweep
  (written atomically: write-then-rename, never a torn file).
- :class:`JobJournal` is an append-only JSONL journal the executors
  write one line to per completed :class:`~repro.exec.job.SimJob`; an
  interrupted sweep re-run against the same journal skips every
  ``job_id`` already on disk and rebuilds those results without
  simulating.  Records are CRC32-sealed; corrupt lines are quarantined
  into a ``.rej`` sidecar instead of silently trusted or fatally
  rejected (see ``docs/robustness.md``).
"""

import itertools
import json
import os
import socket
import zlib

from repro.errors import CheckpointError
from repro.util.statistics import StatGroup

_HOST = socket.gethostname()
_TMP_COUNTER = itertools.count()


def tmp_suffix():
    """A collision-proof temp-file suffix for write-then-rename.

    Folds in the hostname, the pid *and* a per-process monotonic
    counter: on a shared filesystem two hosts can hold equal pids, and
    one process can stage two writes to the same target back to back,
    so pid alone (let alone a bare ``.tmp``) is not unique.  The
    literal ``.tmp`` substring is what store/journal directory scans
    key on to ignore staged files.
    """
    return ".tmp.%s.%d.%d" % (_HOST, os.getpid(), next(_TMP_COUNTER))


def atomic_write_text(path, text):
    """Write ``text`` to ``path`` via write-then-rename.

    A crash mid-write leaves the old file intact (or a stray ``.tmp``),
    never a half-written checkpoint; ``os.replace`` is atomic on POSIX
    and Windows.  The staging name is unique per host, process and
    call, so concurrent writers on a shared filesystem never clobber
    each other's staging file -- last rename wins whole.
    """
    path = os.fspath(path)
    tmp = path + tmp_suffix()
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise

#: Bump when the checkpoint shape changes incompatibly.
#: v1: unversioned seed format (no stats, no format_version field).
#: v2: adds format_version and per-run "stats" StatGroup snapshots.
FORMAT_VERSION = 2


def sweep_to_dict(sweep):
    """Flatten a finished PolicySweep into a JSON-able dict.

    ``policies`` records the policies that actually ran (baseline
    included when it was injected), in deterministic execution order.
    Runs carry their ``job_id`` and the top level the executor backend,
    when the sweep went through the job pipeline.
    """
    job_ids = getattr(sweep, "job_ids", {})
    runs = []
    for (benchmark, policy), result in sorted(sweep.results.items()):
        runs.append({
            "benchmark": benchmark,
            "policy": policy,
            "job_id": job_ids.get((benchmark, policy)),
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "miss_rates": result.miss_summary,
            "stats": result.stats.as_dict(),
        })
    return {
        "format_version": FORMAT_VERSION,
        "benchmarks": list(sweep.benchmarks),
        "policies": list(getattr(sweep, "executed_policies",
                                 sweep.policies)),
        "num_instructions": sweep.num_instructions,
        "warmup": sweep.warmup,
        "seed": sweep.seed,
        "backend": getattr(sweep, "backend", None),
        "runs": runs,
    }


def save_sweep(sweep, path):
    """Write a finished sweep to ``path`` as JSON (atomically)."""
    atomic_write_text(path, json.dumps(sweep_to_dict(sweep), indent=1,
                                       sort_keys=True))


class SweepView:
    """Read-only view over a saved sweep with the PolicySweep accessors."""

    def __init__(self, payload):
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                "sweep checkpoint has format_version %r; this build reads "
                "version %d -- regenerate the checkpoint with save_sweep"
                % (version, FORMAT_VERSION))
        try:
            self.benchmarks = payload["benchmarks"]
            self.policies = payload["policies"]
            self.num_instructions = payload["num_instructions"]
            self.warmup = payload["warmup"]
            self.seed = payload["seed"]
            runs = payload["runs"]
            self._ipc = {
                (run["benchmark"], run["policy"]): run["ipc"]
                for run in runs
            }
            self._stats = {
                (run["benchmark"], run["policy"]): run.get("stats", {})
                for run in runs
            }
        except KeyError as missing:
            raise CheckpointError(
                "sweep checkpoint is missing key %s" % missing) from None

    def ipc(self, benchmark, policy):
        return self._ipc[(benchmark, policy)]

    def stats(self, benchmark, policy):
        """The run's persisted StatGroup snapshot (name -> value/buckets)."""
        return self._stats[(benchmark, policy)]

    def normalized(self, benchmark, policy, baseline="decrypt-only"):
        base = self.ipc(benchmark, baseline)
        return self.ipc(benchmark, policy) / base if base else 0.0

    def average_normalized(self, policy, baseline="decrypt-only"):
        values = [self.normalized(b, policy, baseline)
                  for b in self.benchmarks]
        return sum(values) / len(values)


def load_sweep(path):
    """Load a saved sweep as a :class:`SweepView`.

    Raises :class:`~repro.errors.CheckpointError` when the file was
    written by an incompatible format version or is missing fields.
    """
    with open(path) as handle:
        return SweepView(json.load(handle))


#: Bump when a journal line's shape changes incompatibly.
#: v1: no integrity field, no metrics.
#: v2: adds a per-record "crc32" checksum and the persisted RunMetrics
#:     snapshot ("metrics"), so resumed sweeps rebuild full manifests.
JOURNAL_VERSION = 2


def _record_crc(record):
    """CRC32 of a record's canonical JSON, ``crc32`` field excluded.

    ``record`` must already be JSON-normalised (string keys, round-
    tripped floats) -- :meth:`JobJournal.record` guarantees this by
    passing every record through ``json.loads(json.dumps(...))`` before
    checksumming, which makes the canonical text a fixed point.
    """
    body = {key: value for key, value in record.items() if key != "crc32"}
    return zlib.crc32(json.dumps(body, sort_keys=True).encode())


#: :func:`parse_record` reason for a structurally sound line written by
#: a different ``journal_version`` -- ignorable in place, never corrupt.
INCOMPATIBLE_VERSION = "incompatible journal_version"


def parse_record(raw):
    """Validate one journal line; returns ``(record, reason)``.

    A valid current-version line returns ``(dict, None)``; anything
    else returns ``(None, reason)``.  ``reason`` is
    :data:`INCOMPATIBLE_VERSION` for foreign-version lines (keep them
    in place) and a quarantine reason string otherwise.  Pure and
    read-only -- safe on a journal another process is appending to,
    which is what the distributed driver's segment tailer needs.
    """
    try:
        record = json.loads(raw)
    except ValueError:
        return None, "unparseable JSON (torn write?)"
    if not isinstance(record, dict):
        return None, "not a JSON object"
    if record.get("journal_version") != JOURNAL_VERSION:
        return None, INCOMPATIBLE_VERSION
    if "job_id" not in record:
        return None, "missing job_id"
    stored = record.get("crc32")
    if stored is None:
        return None, "missing crc32"
    if stored != _record_crc(record):
        return None, "crc32 mismatch (stored %s)" % stored
    return record, None


def result_from_record(record):
    """Rebuild a live RunResult from one validated journal record.

    The rebuilt result carries a real :class:`StatGroup` and the
    persisted :class:`~repro.sim.metrics.RunMetrics`, so sweep
    accessors and manifests work the same whether a run was simulated,
    resumed locally, or merged from another host's journal segment.
    """
    from repro.cpu.core import RunResult

    result = RunResult(
        record["name"],
        record["policy_name"],
        record["instructions"],
        record["cycles"],
        StatGroup.from_dict(record["stats"], name="sim"),
        dict(record["miss_rates"]),
    )
    if record.get("metrics") is not None:
        from repro.sim.metrics import RunMetrics

        result.metrics = RunMetrics(**record["metrics"])
    result.accounting = record.get("accounting")
    return result


class JobJournal:
    """Append-only JSONL journal of completed jobs (resumable sweeps).

    One line per completed :class:`~repro.exec.job.SimJob`, written and
    flushed *before* the next job starts, so a killed sweep loses at
    most its in-flight jobs.  Every v2 record carries a CRC32 of its
    canonical JSON, so a torn write, bit rot or hand-editing is caught
    on open -- not trusted into a resumed sweep.

    Integrity triage on open:

    - *Corrupt* lines (unparseable JSON -- e.g. a truncated tail from a
      mid-write kill -- missing ``job_id``/``crc32``, or a CRC
      mismatch) are **quarantined**: moved into a ``<path>.rej``
      sidecar with their reason, and the journal is rewritten
      (atomically) without them, so the rerun regenerates those jobs
      and the sidecar preserves the evidence.
    - Lines written by a different ``journal_version`` are structurally
      sound, just foreign: they are *ignored in place* (counted in
      ``incompatible_lines``), which keeps old-format journals readable
      by newer builds without destroying them.

    ``skipped_lines`` counts everything not loaded (quarantined plus
    incompatible), which is what ``repro sweep`` reports.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self.rej_path = self.path + ".rej"
        self._records = {}  # job_id -> journal line dict
        self.quarantined_lines = 0
        self.incompatible_lines = 0
        if os.path.exists(self.path):
            self._load()

    @property
    def skipped_lines(self):
        """Total lines ignored on open (quarantined + incompatible)."""
        return self.quarantined_lines + self.incompatible_lines

    def _load(self):
        kept = []        # raw lines preserved verbatim (incl. foreign)
        rejected = []    # (reason, raw line)
        with open(self.path, errors="replace") as handle:
            for line in handle:
                raw = line.rstrip("\n")
                if not raw.strip():
                    continue
                record, reason = parse_record(raw)
                if record is not None:
                    kept.append(raw)
                    self._records[record["job_id"]] = record
                elif reason == INCOMPATIBLE_VERSION:
                    self.incompatible_lines += 1
                    kept.append(raw)
                else:
                    rejected.append((reason, raw))
        if rejected:
            self.quarantined_lines = len(rejected)
            self._quarantine(kept, rejected)

    def _quarantine(self, kept, rejected):
        """Move corrupt lines to the ``.rej`` sidecar, keep the rest."""
        with open(self.rej_path, "a") as handle:
            for reason, raw in rejected:
                handle.write(json.dumps({"reason": reason, "line": raw})
                             + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        atomic_write_text(self.path,
                          "".join(raw + "\n" for raw in kept))

    @property
    def completed_ids(self):
        """job_ids with a fully recorded result."""
        return set(self._records)

    def __len__(self):
        return len(self._records)

    def __contains__(self, job_id):
        return job_id in self._records

    def record(self, job, result):
        """Append one completed job (flushed immediately, CRC-sealed)."""
        record = {
            "journal_version": JOURNAL_VERSION,
            "job_id": job.job_id,
            "benchmark": job.benchmark,
            "policy": job.policy,
            "seed": job.seed,
            "warmup": job.warmup,
            "name": result.name,
            "policy_name": result.policy_name,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "miss_rates": dict(result.miss_summary),
            "stats": result.stats.as_dict(),
            "metrics": (result.metrics.as_dict()
                        if getattr(result, "metrics", None) is not None
                        else None),
            # Per-job resource accounting (wall/tracegen seconds, cache
            # hit, peak RSS).  An *additive* v2 field: old readers
            # ignore it, old records come back with accounting None,
            # and it is CRC-covered like everything else.
            "accounting": getattr(result, "accounting", None),
        }
        # Normalise through one JSON round trip (int dict keys become
        # strings) so the CRC is computed over exactly the text a
        # reader will re-canonicalise.
        record = json.loads(json.dumps(record))
        record["crc32"] = _record_crc(record)
        # One os.write of the whole line on an O_APPEND descriptor:
        # concurrent appenders to the same journal (two workers sharing
        # a host-id on one spool) interleave at line granularity, never
        # inside a record.  A line torn by a crash mid-write is still
        # caught by the CRC and quarantined on the next open.
        line = (json.dumps(record, sort_keys=True) + "\n").encode()
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line)
            os.fsync(fd)
        finally:
            os.close(fd)
        self._records[record["job_id"]] = record

    def result(self, job):
        """Rebuild the RunResult for ``job``, or None if not journaled.

        The rebuilt result carries a live :class:`StatGroup` and the
        persisted :class:`~repro.sim.metrics.RunMetrics`, so sweep
        accessors and manifests work the same whether a run was
        simulated or resumed.
        """
        record = self._records.get(job.job_id)
        if record is None:
            return None
        return result_from_record(record)

    def accounting(self):
        """Per-job accounting for every journaled record.

        ``{job_id: {"benchmark", "policy", "accounting": dict-or-None}}``
        -- what ``repro report`` mines for slowest-job and resource
        tables without re-simulating anything.
        """
        return {
            job_id: {
                "benchmark": record.get("benchmark"),
                "policy": record.get("policy"),
                "accounting": record.get("accounting"),
            }
            for job_id, record in self._records.items()
        }

    def compact(self, keep_ids=None):
        """Rewrite the journal with only current-format, live records.

        Drops incompatible-version lines and -- when ``keep_ids`` is
        given -- records whose job_id is not in it (the ROADMAP's
        superseded-spec cleanup: compact against the requested grid).
        The rewrite is atomic; quarantined lines stay in the sidecar.
        Returns the number of records dropped.
        """
        if keep_ids is not None:
            keep_ids = set(keep_ids)
            dropped = [job_id for job_id in self._records
                       if job_id not in keep_ids]
            for job_id in dropped:
                del self._records[job_id]
        else:
            dropped = []
        dropped_lines = self.incompatible_lines + len(dropped)
        atomic_write_text(self.path, "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self._records.values()))
        self.incompatible_lines = 0
        return dropped_lines
