"""Persist sweep results: whole-sweep JSON plus a per-job resume journal.

Experiment runs are minutes-long; checkpointing lets EXPERIMENTS.md
regeneration, notebooks and regression comparisons reuse results without
re-simulating.  Checkpoints are versioned (``format_version``) and carry
each run's full :class:`~repro.util.statistics.StatGroup` snapshot, so a
saved sweep can answer the same questions as a live one; ``load_sweep``
refuses files written by an incompatible version with a
:class:`~repro.errors.CheckpointError` instead of a cryptic KeyError.

Two granularities:

- :func:`save_sweep` / :func:`load_sweep` persist a *finished* sweep.
- :class:`JobJournal` is an append-only JSONL journal the executors
  write one line to per completed :class:`~repro.exec.job.SimJob`; an
  interrupted sweep re-run against the same journal skips every
  ``job_id`` already on disk and rebuilds those results without
  simulating.
"""

import json
import os

from repro.errors import CheckpointError
from repro.util.statistics import StatGroup

#: Bump when the checkpoint shape changes incompatibly.
#: v1: unversioned seed format (no stats, no format_version field).
#: v2: adds format_version and per-run "stats" StatGroup snapshots.
FORMAT_VERSION = 2


def sweep_to_dict(sweep):
    """Flatten a finished PolicySweep into a JSON-able dict.

    ``policies`` records the policies that actually ran (baseline
    included when it was injected), in deterministic execution order.
    Runs carry their ``job_id`` and the top level the executor backend,
    when the sweep went through the job pipeline.
    """
    job_ids = getattr(sweep, "job_ids", {})
    runs = []
    for (benchmark, policy), result in sorted(sweep.results.items()):
        runs.append({
            "benchmark": benchmark,
            "policy": policy,
            "job_id": job_ids.get((benchmark, policy)),
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "miss_rates": result.miss_summary,
            "stats": result.stats.as_dict(),
        })
    return {
        "format_version": FORMAT_VERSION,
        "benchmarks": list(sweep.benchmarks),
        "policies": list(getattr(sweep, "executed_policies",
                                 sweep.policies)),
        "num_instructions": sweep.num_instructions,
        "warmup": sweep.warmup,
        "seed": sweep.seed,
        "backend": getattr(sweep, "backend", None),
        "runs": runs,
    }


def save_sweep(sweep, path):
    """Write a finished sweep to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(sweep_to_dict(sweep), handle, indent=1, sort_keys=True)


class SweepView:
    """Read-only view over a saved sweep with the PolicySweep accessors."""

    def __init__(self, payload):
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                "sweep checkpoint has format_version %r; this build reads "
                "version %d -- regenerate the checkpoint with save_sweep"
                % (version, FORMAT_VERSION))
        try:
            self.benchmarks = payload["benchmarks"]
            self.policies = payload["policies"]
            self.num_instructions = payload["num_instructions"]
            self.warmup = payload["warmup"]
            self.seed = payload["seed"]
            runs = payload["runs"]
            self._ipc = {
                (run["benchmark"], run["policy"]): run["ipc"]
                for run in runs
            }
            self._stats = {
                (run["benchmark"], run["policy"]): run.get("stats", {})
                for run in runs
            }
        except KeyError as missing:
            raise CheckpointError(
                "sweep checkpoint is missing key %s" % missing) from None

    def ipc(self, benchmark, policy):
        return self._ipc[(benchmark, policy)]

    def stats(self, benchmark, policy):
        """The run's persisted StatGroup snapshot (name -> value/buckets)."""
        return self._stats[(benchmark, policy)]

    def normalized(self, benchmark, policy, baseline="decrypt-only"):
        base = self.ipc(benchmark, baseline)
        return self.ipc(benchmark, policy) / base if base else 0.0

    def average_normalized(self, policy, baseline="decrypt-only"):
        values = [self.normalized(b, policy, baseline)
                  for b in self.benchmarks]
        return sum(values) / len(values)


def load_sweep(path):
    """Load a saved sweep as a :class:`SweepView`.

    Raises :class:`~repro.errors.CheckpointError` when the file was
    written by an incompatible format version or is missing fields.
    """
    with open(path) as handle:
        return SweepView(json.load(handle))


#: Bump when a journal line's shape changes incompatibly.
JOURNAL_VERSION = 1


class JobJournal:
    """Append-only JSONL journal of completed jobs (resumable sweeps).

    One line per completed :class:`~repro.exec.job.SimJob`, written and
    flushed *before* the next job starts, so a killed sweep loses at
    most its in-flight jobs.  On open, existing lines are indexed by
    ``job_id``; a truncated trailing line (the likely artifact of a
    mid-write kill) is ignored rather than fatal.  Lines written by an
    incompatible ``journal_version`` are also ignored, which makes the
    rerun regenerate those jobs instead of trusting stale shapes.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._records = {}  # job_id -> journal line dict
        self.skipped_lines = 0
        if os.path.exists(self.path):
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        self.skipped_lines += 1
                        continue
                    if record.get("journal_version") != JOURNAL_VERSION \
                            or "job_id" not in record:
                        self.skipped_lines += 1
                        continue
                    self._records[record["job_id"]] = record

    @property
    def completed_ids(self):
        """job_ids with a fully recorded result."""
        return set(self._records)

    def __len__(self):
        return len(self._records)

    def __contains__(self, job_id):
        return job_id in self._records

    def record(self, job, result):
        """Append one completed job (flushed immediately)."""
        record = {
            "journal_version": JOURNAL_VERSION,
            "job_id": job.job_id,
            "benchmark": job.benchmark,
            "policy": job.policy,
            "seed": job.seed,
            "warmup": job.warmup,
            "name": result.name,
            "policy_name": result.policy_name,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "miss_rates": dict(result.miss_summary),
            "stats": result.stats.as_dict(),
        }
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._records[job.job_id] = record

    def result(self, job):
        """Rebuild the RunResult for ``job``, or None if not journaled.

        The rebuilt result carries a live :class:`StatGroup`, so sweep
        accessors, manifests and whole-sweep checkpoints work the same
        whether a run was simulated or resumed.  (Derived ``metrics``
        are not persisted and come back as None.)
        """
        record = self._records.get(job.job_id)
        if record is None:
            return None
        from repro.cpu.core import RunResult

        return RunResult(
            record["name"],
            record["policy_name"],
            record["instructions"],
            record["cycles"],
            StatGroup.from_dict(record["stats"], name="sim"),
            dict(record["miss_rates"]),
        )
