"""Persist sweep results as JSON.

Experiment runs are minutes-long; checkpointing lets EXPERIMENTS.md
regeneration, notebooks and regression comparisons reuse results without
re-simulating.  Only plain data is stored (benchmark, policy, cycles,
instructions, ipc, miss rates), so files are stable across versions.
"""

import json

from repro.sim.sweep import PolicySweep


def sweep_to_dict(sweep):
    """Flatten a finished PolicySweep into a JSON-able dict."""
    runs = []
    for (benchmark, policy), result in sorted(sweep.results.items()):
        runs.append({
            "benchmark": benchmark,
            "policy": policy,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "miss_rates": result.miss_summary,
        })
    return {
        "benchmarks": list(sweep.benchmarks),
        "policies": list(sweep.policies),
        "num_instructions": sweep.num_instructions,
        "warmup": sweep.warmup,
        "seed": sweep.seed,
        "runs": runs,
    }


def save_sweep(sweep, path):
    """Write a finished sweep to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(sweep_to_dict(sweep), handle, indent=1, sort_keys=True)


class SweepView:
    """Read-only view over a saved sweep with the PolicySweep accessors."""

    def __init__(self, payload):
        self.benchmarks = payload["benchmarks"]
        self.policies = payload["policies"]
        self.num_instructions = payload["num_instructions"]
        self.warmup = payload["warmup"]
        self.seed = payload["seed"]
        self._ipc = {
            (run["benchmark"], run["policy"]): run["ipc"]
            for run in payload["runs"]
        }

    def ipc(self, benchmark, policy):
        return self._ipc[(benchmark, policy)]

    def normalized(self, benchmark, policy, baseline="decrypt-only"):
        base = self.ipc(benchmark, baseline)
        return self.ipc(benchmark, policy) / base if base else 0.0

    def average_normalized(self, policy, baseline="decrypt-only"):
        values = [self.normalized(b, policy, baseline)
                  for b in self.benchmarks]
        return sum(values) / len(values)


def load_sweep(path):
    """Load a saved sweep as a :class:`SweepView`."""
    with open(path) as handle:
        return SweepView(json.load(handle))
