"""Plain-text rendering of experiment tables."""


#: Placeholder rendered for a cell whose run is missing (a job that
#: failed terminally under a skipping failure policy).
MISSING_CELL = "--"


def render_table(headers, rows, float_format="%.3f"):
    """Render a list-of-lists table with aligned columns.

    Numeric cells (ints and floats, as conventional for figures) are
    right-aligned; text cells are left-aligned.  ``None`` cells render
    as ``--`` (right-aligned: they stand in for numbers).
    """
    def fmt(value):
        if value is None:
            return MISSING_CELL
        if isinstance(value, float):
            return float_format % value
        return str(value)

    def numeric(value):
        if value is None:
            return True  # placeholder for a number: align like one
        return isinstance(value, (int, float)) and \
            not isinstance(value, bool)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    numeric_rows = [[numeric(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for cells, numerics in zip(text_rows, numeric_rows):
        lines.append("  ".join(
            cell.rjust(widths[i]) if numerics[i] else cell.ljust(widths[i])
            for i, cell in enumerate(cells)))
    return "\n".join(lines)


def series_rows(table_rows, policies):
    """Convert sweep table rows into render_table rows."""
    out = []
    for benchmark, values in table_rows:
        out.append([benchmark] + [values[p] for p in policies])
    return out


def failure_footer(sweep):
    """Table footer summarising a sweep's terminal failures, or "".

    One line per failed (benchmark, policy) pair plus a count, appended
    under rendered tables so a ``--`` cell is never silent.
    """
    failed = sweep.failed_jobs()
    if not failed:
        return ""
    lines = ["%d job(s) failed terminally and are shown as %s:"
             % (len(failed), MISSING_CELL)]
    for (benchmark, policy), outcome in sorted(failed.items()):
        lines.append("  %s/%s: %s after %d attempt(s)"
                     % (benchmark, policy, outcome.error,
                        outcome.attempts))
    return "\n".join(lines)
