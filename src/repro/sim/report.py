"""Plain-text rendering of experiment tables."""


def render_table(headers, rows, float_format="%.3f"):
    """Render a list-of-lists table with aligned columns."""
    def fmt(value):
        if isinstance(value, float):
            return float_format % value
        return str(value)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def series_rows(table_rows, policies):
    """Convert sweep table rows into render_table rows."""
    out = []
    for benchmark, values in table_rows:
        out.append([benchmark] + [values[p] for p in policies])
    return out
