"""Derived run metrics: everything a memory-system architect asks next.

Computes, from a finished (core, hierarchy) pair:

- DRAM traffic decomposition (data reads, writebacks, metadata by kind);
- bus utilisation and mean queueing delay;
- DRAM row-buffer behaviour;
- authentication-engine pressure (requests, queue-full events, the
  decrypt-to-verify gap distribution);
- per-level miss rates.
"""

from dataclasses import dataclass, field


@dataclass
class RunMetrics:
    """Derived metrics of one simulation run."""

    cycles: int
    instructions: int
    ipc: float
    miss_rates: dict = field(default_factory=dict)
    dram_reads: int = 0
    dram_writes: int = 0
    dram_metadata: int = 0
    row_hit_rate: float = 0.0
    bus_utilisation: float = 0.0
    mean_bus_wait: float = 0.0
    mean_read_latency: float = 0.0
    auth_requests: int = 0
    auth_queue_full: int = 0
    mean_verify_gap: float = 0.0
    # Figure 6's discussion is really about the tail of the window, not
    # its mean: the p50/p95/max decrypt-to-verify gap in cycles.
    p50_verify_gap: int = 0
    p95_verify_gap: int = 0
    max_verify_gap: int = 0
    reads_per_kinst: float = 0.0

    def as_dict(self):
        out = dict(self.__dict__)
        out["miss_rates"] = dict(self.miss_rates)
        return out


def collect_metrics(result, hierarchy=None):
    """Build :class:`RunMetrics` from a RunResult.

    Every counter lives in the one shared "sim" :class:`StatGroup`, which
    the RunResult itself carries (``hierarchy.controller.stats``,
    ``hierarchy.stats`` and ``result.stats`` are the same object on the
    legacy path), so ``hierarchy`` is optional: shared-kernel replays
    (:mod:`repro.cpu.shared_kernel`) have no hierarchy but produce the
    identical group.
    """
    stats = (hierarchy.controller.stats if hierarchy is not None
             else result.stats)
    cycles = max(result.cycles, 1)

    reads = stats["line_reads"].value
    writes = stats["line_writes"].value
    metadata = stats["metadata_accesses"].value

    hits = stats["row_hits"].value
    total_rows = (hits + stats["row_empty"].value
                  + stats["row_conflicts"].value)
    row_hit_rate = hits / total_rows if total_rows else 0.0

    busy = stats["busy_cycles"].value
    transfers = stats["transfers"].value
    wait = stats["wait_cycles"].value

    read_latency = stats["read_latency"]
    hier_stats = hierarchy.stats if hierarchy is not None else stats
    auth_requests = (hier_stats["auth_requests"].value
                     if "auth_requests" in hier_stats else 0)
    queue_full = (hier_stats["auth_queue_full"].value
                  if "auth_queue_full" in hier_stats else 0)
    if "decrypt_verify_gap" in hier_stats:
        gap_hist = hier_stats["decrypt_verify_gap"]
        gap = gap_hist.mean()
        # percentile/max_key return None on an empty histogram; the run
        # metrics keep the historical 0 so journal records stay stable.
        gap_p50 = gap_hist.percentile(50) or 0
        gap_p95 = gap_hist.percentile(95) or 0
        gap_max = gap_hist.max_key() or 0
    else:
        gap = 0.0
        gap_p50 = gap_p95 = gap_max = 0

    return RunMetrics(
        cycles=result.cycles,
        instructions=result.instructions,
        ipc=result.ipc,
        miss_rates=result.miss_summary,
        dram_reads=reads,
        dram_writes=writes,
        dram_metadata=metadata,
        row_hit_rate=row_hit_rate,
        bus_utilisation=min(1.0, busy / cycles),
        mean_bus_wait=wait / transfers if transfers else 0.0,
        mean_read_latency=read_latency.mean(),
        auth_requests=auth_requests,
        auth_queue_full=queue_full,
        mean_verify_gap=gap,
        p50_verify_gap=gap_p50,
        p95_verify_gap=gap_p95,
        max_verify_gap=gap_max,
        reads_per_kinst=1000.0 * reads / max(result.instructions, 1),
    )


def run_with_metrics(trace, config=None, policy="decrypt-only",
                     warmup=0, tracer=None, profiler=None):
    """Convenience: run a trace and return (RunResult, RunMetrics)."""
    from repro.config import SimConfig
    from repro.sim.runner import build_simulator

    core, hierarchy = build_simulator(config or SimConfig(), policy,
                                      tracer=tracer)
    result = core.run(trace, warmup=warmup, profiler=profiler)
    if profiler is not None:
        with profiler.phase("metrics"):
            metrics = collect_metrics(result, hierarchy)
    else:
        metrics = collect_metrics(result, hierarchy)
    return result, metrics


def render_metrics(metrics):
    """Human-readable metric block."""
    lines = [
        "cycles=%d instructions=%d ipc=%.4f"
        % (metrics.cycles, metrics.instructions, metrics.ipc),
        "dram: reads=%d (%.1f/kinst) writes=%d metadata=%d"
        % (metrics.dram_reads, metrics.reads_per_kinst,
           metrics.dram_writes, metrics.dram_metadata),
        "dram rows: hit rate %.1f%%; bus util %.1f%%, mean wait %.0f cyc"
        % (100 * metrics.row_hit_rate, 100 * metrics.bus_utilisation,
           metrics.mean_bus_wait),
        "mean read latency %.0f cyc" % metrics.mean_read_latency,
        "auth: %d requests, %d queue-full, mean verify gap %.0f cyc"
        % (metrics.auth_requests, metrics.auth_queue_full,
           metrics.mean_verify_gap),
        "verify gap percentiles: p50=%d p95=%d max=%d cyc"
        % (metrics.p50_verify_gap, metrics.p95_verify_gap,
           metrics.max_verify_gap),
        "miss rates: " + "  ".join(
            "%s=%.3f" % (k, v) for k, v in sorted(
                metrics.miss_rates.items())),
    ]
    return "\n".join(lines)
