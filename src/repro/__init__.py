"""repro -- reproduction of "Authentication Control Point and Its
Implications For Secure Processor Design" (Shi & Lee, MICRO 2006).

Public API highlights
---------------------

Timing side (performance of the authentication control points)::

    from repro import SimConfig, make_policy, run_benchmark

    result = run_benchmark("mcf", 20_000, policy="authen-then-commit")
    print(result.ipc)

Functional side (the memory-fetch side channel, end to end)::

    from repro import SecureMachine, load_program, make_policy
    from repro.attacks import PointerConversionAttack

    attack = PointerConversionAttack()
    machine, outcome = attack.run(make_policy("authen-then-commit"))

Experiments (every table/figure of the paper) live in
:mod:`repro.experiments`; see DESIGN.md for the index.
"""

from repro.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    SecureConfig,
    SimConfig,
    table3_parameters,
)
from repro.errors import (
    ConfigError,
    IntegrityError,
    IsaError,
    ReproError,
    SimulationError,
)
from repro.func.loader import load_program
from repro.func.machine import SecureMachine
from repro.policies.registry import (
    FIGURE7_POLICIES,
    POLICY_NAMES,
    available_policies,
    make_policy,
)
from repro.sim.runner import build_simulator, run_benchmark, run_trace
from repro.sim.sweep import PolicySweep
from repro.workloads.spec import (
    SPEC2000_PROFILES,
    fp_benchmarks,
    get_profile,
    int_benchmarks,
)
from repro.workloads.tracegen import generate_trace

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "CacheConfig",
    "CoreConfig",
    "DramConfig",
    "SecureConfig",
    "table3_parameters",
    "ReproError",
    "ConfigError",
    "IsaError",
    "IntegrityError",
    "SimulationError",
    "make_policy",
    "available_policies",
    "POLICY_NAMES",
    "FIGURE7_POLICIES",
    "build_simulator",
    "run_trace",
    "run_benchmark",
    "PolicySweep",
    "SecureMachine",
    "load_program",
    "SPEC2000_PROFILES",
    "get_profile",
    "int_benchmarks",
    "fp_benchmarks",
    "generate_trace",
    "__version__",
]
