"""Replay attack: why per-line MACs need a hash tree (Section 5.2.3).

The adversary records a line's full untrusted state -- ciphertext, MAC,
*and* the line's counter as stored in untrusted memory -- lets the
program overwrite the line, then restores the recorded triple.  The MAC
check passes (the triple is internally consistent); only a hash tree
whose root lives on-chip detects that the line is stale.
"""

from repro.func.loader import load_program
from repro.func.machine import SecureMachine

FLAG_ADDR = 0x2000

# The victim sets a "privilege revoked" flag (1 -> 0) and then acts on it.
VICTIM = """
    lui  r1, 0x0
    ori  r1, r1, 0x2000
    sw   r0, 0(r1)           ; revoke: flag = 0
    lw   r2, 0(r1)           ; re-read flag
    out  r2                  ; act on it (observable)
    halt
"""


class ReplayAttack:
    """Record-and-restore a stale (ciphertext, MAC, counter) triple."""

    name = "replay"

    def run(self, policy, hash_tree=False, **machine_kwargs):
        machine = SecureMachine(policy, hash_tree=hash_tree,
                                **machine_kwargs)
        load_program(machine, VICTIM, data={FLAG_ADDR: [1]})

        line = FLAG_ADDR
        recorded = (
            machine.mem.read(line, 32),
            machine.mac_store[line],
            machine.counter_store[line],
        )

        # Run until just after the revoking store has landed: execute the
        # first four instructions (lui/ori/sw/lw is enough; we step
        # manually so the machine state is mid-program).
        for _ in range(3):
            machine.step()

        # Physical restore of the stale triple (counter lives in
        # untrusted memory in a real system, so the adversary controls
        # all three).
        cipher, mac, counter = recorded
        machine.mem.write(line, cipher)
        machine.mac_store[line] = mac
        machine.counter_store[line] = counter
        machine._plain_cache.pop(line, None)

        result = machine.run(100)
        # The replay "succeeded" if the stale flag value (1) was read back
        # and acted upon.
        replay_effective = 1 in result.io_log
        return replay_effective, result
