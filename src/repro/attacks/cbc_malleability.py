"""CBC malleability: pointer conversion without counter mode.

Section 3.1 notes that CBC is malleable too, just with a different
geometry: flipping a bit of ciphertext block *i* garbles the decrypted
block *i* completely and flips the **same bit of block i+1**.  An
adversary who can sacrifice the contents of one 16-byte block therefore
controls the next block bit-for-bit.

This attack replays the linked-list pointer conversion on a CBC-encrypted
machine.  The list terminator is laid out so its NULL ``next`` pointer
sits in the *second* AES block of its cache line; flipping the first
block's ciphertext turns NULL into the secret's address while only
garbling a sacrificial padding block.
"""

from repro.func.loader import load_program
from repro.func.machine import LINE_BYTES, SecureMachine

HEAD = 0x2000
TERMINATOR = 0x2030          # second 16B block of line 0x2020
SACRIFICIAL_BLOCK = 0x2020   # garbled by the flip; nothing reads it
SECRET_ADDR = 0x3000
SECRET_VALUE = 0x00ABCD44

VICTIM = """
    lui  r1, 0x0
    ori  r1, r1, 0x2000      ; r1 = list head
walk:
    beq  r1, r0, done
    lw   r2, 4(r1)           ; node value
    lw   r1, 0(r1)           ; node->next
    jmp  walk
done:
    halt
"""


class CbcPointerConversionAttack:
    """Pointer conversion via CBC's flip-next-block property."""

    name = "cbc-pointer-conversion"

    def build_victim(self, policy, **machine_kwargs):
        machine_kwargs.setdefault("mode", "cbc")
        machine = SecureMachine(policy, **machine_kwargs)
        data = {
            HEAD: [TERMINATOR, 111],       # node 1 -> terminator
            TERMINATOR: [0x0000, 222],     # terminator: next = NULL
            SECRET_ADDR: [SECRET_VALUE],
        }
        load_program(machine, VICTIM, data=data)
        return machine

    def tamper(self, machine):
        # Flip ciphertext of the block *before* the terminator's block:
        # plaintext there garbles (sacrificial), and the NULL pointer in
        # the next block XORs with our mask.
        mask = SECRET_ADDR.to_bytes(4, "big")
        machine.mem.flip_bits(SACRIFICIAL_BLOCK, mask)

    def run(self, policy, max_steps=2000, **machine_kwargs):
        machine = self.build_victim(policy, **machine_kwargs)
        self.tamper(machine)
        result = machine.run(max_steps)
        return machine, result

    def leaked_secret(self, machine, result):
        target_line = (SECRET_VALUE // LINE_BYTES) * LINE_BYTES
        return any(e.kind == "data" and e.addr == target_line
                   for e in result.bus_trace)
