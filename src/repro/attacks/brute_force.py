"""Brute-force / random page-address tampering (Section 3.3.2), plus the
fault-log leak (Section 3.3: "many processors throw exception and log the
faulty address").

The victim is the linked-list walker under virtual memory.  The raw
pointer-conversion attack faults on translation -- but:

1. the *fault log itself* reveals the secret (the faulting address);
2. alternatively, the adversary keeps re-running with random flips of
   the pointer's page-address bits until the tampered pointer lands in
   mapped space; with F mapped pages out of 2^20, success takes about
   2^20 / F trials on average.
"""

from repro.attacks.pointer_conversion import (
    SECRET_ADDR,
    SECRET_VALUE,
    PointerConversionAttack,
)
from repro.attacks.tamper import flip_word
from repro.func.machine import LINE_BYTES
from repro.util.rng import DeterministicRng


class BruteForcePageAttack(PointerConversionAttack):
    """Pointer conversion vs virtual memory."""

    name = "brute-force-page"

    def __init__(self, mapped_pages=64, seed=7):
        self.mapped_pages = mapped_pages
        self.seed = seed

    def build_victim(self, policy, **machine_kwargs):
        machine_kwargs.setdefault("use_vm", True)
        machine = super().build_victim(policy, **machine_kwargs)
        # Map a contiguous block of "application" pages the adversary
        # knows about (e.g. the heap).
        base_page = 0x600
        for vpage in range(base_page, base_page + self.mapped_pages):
            machine.map_page(vpage)
        self._mapped_range = (base_page << 12,
                              (base_page + self.mapped_pages) << 12)
        return machine

    def fault_log_leak(self, policy, **machine_kwargs):
        """Variant 1: the page-fault log reveals the secret directly."""
        machine = self.build_victim(policy, **machine_kwargs)
        self.tamper(machine)
        result = machine.run(2000)
        leaked = any(
            abs(addr - SECRET_VALUE) < LINE_BYTES
            for addr in result.fault_log
        )
        return leaked, result

    def random_tampering(self, policy, max_trials=200, **machine_kwargs):
        """Variant 2: flip random page-address bits until one translates.

        Returns ``(success_trial_or_None, trials, any_detected)``; success
        means a tampered-pointer dereference reached the bus (the low
        address bits still carry secret bits).
        """
        rng = DeterministicRng(self.seed).stream("brute-force")
        detected = False
        for trial in range(1, max_trials + 1):
            machine = self.build_victim(policy, **machine_kwargs)
            # Convert NULL -> secret address first (as in the base attack),
            # then randomise the *page* bits of the converted pointer so
            # the dereference may translate.
            lo, hi = self._mapped_range
            guess_page = rng.randrange(lo >> 12, hi >> 12)
            tampered_pointer = (guess_page << 12) | (SECRET_ADDR & 0xFFF)
            flip_word(machine, 0x2020, 0, tampered_pointer)
            result = machine.run(2000)
            detected = detected or result.detected
            # Success when the walk dereferenced the guessed page (the
            # fetch of the fake node reached the bus without faulting).
            fake_line = (tampered_pointer // LINE_BYTES) * LINE_BYTES
            if any(e.kind == "data" and e.addr == fake_line
                   for e in result.bus_trace):
                return trial, trial, detected
        return None, max_trials, detected
