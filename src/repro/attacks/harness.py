"""Attack harness: run every exploit against every policy and score it.

``empirical_security_matrix`` reproduces the first column of the paper's
Table 2 *by experiment*: a policy "prevents active fetch address
side-channel disclosure" iff none of the fetch-channel exploits leaks
under it.  The remaining Table 2 columns are structural properties of the
policies (asserted directly from the policy objects and validated by the
functional machine's store/commit gating in tests).
"""

from dataclasses import dataclass, field

from repro.attacks.binary_search import BinarySearchAttack
from repro.attacks.disclosing_kernel import (
    DataSpaceKernelAttack,
    DisclosingKernelAttack,
    IoKernelAttack,
)
from repro.attacks.page_mask import PageMaskAttack
from repro.attacks.pointer_conversion import PointerConversionAttack
from repro.policies.registry import make_policy
from repro.secure.metadata import MetadataLayout
from repro.secure.remap import AddressObfuscator
from repro.util.rng import DeterministicRng


@dataclass
class AttackResult:
    """Outcome of one (attack, policy) run."""

    attack: str
    policy: str
    leaked: bool            # secret reached an adversary-visible channel
    detected: bool          # integrity exception was raised
    details: dict = field(default_factory=dict)


FETCH_CHANNEL_ATTACKS = (
    "pointer-conversion",
    "binary-search",
    "disclosing-kernel",
    "disclosing-kernel-data",
    "page-mask",
)

ALL_ATTACKS = FETCH_CHANNEL_ATTACKS + (
    "disclosing-kernel-io",
    "cbc-pointer-conversion",
    "control-flow",
)


def _make_obfuscator(machine_bytes=1 << 24):
    layout = MetadataLayout(protected_bytes=machine_bytes, line_bytes=32)
    rng = DeterministicRng(99).stream("attack-remap")
    return AddressObfuscator(layout, rng, chunk_bytes=4096)


def run_attack(attack_name, policy_name, **machine_kwargs):
    """Run one named attack against one named policy."""
    policy = make_policy(policy_name)
    if policy.obfuscation and "obfuscator" not in machine_kwargs:
        machine_kwargs["obfuscator"] = _make_obfuscator()

    if attack_name == "pointer-conversion":
        attack = PointerConversionAttack()
        machine, result = attack.run(policy, **machine_kwargs)
        leaked = attack.leaked_secret(machine, result)
    elif attack_name == "binary-search":
        attack = BinarySearchAttack(secret=0x5A5)
        recovered, trials, detected = attack.recover(
            policy, bits=12, **machine_kwargs)
        return AttackResult(
            attack_name, policy_name,
            leaked=recovered == attack.secret,
            detected=detected,
            details={"recovered": recovered, "trials": trials},
        )
    elif attack_name == "disclosing-kernel":
        attack = DisclosingKernelAttack()
        machine, result = attack.run(policy, **machine_kwargs)
        leaked = attack.leaked_secret(machine, result)
    elif attack_name == "disclosing-kernel-data":
        attack = DataSpaceKernelAttack()
        machine, result = attack.run(policy, **machine_kwargs)
        leaked = attack.leaked_secret(machine, result)
    elif attack_name == "disclosing-kernel-io":
        attack = IoKernelAttack()
        machine, result = attack.run(policy, **machine_kwargs)
        leaked = attack.leaked_secret(machine, result)
    elif attack_name == "page-mask":
        attack = PageMaskAttack()
        machine, result = attack.run(policy, **machine_kwargs)
        leaked = attack.leaked_secret(machine, result)
    elif attack_name == "cbc-pointer-conversion":
        from repro.attacks.cbc_malleability import \
            CbcPointerConversionAttack

        attack = CbcPointerConversionAttack()
        machine, result = attack.run(policy, **machine_kwargs)
        leaked = attack.leaked_secret(machine, result)
    elif attack_name == "control-flow":
        from repro.attacks.control_flow import ControlFlowAttack

        attack = ControlFlowAttack()
        machine, result = attack.run(policy, **machine_kwargs)
        leaked = attack.leaked_secret(machine, result)
    else:
        raise ValueError("unknown attack %r" % attack_name)
    return AttackResult(attack_name, policy_name, leaked=leaked,
                        detected=result.detected)


def empirical_security_matrix(policy_names, attacks=FETCH_CHANNEL_ATTACKS):
    """Return ``{policy: {attack: AttackResult}}``."""
    matrix = {}
    for policy_name in policy_names:
        matrix[policy_name] = {
            attack: run_attack(attack, policy_name) for attack in attacks
        }
    return matrix


def prevents_fetch_side_channel(policy_name,
                                attacks=FETCH_CHANNEL_ATTACKS):
    """Empirical Table 2, column 1: no fetch-channel exploit leaks."""
    return not any(
        run_attack(attack, policy_name).leaked for attack in attacks
    )
