"""Binary-search exploit (Section 3.2.2, Figure 2).

The victim compares a secret against a constant the adversary knows in
plaintext (here: zero, "frequently used for testing and comparison").
By re-running the program with the constant's ciphertext tampered to
successive power-of-two probes and watching which code path's instruction
fetches appear on the bus, the adversary recovers the secret in at most
32 trials.
"""

from repro.attacks.tamper import flip_word
from repro.func.loader import load_program
from repro.func.machine import LINE_BYTES, SecureMachine

CONST_ADDR = 0x2800
SECRET_ADDR = 0x2900
# Paths A and B are placed on distinct instruction lines so the control
# flow is visible in the ifetch trace.
PATH_A_PC = 0x100
PATH_B_PC = 0x140

VICTIM = """
    lui  r1, 0x0
    ori  r1, r1, 0x2900
    lw   r1, 0(r1)           ; r1 = secret
    lui  r2, 0x0
    ori  r2, r2, 0x2800
    lw   r2, 0(r2)           ; r2 = constant (plaintext known: 0)
    bge  r1, r2, 73          ; if secret >= K goto path B (word 80=0x140)
    jmp  64                  ; goto path A (word 64 = pc 0x100)
"""

PATH_A = """
    addi r3, r0, 1
    halt
"""

PATH_B = """
    addi r3, r0, 2
    halt
"""


class BinarySearchAttack:
    """Recover a 31-bit secret by probing the comparison constant."""

    name = "binary-search"

    def __init__(self, secret=0x2F5A9C1):
        if not 0 <= secret < (1 << 31):
            raise ValueError("secret must be a non-negative 31-bit value")
        self.secret = secret

    def build_victim(self, policy, constant_plain=0, **machine_kwargs):
        from repro.func.loader import load_words
        from repro.isa.assembler import assemble

        machine = SecureMachine(policy, **machine_kwargs)
        load_program(
            machine,
            VICTIM,
            data={CONST_ADDR: [constant_plain],
                  SECRET_ADDR: [self.secret]},
        )
        load_words(machine, PATH_A_PC, assemble(PATH_A, PATH_A_PC))
        load_words(machine, PATH_B_PC, assemble(PATH_B, PATH_B_PC))
        return machine

    def probe(self, policy, guess, **machine_kwargs):
        """One trial: set K = guess via bit flips; return (went_b, result)."""
        machine = self.build_victim(policy, **machine_kwargs)
        if guess:
            flip_word(machine, CONST_ADDR, 0, guess)
        result = machine.run(500)
        a_line = (PATH_A_PC // LINE_BYTES) * LINE_BYTES
        b_line = (PATH_B_PC // LINE_BYTES) * LINE_BYTES
        went_b = None
        for event in result.bus_trace:
            if event.kind != "ifetch":
                continue
            if event.addr == b_line:
                went_b = True
                break
            if event.addr == a_line:
                went_b = False
                break
        return went_b, result

    def recover(self, policy, bits=31, **machine_kwargs):
        """Full binary search; returns (recovered_or_None, trials, detected).

        ``recovered`` is None when the policy blocked the control-flow
        observation (no path fetch reached the bus before detection).
        """
        low, high = 0, (1 << bits) - 1
        trials = 0
        detected = False
        while low < high:
            mid = (low + high + 1) // 2
            went_b, result = self.probe(policy, mid, **machine_kwargs)
            trials += 1
            detected = detected or result.detected
            if went_b is None:
                return None, trials, detected
            if went_b:        # secret >= mid
                low = mid
            else:
                high = mid - 1
        return low, trials, detected
