"""Disclosing kernels (Section 3.2.3 and Figure 4).

A disclosing kernel is a short injected code sequence that loads
arbitrary data and uses it as a fetch address (or writes it to an I/O
port).  Embedding one requires only *known or guessed plaintext*:

    cipher' = cipher XOR known_plaintext XOR kernel

Three variants are implemented:

- :class:`DisclosingKernelAttack` -- code-space splice over an invariant
  function prologue, shift-window loop exactly like Figure 4;
- :class:`DataSpaceKernelAttack` -- kernel spliced into a zero-filled
  data region (frequent-value prediction), plus a one-word control-flow
  hijack of a known ``jmp``;
- :class:`IoKernelAttack` -- the kernel ``out``s the secret instead of
  fetching it, demonstrating that authen-then-commit *is* sufficient for
  the I/O channel while the fetch channel stays open.
"""

from repro.attacks.tamper import splice_assembly, splice_words
from repro.func.loader import load_program
from repro.func.machine import LINE_BYTES, SecureMachine
from repro.isa.assembler import assemble

SECRET_ADDR = 0x2C00
SECRET_VALUE = 0xDEADBEEF
DISCLOSE_BASE = 0x400000  # valid, attacker-chosen "window" page

# The victim: some computation with a predictable prologue (compilers
# emit invariant entry sequences -- here 12 known filler instructions,
# enough to hold the looped Figure 4 kernel).
_PROLOGUE = "\n".join("addi r%d, r0, 0" % r for r in range(1, 13))

VICTIM = _PROLOGUE + """
    addi r3, r1, 42          ; real work
    halt
"""


def _shift_window_kernel(out_instead=False):
    """The Figure 4 kernel: disclose a 32-bit secret 8 bits at a time,
    loop-structured exactly like the paper's listing."""
    lines = [
        "lui  r9, 0x0",
        "ori  r9, r9, 0x2c00",
        "lw   r9, 0(r9)",              # load secret into r9
    ]
    if out_instead:
        lines.append("out  r9")
    else:
        lines += [
            "loop:",
            "andi r10, r9, 0x00ff",    # low 8 bits
            "lui  r11, 0x40",          # r11 = valid window page base
            "or   r10, r10, r11",
            "lw   r12, 0(r10)",        # disclose 8 bits as an address
            "srli r9, r9, 8",          # shift the window
            "bne  r9, r0, loop",
        ]
    lines.append("halt")
    return "\n".join(lines)


def _known_prologue_words():
    return assemble(_PROLOGUE)


class DisclosingKernelAttack:
    """Code-space splice of the Figure 4 shift-window kernel."""

    name = "disclosing-kernel"
    out_instead = False

    def build_victim(self, policy, **machine_kwargs):
        machine = SecureMachine(policy, **machine_kwargs)
        load_program(machine, VICTIM,
                     data={SECRET_ADDR: [SECRET_VALUE]})
        if machine.use_vm:
            for vpage in range(DISCLOSE_BASE >> 12,
                               (DISCLOSE_BASE >> 12) + 1):
                machine.map_page(vpage)
        return machine

    def tamper(self, machine):
        kernel = _shift_window_kernel(self.out_instead)
        splice_assembly(machine, 0, _known_prologue_words(), kernel)

    def run(self, policy, max_steps=500, **machine_kwargs):
        machine = self.build_victim(policy, **machine_kwargs)
        self.tamper(machine)
        result = machine.run(max_steps)
        return machine, result

    def recovered_bytes(self, result):
        """Reassemble the secret from the window-page fetch offsets."""
        out = []
        for event in result.bus_trace:
            if event.kind != "data":
                continue
            if 0 <= event.addr - DISCLOSE_BASE < 0x1000:
                out.append(event.addr - DISCLOSE_BASE)
        return out

    def leaked_secret(self, machine, result):
        observed = self.recovered_bytes(result)
        expected_lines = [
            ((SECRET_VALUE >> shift) & 0xFF) // LINE_BYTES * LINE_BYTES
            for shift in (0, 8, 16, 24)
        ]
        # Fetches are line-granular: each observed offset pins a secret
        # byte to a 32-byte bucket.  A load near a line boundary adds a
        # straddle fetch, so check the expected buckets appear in order
        # as a subsequence of the observed ones.
        it = iter(observed)
        return all(any(o == want for o in it) for want in expected_lines)


class IoKernelAttack(DisclosingKernelAttack):
    """Kernel that writes the secret to the I/O port instead."""

    name = "disclosing-kernel-io"
    out_instead = True

    def leaked_secret(self, machine, result):
        return SECRET_VALUE in result.io_log


class DataSpaceKernelAttack(DisclosingKernelAttack):
    """Kernel spliced into zero-filled data, reached by a hijacked jmp."""

    name = "disclosing-kernel-data"
    KERNEL_ADDR = 0x3400

    VICTIM = """
        addi r1, r0, 1
        jmp  3                   ; known jump over a filler word
        .word 0
        addi r2, r0, 2
        halt
    """

    def build_victim(self, policy, **machine_kwargs):
        machine = SecureMachine(policy, **machine_kwargs)
        # 0x3400.. is a zero-initialised region ("a large percentage of
        # data values are zeros"): 32 zero words available for the splice.
        load_program(machine, self.VICTIM,
                     data={SECRET_ADDR: [SECRET_VALUE],
                           self.KERNEL_ADDR: [0] * 32})
        return machine

    def tamper(self, machine):
        kernel = _shift_window_kernel()
        words = assemble(kernel, base_address=self.KERNEL_ADDR)
        splice_words(machine, self.KERNEL_ADDR, [0] * len(words), words)
        # Hijack the known jmp: retarget it into the kernel.
        old_jmp = assemble("jmp 3")[0]
        new_jmp = assemble("jmp %d" % (self.KERNEL_ADDR // 4))[0]
        splice_words(machine, 4, [old_jmp], [new_jmp])
