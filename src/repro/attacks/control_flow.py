"""Passive control-flow reconstruction (the Section 3.1 threat model).

No tampering at all: the memory fetch trace of *natural execution*
already leaks program control flow, because instruction fetches walk the
(plaintext) address bus.  An adversary who knows the binary's layout can
read secret-dependent branch directions straight off the trace -- the
motivation for address obfuscation (Section 4.3).

The victim here branches on a secret bit per iteration; the adversary
reconstructs the whole secret by watching which per-iteration code path
is fetched.
"""

from repro.func.loader import load_program
from repro.func.machine import LINE_BYTES, SecureMachine

SECRET_ADDR = 0x2000

# Per-bit dispatcher: tests the secret's low bit, visits path A or path B
# (on different I-lines), shifts, repeats until the counter runs out.
VICTIM = """
    lui  r1, 0x0
    ori  r1, r1, 0x2000
    lw   r1, 0(r1)           ; r1 = secret
    addi r2, r0, 16          ; bits to process
loop:
    andi r3, r1, 0x0001
    bne  r3, r0, 42          ; bit set -> path B (word 48 = 0xC0)
    jmp  32                  ; bit clear -> path A (word 32 = 0x80)
"""

PATH_A = """
    addi r4, r4, 1           ; distinctive work on I-line 0x80
    jmp  64                  ; rejoin (word 64 = 0x100)
"""

PATH_B = """
    addi r4, r4, 2           ; distinctive work on I-line 0xC0
    jmp  64
"""

REJOIN = """
    srli r1, r1, 1
    addi r2, r2, -1
    bne  r2, r0, -63         ; back to loop (word 4)
    halt
"""

PATH_A_PC = 0x80
PATH_B_PC = 0xC0
REJOIN_PC = 0x100


class ControlFlowAttack:
    """Reconstruct a 16-bit secret from the ifetch trace alone."""

    name = "control-flow-reconstruction"

    def __init__(self, secret=0xB3C5):
        if not 0 <= secret < (1 << 16):
            raise ValueError("secret must be 16 bits")
        self.secret = secret

    def build_victim(self, policy, **machine_kwargs):
        from repro.func.loader import load_words
        from repro.isa.assembler import assemble

        machine = SecureMachine(policy, **machine_kwargs)
        load_program(machine, VICTIM, data={SECRET_ADDR: [self.secret]})
        load_words(machine, PATH_A_PC, assemble(PATH_A, PATH_A_PC))
        load_words(machine, PATH_B_PC, assemble(PATH_B, PATH_B_PC))
        load_words(machine, REJOIN_PC, assemble(REJOIN, REJOIN_PC))
        return machine

    def run(self, policy, **machine_kwargs):
        machine = self.build_victim(policy, **machine_kwargs)
        result = machine.run(2000)
        return machine, result

    def reconstruct(self, result):
        """Read the per-iteration path choice off the ifetch trace."""
        a_line = (PATH_A_PC // LINE_BYTES) * LINE_BYTES
        b_line = (PATH_B_PC // LINE_BYTES) * LINE_BYTES
        raw = []
        for event in result.bus_trace:
            if event.kind != "ifetch":
                continue
            if event.addr == a_line:
                raw.append(0)
            elif event.addr == b_line:
                raw.append(1)
        # Each path visit executes two instructions on its I-line, so the
        # trace shows each direction twice; collapse the pairs.
        bits = [raw[i] for i in range(0, len(raw), 2)]
        value = 0
        for index, bit in enumerate(bits[:16]):
            value |= bit << index
        return value, len(bits)

    def leaked_secret(self, machine, result):
        recovered, observed = self.reconstruct(result)
        return observed >= 16 and recovered == self.secret
