"""Pointer conversion: the linked-list attack (Section 3.2.1, Figure 1).

The victim walks an encrypted linked list (node = [next, value]).  The
adversary knows where the list terminates and flips the ciphertext of the
final NULL pointer so that it decrypts to the *secret's address*.  On the
next walk the program loads the secret as a node pointer and dereferences
it -- the secret value appears as a plaintext fetch address on the bus.
"""

from repro.attacks.tamper import flip_word
from repro.func.loader import load_program
from repro.func.machine import LINE_BYTES, SecureMachine

HEAD = 0x2000
SECRET_ADDR = 0x3000
# The secret doubles as a pointer once converted, so it must look like a
# valid address for the leak to be directly observable.
SECRET_VALUE = 0x00ABCD44

VICTIM = """
    lui  r1, 0x0
    ori  r1, r1, 0x2000      ; r1 = list head
walk:
    beq  r1, r0, done        ; NULL terminator?
    lw   r2, 4(r1)           ; node value
    lw   r1, 0(r1)           ; node->next
    jmp  walk
done:
    halt
"""


class PointerConversionAttack:
    """Convert the list's NULL terminator into a pointer at the secret."""

    name = "pointer-conversion"

    def build_victim(self, policy, **machine_kwargs):
        machine = SecureMachine(policy, **machine_kwargs)
        # Three nodes; the last one's next is NULL.
        nodes = {
            0x2000: [0x2010, 111],
            0x2010: [0x2020, 222],
            0x2020: [0x0000, 333],
        }
        data = {addr: words for addr, words in nodes.items()}
        # The secret lives elsewhere in protected memory.
        data[SECRET_ADDR] = [SECRET_VALUE]
        load_program(machine, VICTIM, data=data)
        return machine

    def tamper(self, machine):
        # NULL -> address whose node slot overlays the secret: with node
        # layout [next @0, value @4], pointing the fake node at the secret
        # makes the *next* field read the secret itself (l - 0 here).
        flip_word(machine, 0x2020, 0x0000, SECRET_ADDR)

    def run(self, policy, max_steps=2000, **machine_kwargs):
        machine = self.build_victim(policy, **machine_kwargs)
        self.tamper(machine)
        result = machine.run(max_steps)
        return machine, result

    def leaked_secret(self, machine, result):
        """Did the secret value appear as a fetch address on the bus?"""
        target_line = (SECRET_VALUE // LINE_BYTES) * LINE_BYTES
        for event in result.bus_trace:
            if event.kind == "data" and event.addr == target_line:
                return True
        return False
