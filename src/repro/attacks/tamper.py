"""Ciphertext-tampering primitives.

Counter-mode encryption is malleable: flipping ciphertext bit *k* flips
plaintext bit *k*.  Everything here operates on the machine's *external*
memory -- no keys involved, only the adversary's knowledge (or guess) of
plaintext values.
"""

from repro.isa.assembler import assemble
from repro.util.bitops import xor_bytes


def flip_word(machine, addr, old_plain, new_plain):
    """Turn the 32-bit plaintext ``old_plain`` at ``addr`` into
    ``new_plain`` by flipping ciphertext bits (one XOR, Section 3.2.1)."""
    mask = (old_plain ^ new_plain) & 0xFFFFFFFF
    machine.mem.flip_bits(addr, mask.to_bytes(4, "big"))


def splice_words(machine, addr, known_plain_words, new_words):
    """Replace a *known-plaintext* code/data sequence with ``new_words``.

    This is the disclosing-kernel embedding of Section 3.2.3:
    ``cipher' = cipher XOR known_plaintext XOR new_plaintext``.
    The sequences must have equal length.
    """
    if len(known_plain_words) != len(new_words):
        raise ValueError("splice length mismatch")
    old = b"".join((w & 0xFFFFFFFF).to_bytes(4, "big")
                   for w in known_plain_words)
    new = b"".join((w & 0xFFFFFFFF).to_bytes(4, "big") for w in new_words)
    machine.mem.flip_bits(addr, xor_bytes(old, new))


def splice_assembly(machine, addr, known_plain_words, source):
    """Splice assembled ``source`` over a known sequence at ``addr``."""
    new_words = assemble(source, base_address=addr)
    if len(new_words) > len(known_plain_words):
        raise ValueError(
            "kernel needs %d words but only %d are known"
            % (len(new_words), len(known_plain_words))
        )
    count = len(new_words)
    splice_words(machine, addr, known_plain_words[:count], new_words)
    return count
