"""Memory-fetch side-channel exploits (Section 3), end to end.

Every attack here runs a real victim program on the functional secure
machine, mutates real ciphertext in its external memory (bit flips and
XOR splices -- counter-mode malleability), and then inspects exactly what
a physical adversary sees: bus addresses, I/O output, fault logs.

The harness scores each (attack, policy) pair as *leaked* or *blocked*
and reproduces Table 2 empirically.
"""

from repro.attacks.binary_search import BinarySearchAttack
from repro.attacks.brute_force import BruteForcePageAttack
from repro.attacks.cbc_malleability import CbcPointerConversionAttack
from repro.attacks.control_flow import ControlFlowAttack
from repro.attacks.disclosing_kernel import (
    DataSpaceKernelAttack,
    DisclosingKernelAttack,
    IoKernelAttack,
)
from repro.attacks.harness import (
    AttackResult,
    empirical_security_matrix,
    run_attack,
)
from repro.attacks.page_mask import PageMaskAttack
from repro.attacks.pointer_conversion import PointerConversionAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.tamper import flip_word, splice_words

__all__ = [
    "flip_word",
    "splice_words",
    "CbcPointerConversionAttack",
    "ControlFlowAttack",
    "PointerConversionAttack",
    "BinarySearchAttack",
    "DisclosingKernelAttack",
    "DataSpaceKernelAttack",
    "IoKernelAttack",
    "PageMaskAttack",
    "BruteForcePageAttack",
    "ReplayAttack",
    "AttackResult",
    "run_attack",
    "empirical_security_matrix",
]
