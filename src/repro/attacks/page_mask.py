"""Shift-window / page-mask exploit under virtual memory (Section 3.3.1).

With address translation on, a raw secret used as a pointer usually
faults.  The Figure 4 kernel sidesteps translation entirely: it masks the
secret to its low bits and ORs in a *known-valid* page base, so every
disclosing fetch translates successfully.  This class runs the code-space
disclosing kernel on a machine with virtual memory enabled and only a
handful of mapped pages.
"""

from repro.attacks.disclosing_kernel import (
    DISCLOSE_BASE,
    DisclosingKernelAttack,
)


class PageMaskAttack(DisclosingKernelAttack):
    """Figure 4 on a VM-enabled machine: masking defeats translation."""

    name = "page-mask"

    def build_victim(self, policy, **machine_kwargs):
        machine_kwargs.setdefault("use_vm", True)
        machine = super().build_victim(policy, **machine_kwargs)
        # Only the window page is mapped beyond the program's own pages;
        # the raw secret (0xDEADBEEF) would fault, the masked one cannot.
        machine.map_page(DISCLOSE_BASE >> 12)
        return machine
