"""Perf-benchmark harness: measure replay throughput, verify parity.

Three entry points, all reachable through ``repro perf``:

- :func:`run_matrix` times the simulator over a pinned
  (benchmark x policy) matrix and reports instructions/sec and wall time
  per cell plus an aggregate.  The timed region is ``TimestampCore.run``
  only: trace generation and simulator construction happen outside the
  clock, so the number tracks the replay loop the optimisations target
  (and matches how :data:`repro.perf.golden.PRE_PR_BASELINE` was
  measured).
- :func:`run_group_matrix` times the decode-once multi-policy fan: for
  each benchmark, every registered policy is evaluated both the legacy
  way (one ``build_simulator`` + ``core.run`` per policy) and the
  shared-pass way (one structural prepass replayed per policy), and the
  end-to-end speedup is reported alongside a cycle-identity check.
- :func:`check_goldens` re-runs the golden matrix *through both paths*
  and compares cycle counts and full stats digests against the pinned
  values -- the bit-identical timing-neutrality contract every hot-path
  change must keep.

:func:`write_report` serialises a matrix run as ``BENCH_<stamp>.json``
(at the repository root by convention) with the pre-PR baseline and the
measured speedups alongside the raw cells.
"""

import json
import os
import time

from repro.config import SimConfig
from repro.cpu.prepass import (build_prepass, policy_supported,
                               prepass_supported)
from repro.cpu.shared_kernel import replay_policy
from repro.exec.cache import cached_trace
from repro.perf.golden import (
    GOLDEN_BENCHMARKS,
    GOLDEN_CYCLES,
    GOLDEN_DIGESTS,
    GOLDEN_INSTRUCTIONS,
    GOLDEN_POLICIES,
    GOLDEN_WARMUP,
    PRE_PR_BASELINE,
    stats_digest,
)
from repro.policies import available_policies, make_policy
from repro.sim.runner import build_simulator

#: Default measurement matrix (kept deliberately identical to the one
#: PRE_PR_BASELINE was measured over, so speedups are like-for-like).
BENCH_BENCHMARKS = GOLDEN_BENCHMARKS
BENCH_POLICIES = GOLDEN_POLICIES
BENCH_INSTRUCTIONS = 20_000
BENCH_WARMUP = 5_000


def time_cell(benchmark, policy, num_instructions=BENCH_INSTRUCTIONS,
              warmup=BENCH_WARMUP, config=None, repeats=1):
    """Time one (benchmark, policy) cell; returns a result dict.

    The trace is generated (and packed) before the clock starts; each
    repeat rebuilds a fresh simulator outside the timed region and times
    ``core.run`` alone.  The best (shortest) wall time of ``repeats``
    runs is reported, which is the standard defence against scheduler
    noise for sub-second regions.
    """
    config = config or SimConfig()
    total = num_instructions + warmup
    trace = cached_trace(benchmark, total, config.seed)
    trace.packed()
    best_wall = None
    result = None
    for _ in range(max(1, repeats)):
        core, _hier = build_simulator(config, policy)
        start = time.perf_counter()
        result = core.run(trace, warmup=warmup)
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "benchmark": benchmark,
        "policy": policy,
        "instructions_simulated": total,
        "instructions_measured": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "wall_seconds": best_wall,
        "instructions_per_second": total / best_wall if best_wall else 0.0,
    }


def run_matrix(benchmarks=BENCH_BENCHMARKS, policies=BENCH_POLICIES,
               num_instructions=BENCH_INSTRUCTIONS, warmup=BENCH_WARMUP,
               config=None, repeats=1):
    """Time the full matrix; returns ``{"cells": [...], "aggregate": {}}``.

    The aggregate instructions/sec is total simulated instructions over
    total (best-of-repeats) wall time -- slow, miss-heavy benchmarks
    weigh in proportionally rather than being averaged away.
    """
    cells = []
    for bench in benchmarks:
        for policy in policies:
            cells.append(time_cell(bench, policy, num_instructions,
                                   warmup, config=config, repeats=repeats))
    total_inst = sum(c["instructions_simulated"] for c in cells)
    total_wall = sum(c["wall_seconds"] for c in cells)
    aggregate = {
        "instructions": total_inst,
        "wall_seconds": total_wall,
        "instructions_per_second":
            total_inst / total_wall if total_wall else 0.0,
    }
    baseline = PRE_PR_BASELINE["instructions_per_second"]
    return {
        "matrix": {
            "benchmarks": list(benchmarks),
            "policies": list(policies),
            "num_instructions": num_instructions,
            "warmup": warmup,
            "repeats": repeats,
        },
        "cells": cells,
        "aggregate": aggregate,
        "baseline": dict(PRE_PR_BASELINE),
        "speedup_vs_baseline":
            aggregate["instructions_per_second"] / baseline,
    }


def time_group_cell(benchmark, policies, num_instructions=BENCH_INSTRUCTIONS,
                    warmup=BENCH_WARMUP, config=None, repeats=1):
    """Time one benchmark's full policy fan both ways; returns a dict.

    The legacy region is what a one-job-per-cell sweep pays per policy
    after the trace cache warms: simulator construction plus the full
    replay, once per policy.  The grouped region is what a
    :class:`~repro.exec.job.MultiPolicySimJob` pays: one structural
    prepass plus one shared-kernel replay per policy (policies the
    shared pass cannot express fall back to the legacy build inside the
    same region, exactly as ``iter_group_results`` does).  Trace
    generation and packing happen before either clock starts -- both
    paths share the cached trace, so it cancels out of the comparison.

    Both paths' cycle counts are cross-checked cell by cell; any
    disagreement is reported in ``cycle_mismatches`` (and would also
    fail ``repro perf --check``).
    """
    config = config or SimConfig()
    policies = tuple(policies)
    total = num_instructions + warmup
    trace = cached_trace(benchmark, total, config.seed)
    trace.packed()
    policy_objs = {name: make_policy(name) for name in policies}
    use_prepass = prepass_supported(config)

    legacy_cycles = {}
    best_legacy = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        for name in policies:
            core, _hier = build_simulator(config, name)
            legacy_cycles[name] = core.run(trace, warmup=warmup).cycles
        wall = time.perf_counter() - start
        if best_legacy is None or wall < best_legacy:
            best_legacy = wall

    grouped_cycles = {}
    best_grouped = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        prepass = (build_prepass(trace, config, warmup=warmup)
                   if use_prepass else None)
        for name in policies:
            policy = policy_objs[name]
            if prepass is not None and policy_supported(policy):
                result = replay_policy(prepass, policy, config)
            else:
                core, _hier = build_simulator(config, name)
                result = core.run(trace, warmup=warmup)
            grouped_cycles[name] = result.cycles
        wall = time.perf_counter() - start
        if best_grouped is None or wall < best_grouped:
            best_grouped = wall

    mismatches = sorted(name for name in policies
                        if legacy_cycles[name] != grouped_cycles[name])
    return {
        "benchmark": benchmark,
        "policies": list(policies),
        "instructions_simulated": total,
        "legacy_wall_seconds": best_legacy,
        "grouped_wall_seconds": best_grouped,
        "speedup": best_legacy / best_grouped if best_grouped else 0.0,
        "cycles": dict(sorted(grouped_cycles.items())),
        "cycle_mismatches": mismatches,
    }


def run_group_matrix(benchmarks=BENCH_BENCHMARKS, policies=None,
                     num_instructions=BENCH_INSTRUCTIONS,
                     warmup=BENCH_WARMUP, config=None, repeats=1):
    """Time the grouped multi-policy sweep over every registered policy.

    This is the end-to-end number the decode-once refactor is gated on:
    total legacy wall (one simulator per policy, the pre-group sweep
    path) over total grouped wall (one prepass fanned to every policy)
    across the pinned benchmarks.  ``policies`` defaults to the full
    registry.
    """
    policies = tuple(policies) if policies else available_policies()
    cells = [time_group_cell(bench, policies, num_instructions, warmup,
                             config=config, repeats=repeats)
             for bench in benchmarks]
    legacy_wall = sum(c["legacy_wall_seconds"] for c in cells)
    grouped_wall = sum(c["grouped_wall_seconds"] for c in cells)
    return {
        "matrix": {
            "benchmarks": list(benchmarks),
            "policies": list(policies),
            "num_instructions": num_instructions,
            "warmup": warmup,
            "repeats": repeats,
        },
        "cells": cells,
        "aggregate": {
            "evaluations": len(cells) * len(policies),
            "legacy_wall_seconds": legacy_wall,
            "grouped_wall_seconds": grouped_wall,
            "speedup":
                legacy_wall / grouped_wall if grouped_wall else 0.0,
        },
        "cycles_identical":
            not any(c["cycle_mismatches"] for c in cells),
    }


def render_group_table(report):
    """Human-readable table for one :func:`run_group_matrix` report."""
    lines = ["%-8s %9s %9s %8s  %s"
             % ("bench", "legacy(s)", "group(s)", "speedup", "cycles")]
    for cell in report["cells"]:
        parity = ("identical" if not cell["cycle_mismatches"] else
                  "MISMATCH: " + ", ".join(cell["cycle_mismatches"]))
        lines.append("%-8s %9.3f %9.3f %7.2fx  %s"
                     % (cell["benchmark"], cell["legacy_wall_seconds"],
                        cell["grouped_wall_seconds"], cell["speedup"],
                        parity))
    agg = report["aggregate"]
    lines.append("%-8s %9.3f %9.3f %7.2fx  (%d policy evaluations)"
                 % ("total", agg["legacy_wall_seconds"],
                    agg["grouped_wall_seconds"], agg["speedup"],
                    agg["evaluations"]))
    return "\n".join(lines)


def run_store_bench(benchmarks=BENCH_BENCHMARKS, policies=BENCH_POLICIES,
                    num_instructions=BENCH_INSTRUCTIONS,
                    warmup=BENCH_WARMUP, config=None, store_dir=None):
    """Benchmark the artifact store: no-store vs cold vs warm phases.

    Each phase runs the same pinned grouped sweep end to end (tracegen,
    prepass and simulation all inside the clock -- the store's value is
    precisely that it removes those from the warm path) with a fresh
    :class:`~repro.exec.TraceCache`, so in-memory reuse never masks
    store reuse:

    - *no-store*: the historical path, no store active (the reference
      both digests and timing are compared against);
    - *cold*: an empty store -- pays generation plus publication;
    - *warm*: the store the cold phase filled -- every job should
      short-circuit on a stored result.

    The gate is ``identical``: per-job result digests
    (:func:`~repro.exec.chaos.result_digest`) must be bit-identical
    across all three phases.  ``store_dir`` keeps the store somewhere
    inspectable; default is a temp dir deleted on return.
    """
    import shutil
    import tempfile

    from repro.exec import (SerialExecutor, TraceCache, build_job_groups,
                            set_active_store)
    from repro.exec.chaos import result_digest
    from repro.exec.store import ArtifactStore

    config = config or SimConfig()
    root = store_dir or tempfile.mkdtemp(prefix="repro-store-bench-")

    def run_phase(store):
        previous = set_active_store(store)
        try:
            executor = SerialExecutor(cache=TraceCache())
            start = time.perf_counter()
            results = executor.run(build_job_groups(
                list(benchmarks), list(policies), config=config,
                num_instructions=num_instructions, warmup=warmup))
            wall = time.perf_counter() - start
        finally:
            set_active_store(previous)
        digests = {job.job_id: result_digest(result)
                   for job, result in results.items()}
        hits = sum(1 for outcome in executor.last_outcomes.values()
                   if outcome.store_hit)
        return wall, digests, hits

    try:
        no_store_wall, reference, _ = run_phase(None)
        cold_wall, cold_digests, _ = run_phase(ArtifactStore(root))
        warm_wall, warm_digests, warm_hits = run_phase(ArtifactStore(root))
        stats = ArtifactStore(root).stats()
    finally:
        if store_dir is None:
            shutil.rmtree(root, ignore_errors=True)
    return {
        "matrix": {
            "benchmarks": list(benchmarks),
            "policies": list(policies),
            "num_instructions": num_instructions,
            "warmup": warmup,
        },
        "jobs": len(reference),
        "no_store_wall_seconds": no_store_wall,
        "cold_wall_seconds": cold_wall,
        "warm_wall_seconds": warm_wall,
        "warm_speedup_vs_cold":
            cold_wall / warm_wall if warm_wall else 0.0,
        "warm_store_hits": warm_hits,
        "store_bytes": stats["total_bytes"],
        "identical": reference == cold_digests == warm_digests,
    }


def render_store_table(report):
    """Human-readable table for one :func:`run_store_bench` report."""
    lines = ["%-10s %9s  %s" % ("phase", "wall(s)", "notes")]
    lines.append("%-10s %9.3f  reference (store off)"
                 % ("no-store", report["no_store_wall_seconds"]))
    lines.append("%-10s %9.3f  generates + publishes %d KB"
                 % ("cold", report["cold_wall_seconds"],
                    report["store_bytes"] // 1024))
    lines.append("%-10s %9.3f  %d/%d jobs served from the store"
                 % ("warm", report["warm_wall_seconds"],
                    report["warm_store_hits"], report["jobs"]))
    lines.append("warm speedup vs cold: %.2fx; results %s"
                 % (report["warm_speedup_vs_cold"],
                    "bit-identical across all three phases"
                    if report["identical"] else "DIVERGED"))
    return "\n".join(lines)


def render_table(report):
    """Human-readable table for one :func:`run_matrix` report."""
    lines = ["%-8s %-20s %10s %9s %8s"
             % ("bench", "policy", "inst/s", "wall(s)", "IPC")]
    for cell in report["cells"]:
        lines.append("%-8s %-20s %10.0f %9.3f %8.4f"
                     % (cell["benchmark"], cell["policy"],
                        cell["instructions_per_second"],
                        cell["wall_seconds"], cell["ipc"]))
    agg = report["aggregate"]
    lines.append("%-8s %-20s %10.0f %9.3f"
                 % ("total", "(aggregate)",
                    agg["instructions_per_second"], agg["wall_seconds"]))
    lines.append("baseline (pre-optimisation): %.0f inst/s -> "
                 "speedup %.2fx"
                 % (report["baseline"]["instructions_per_second"],
                    report["speedup_vs_baseline"]))
    return "\n".join(lines)


def write_report(report, path=None):
    """Write a matrix report as ``BENCH_<stamp>.json``; returns the path."""
    if path is None:
        stamp = time.strftime("%Y%m%d_%H%M%S")
        path = "BENCH_%s.json" % stamp
    payload = dict(report)
    payload["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    return os.path.abspath(path)


def _verify_cell(key, path, cycles, digest):
    """Compare one (cell, path) outcome against the pinned goldens."""
    if cycles != GOLDEN_CYCLES[key]:
        return ["%s [%s]: cycles %d != golden %d"
                % (key, path, cycles, GOLDEN_CYCLES[key])]
    if digest != GOLDEN_DIGESTS[key]:
        return ["%s [%s]: cycles match but stats digest drifted "
                "(%s != %s)"
                % (key, path, digest[:16], GOLDEN_DIGESTS[key][:16])]
    return []


def check_goldens(config=None):
    """Re-run the pinned golden matrix; returns a list of mismatches.

    Every cell is evaluated twice -- once through the legacy
    ``build_simulator`` + ``core.run`` path and once through the
    decode-once shared pass (:func:`~repro.cpu.prepass.build_prepass` +
    :func:`~repro.cpu.shared_kernel.replay_policy`, the path a
    :class:`~repro.exec.job.MultiPolicySimJob` takes) -- and both
    outcomes must reproduce the pinned cycle count *and* full stats
    digest bit-identically.  An empty list means clean; each mismatch
    is a human-readable string naming the cell, the path that drifted
    and what drifted.
    """
    config = config or SimConfig()
    mismatches = []
    total = GOLDEN_INSTRUCTIONS + GOLDEN_WARMUP
    use_prepass = prepass_supported(config)
    for bench in GOLDEN_BENCHMARKS:
        trace = cached_trace(bench, total, config.seed)
        prepass = (build_prepass(trace, config, warmup=GOLDEN_WARMUP)
                   if use_prepass else None)
        for policy in GOLDEN_POLICIES:
            key = "%s/%s" % (bench, policy)
            core, hier = build_simulator(config, policy)
            result = core.run(trace, warmup=GOLDEN_WARMUP)
            mismatches += _verify_cell(
                key, "legacy", result.cycles,
                stats_digest(result.stats.as_dict(),
                             hier.miss_summary()))
            policy_obj = make_policy(policy)
            if prepass is None or not policy_supported(policy_obj):
                continue
            shared = replay_policy(prepass, policy_obj, config,
                                   trace_name=getattr(trace, "name",
                                                      "trace"))
            mismatches += _verify_cell(
                key, "shared", shared.cycles,
                stats_digest(shared.stats.as_dict(),
                             shared.miss_summary))
    return mismatches
