"""Perf-benchmark harness: measure replay throughput, verify parity.

Two entry points, both reachable through ``repro perf``:

- :func:`run_matrix` times the simulator over a pinned
  (benchmark x policy) matrix and reports instructions/sec and wall time
  per cell plus an aggregate.  The timed region is ``TimestampCore.run``
  only: trace generation and simulator construction happen outside the
  clock, so the number tracks the replay loop the optimisations target
  (and matches how :data:`repro.perf.golden.PRE_PR_BASELINE` was
  measured).
- :func:`check_goldens` re-runs the golden matrix and compares cycle
  counts and full stats digests against the pinned values -- the
  bit-identical timing-neutrality contract every hot-path change must
  keep.

:func:`write_report` serialises a matrix run as ``BENCH_<stamp>.json``
(at the repository root by convention) with the pre-PR baseline and the
measured speedup alongside the raw cells.
"""

import json
import os
import time

from repro.config import SimConfig
from repro.exec.cache import cached_trace
from repro.perf.golden import (
    GOLDEN_BENCHMARKS,
    GOLDEN_CYCLES,
    GOLDEN_DIGESTS,
    GOLDEN_INSTRUCTIONS,
    GOLDEN_POLICIES,
    GOLDEN_WARMUP,
    PRE_PR_BASELINE,
    golden_cells,
    stats_digest,
)
from repro.sim.runner import build_simulator

#: Default measurement matrix (kept deliberately identical to the one
#: PRE_PR_BASELINE was measured over, so speedups are like-for-like).
BENCH_BENCHMARKS = GOLDEN_BENCHMARKS
BENCH_POLICIES = GOLDEN_POLICIES
BENCH_INSTRUCTIONS = 20_000
BENCH_WARMUP = 5_000


def time_cell(benchmark, policy, num_instructions=BENCH_INSTRUCTIONS,
              warmup=BENCH_WARMUP, config=None, repeats=1):
    """Time one (benchmark, policy) cell; returns a result dict.

    The trace is generated (and packed) before the clock starts; each
    repeat rebuilds a fresh simulator outside the timed region and times
    ``core.run`` alone.  The best (shortest) wall time of ``repeats``
    runs is reported, which is the standard defence against scheduler
    noise for sub-second regions.
    """
    config = config or SimConfig()
    total = num_instructions + warmup
    trace = cached_trace(benchmark, total, config.seed)
    trace.packed()
    best_wall = None
    result = None
    for _ in range(max(1, repeats)):
        core, _hier = build_simulator(config, policy)
        start = time.perf_counter()
        result = core.run(trace, warmup=warmup)
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "benchmark": benchmark,
        "policy": policy,
        "instructions_simulated": total,
        "instructions_measured": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "wall_seconds": best_wall,
        "instructions_per_second": total / best_wall if best_wall else 0.0,
    }


def run_matrix(benchmarks=BENCH_BENCHMARKS, policies=BENCH_POLICIES,
               num_instructions=BENCH_INSTRUCTIONS, warmup=BENCH_WARMUP,
               config=None, repeats=1):
    """Time the full matrix; returns ``{"cells": [...], "aggregate": {}}``.

    The aggregate instructions/sec is total simulated instructions over
    total (best-of-repeats) wall time -- slow, miss-heavy benchmarks
    weigh in proportionally rather than being averaged away.
    """
    cells = []
    for bench in benchmarks:
        for policy in policies:
            cells.append(time_cell(bench, policy, num_instructions,
                                   warmup, config=config, repeats=repeats))
    total_inst = sum(c["instructions_simulated"] for c in cells)
    total_wall = sum(c["wall_seconds"] for c in cells)
    aggregate = {
        "instructions": total_inst,
        "wall_seconds": total_wall,
        "instructions_per_second":
            total_inst / total_wall if total_wall else 0.0,
    }
    baseline = PRE_PR_BASELINE["instructions_per_second"]
    return {
        "matrix": {
            "benchmarks": list(benchmarks),
            "policies": list(policies),
            "num_instructions": num_instructions,
            "warmup": warmup,
            "repeats": repeats,
        },
        "cells": cells,
        "aggregate": aggregate,
        "baseline": dict(PRE_PR_BASELINE),
        "speedup_vs_baseline":
            aggregate["instructions_per_second"] / baseline,
    }


def render_table(report):
    """Human-readable table for one :func:`run_matrix` report."""
    lines = ["%-8s %-20s %10s %9s %8s"
             % ("bench", "policy", "inst/s", "wall(s)", "IPC")]
    for cell in report["cells"]:
        lines.append("%-8s %-20s %10.0f %9.3f %8.4f"
                     % (cell["benchmark"], cell["policy"],
                        cell["instructions_per_second"],
                        cell["wall_seconds"], cell["ipc"]))
    agg = report["aggregate"]
    lines.append("%-8s %-20s %10.0f %9.3f"
                 % ("total", "(aggregate)",
                    agg["instructions_per_second"], agg["wall_seconds"]))
    lines.append("baseline (pre-optimisation): %.0f inst/s -> "
                 "speedup %.2fx"
                 % (report["baseline"]["instructions_per_second"],
                    report["speedup_vs_baseline"]))
    return "\n".join(lines)


def write_report(report, path=None):
    """Write a matrix report as ``BENCH_<stamp>.json``; returns the path."""
    if path is None:
        stamp = time.strftime("%Y%m%d_%H%M%S")
        path = "BENCH_%s.json" % stamp
    payload = dict(report)
    payload["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    return os.path.abspath(path)


def check_goldens(config=None):
    """Re-run the pinned golden matrix; returns a list of mismatches.

    An empty list means every cell reproduced its pinned cycle count
    *and* full stats digest bit-identically.  Each mismatch is a
    human-readable string naming the cell and what drifted.
    """
    config = config or SimConfig()
    mismatches = []
    total = GOLDEN_INSTRUCTIONS + GOLDEN_WARMUP
    for bench, policy in golden_cells():
        key = "%s/%s" % (bench, policy)
        trace = cached_trace(bench, total, config.seed)
        core, hier = build_simulator(config, policy)
        result = core.run(trace, warmup=GOLDEN_WARMUP)
        if result.cycles != GOLDEN_CYCLES[key]:
            mismatches.append(
                "%s: cycles %d != golden %d"
                % (key, result.cycles, GOLDEN_CYCLES[key]))
            continue
        digest = stats_digest(result.stats.as_dict(), hier.miss_summary())
        if digest != GOLDEN_DIGESTS[key]:
            mismatches.append(
                "%s: cycles match but stats digest drifted (%s != %s)"
                % (key, digest[:16], GOLDEN_DIGESTS[key][:16]))
    return mismatches
