"""Pinned golden timing results for the perf-parity suite.

Every performance optimisation of the simulator's hot path must be
*timing-neutral*: cycle counts, IPC and every StatGroup counter must come
out bit-identical to the reference implementation.  This module pins the
reference outcome of a small (benchmark x policy) matrix:

- ``GOLDEN_CYCLES`` -- the exact measured-region cycle count per cell;
- ``GOLDEN_DIGESTS`` -- a SHA-256 digest over the cell's full stats
  snapshot plus per-level miss rates, so *any* counter drift is caught,
  not just end-to-end cycles.

The digests are computed over a JSON round-trip of the payload (bucket
keys normalised to strings, canonical key order), so they are stable
across the process boundary and the checkpoint journal.

``PRE_PR_BASELINE`` records the replay throughput of the simulator
*before* the packed-trace/O(1)-LRU/flattened-hierarchy optimisation
round, measured with the same methodology ``repro perf`` uses (see
:mod:`repro.perf.bench`): the timed region is ``TimestampCore.run`` only,
with trace generation and simulator construction excluded.
"""

import hashlib
import json

GOLDEN_BENCHMARKS = ("mcf", "swim", "twolf")
GOLDEN_POLICIES = ("decrypt-only", "authen-then-issue",
                   "authen-then-commit", "authen-then-write")
GOLDEN_INSTRUCTIONS = 3000
GOLDEN_WARMUP = 1000

GOLDEN_CYCLES = {
    "mcf/authen-then-commit": 101441,
    "mcf/authen-then-issue": 114927,
    "mcf/authen-then-write": 99663,
    "mcf/decrypt-only": 95395,
    "swim/authen-then-commit": 18696,
    "swim/authen-then-issue": 19613,
    "swim/authen-then-write": 18337,
    "swim/decrypt-only": 17153,
    "twolf/authen-then-commit": 73448,
    "twolf/authen-then-issue": 81601,
    "twolf/authen-then-write": 72711,
    "twolf/decrypt-only": 69251,
}

GOLDEN_DIGESTS = {
    "mcf/authen-then-commit":
        "bb0ffe233b5fef6f71dab9da02414e9770b61071934e5bc84aa21c4d9fe6ed37",
    "mcf/authen-then-issue":
        "00348b457504e3d1d9c2161c2308cbf99522e7a030d09b1c867cd682c5432345",
    "mcf/authen-then-write":
        "8bd9d8f43e0a533a41b837a287c6325877d45cc62ca67200115d8c9c7b71876b",
    "mcf/decrypt-only":
        "24227fd4df92f9813afda975dd087f554ddba0c8f4860bb7b70836d911fc322a",
    "swim/authen-then-commit":
        "e1fe07d5116f5b07fe588b68bc24a6be84052f82e2a088a21adba5d33edcfb6b",
    "swim/authen-then-issue":
        "643f0c20be43ff6a6e7e49231c89c133d76c92d2b43ad61709925db26042efbb",
    "swim/authen-then-write":
        "739894ce6fab071cf56cbd85e51d0a5878fdc53c2081900dcf8f9112e363ec53",
    "swim/decrypt-only":
        "94992655c19e24346c2529920dfc3d6d534a79b8ef9f4668282a0cb46f5e05aa",
    "twolf/authen-then-commit":
        "3b537115a6b6b9b463fee13d593222814903e61b6084164d56fcce880aade96e",
    "twolf/authen-then-issue":
        "1e2bb0890c7968cd525e7bfee04d09d6965282fc4bc391c54f728c64bbd5f24c",
    "twolf/authen-then-write":
        "6c0963a5bd628587f8dacebd33a0797e1997df18a4e917e0f582ae510b96174f",
    "twolf/decrypt-only":
        "fd2b8f407cf0cc327ce2cee6ad33730b4211cdb027f125dd07c6bb2f21d40c49",
}

#: Replay throughput before the optimisation round this suite guards
#: (object-per-instruction trace iteration, O(assoc) LRU scans, five-deep
#: per-access call chains).  Aggregate over the default ``repro perf``
#: matrix (3 benchmarks x 4 policies, 20000 instructions + 5000 warmup),
#: mean of interleaved pre/post runs on the reference container.
PRE_PR_BASELINE = {
    "instructions_per_second": 178171,
    "matrix": "3 benchmarks x 4 policies, n=20000 warmup=5000",
    "timed_region": "TimestampCore.run (trace generation and simulator "
                    "construction excluded)",
}


def golden_cells():
    """The pinned ``(benchmark, policy)`` matrix, in digest order."""
    for bench in GOLDEN_BENCHMARKS:
        for policy in GOLDEN_POLICIES:
            yield bench, policy


def stats_digest(stats_dict, miss_summary):
    """Canonical digest of one run's stats snapshot.

    JSON round-trips the payload first so histogram bucket keys (ints in
    a live StatGroup, strings after any JSON hop) always digest the same.
    """
    payload = json.loads(json.dumps(
        {"stats": stats_dict, "miss_summary": miss_summary}))
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
