"""Performance benchmarking and timing-parity verification.

``repro perf`` measures the simulator's replay throughput
(instructions/sec) over a pinned (benchmark x policy) matrix and writes a
``BENCH_<stamp>.json`` report; ``repro perf --check`` re-verifies that
the optimised hot path still reproduces the pinned golden cycle counts
and stats digests bit-identically.
"""

from repro.perf.bench import (
    BENCH_BENCHMARKS,
    BENCH_INSTRUCTIONS,
    BENCH_POLICIES,
    BENCH_WARMUP,
    check_goldens,
    render_table,
    run_matrix,
    time_cell,
    write_report,
)
from repro.perf.golden import (
    GOLDEN_BENCHMARKS,
    GOLDEN_CYCLES,
    GOLDEN_DIGESTS,
    GOLDEN_INSTRUCTIONS,
    GOLDEN_POLICIES,
    GOLDEN_WARMUP,
    PRE_PR_BASELINE,
    golden_cells,
    stats_digest,
)

__all__ = [
    "BENCH_BENCHMARKS",
    "BENCH_INSTRUCTIONS",
    "BENCH_POLICIES",
    "BENCH_WARMUP",
    "GOLDEN_BENCHMARKS",
    "GOLDEN_CYCLES",
    "GOLDEN_DIGESTS",
    "GOLDEN_INSTRUCTIONS",
    "GOLDEN_POLICIES",
    "GOLDEN_WARMUP",
    "PRE_PR_BASELINE",
    "check_goldens",
    "golden_cells",
    "render_table",
    "run_matrix",
    "stats_digest",
    "time_cell",
    "write_report",
]
