"""A shared bandwidth-limited bus.

Models the front-side / memory data bus: a single transfer owns the bus
for a number of cycles derived from its size and the bus width.  Requests
are serialised in arrival order; the class only tracks the next-free time,
which is sufficient for the timestamp-based simulator (requests are
presented in non-decreasing time order per producer).
"""

from repro.obs.events import BUS_GRANT, LANE_BUS
from repro.util.statistics import StatGroup


class BandwidthBus:
    """Serialises transfers on a bus of ``width_bytes`` per ``cycle_per_beat``."""

    def __init__(self, width_bytes=8, cycles_per_beat=5, name="membus",
                 stats=None, tracer=None):
        if width_bytes <= 0 or cycles_per_beat <= 0:
            raise ValueError("bus parameters must be positive")
        self.width_bytes = width_bytes
        self.cycles_per_beat = cycles_per_beat
        self.free_at = 0
        self.stats = stats if stats is not None else StatGroup(name)
        self.tracer = tracer
        self._busy = self.stats.counter("busy_cycles")
        self._transfers = self.stats.counter("transfers")
        self._wait = self.stats.counter("wait_cycles")

    def transfer_cycles(self, num_bytes):
        """Bus occupancy in cycles for a transfer of ``num_bytes``."""
        beats = -(-num_bytes // self.width_bytes)
        return beats * self.cycles_per_beat

    def reserve(self, earliest, num_bytes):
        """Reserve the bus for a transfer; returns (start, end) cycles.

        ``earliest`` is the first cycle the data could be on the bus.  The
        transfer starts at ``max(earliest, free_at)`` and holds the bus for
        ``transfer_cycles(num_bytes)``.
        """
        duration = -(-num_bytes // self.width_bytes) * self.cycles_per_beat
        free_at = self.free_at
        start = earliest if earliest > free_at else free_at
        end = start + duration
        self.free_at = end
        self._busy.value += duration
        self._transfers.value += 1
        self._wait.value += start - earliest
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(BUS_GRANT, LANE_BUS, start, dur=duration,
                        bytes=num_bytes, wait=start - earliest)
        return start, end

    def reset(self):
        self.free_at = 0
        self.stats.reset()
