"""Memory substrate: physical store, SDRAM timing, bus and controller.

The timing half (:mod:`repro.mem.dram`, :mod:`repro.mem.bus`,
:mod:`repro.mem.controller`) models the PC-SDRAM system of Table 3 --
banks, open rows, CAS/RCD/RP and a 200 MHz 8-byte data bus.  The
functional half (:mod:`repro.mem.physical`) is the byte-addressable
backing store that the functional secure machine (and the attacker)
actually reads and writes.
"""

from repro.mem.bus import BandwidthBus
from repro.mem.controller import MemAccess, MemoryController
from repro.mem.dram import DramModel, PageStatus
from repro.mem.physical import PhysicalMemory

__all__ = [
    "BandwidthBus",
    "DramModel",
    "PageStatus",
    "MemAccess",
    "MemoryController",
    "PhysicalMemory",
]
