"""Memory controller: the timing interface the cache hierarchy talks to.

The controller serialises line fetches and writebacks onto the SDRAM and
accounts for the secure-memory metadata traffic (MAC words fetched with
each protected line, counter fetches on counter-cache misses, re-map table
accesses for address obfuscation).  Metadata riders are modelled as extra
bus payload on the same access; separate metadata *lines* (counters,
re-map entries, tree nodes) are full accesses of their own.
"""

from repro.config import DramConfig
from repro.mem.dram import DramModel
from repro.util.statistics import StatGroup


class MemAccess:
    """Timing summary of one controller-level line access."""

    __slots__ = ("addr", "issue_cycle", "start_cycle", "critical_cycle",
                 "done_cycle", "kind")

    def __init__(self, addr, issue_cycle, start_cycle, critical_cycle,
                 done_cycle, kind):
        self.addr = addr
        self.issue_cycle = issue_cycle
        self.start_cycle = start_cycle
        self.critical_cycle = critical_cycle
        self.done_cycle = done_cycle
        self.kind = kind

    @property
    def latency(self):
        return self.done_cycle - self.issue_cycle


class MemoryController:
    """Timed front-end to the SDRAM."""

    def __init__(self, dram_config=None, line_bytes=64, mac_rider_bytes=0,
                 stats=None, tracer=None):
        self.stats = stats if stats is not None else StatGroup("memctl")
        self.tracer = tracer
        self.dram = DramModel(dram_config or DramConfig(), stats=self.stats,
                              tracer=tracer)
        self.line_bytes = line_bytes
        # MAC tags travel with the line they protect (Section 2: "MACs are
        # stored along with each data block"), widening every transfer.
        self.mac_rider_bytes = mac_rider_bytes
        self._reads = self.stats.counter("line_reads")
        self._writes = self.stats.counter("line_writes")
        self._meta = self.stats.counter("metadata_accesses")
        self._read_latency = self.stats.histogram("read_latency")

    def fetch_line(self, addr, cycle, kind="data"):
        """Fetch one protected line (plus its MAC rider)."""
        result = self.dram.access(
            addr, cycle, num_bytes=self.line_bytes + self.mac_rider_bytes
        )
        self._reads.value += 1
        done = result.done_cycle
        self._read_latency.add(done - cycle)
        return MemAccess(addr, cycle, result.start_cycle,
                         result.critical_cycle, done, kind)

    def write_line(self, addr, cycle, kind="writeback"):
        """Retire one line writeback (posted; caller rarely waits on it)."""
        result = self.dram.access(
            addr, cycle,
            num_bytes=self.line_bytes + self.mac_rider_bytes,
            is_write=True,
        )
        self._writes.value += 1
        return MemAccess(addr, cycle, result.start_cycle,
                         result.critical_cycle, result.done_cycle, kind)

    def post_write(self, addr, cycle):
        """:meth:`write_line` minus the result object, for callers that
        retire posted writebacks without waiting on them."""
        self.dram.access(
            addr, cycle,
            num_bytes=self.line_bytes + self.mac_rider_bytes,
            is_write=True,
        )
        self._writes.value += 1

    def fetch_metadata(self, addr, cycle, num_bytes, kind="metadata"):
        """Fetch secure-layer metadata (counter block, re-map entry, tree
        node) as a standalone access."""
        result = self.dram.access(addr, cycle, num_bytes=num_bytes)
        self._meta.value += 1
        return MemAccess(addr, cycle, result.start_cycle,
                         result.critical_cycle, result.done_cycle, kind)

    def reset(self):
        self.dram.reset()
        self.stats.reset()
