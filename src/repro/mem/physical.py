"""Byte-addressable physical memory (the functional backing store).

This is the untrusted external RAM of the secure computing model: the
secure-memory engine stores *ciphertext* and MACs here, and the attack
toolkit mutates it directly (an adversary with physical access).

Storage is sparse (per-page bytearrays) so a 4 GB address space costs
nothing until touched.
"""

from repro.errors import MemoryError_

_PAGE_BITS = 12
_PAGE_BYTES = 1 << _PAGE_BITS


class PhysicalMemory:
    """Sparse byte-addressable memory with bounds checking."""

    def __init__(self, size_bytes=1 << 32):
        if size_bytes <= 0:
            raise MemoryError_("memory size must be positive")
        self.size_bytes = size_bytes
        self._pages = {}

    def _page(self, addr):
        index = addr >> _PAGE_BITS
        page = self._pages.get(index)
        if page is None:
            page = bytearray(_PAGE_BYTES)
            self._pages[index] = page
        return page

    def _check(self, addr, length):
        if addr < 0 or length < 0 or addr + length > self.size_bytes:
            raise MemoryError_(
                "access [0x%x, +%d) outside memory of %d bytes"
                % (addr, length, self.size_bytes)
            )

    def read(self, addr, length):
        """Read ``length`` bytes at ``addr`` (crossing pages is fine)."""
        self._check(addr, length)
        out = bytearray()
        while length:
            offset = addr & (_PAGE_BYTES - 1)
            take = min(length, _PAGE_BYTES - offset)
            out += self._page(addr)[offset : offset + take]
            addr += take
            length -= take
        return bytes(out)

    def write(self, addr, data):
        """Write ``data`` at ``addr``."""
        self._check(addr, len(data))
        offset_in_data = 0
        length = len(data)
        while length:
            offset = addr & (_PAGE_BYTES - 1)
            take = min(length, _PAGE_BYTES - offset)
            self._page(addr)[offset : offset + take] = data[
                offset_in_data : offset_in_data + take
            ]
            addr += take
            offset_in_data += take
            length -= take

    def read_word(self, addr):
        """Read a big-endian 32-bit word (must be aligned)."""
        if addr % 4:
            raise MemoryError_("misaligned word read at 0x%x" % addr)
        return int.from_bytes(self.read(addr, 4), "big")

    def write_word(self, addr, value):
        """Write a big-endian 32-bit word (must be aligned)."""
        if addr % 4:
            raise MemoryError_("misaligned word write at 0x%x" % addr)
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "big"))

    def flip_bits(self, addr, bit_mask_bytes):
        """XOR the bytes at ``addr`` with ``bit_mask_bytes``.

        This is the adversary's primitive operation: bit-flipping
        ciphertext in the external RAM (Section 3.1).
        """
        current = self.read(addr, len(bit_mask_bytes))
        self.write(addr, bytes(c ^ m for c, m in zip(current, bit_mask_bytes)))

    def touched_pages(self):
        """Indices of pages that have been materialised (for tests)."""
        return sorted(self._pages)
