"""PC-SDRAM timing model (banks, open rows, CAS/RCD/RP).

Follows the structure of the Gries/Romer embedded-SDRAM model the paper
integrated into SimpleScalar: each access classifies against the target
bank's row-buffer state --

- **row hit**: the row is open, pay CAS only;
- **row empty**: bank is precharged/idle, pay RCD + CAS;
- **row conflict**: a different row is open, pay RP + RCD + CAS.

Data then streams over the shared data bus in 8-byte beats.  The returned
``critical_cycle`` is when the first beat (the critical word) is on the
bus, which the counter-mode decryption engine can consume immediately.
"""

import enum

from repro.config import DramConfig
from repro.mem.bus import BandwidthBus
from repro.obs.events import LANE_DRAM, ROW_CONFLICT
from repro.util.statistics import StatGroup


class PageStatus(enum.Enum):
    HIT = "hit"
    EMPTY = "empty"
    CONFLICT = "conflict"


class _Bank:
    __slots__ = ("open_row", "ready_at")

    def __init__(self):
        self.open_row = None
        self.ready_at = 0


class DramAccessResult:
    """Timing of one DRAM access."""

    __slots__ = ("start_cycle", "critical_cycle", "done_cycle", "status")

    def __init__(self, start_cycle, critical_cycle, done_cycle, status):
        self.start_cycle = start_cycle
        self.critical_cycle = critical_cycle
        self.done_cycle = done_cycle
        self.status = status

    @property
    def latency(self):
        return self.done_cycle - self.start_cycle


class DramModel:
    """Timing-only SDRAM with per-bank row-buffer state."""

    def __init__(self, config=None, stats=None, tracer=None):
        self.config = config or DramConfig()
        self.stats = stats if stats is not None else StatGroup("dram")
        self.tracer = tracer
        self.bus = BandwidthBus(
            width_bytes=self.config.bus_width_bytes,
            cycles_per_beat=self.config.bus_multiplier,
            stats=self.stats,
            tracer=tracer,
        )
        self._banks = [_Bank() for _ in range(self.config.num_banks)]
        self._hits = self.stats.counter("row_hits")
        self._empties = self.stats.counter("row_empty")
        self._conflicts = self.stats.counter("row_conflicts")
        self._accesses = self.stats.counter("accesses")

    def _locate(self, addr):
        # Fine-grained bank interleaving ([row | column-high | bank |
        # column-low]): sequential streams walk the banks round-robin and
        # keep every bank's row buffer open.
        cfg = self.config
        bank = (addr // cfg.interleave_bytes) % cfg.num_banks
        row = addr // (cfg.num_banks * cfg.row_bytes)
        return self._banks[bank], row

    def classify(self, addr):
        """Return the :class:`PageStatus` the next access to ``addr`` sees."""
        bank, row = self._locate(addr)
        if bank.open_row == row:
            return PageStatus.HIT
        if bank.open_row is None:
            return PageStatus.EMPTY
        return PageStatus.CONFLICT

    def access(self, addr, cycle, num_bytes=64, is_write=False):
        """Perform a timed access; returns a :class:`DramAccessResult`.

        Writes occupy the bank and the data bus identically to reads in
        this model; write latency is not on the load critical path because
        the controller retires writes from a posted queue.
        """
        cfg = self.config
        # Inline _locate/classify: one bank lookup instead of two, and no
        # intermediate enum dispatch on the row-hit fast path.
        bank = self._banks[(addr // cfg.interleave_bytes) % cfg.num_banks]
        row = addr // (cfg.num_banks * cfg.row_bytes)
        open_row = bank.open_row
        self._accesses.value += 1
        ready_at = bank.ready_at
        start = cycle if cycle > ready_at else ready_at
        if open_row == row:
            status = PageStatus.HIT
            self._hits.value += 1
            ras_to_data = cfg.cas_cycles
        elif open_row is None:
            status = PageStatus.EMPTY
            self._empties.value += 1
            ras_to_data = cfg.rcd_cycles + cfg.cas_cycles
        else:
            status = PageStatus.CONFLICT
            self._conflicts.value += 1
            ras_to_data = cfg.rp_cycles + cfg.rcd_cycles + cfg.cas_cycles
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.emit(ROW_CONFLICT, LANE_DRAM, start, addr=addr,
                            bank=(addr // cfg.interleave_bytes)
                            % cfg.num_banks)
        data_ready = start + ras_to_data
        critical, done = self.bus.reserve(data_ready, num_bytes)
        bank.open_row = row
        bank.ready_at = done
        return DramAccessResult(start, critical, done, status)

    def reset(self):
        for bank in self._banks:
            bank.open_row = None
            bank.ready_at = 0
        self.bus.free_at = 0
        self.stats.reset()
