"""Picklable simulation job specs.

A :class:`SimJob` names one point of the benchmark x policy x config
Cartesian product the paper's figures are built from: which trace to
generate, which policy to gate with, and at what scale.  Jobs are frozen
(hashable, picklable) so they can cross process boundaries and key
result dictionaries, and each job carries a stable content-derived
``job_id`` so checkpoints written by one process can be resumed by
another.
"""

import dataclasses
import hashlib
import json
from functools import cached_property

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.policies.registry import available_policies
from repro.workloads.spec import get_profile


def stable_hash(text):
    """A process-independent 63-bit integer hash of ``text``.

    ``hash()`` is salted per interpreter (PYTHONHASHSEED), so per-job
    seed derivation uses this instead -- the same job_id must map to
    the same derived seed in every worker and on every rerun.
    """
    digest = hashlib.sha256(str(text).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclasses.dataclass(frozen=True)
class SimJob:
    """One (benchmark, policy, config) simulation at a fixed scale.

    ``num_instructions`` counts *measured* instructions; the generated
    trace is ``num_instructions + warmup`` long and the first ``warmup``
    instructions warm caches without being reported (matching
    :meth:`~repro.cpu.core.TimestampCore.run`).  ``seed`` defaults to the
    config's seed.
    """

    benchmark: str
    policy: str
    config: SimConfig = dataclasses.field(default_factory=SimConfig)
    num_instructions: int = 20_000
    warmup: int = 0
    seed: int = None
    #: Opt-in per-job RNG stream: when True the trace is generated from
    #: ``seed + stable_hash(job_id)`` instead of ``seed``, so repeated
    #: specs that differ only in seed draw decorrelated streams.  Off by
    #: default so the shared trace-cache key (and every historical
    #: job_id) is untouched.
    decorrelate: bool = False

    def __post_init__(self):
        if self.seed is None:
            object.__setattr__(self, "seed", self.config.seed)
        if not isinstance(self.policy, str):
            raise ConfigError(
                "SimJob.policy must be a registry name (got %r); policy "
                "objects are per-run state and cannot cross processes"
                % (self.policy,))
        if self.policy not in available_policies():
            raise ConfigError("unknown policy %r" % self.policy)
        get_profile(self.benchmark)  # raises for unknown benchmarks
        if self.num_instructions < 0 or self.warmup < 0:
            raise ConfigError("instruction counts must be non-negative")

    @property
    def trace_length(self):
        return self.num_instructions + self.warmup

    @property
    def effective_seed(self):
        """The seed trace generation actually uses.

        Equal to ``seed`` unless ``decorrelate`` is set, in which case
        an independent stream is derived per job spec.  Because the
        derived seed feeds the trace-cache key, decorrelated jobs get
        their own cache entries without perturbing the shared ones.
        """
        if not self.decorrelate:
            return self.seed
        return self.seed + stable_hash(self.job_id)

    @property
    def trace_key(self):
        """The trace-cache key: everything trace generation depends on."""
        return (self.benchmark, self.trace_length, self.effective_seed)

    @cached_property
    def job_id(self):
        """Stable 16-hex-digit content hash of the full job spec.

        Derived from a canonical JSON encoding of every field (the config
        flattened to plain data), so the id survives pickling, process
        boundaries and interpreter restarts -- which is what lets a
        checkpoint journal from a killed sweep be trusted by the rerun.
        """
        payload = {
            "benchmark": self.benchmark,
            "policy": self.policy,
            "config": dataclasses.asdict(self.config),
            "num_instructions": self.num_instructions,
            "warmup": self.warmup,
            "seed": self.seed,
        }
        if self.decorrelate:
            # Only present when set, so every pre-existing job_id (and
            # therefore every journal written before the flag existed)
            # stays valid.
            payload["decorrelate"] = True
        canonical = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def __repr__(self):
        return "SimJob(%s/%s, n=%d+%d, seed=%s, id=%s)" % (
            self.benchmark, self.policy, self.num_instructions,
            self.warmup, self.seed, self.job_id)


@dataclasses.dataclass(frozen=True)
class MultiPolicySimJob:
    """One decoded trace fanned out to N policy evaluations.

    The grouped unit of work of the shared-pass pipeline: one benchmark
    trace at one config/scale, evaluated under every policy in
    ``policies`` inside a single worker.  The group itself is never
    journaled -- each member evaluation is recorded as the plain
    :class:`SimJob` it replaces, under the *identical* content-hash
    ``job_id``, so journals, resume, retry accounting and telemetry are
    oblivious to grouping.

    Decorrelated jobs cannot be grouped: ``decorrelate`` derives a
    distinct seed (hence a distinct trace) per (benchmark, policy) spec,
    which is precisely the sharing this job exists to exploit.  Build
    plain jobs for those.
    """

    benchmark: str
    policies: tuple
    config: SimConfig = dataclasses.field(default_factory=SimConfig)
    num_instructions: int = 20_000
    warmup: int = 0
    seed: int = None

    def __post_init__(self):
        if self.seed is None:
            object.__setattr__(self, "seed", self.config.seed)
        object.__setattr__(self, "policies", tuple(self.policies))
        if not self.policies:
            raise ConfigError("MultiPolicySimJob needs at least one policy")
        if len(set(self.policies)) != len(self.policies):
            raise ConfigError(
                "duplicate policies in group: %r" % (self.policies,))
        for policy in self.policies:
            if not isinstance(policy, str):
                raise ConfigError(
                    "MultiPolicySimJob.policies must be registry names "
                    "(got %r)" % (policy,))
            if policy not in available_policies():
                raise ConfigError("unknown policy %r" % policy)
        get_profile(self.benchmark)
        if self.num_instructions < 0 or self.warmup < 0:
            raise ConfigError("instruction counts must be non-negative")

    @property
    def policy(self):
        """Display/fault-key alias: the member policies, comma-joined."""
        return ",".join(self.policies)

    @property
    def trace_length(self):
        return self.num_instructions + self.warmup

    @property
    def effective_seed(self):
        return self.seed

    @property
    def trace_key(self):
        """Shared by every member: one cache entry serves the group."""
        return (self.benchmark, self.trace_length, self.effective_seed)

    @cached_property
    def member_jobs(self):
        """The plain per-policy :class:`SimJob` each member stands for.

        Members carry the exact ids a one-job-per-policy sweep would
        have produced -- the journal-compatibility contract.
        """
        return tuple(
            SimJob(benchmark=self.benchmark, policy=policy,
                   config=self.config,
                   num_instructions=self.num_instructions,
                   warmup=self.warmup, seed=self.seed)
            for policy in self.policies
        )

    @cached_property
    def job_id(self):
        """Content hash of the group spec (progress/retry bookkeeping).

        Never journaled -- only member ids reach the journal -- so the
        encoding is free to differ from :class:`SimJob`'s.
        """
        payload = {
            "group": True,
            "benchmark": self.benchmark,
            "policies": list(self.policies),
            "config": dataclasses.asdict(self.config),
            "num_instructions": self.num_instructions,
            "warmup": self.warmup,
            "seed": self.seed,
        }
        canonical = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def subset(self, policies):
        """The same group trimmed to ``policies`` (resume trimming)."""
        return MultiPolicySimJob(
            benchmark=self.benchmark, policies=tuple(policies),
            config=self.config, num_instructions=self.num_instructions,
            warmup=self.warmup, seed=self.seed)

    def __repr__(self):
        return "MultiPolicySimJob(%s x %d policies, n=%d+%d, id=%s)" % (
            self.benchmark, len(self.policies), self.num_instructions,
            self.warmup, self.job_id)


def build_jobs(benchmarks, policies, config=None, num_instructions=20_000,
               warmup=0, seed=None, decorrelate=False):
    """The benchmark-major job list for a sweep (deterministic order)."""
    config = config or SimConfig()
    return [
        SimJob(benchmark=benchmark, policy=policy, config=config,
               num_instructions=num_instructions, warmup=warmup, seed=seed,
               decorrelate=decorrelate)
        for benchmark in benchmarks
        for policy in policies
    ]


def build_job_groups(benchmarks, policies, config=None,
                     num_instructions=20_000, warmup=0, seed=None):
    """One :class:`MultiPolicySimJob` per benchmark (decode once, eval N).

    The grouped counterpart of :func:`build_jobs`: same benchmark-major
    order, same member job_ids, one decoded trace per group.
    """
    config = config or SimConfig()
    return [
        MultiPolicySimJob(benchmark=benchmark, policies=tuple(policies),
                          config=config, num_instructions=num_instructions,
                          warmup=warmup, seed=seed)
        for benchmark in benchmarks
    ]
