"""Failure policies for job execution: retries, backoff, timeouts.

A sweep is only as reliable as its flakiest job: one OOM-killed worker,
hung trace or transient exception used to abort a multi-hour grid.  A
:class:`FailurePolicy` tells the executors what to do instead:

- ``fail-fast`` (the default, and the pre-existing behaviour): the first
  terminal error propagates and aborts the run.
- ``skip-and-report``: the failing job is dropped from the result set
  and recorded as a failed :class:`JobResult`; the sweep continues.
- ``retry-then-skip``: the job is retried up to ``max_attempts`` times
  with exponential backoff plus *deterministic* jitter (derived from the
  job_id, so reruns sleep the same schedule), then skipped and reported.

Every job -- succeeded, resumed from a journal, or failed -- gets a
:class:`JobResult` recording its attempts, wall time and terminal error;
executors expose them as ``executor.last_outcomes`` and sweeps persist
the attempt counts into their manifests.
"""

import dataclasses
import hashlib
import signal
import threading
import time
from contextlib import contextmanager

from repro.errors import ConfigError, JobTimeoutError

# ---- policy modes -----------------------------------------------------

FAIL_FAST = "fail-fast"
SKIP_AND_REPORT = "skip-and-report"
RETRY_THEN_SKIP = "retry-then-skip"

MODES = (FAIL_FAST, SKIP_AND_REPORT, RETRY_THEN_SKIP)

# ---- job outcome statuses ---------------------------------------------

STATUS_OK = "ok"            # simulated in this run
STATUS_RESUMED = "resumed"  # rebuilt from the checkpoint journal
STATUS_FAILED = "failed"    # exhausted the failure policy


@dataclasses.dataclass(frozen=True)
class FailurePolicy:
    """What an executor does when a job attempt raises or hangs.

    ``timeout`` bounds one *attempt* in wall-clock seconds (None: no
    bound).  ``max_attempts`` only matters in ``retry-then-skip`` mode;
    the other modes always use a single attempt.  Backoff before retry
    ``k`` is ``backoff_base * backoff_factor**(k-1)`` capped at
    ``backoff_max``, plus up to ``jitter`` of itself derived from
    ``(jitter_seed, job_id, attempt)`` -- deterministic, so two runs of
    the same failing sweep sleep identically.
    """

    mode: str = FAIL_FAST
    max_attempts: int = 3
    timeout: float = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    jitter_seed: int = 0

    def __post_init__(self):
        if self.mode not in MODES:
            raise ConfigError("unknown failure mode %r (expected one of "
                              "%s)" % (self.mode, ", ".join(MODES)))
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("timeout must be positive or None")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")

    def should_retry(self, attempt):
        """True when attempt number ``attempt`` failing allows another."""
        return self.mode == RETRY_THEN_SKIP and attempt < self.max_attempts

    def backoff(self, job_id, attempt):
        """Deterministic delay (seconds) before retrying ``attempt``."""
        delay = min(self.backoff_max,
                    self.backoff_base * self.backoff_factor ** (attempt - 1))
        if self.jitter and delay:
            digest = hashlib.sha256(
                ("%d:%s:%d" % (self.jitter_seed, job_id, attempt)).encode()
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
            delay += delay * self.jitter * fraction
        return delay


@dataclasses.dataclass
class JobResult:
    """Per-job execution outcome (success, resume or terminal failure).

    ``attempts`` counts attempts actually started in this run (0 for a
    journal resume); ``wall_time`` spans first attempt to settlement,
    backoff sleeps included; ``error`` is the terminal error's repr
    (None unless ``status`` is failed).

    ``cache_hit``, ``store_hit`` and ``peak_rss_kb`` carry the per-job
    resource accounting measured inside ``execute_job`` (None when the
    job never produced a result, e.g. terminal failures or old journal
    records).  Like ``wall_time`` they are *volatile*: backend-,
    machine- and store-state-dependent, so manifest comparisons must
    strip them.
    """

    job_id: str
    status: str = STATUS_OK
    attempts: int = 1
    wall_time: float = 0.0
    error: str = None
    cache_hit: bool = None
    store_hit: bool = None
    peak_rss_kb: int = None

    #: as_dict keys that vary across backends/machines (stripped from
    #: byte-identical manifest comparisons).
    VOLATILE_FIELDS = ("wall_time", "cache_hit", "store_hit",
                       "peak_rss_kb")

    def as_dict(self):
        return dataclasses.asdict(self)


@contextmanager
def attempt_deadline(seconds):
    """Bound the block to ``seconds`` wall clock via ``SIGALRM``.

    Raises :class:`~repro.errors.JobTimeoutError` when the interval
    timer fires.  Only enforceable on POSIX main threads (the only
    place Python delivers signals); elsewhere -- and for ``seconds``
    None/0 -- the block runs unbounded.  The process-pool backend does
    not need this: it enforces deadlines from the parent by rebuilding
    the pool around a hung worker.

    Nestable: a pre-existing ``ITIMER_REAL`` timer (an outer deadline)
    is captured from ``setitimer``'s return value and re-armed on exit
    with whatever budget it has left, so an inner deadline never
    silently disarms an outer one.  An outer timer that would already
    have expired is re-armed with an epsilon delay and fires at the
    first opportunity.
    """
    if (not seconds or not hasattr(signal, "setitimer")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expired(signum, frame):
        raise JobTimeoutError(
            "job attempt exceeded %.3fs timeout" % seconds)

    previous = signal.signal(signal.SIGALRM, _expired)
    outer_delay, outer_interval = signal.setitimer(signal.ITIMER_REAL,
                                                   seconds)
    entered = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay:
            remaining = outer_delay - (time.monotonic() - entered)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6),
                             outer_interval)
