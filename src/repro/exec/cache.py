"""Per-process trace cache.

Trace generation is deterministic given ``(profile, length, seed)``, so a
sweep only ever needs to generate each benchmark's trace once -- but the
old per-caller loops regenerated it per config point (every MAC latency
in an ablation grid paid tracegen again).  This cache memoises traces by
their generation key.  It is *process-safe by construction*: each worker
process holds its own cache and regenerates independently, which is
cheaper and simpler than shipping multi-megabyte traces across pipes,
and bit-identical because generation is deterministic.
"""

import threading
import time
from collections import OrderedDict

from repro.workloads.spec import get_profile
from repro.workloads.tracegen import generate_trace


class TraceCache:
    """LRU memo of generated traces keyed by (benchmark, length, seed)."""

    def __init__(self, capacity=32):
        self.capacity = capacity
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.group_reuses = 0   # in-worker fan-out hits (grouped jobs)
        self.gen_seconds = 0.0  # wall time spent generating on misses

    def get(self, benchmark, num_instructions, seed, profiler=None):
        """The trace for ``benchmark``, generated at most once per key.

        ``profiler`` charges a ``tracegen`` phase only on a miss, so the
        phase table reports real generation time, not cache lookups; a
        hit still records the phase (at zero cost) so callers can rely
        on the key being present.
        """
        key = (benchmark, num_instructions, seed)
        with self._lock:
            trace = self._entries.get(key)
            if trace is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                if profiler is not None:
                    profiler.add("tracegen", 0.0)
                return trace
            self.misses += 1
        profile = get_profile(benchmark)
        started = time.perf_counter()
        if profiler is not None:
            with profiler.phase("tracegen"):
                trace = generate_trace(profile, num_instructions, seed=seed)
        else:
            trace = generate_trace(profile, num_instructions, seed=seed)
        elapsed = time.perf_counter() - started
        with self._lock:
            self.gen_seconds += elapsed
            self._entries[key] = trace
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return trace

    def count_group_reuse(self, reuses):
        """Charge ``reuses`` cache hits for a grouped multi-policy job.

        A :class:`~repro.exec.job.MultiPolicySimJob` calls ``get`` once
        and fans the trace out to N policy evaluations in-process; the
        N-1 reuses never go through ``get``, so without this the hit
        counters would under-report exactly the reuse the grouped
        pipeline exists to create (1 generation + N-1 hits per group).
        """
        if reuses <= 0:
            return
        with self._lock:
            self.hits += reuses
            self.group_reuses += reuses

    def stats(self):
        """Counter snapshot for telemetry (hits/misses/evictions/...)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "group_reuses": self.group_reuses,
                # Guarded: a fresh cache has zero lookups, and stats()
                # must never divide by zero.
                "hit_rate": (round(self.hits / lookups, 6)
                             if lookups else 0.0),
                "gen_seconds": round(self.gen_seconds, 6),
            }

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        return len(self._entries)


#: Shared per-process cache (workers each get their own copy after fork).
GLOBAL_CACHE = TraceCache()


def cached_trace(benchmark, num_instructions, seed, profiler=None,
                 cache=None):
    """The one tracegen-under-profiler helper every runner shares."""
    if cache is None:  # not `or`: an empty TraceCache is falsy via __len__
        cache = GLOBAL_CACHE
    return cache.get(benchmark, num_instructions, seed, profiler=profiler)
