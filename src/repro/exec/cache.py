"""Per-process trace cache, backed by the persistent artifact store.

Trace generation is deterministic given ``(profile, length, seed)``, so a
sweep only ever needs to generate each benchmark's trace once -- but the
old per-caller loops regenerated it per config point (every MAC latency
in an ablation grid paid tracegen again).  This cache memoises traces by
their generation key.  It is *process-safe by construction*: each worker
process holds its own in-memory cache, and cross-process sharing happens
through the content-addressed :mod:`~repro.exec.store` when one is
active -- a memory miss checks the store (an ``mmap`` of a page-cached
file all workers share) before generating, and a generation is published
back under a single-flight lock so N concurrent workers asking for the
same missing trace cost exactly one generation.  With no store active
(the default) behaviour is the historical one: generate per process,
bit-identical because generation is deterministic.
"""

import threading
import time
from collections import OrderedDict

from repro.workloads.spec import get_profile
from repro.workloads.tracegen import generate_trace


class TraceCache:
    """LRU memo of generated traces keyed by (benchmark, length, seed).

    ``store`` overrides the process-wide active store for this cache
    (useful for benchmarks and tests); None means "resolve
    :func:`~repro.exec.store.active_store` at lookup time", which is
    how pool workers pick up ``REPRO_STORE`` after fork.
    """

    def __init__(self, capacity=32, store=None):
        self.capacity = capacity
        self.store = store
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.group_reuses = 0   # in-worker fan-out hits (grouped jobs)
        self.store_hits = 0     # misses served by the artifact store
        self.gen_seconds = 0.0  # wall time spent generating on misses

    def _resolve_store(self):
        if self.store is not None:
            return self.store
        from repro.exec.store import active_store

        return active_store()

    def get(self, benchmark, num_instructions, seed, profiler=None):
        """The trace for ``benchmark``, generated at most once per key.

        ``profiler`` charges a ``tracegen`` phase only on a generating
        miss, so the phase table reports real generation time, not
        cache lookups; a hit (in-memory or store) still records the
        phase (at zero cost) so callers can rely on the key being
        present.  Store loads are charged to a ``store`` phase.
        """
        key = (benchmark, num_instructions, seed)
        with self._lock:
            trace = self._entries.get(key)
            if trace is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                if profiler is not None:
                    profiler.add("tracegen", 0.0)
                return trace
            self.misses += 1
        trace, elapsed = self._load_or_generate(benchmark, num_instructions,
                                                seed, profiler)
        with self._lock:
            self.gen_seconds += elapsed
            self._entries[key] = trace
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return trace

    def _load_or_generate(self, benchmark, num_instructions, seed,
                          profiler):
        """Store lookup -> single-flight generate; returns (trace, gen_s).

        ``gen_seconds`` only counts actual generation: a store hit is
        free by construction, which is what makes warm-store accounting
        report zero tracegen.
        """
        store = self._resolve_store()
        if store is None:
            return self._generate(benchmark, num_instructions, seed,
                                  profiler)
        trace = self._store_load(store, benchmark, num_instructions, seed,
                                 profiler)
        if trace is not None:
            return trace, 0.0
        # Single-flight: one process generates and publishes, the rest
        # re-check the store after the lock (or after a wait timeout --
        # the lock is advisory, correctness never depends on it).
        name = store.trace_name(benchmark, num_instructions, seed)
        with store.single_flight("traces", name):
            trace = self._store_load(store, benchmark, num_instructions,
                                     seed, profiler)
            if trace is not None:
                return trace, 0.0
            trace, elapsed = self._generate(benchmark, num_instructions,
                                            seed, profiler)
            store.save_trace(trace, benchmark, num_instructions, seed)
        return trace, elapsed

    def _store_load(self, store, benchmark, num_instructions, seed,
                    profiler):
        if profiler is not None:
            with profiler.phase("store"):
                trace = store.load_trace(benchmark, num_instructions, seed)
        else:
            trace = store.load_trace(benchmark, num_instructions, seed)
        if trace is None:
            return None
        with self._lock:
            self.store_hits += 1
        if profiler is not None:
            profiler.add("tracegen", 0.0)
        return trace

    def _generate(self, benchmark, num_instructions, seed, profiler):
        profile = get_profile(benchmark)
        started = time.perf_counter()
        if profiler is not None:
            with profiler.phase("tracegen"):
                trace = generate_trace(profile, num_instructions, seed=seed)
        else:
            trace = generate_trace(profile, num_instructions, seed=seed)
        return trace, time.perf_counter() - started

    def count_group_reuse(self, reuses):
        """Charge ``reuses`` cache hits for a grouped multi-policy job.

        A :class:`~repro.exec.job.MultiPolicySimJob` calls ``get`` once
        and fans the trace out to N policy evaluations in-process; the
        N-1 reuses never go through ``get``, so without this the hit
        counters would under-report exactly the reuse the grouped
        pipeline exists to create (1 generation + N-1 hits per group).
        """
        if reuses <= 0:
            return
        with self._lock:
            self.hits += reuses
            self.group_reuses += reuses

    def stats(self):
        """Counter snapshot for telemetry (hits/misses/evictions/...)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "group_reuses": self.group_reuses,
                "store_hits": self.store_hits,
                # Guarded: a fresh cache has zero lookups, and stats()
                # must never divide by zero.
                "hit_rate": (round(self.hits / lookups, 6)
                             if lookups else 0.0),
                "gen_seconds": round(self.gen_seconds, 6),
            }

    def _reset_counters_locked(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.group_reuses = 0
        self.store_hits = 0
        self.gen_seconds = 0.0

    def reset_stats(self):
        """Zero the counters without touching cached entries."""
        with self._lock:
            self._reset_counters_locked()

    def clear(self):
        """Drop every entry *and* the counters.

        A cleared cache must report a fresh slate: leaving the counters
        would make the next ``stats()`` claim phantom hit rates for
        entries that no longer exist.
        """
        with self._lock:
            self._entries.clear()
            self._reset_counters_locked()

    def __len__(self):
        return len(self._entries)


#: Shared per-process cache (workers each get their own copy after fork).
GLOBAL_CACHE = TraceCache()


def cached_trace(benchmark, num_instructions, seed, profiler=None,
                 cache=None):
    """The one tracegen-under-profiler helper every runner shares."""
    if cache is None:  # not `or`: an empty TraceCache is falsy via __len__
        cache = GLOBAL_CACHE
    return cache.get(benchmark, num_instructions, seed, profiler=profiler)
