"""Persistent content-addressed artifact store: traces, prepasses, results.

The decode-once pipeline left trace generation and the structural
prepass as the dominant cold-start cost -- and both were recomputed in
every worker process and on every ``repro`` invocation, because
:class:`~repro.exec.cache.TraceCache` is a per-process in-memory LRU.
This module persists the expensive intermediates (and finished results)
on disk, keyed by content hashes, so they are computed once per machine
instead of once per process:

- **Trace / prepass tier** (``<root>/traces``, ``<root>/prepass``):
  :class:`~repro.workloads.trace.PackedTrace` and
  :class:`~repro.cpu.prepass.TracePrepass` columns serialized as
  ``array('q')`` buffers behind a CRC32-sealed JSON header that carries
  the generation key and a code fingerprint.  Entries are loaded
  *zero-copy* via ``mmap``: the int64 columns are ``memoryview`` casts
  straight into the page cache, so N concurrent workers share one
  physical copy of each trace instead of regenerating N times.
- **Result tier** (``<root>/results``): completed run payloads keyed by
  ``(job_id, code_fingerprint)`` in the journal-v2 record shape
  (CRC-sealed canonical JSON), so a repeat sweep or figure run
  short-circuits simulation entirely and becomes I/O-bound.
- **Single-flight generation** (``<root>/locks``): ``O_CREAT|O_EXCL``
  lock files coalesce concurrent requests for the same missing entry,
  so K workers asking for one trace cost one generation.  Locks are
  advisory only -- a waiter that times out generates independently and
  both publish the same deterministic bytes via atomic rename.  Stale
  locks (dead owner pid, or older than ``stale_lock_seconds``) are
  broken, so a SIGKILLed worker cannot wedge the store.

Integrity follows the journal-v2 discipline: every entry is checksummed
end to end, a failed check moves the entry into ``<root>/quarantine``
(with the reason appended to ``quarantine.rej``) and reports a miss, and
the caller regenerates -- corruption costs one recomputation, never a
wrong number.  Because loads fall back to generation and saves swallow
``OSError``, a broken store degrades to exactly the no-store behaviour.

Bit-identity contract: a loaded trace/prepass exposes the same column
values (``memoryview('q')`` instead of tuples/lists -- same ints, same
order), and a loaded result rebuilds through the same
``StatGroup.from_dict`` path journal resume already trusts, so warm
results are byte-identical to cold ones.  ``repro perf`` measures and
``repro chaos --store`` gates exactly that.

The store is **off by default**: it activates only via the ``--store``
CLI flag or the ``REPRO_STORE`` environment variable (which forked pool
workers inherit, mirroring ``REPRO_JOBS``/``REPRO_NATIVE``).
"""

import dataclasses
import hashlib
import json
import mmap
import os
import socket
import struct
import time
import zlib
from array import array
from contextlib import contextmanager

from repro.sim.checkpoint import _record_crc, atomic_write_text, tmp_suffix

#: Environment variable naming the store root (inherited by workers).
STORE_ENV = "REPRO_STORE"

#: Binary entry format. Bump on incompatible layout changes; old
#: entries then fail validation and are regenerated, never misread.
FORMAT_VERSION = 1

#: Result-tier record shape version (journal-style JSON records).
RESULT_VERSION = 1

_MAGIC = b"RPAS"
#: magic, format version, header length, header CRC32, payload length,
#: payload CRC32 -- packed little-endian, zero-padded to 32 bytes so
#: the JSON header (and after it the payload) starts 8-byte aligned.
_PREAMBLE = struct.Struct("<4sIIIQI")
_PREAMBLE_LEN = 32

_TIERS = ("traces", "prepass", "results")


class CorruptEntryError(Exception):
    """A store entry failed structural or checksum validation."""


def _align8(n):
    return (n + 7) & ~7


def _canonical(payload):
    return json.dumps(payload, sort_keys=True, default=str)


def _key_hash(payload):
    """Content address of one generation key (hex, filesystem-safe)."""
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:32]


# ---------------------------------------------------------------------------
# Code fingerprints
# ---------------------------------------------------------------------------
# An artifact is only reusable while the code that generates it is
# unchanged.  Each tier hashes the source files its bytes depend on;
# the fingerprint is part of the entry's key, so editing tracegen (say)
# silently invalidates every trace without touching prepasses keyed to
# still-valid code.  The result tier is deliberately conservative: it
# covers every module that can influence simulated numbers.

_FINGERPRINT_FILES = {
    "trace": (
        "workloads/tracegen.py", "workloads/trace.py", "workloads/spec.py",
        "util/rng.py",
    ),
    "prepass": (
        "workloads/tracegen.py", "workloads/trace.py", "workloads/spec.py",
        "util/rng.py",
        "cpu/prepass.py", "secure/metadata.py", "config.py",
    ),
}
#: Result fingerprints hash whole packages: anything that can move a
#: cycle count invalidates stored results.
_FINGERPRINT_DIRS = {
    "result": ("cpu", "secure", "mem", "cache", "crypto", "policies",
               "workloads", "util"),
}
_FINGERPRINT_EXTRA = {
    "result": ("config.py", "errors.py", "sim/runner.py", "sim/metrics.py"),
}

_fingerprint_cache = {}


def code_fingerprint(kind):
    """Hash of the source files tier ``kind`` artifacts depend on."""
    cached = _fingerprint_cache.get(kind)
    if cached is not None:
        return cached
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    rels = list(_FINGERPRINT_FILES.get(kind, ()))
    for package in _FINGERPRINT_DIRS.get(kind, ()):
        package_dir = os.path.join(root, package)
        for entry in sorted(os.listdir(package_dir)):
            if entry.endswith(".py"):
                rels.append("%s/%s" % (package, entry))
    rels.extend(_FINGERPRINT_EXTRA.get(kind, ()))
    hasher = hashlib.sha256()
    for rel in sorted(set(rels)):
        path = os.path.join(root, rel)
        try:
            with open(path, "rb") as handle:
                body = handle.read()
        except OSError:
            continue
        hasher.update(rel.encode())
        hasher.update(b"\0")
        hasher.update(body)
        hasher.update(b"\0")
    fingerprint = hasher.hexdigest()[:16]
    _fingerprint_cache[kind] = fingerprint
    return fingerprint


# ---------------------------------------------------------------------------
# Binary columnar entries
# ---------------------------------------------------------------------------

def _write_entry(path, header, columns):
    """Serialize ``columns`` behind ``header``; publish atomically.

    ``columns`` is ``[(name, fmt, raw_bytes)]`` with ``fmt`` one of
    ``'q'`` (int64 little-endian) or ``'B'``.  Returns bytes written.
    """
    specs = []
    payload = bytearray()
    for name, fmt, data in columns:
        offset = len(payload)
        payload += data
        payload += b"\x00" * ((-len(payload)) % 8)
        specs.append({"name": name, "fmt": fmt, "offset": offset,
                      "bytes": len(data)})
    header = dict(header, format_version=FORMAT_VERSION, columns=specs)
    blob = json.dumps(header, sort_keys=True, default=str).encode()
    body = bytearray(_PREAMBLE.pack(
        _MAGIC, FORMAT_VERSION, len(blob), zlib.crc32(blob),
        len(payload), zlib.crc32(bytes(payload))))
    body += b"\x00" * (_PREAMBLE_LEN - len(body))
    body += blob
    body += b"\x00" * ((-len(body)) % 8)
    body += payload
    # Not pid-alone: two hosts sharing the store over a network
    # filesystem can hold equal pids, and one process can stage the
    # same entry twice -- the suffix folds in hostname + pid + counter.
    tmp = path + tmp_suffix()
    try:
        with open(tmp, "wb") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(body)


def _read_entry(path):
    """mmap one entry; validate preamble + both CRCs; return columns.

    Returns ``(header, {name: column})`` where int64 columns are
    zero-copy ``memoryview('q')`` casts into the mapping (byte columns
    stay plain byte views).  The views keep the ``mmap`` alive; nothing
    is copied out of the page cache.  Raises
    :class:`CorruptEntryError` on any validation failure.
    """
    with open(path, "rb") as handle:
        if os.fstat(handle.fileno()).st_size < _PREAMBLE_LEN:
            raise CorruptEntryError("truncated preamble")
        mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    magic, version, header_len, header_crc, payload_len, payload_crc = \
        _PREAMBLE.unpack_from(mm, 0)
    if magic != _MAGIC:
        raise CorruptEntryError("bad magic %r" % magic)
    if version != FORMAT_VERSION:
        raise CorruptEntryError("format_version %d (this build reads %d)"
                                % (version, FORMAT_VERSION))
    header_end = _PREAMBLE_LEN + header_len
    payload_off = _align8(header_end)
    if payload_off + payload_len > len(mm):
        raise CorruptEntryError("truncated payload")
    blob = mm[_PREAMBLE_LEN:header_end]
    if zlib.crc32(blob) != header_crc:
        raise CorruptEntryError("header crc32 mismatch")
    view = memoryview(mm)
    if zlib.crc32(view[payload_off:payload_off + payload_len]) \
            != payload_crc:
        raise CorruptEntryError("payload crc32 mismatch")
    try:
        header = json.loads(blob)
    except ValueError:
        raise CorruptEntryError("unparseable header") from None
    columns = {}
    for spec in header.get("columns", ()):
        start = payload_off + spec["offset"]
        raw = view[start:start + spec["bytes"]]
        columns[spec["name"]] = raw.cast("q") if spec["fmt"] == "q" else raw
    return header, columns


class _LazySrcs:
    """CSR-decoded source-register column (row ``i`` is a small slice).

    ``PackedTrace.srcss`` is a tuple of variable-length tuples, which
    has no flat int64 encoding -- so the file stores CSR offsets plus a
    flattened value column, and this wrapper hands consumers zero-copy
    per-row slices.  The replay loops only ever take ``len`` and
    iterate a row's sources, which memoryview slices support with the
    same values in the same order.
    """

    __slots__ = ("_offsets", "_values")

    def __init__(self, offsets, values):
        self._offsets = offsets
        self._values = values

    def __len__(self):
        return len(self._offsets) - 1

    def __getitem__(self, index):
        if index < 0:
            index += len(self)
        return tuple(self._values[self._offsets[index]:
                                  self._offsets[index + 1]])

    def __iter__(self):
        offsets = self._offsets
        values = self._values
        for index in range(len(offsets) - 1):
            yield values[offsets[index]:offsets[index + 1]]


class StoredTrace:
    """A trace rebuilt from a store entry (zero-copy columns).

    Duck-types the slice of :class:`~repro.workloads.trace.Trace` the
    execution paths touch: ``packed()``, ``name``, ``footprint_bytes``,
    ``suite`` and ``len``.  The per-instruction objects were never
    serialized, so iteration over individual ``TraceInst`` is not
    available -- replay reads columns only.
    """

    __slots__ = ("name", "footprint_bytes", "suite", "_packed")

    def __init__(self, name, footprint_bytes, suite, packed):
        self.name = name
        self.footprint_bytes = footprint_bytes
        self.suite = suite
        self._packed = packed

    def __len__(self):
        return len(self._packed)

    def packed(self):
        return self._packed


#: Prepass int64 columns, in file order (``if_flags`` is a byte column
#: and handled separately; scalars ride in the header).
_PREPASS_COLUMNS = ("a_pre", "a_lvl", "a_ref", "a_wb", "m_wb", "m_counter",
                    "d_bank", "d_cat")
_PREPASS_SCALARS = ("num_instructions", "warmup", "n_accesses", "n_misses",
                    "n_meta", "n_writes", "cc_hits", "cc_misses",
                    "cc_evictions", "cc_writebacks", "row_hits", "row_empty",
                    "row_conflicts", "page_reencryptions")


class ArtifactStore:
    """One store root: three content-addressed tiers plus locks.

    Thread/process-safe by construction: entries are immutable once
    published (atomic rename), readers validate checksums, and writers
    of the same key write identical bytes.  Every public method is
    total -- load failures return ``None`` (after quarantining corrupt
    entries) and save failures return ``False``; the caller's
    regeneration path is the error handler.
    """

    def __init__(self, root, metrics=None, lock_timeout=60.0,
                 stale_lock_seconds=300.0):
        self.root = os.path.abspath(os.path.expanduser(os.fspath(root)))
        for sub in _TIERS + ("locks", "quarantine"):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)
        self.lock_timeout = lock_timeout
        self.stale_lock_seconds = stale_lock_seconds
        self.counters = {
            "trace_hits": 0, "trace_misses": 0,
            "prepass_hits": 0, "prepass_misses": 0,
            "result_hits": 0, "result_misses": 0,
            "bytes_read": 0, "bytes_written": 0,
            "quarantined": 0, "write_errors": 0,
            "lock_waits": 0, "lock_breaks": 0,
        }
        self._bind_metrics(metrics)

    def _bind_metrics(self, registry):
        from repro.obs.metrics import NULL_REGISTRY

        registry = registry if registry is not None else NULL_REGISTRY
        self._m_hits = registry.counter(
            "repro_store_hits_total",
            "Artifact-store lookups served from disk, by tier", ("tier",))
        self._m_misses = registry.counter(
            "repro_store_misses_total",
            "Artifact-store lookups that fell through to generation, "
            "by tier", ("tier",))
        self._m_bytes_read = registry.counter(
            "repro_store_bytes_read_total",
            "Bytes mapped/read out of the artifact store")
        self._m_bytes_written = registry.counter(
            "repro_store_bytes_written_total",
            "Bytes published into the artifact store")
        self._m_quarantined = registry.counter(
            "repro_store_quarantined_total",
            "Store entries that failed validation and were quarantined")
        self._m_lock_waits = registry.counter(
            "repro_store_lock_waits_total",
            "Generations coalesced behind another process's lock")

    # -- bookkeeping ----------------------------------------------------

    def _hit(self, tier, nbytes):
        self.counters["%s_hits" % tier] += 1
        self.counters["bytes_read"] += nbytes
        self._m_hits.labels(tier).inc()
        self._m_bytes_read.inc(nbytes)

    def _miss(self, tier):
        self.counters["%s_misses" % tier] += 1
        self._m_misses.labels(tier).inc()

    def _wrote(self, nbytes):
        self.counters["bytes_written"] += nbytes
        self._m_bytes_written.inc(nbytes)

    def _quarantine(self, path, reason):
        """Move a failed entry aside; keep the evidence, report a miss."""
        name = os.path.basename(path)
        try:
            os.replace(path, os.path.join(self.root, "quarantine", name))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                return
        try:
            with open(os.path.join(self.root, "quarantine.rej"),
                      "a") as handle:
                handle.write(json.dumps({"entry": name,
                                         "reason": reason}) + "\n")
        except OSError:
            pass
        self.counters["quarantined"] += 1
        self._m_quarantined.inc()

    def _touch(self, path):
        """Refresh LRU recency on a hit (gc evicts oldest-mtime first)."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    # -- keys -----------------------------------------------------------

    def trace_name(self, benchmark, trace_length, seed):
        """Entry filename (= content address) for one trace key."""
        return _key_hash({"kind": "trace", "benchmark": benchmark,
                          "length": trace_length, "seed": seed,
                          "fingerprint": code_fingerprint("trace")})

    def prepass_name(self, benchmark, trace_length, seed, config, warmup):
        return _key_hash({"kind": "prepass", "benchmark": benchmark,
                          "length": trace_length, "seed": seed,
                          "warmup": warmup,
                          "config": dataclasses.asdict(config),
                          "fingerprint": code_fingerprint("prepass")})

    def result_name(self, job):
        return _key_hash({"kind": "result", "job_id": job.job_id,
                          "fingerprint": code_fingerprint("result")})

    def _path(self, tier, name):
        return os.path.join(self.root, tier, name)

    # -- trace tier -----------------------------------------------------

    def load_trace(self, benchmark, trace_length, seed):
        """The stored trace for this key, or None (miss or quarantined)."""
        path = self._path("traces", self.trace_name(benchmark, trace_length,
                                                    seed))
        try:
            header, cols = _read_entry(path)
        except FileNotFoundError:
            self._miss("trace")
            return None
        except (CorruptEntryError, OSError) as exc:
            self._quarantine(path, str(exc))
            self._miss("trace")
            return None
        meta = header.get("meta", {})
        if (header.get("kind") != "trace"
                or header.get("fingerprint") != code_fingerprint("trace")
                or len(cols.get("pcs", ())) != header.get("rows", -1)):
            self._quarantine(path, "key/fingerprint mismatch")
            self._miss("trace")
            return None
        from repro.workloads.trace import PackedTrace

        packed = PackedTrace(cols["pcs"], cols["ops"], cols["dests"],
                             _LazySrcs(cols["src_off"], cols["src_val"]),
                             cols["addrs"], cols["mispredicts"])
        self._hit("trace", os.path.getsize(path))
        self._touch(path)
        return StoredTrace(meta.get("name", benchmark),
                           meta.get("footprint_bytes", 0),
                           meta.get("suite", ""), packed)

    def save_trace(self, trace, benchmark, trace_length, seed):
        """Publish one generated trace; False if the write failed."""
        packed = trace.packed()
        src_off = array("q", [0])
        src_val = array("q")
        for srcs in packed.srcss:
            src_val.extend(srcs)
            src_off.append(len(src_val))
        columns = [
            ("pcs", "q", array("q", packed.pcs).tobytes()),
            ("ops", "q", array("q", packed.ops).tobytes()),
            ("dests", "q", array("q", packed.dests).tobytes()),
            ("addrs", "q", array("q", packed.addrs).tobytes()),
            ("mispredicts", "q",
             array("q", [1 if m else 0
                         for m in packed.mispredicts]).tobytes()),
            ("src_off", "q", src_off.tobytes()),
            ("src_val", "q", src_val.tobytes()),
        ]
        header = {
            "kind": "trace",
            "fingerprint": code_fingerprint("trace"),
            "key": {"benchmark": benchmark, "length": trace_length,
                    "seed": seed},
            "rows": len(packed),
            "meta": {"name": getattr(trace, "name", benchmark),
                     "footprint_bytes": getattr(trace, "footprint_bytes",
                                                0),
                     "suite": getattr(trace, "suite", "")},
        }
        path = self._path("traces", self.trace_name(benchmark, trace_length,
                                                    seed))
        try:
            self._wrote(_write_entry(path, header, columns))
        except OSError:
            self.counters["write_errors"] += 1
            return False
        return True

    # -- prepass tier ---------------------------------------------------

    def load_prepass(self, benchmark, trace_length, seed, config, warmup,
                     packed):
        """The stored prepass for this key, re-attached to ``packed``.

        ``packed`` is the (cached or store-loaded) trace's columns; the
        prepass file stores only the derived columns, since the trace
        is content-addressed separately and already in hand.
        """
        path = self._path("prepass", self.prepass_name(
            benchmark, trace_length, seed, config, warmup))
        try:
            header, cols = _read_entry(path)
        except FileNotFoundError:
            self._miss("prepass")
            return None
        except (CorruptEntryError, OSError) as exc:
            self._quarantine(path, str(exc))
            self._miss("prepass")
            return None
        scalars = header.get("scalars", {})
        if (header.get("kind") != "prepass"
                or header.get("fingerprint") != code_fingerprint("prepass")
                or scalars.get("num_instructions") != len(packed)):
            self._quarantine(path, "key/fingerprint mismatch")
            self._miss("prepass")
            return None
        from repro.cpu.prepass import TracePrepass

        pre = TracePrepass()
        pre.packed = packed
        for name in _PREPASS_SCALARS:
            setattr(pre, name, scalars[name])
        pre.miss_summary = header["miss_summary"]
        pre.if_flags = cols["if_flags"]
        for name in _PREPASS_COLUMNS:
            setattr(pre, name, cols[name])
        self._hit("prepass", os.path.getsize(path))
        self._touch(path)
        return pre

    def save_prepass(self, prepass, benchmark, trace_length, seed, config,
                     warmup):
        columns = [("if_flags", "B", bytes(prepass.if_flags))]
        for name in _PREPASS_COLUMNS:
            columns.append((name, "q",
                            array("q", getattr(prepass, name)).tobytes()))
        header = {
            "kind": "prepass",
            "fingerprint": code_fingerprint("prepass"),
            "key": {"benchmark": benchmark, "length": trace_length,
                    "seed": seed, "warmup": warmup},
            "scalars": {name: getattr(prepass, name)
                        for name in _PREPASS_SCALARS},
            # Float ratios survive the JSON header exactly: repr is the
            # shortest round-tripping form, so load == build bitwise.
            "miss_summary": prepass.miss_summary,
        }
        path = self._path("prepass", self.prepass_name(
            benchmark, trace_length, seed, config, warmup))
        try:
            self._wrote(_write_entry(path, header, columns))
        except OSError:
            self.counters["write_errors"] += 1
            return False
        return True

    # -- result tier ----------------------------------------------------

    def load_result(self, job):
        """Rebuild the completed run for ``job``, or None.

        The record shape and rebuild mirror
        :meth:`~repro.sim.checkpoint.JobJournal.result` -- the path
        journal resume already trusts for bit-identical reruns.
        Accounting is *not* restored: the caller attaches fresh
        accounting describing this (store-hit) execution.
        """
        path = self._path("results", self.result_name(job) + ".json")
        try:
            with open(path) as handle:
                text = handle.read()
        except FileNotFoundError:
            self._miss("result")
            return None
        except OSError as exc:
            self._quarantine(path, str(exc))
            self._miss("result")
            return None
        try:
            record = json.loads(text)
            if not isinstance(record, dict):
                raise ValueError("not a JSON object")
        except ValueError:
            self._quarantine(path, "unparseable JSON (torn write?)")
            self._miss("result")
            return None
        if (record.get("store_version") != RESULT_VERSION
                or record.get("job_id") != job.job_id
                or record.get("fingerprint") != code_fingerprint("result")
                or record.get("crc32") != _record_crc(record)):
            self._quarantine(path, "crc32/key mismatch")
            self._miss("result")
            return None
        from repro.cpu.core import RunResult
        from repro.util.statistics import StatGroup

        result = RunResult(
            record["name"],
            record["policy_name"],
            record["instructions"],
            record["cycles"],
            StatGroup.from_dict(record["stats"], name="sim"),
            dict(record["miss_rates"]),
        )
        if record.get("metrics") is not None:
            from repro.sim.metrics import RunMetrics

            result.metrics = RunMetrics(**record["metrics"])
        self._hit("result", len(text))
        self._touch(path)
        return result

    def save_result(self, job, result):
        record = {
            "store_version": RESULT_VERSION,
            "job_id": job.job_id,
            "fingerprint": code_fingerprint("result"),
            "benchmark": job.benchmark,
            "policy": job.policy,
            "seed": job.seed,
            "warmup": job.warmup,
            "name": result.name,
            "policy_name": result.policy_name,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "miss_rates": dict(result.miss_summary),
            "stats": result.stats.as_dict(),
            "metrics": (result.metrics.as_dict()
                        if getattr(result, "metrics", None) is not None
                        else None),
        }
        # Same canonicalisation as the journal: one JSON round trip so
        # the CRC covers exactly the text a reader re-canonicalises.
        record = json.loads(json.dumps(record))
        record["crc32"] = _record_crc(record)
        text = json.dumps(record, sort_keys=True)
        path = self._path("results", self.result_name(job) + ".json")
        try:
            atomic_write_text(path, text)
        except OSError:
            self.counters["write_errors"] += 1
            return False
        self._wrote(len(text))
        return True

    def iter_results(self, current_only=True):
        """Read-side listing of the result tier (for the serving layer).

        Yields one light dict per stored result -- the foreign keys a
        server needs to answer "which (benchmark, policy, scale) cells
        are warm?" without rebuilding RunResults: job_id, benchmark,
        policy, seed, warmup, instructions, cycles, ipc, plus
        ``current`` (does the record's code fingerprint match the
        running code -- stale records would miss on load) and the entry
        mtime.  Unreadable or unsealed records are skipped silently;
        :meth:`verify` is the loud path for those.
        """
        current = code_fingerprint("result")
        for path, st in list(self._entries("results")):
            try:
                with open(path) as handle:
                    record = json.load(handle)
            except (OSError, ValueError):
                continue
            if (not isinstance(record, dict)
                    or record.get("store_version") != RESULT_VERSION
                    or record.get("crc32") != _record_crc(record)):
                continue
            if current_only and record.get("fingerprint") != current:
                continue
            yield {
                "job_id": record.get("job_id"),
                "benchmark": record.get("benchmark"),
                "policy": record.get("policy"),
                "seed": record.get("seed"),
                "warmup": record.get("warmup"),
                "instructions": record.get("instructions"),
                "cycles": record.get("cycles"),
                "ipc": record.get("ipc"),
                "current": record.get("fingerprint") == current,
                "mtime": st.st_mtime,
            }

    # -- single-flight locks --------------------------------------------

    @contextmanager
    def single_flight(self, tier, name):
        """Coalesce generation of one missing entry across processes.

        Yields True when this process holds the lock (it should re-check
        the store, then generate and publish) and False when the wait
        timed out -- the caller then generates anyway, because locks are
        an optimisation, never a correctness dependency.  Callers must
        re-check the store either way: a waiter usually acquires the
        lock *after* the leader published.
        """
        lock_path = os.path.join(self.root, "locks",
                                 "%s-%s.lock" % (tier, name))
        acquired = self._acquire_lock(lock_path)
        try:
            yield acquired
        finally:
            if acquired:
                try:
                    os.unlink(lock_path)
                except OSError:
                    pass

    def _acquire_lock(self, lock_path):
        deadline = time.monotonic() + self.lock_timeout
        waited = False
        while True:
            try:
                fd = os.open(lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._break_stale_lock(lock_path):
                    continue
                if time.monotonic() >= deadline:
                    return False
                if not waited:
                    waited = True
                    self.counters["lock_waits"] += 1
                    self._m_lock_waits.inc()
                time.sleep(0.02)
                continue
            except OSError:
                return False  # unwritable locks dir: generate solo
            with os.fdopen(fd, "w") as handle:
                # "host" scopes the pid: a pid is only meaningful on
                # the host whose pid namespace issued it, and the store
                # may be shared across hosts over a network filesystem.
                json.dump({"pid": os.getpid(),
                           "host": socket.gethostname(),
                           "created": time.time()}, handle)
            return True

    def _break_stale_lock(self, lock_path):
        """Remove a lock whose owner is gone; True if the caller should
        immediately retry acquisition.

        A lock is stale when its recorded pid no longer exists (the
        chaos campaign's killed-worker case) or when it outlives
        ``stale_lock_seconds`` (hung owner; generation takes
        milliseconds to seconds, never minutes).  An unreadable lock --
        e.g. a partial write from a dying process -- gets a short grace
        period instead of the full timeout.

        PID liveness only proves anything inside the pid namespace that
        issued the pid: on a store shared across hosts, a *live* foreign
        pid can look dead locally (or a dead one alive), so the check
        applies only when the lock's recorded hostname matches ours.
        Foreign-host locks age out on the full timeout instead.  Locks
        without a host field predate the field and were always local.
        """
        pid = None
        host = None
        try:
            with open(lock_path) as handle:
                payload = json.load(handle)
            pid = int(payload.get("pid"))
            host = payload.get("host")
        except (OSError, ValueError, TypeError, AttributeError):
            pass
        local = host is None or host == socket.gethostname()
        stale = False
        if pid is not None and local:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                stale = True
            except OSError:
                pass
        if not stale:
            try:
                age = time.time() - os.path.getmtime(lock_path)
            except OSError:
                return True  # owner released it while we looked
            limit = self.stale_lock_seconds if pid is not None else 1.0
            if age < limit:
                return False
            stale = True
        try:
            os.unlink(lock_path)
        except OSError:
            pass
        self.counters["lock_breaks"] += 1
        return True

    # -- maintenance ----------------------------------------------------

    def _entries(self, tier):
        directory = os.path.join(self.root, tier)
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return
        for name in names:
            if ".tmp" in name:
                continue
            path = os.path.join(directory, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            yield path, st

    def stats(self):
        """Entry counts and byte totals per tier, plus live counters."""
        tiers = {}
        total_bytes = 0
        for tier in _TIERS:
            entries = 0
            nbytes = 0
            for _, st in self._entries(tier):
                entries += 1
                nbytes += st.st_size
            tiers[tier] = {"entries": entries, "bytes": nbytes}
            total_bytes += nbytes
        quarantined = sum(1 for _ in self._entries("quarantine"))
        return {
            "root": self.root,
            "tiers": tiers,
            "total_bytes": total_bytes,
            "quarantined_entries": quarantined,
            "counters": dict(self.counters),
        }

    def verify(self):
        """Re-validate every entry; quarantine corruption, count staleness.

        Stale entries (written by an older code fingerprint) are
        structurally sound but unreachable -- their key hash no longer
        matches any lookup -- so they are left for ``gc`` to age out.
        """
        report = {"checked": 0, "ok": 0, "corrupt": 0, "stale": 0}
        fingerprints = {"traces": code_fingerprint("trace"),
                        "prepass": code_fingerprint("prepass")}
        for tier in ("traces", "prepass"):
            for path, _ in list(self._entries(tier)):
                report["checked"] += 1
                try:
                    header, _ = _read_entry(path)
                except (CorruptEntryError, OSError) as exc:
                    self._quarantine(path, "verify: %s" % exc)
                    report["corrupt"] += 1
                    continue
                if header.get("fingerprint") != fingerprints[tier]:
                    report["stale"] += 1
                else:
                    report["ok"] += 1
        current = code_fingerprint("result")
        for path, _ in list(self._entries("results")):
            report["checked"] += 1
            try:
                with open(path) as handle:
                    record = json.load(handle)
                if not isinstance(record, dict):
                    raise ValueError("not a JSON object")
                if record.get("crc32") != _record_crc(record):
                    raise ValueError("crc32 mismatch")
            except (OSError, ValueError) as exc:
                self._quarantine(path, "verify: %s" % exc)
                report["corrupt"] += 1
                continue
            if record.get("fingerprint") != current:
                report["stale"] += 1
            else:
                report["ok"] += 1
        return report

    def gc(self, max_bytes):
        """Evict least-recently-used entries until the store fits.

        Recency is file mtime, refreshed on every load hit, so a
        size-capped store keeps what current sweeps actually touch.
        Entries touched within the last ``stale_lock_seconds`` are
        pinned outright: a fresh mtime means some process just loaded
        or published the entry, and a concurrent single-flight waiter
        that observed that hit may be about to ``open()`` the path --
        unlinking it here would turn its hit into a spurious
        regeneration.  The pin horizon matches the lock-staleness
        horizon because that is how long the protocol lets an observer
        act on what it saw.  Quarantined entries and locks never count
        against the cap and are not collected here.
        """
        now = time.time()
        entries = []
        pinned = 0
        total = 0
        for tier in _TIERS:
            for path, st in self._entries(tier):
                total += st.st_size
                if now - st.st_mtime < self.stale_lock_seconds:
                    pinned += 1
                    continue
                entries.append((st.st_mtime, path, st.st_size))
        entries.sort()
        evicted = 0
        freed = 0
        for _, path, size in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            freed += size
            evicted += 1
        return {"evicted": evicted, "freed_bytes": freed,
                "kept": pinned + len(entries) - evicted,
                "kept_bytes": total, "pinned": pinned}


# ---------------------------------------------------------------------------
# Process-wide store resolution
# ---------------------------------------------------------------------------
# Mirrors REPRO_JOBS/REPRO_NATIVE: the CLI exports REPRO_STORE before
# building a pool, so forked/spawned workers resolve the same root via
# the environment without any pickling of store state.

_active = None
_resolved = False


def default_store_path():
    """``REPRO_STORE`` when set, else ``~/.cache/repro/store``."""
    env = os.environ.get(STORE_ENV)
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "store")


def active_store():
    """The process-wide store, or None when storage is off.

    Resolved once: from an explicitly installed store
    (:func:`set_active_store`), else lazily from ``REPRO_STORE``.
    """
    global _active, _resolved
    if not _resolved:
        path = os.environ.get(STORE_ENV)
        _active = ArtifactStore(path) if path else None
        _resolved = True
    return _active


def set_active_store(store):
    """Install ``store`` process-wide (None disables); returns previous."""
    global _active, _resolved
    previous = _active if _resolved else None
    _active = store
    _resolved = True
    return previous
