"""Multi-host work-stealing execution over a shared spool directory.

The single-host backends stop at one machine's process pool; this
module scales the same job pipeline across hosts with nothing but a
shared filesystem (NFS, a bind mount, or plain ``/tmp`` for tests):

- The **driver** (:class:`DistExecutor`) serializes pending
  :class:`~repro.exec.job.SimJob` / ``MultiPolicySimJob`` units into
  ``<spool>/jobs/``, then polls the spool, merging results and
  declaring dead hosts.
- **Workers** (``repro worker --spool DIR --host-id NAME``, i.e.
  :func:`run_worker`) claim units with the store's single-flight
  ``O_CREAT|O_EXCL`` lease protocol, heartbeat the lease's mtime while
  executing, and append each member result to their *own* per-host
  CRC-sealed :class:`~repro.sim.checkpoint.JobJournal` v2 segment
  (``<spool>/journals/<host_id>.journal``).
- The driver tails every segment **read-only** (a live appender's file
  must never be rewritten under it, so ``JobJournal``'s quarantine
  pass is off-limits here -- see :class:`JournalTail`), rebuilds each
  record into a live ``RunResult``, and re-journals it into its own
  ``--checkpoint`` journal: the merge *is* the cross-host resume.

Host loss is a first-class fault, not a hang: a worker that stops
heartbeating past ``lease_timeout`` has its lease released back to the
spool (any healthy worker re-claims the unit and skips the members the
victim already journaled), the driver charges the unit one attempt
under its :class:`~repro.exec.retry.FailurePolicy` exactly like a
crashed pool worker, and emits a ``HOST_LOST`` event.  If every worker
vanishes, the driver degrades to in-process execution rather than wait
forever.  Because ``execute_job`` is a pure function of the job spec,
every one of those paths is bit-identical to ``SerialExecutor`` --
``repro chaos --dist`` gates exactly that.

Spool layout::

    <spool>/jobs/<unit_id>.job        pickled unit (atomic write)
    <spool>/leases/<unit_id>.lease    claim file; mtime = heartbeat
    <spool>/journals/<host>.journal   per-host JobJournal v2 segment
    <spool>/hosts/<host>.json         worker census; mtime = heartbeat
    <spool>/errors/<unit_id>.err      worker-reported attempt failures
    <spool>/skip/<unit_id>.skip       driver verdict: stop claiming
    <spool>/policy.json               driver's timeout for workers
    <spool>/stop                      sentinel: workers drain and exit
"""

import json
import os
import pickle
import socket
import threading
import time

from repro.errors import ReproError
from repro.exec.executor import Executor, execute_job, iter_group_results
from repro.exec.job import MultiPolicySimJob
from repro.exec.retry import attempt_deadline
from repro.sim.checkpoint import (
    JobJournal,
    atomic_write_text,
    parse_record,
    result_from_record,
    tmp_suffix,
)

HOSTNAME = socket.gethostname()

#: A lease whose mtime is older than this is a dead claim: the worker
#: heartbeats at a quarter of it, so expiry means several missed beats,
#: not one slow poll.  Driver and workers must agree on the value.
DEFAULT_LEASE_TIMEOUT = 5.0

_SUBDIRS = ("jobs", "leases", "journals", "hosts", "errors", "skip")


class HostLostError(ReproError):
    """A worker host stopped heartbeating while holding a job lease."""


class RemoteJobError(ReproError):
    """A worker reported that a job attempt failed on its host."""


# ---- spool layout -----------------------------------------------------


def ensure_spool(spool):
    """Create the spool directory tree (idempotent); returns the path."""
    spool = os.fspath(spool)
    for sub in _SUBDIRS:
        os.makedirs(os.path.join(spool, sub), exist_ok=True)
    return spool


def _job_path(spool, unit_id):
    return os.path.join(spool, "jobs", unit_id + ".job")


def _lease_path(spool, unit_id):
    return os.path.join(spool, "leases", unit_id + ".lease")


def _host_path(spool, host_id):
    return os.path.join(spool, "hosts", host_id + ".json")


def _error_path(spool, unit_id):
    return os.path.join(spool, "errors", unit_id + ".err")


def _skip_path(spool, unit_id):
    return os.path.join(spool, "skip", unit_id + ".skip")


def segment_path(spool, host_id):
    """The per-host journal segment ``host_id`` appends to."""
    return os.path.join(spool, "journals", host_id + ".journal")


def stop_requested(spool):
    return os.path.exists(os.path.join(spool, "stop"))


def request_stop(spool):
    """Write the stop sentinel: workers finish their unit and exit."""
    ensure_spool(spool)
    with open(os.path.join(spool, "stop"), "w"):
        pass


def clear_stop(spool):
    try:
        os.unlink(os.path.join(spool, "stop"))
    except OSError:
        pass


def spool_jobs(spool, units):
    """Serialize ``units`` into the spool (atomically, skip-existing).

    Returns the unit ids written.  Existing files are left alone so a
    resumed driver does not clobber a unit a worker may be reading.
    """
    written = []
    for unit in units:
        path = _job_path(spool, unit.job_id)
        if os.path.exists(path):
            continue
        tmp = path + tmp_suffix()
        try:
            with open(tmp, "wb") as handle:
                handle.write(pickle.dumps(unit,
                                          protocol=pickle.HIGHEST_PROTOCOL))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        written.append(unit.job_id)
    return written


# ---- leases -----------------------------------------------------------


def try_claim(spool, unit_id, host_id):
    """Claim ``unit_id`` via ``O_CREAT|O_EXCL``; lease path or None.

    The same single-flight idiom the artifact store uses: exactly one
    claimant wins the create, everyone else sees ``FileExistsError``.
    """
    path = _lease_path(spool, unit_id)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:
        return None
    with os.fdopen(fd, "w") as handle:
        json.dump({"host_id": host_id, "host": HOSTNAME,
                   "pid": os.getpid(), "acquired": time.time()}, handle)
    return path


def lease_age(path):
    """Seconds since the lease last heartbeat, or None if released."""
    try:
        return max(0.0, time.time() - os.path.getmtime(path))
    except OSError:
        return None


def read_lease(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def release_lease(path):
    try:
        os.unlink(path)
    except OSError:
        pass


class _Heartbeat(threading.Thread):
    """Refreshes a lease's mtime (and the host census) while a unit runs.

    When the driver declares this host dead it unlinks the lease; the
    next ``utime`` then fails ENOENT and ``lost`` flips -- the worker
    must stop publishing members of that unit, because somebody else
    now owns it.
    """

    def __init__(self, lease_path, interval, beat_host=None):
        super().__init__(daemon=True)
        self.lease_path = lease_path
        self.interval = interval
        self.beat_host = beat_host
        self.lost = False
        # Not "_stop": threading.Thread uses that name internally.
        self._halt = threading.Event()

    def run(self):
        while not self._halt.wait(self.interval):
            try:
                os.utime(self.lease_path)
            except OSError:
                self.lost = True
                return
            if self.beat_host is not None:
                self.beat_host()

    def stop(self):
        self._halt.set()


# ---- journal tailing --------------------------------------------------


class JournalTail:
    """Incremental read-only reader of one per-host journal segment.

    Workers own their segment files -- they append live and their
    ``JobJournal`` may rewrite on restart -- so the driver must never
    open one as a :class:`JobJournal` (its quarantine pass atomically
    rewrites the file, destroying a concurrent append).  This reader
    only consumes complete newline-terminated lines past its offset,
    validates each with the same CRC rules (:func:`parse_record`), and
    counts invalid ones in ``bad_lines``; an unterminated tail (a write
    in flight) is left for the next poll.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self.offset = 0
        self.bad_lines = 0

    def poll(self):
        """Validated records appended since the last poll."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size <= self.offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            chunk = handle.read(size - self.offset)
        end = chunk.rfind(b"\n")
        if end < 0:
            return []
        self.offset += end + 1
        records = []
        for raw_line in chunk[:end + 1].splitlines():
            raw = raw_line.decode(errors="replace").strip()
            if not raw:
                continue
            record, _reason = parse_record(raw)
            if record is None:
                self.bad_lines += 1
                continue
            records.append(record)
        return records


def completed_job_ids(spool):
    """Member job_ids journaled by *any* host (read-only segment scan).

    What a claiming worker uses as its skip set, so a re-claimed group
    only re-runs the members its previous owner never published.
    """
    done = set()
    journals = os.path.join(spool, "journals")
    try:
        names = os.listdir(journals)
    except OSError:
        return done
    for name in sorted(names):
        if not name.endswith(".journal"):
            continue
        for record in JournalTail(os.path.join(journals, name)).poll():
            done.add(record["job_id"])
    return done


# ---- worker side ------------------------------------------------------


def _beat_host(spool, host_id, jobs_done, started):
    """Rewrite this worker's census file; its mtime is the heartbeat."""
    try:
        atomic_write_text(_host_path(spool, host_id), json.dumps(
            {"host_id": host_id, "host": HOSTNAME, "pid": os.getpid(),
             "jobs_done": jobs_done, "started": started},
            sort_keys=True))
    except OSError:
        pass


def _report_error(spool, unit_id, host_id, exc):
    """Append one attempt-failure line the driver will charge."""
    line = json.dumps({"job_id": unit_id, "host_id": host_id,
                       "error": repr(exc), "time": time.time()},
                      sort_keys=True) + "\n"
    try:
        fd = os.open(_error_path(spool, unit_id),
                     os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
    except OSError:
        pass


def _read_spool_policy(spool):
    try:
        with open(os.path.join(spool, "policy.json")) as handle:
            payload = json.load(handle)
        return payload if isinstance(payload, dict) else {}
    except (OSError, ValueError):
        return {}


def _write_spool_policy(spool, policy):
    """Publish the driver's per-attempt timeout for workers to honour."""
    atomic_write_text(os.path.join(spool, "policy.json"), json.dumps(
        {"timeout": policy.timeout, "mode": policy.mode,
         "max_attempts": policy.max_attempts}, sort_keys=True))


def _execute_unit(unit, journal, done_ids, timeout=None, on_record=None,
                  heartbeat=None):
    """Run one claimed unit, journaling each member; returns #published.

    Members another host already journaled are skipped (the re-claimed
    half-finished group case).  ``on_record(member, result)`` fires
    after each append -- the chaos harness's die-mid-unit hook.  A
    heartbeat that reports ``lost`` aborts publication: the lease was
    broken, so the rest of the unit belongs to its next claimant.
    """
    count = 0

    def publish(member, result):
        nonlocal count
        journal.record(member, result)
        count += 1
        if on_record is not None:
            on_record(member, result)

    if isinstance(unit, MultiPolicySimJob):
        skip = done_ids & {m.job_id for m in unit.member_jobs}
        with attempt_deadline(timeout):
            for member, result in iter_group_results(unit, skip=skip):
                if heartbeat is not None and heartbeat.lost:
                    break
                publish(member, result)
    elif unit.job_id not in done_ids:
        with attempt_deadline(timeout):
            result = execute_job(unit)
        publish(unit, result)
    return count


def run_worker(spool, host_id=None, poll=0.25,
               lease_timeout=DEFAULT_LEASE_TIMEOUT, idle_exit=None,
               max_units=None, on_record=None, log=None):
    """One worker daemon: claim, execute, journal, repeat until stopped.

    Exits when the spool's stop sentinel appears and nothing is
    claimable (drain semantics), after ``idle_exit`` seconds with
    nothing claimable, or after ``max_units`` executed units.  Returns
    ``{"host_id", "units", "members", "errors"}``.

    ``host_id`` names this worker's journal segment; it defaults to
    ``<hostname>-<pid>``.  Two daemons *may* share a host_id -- the
    journal's single-write O_APPEND records interleave at line
    granularity -- but each then resumes the other's restarts, so
    distinct ids per daemon are the norm.
    """
    spool = ensure_spool(spool)
    host_id = host_id or "%s-%d" % (HOSTNAME, os.getpid())
    started = time.time()
    journal = JobJournal(segment_path(spool, host_id))
    units = members = errors = 0
    cooldown = {}   # unit_id -> monotonic time to leave it for others
    idle_since = time.monotonic()
    _beat_host(spool, host_id, units, started)
    if log is not None:
        log("worker %s: joined spool %s" % (host_id, spool))
    while True:
        if max_units is not None and units >= max_units:
            break
        claimed = False
        try:
            names = sorted(os.listdir(os.path.join(spool, "jobs")))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".job"):
                continue
            unit_id = name[:-len(".job")]
            if os.path.exists(_skip_path(spool, unit_id)):
                continue
            if cooldown.get(unit_id, 0.0) > time.monotonic():
                continue
            if lease_age(_lease_path(spool, unit_id)) is not None:
                # Leased (fresh or not): expiry is the *driver's* call,
                # because releasing a lease charges the unit a failed
                # attempt -- workers never break leases themselves.
                continue
            lease = try_claim(spool, unit_id, host_id)
            if lease is None:
                continue
            job_path = _job_path(spool, unit_id)
            if os.path.exists(_skip_path(spool, unit_id)) \
                    or not os.path.exists(job_path):
                release_lease(lease)
                continue
            claimed = True
            idle_since = time.monotonic()
            timeout = _read_spool_policy(spool).get("timeout")
            heartbeat = _Heartbeat(
                lease, max(lease_timeout / 4.0, 0.05),
                beat_host=lambda: _beat_host(spool, host_id, units,
                                             started))
            heartbeat.start()
            try:
                try:
                    with open(job_path, "rb") as handle:
                        unit = pickle.load(handle)
                except Exception as exc:
                    _report_error(spool, unit_id, host_id, exc)
                    errors += 1
                    cooldown[unit_id] = time.monotonic() + 2 * lease_timeout
                    continue
                try:
                    members += _execute_unit(
                        unit, journal, completed_job_ids(spool),
                        timeout=timeout, on_record=on_record,
                        heartbeat=heartbeat)
                except Exception as exc:
                    _report_error(spool, unit_id, host_id, exc)
                    errors += 1
                    if log is not None:
                        log("worker %s: %s failed: %r"
                            % (host_id, unit_id, exc))
                    # Cool down locally so this worker does not hot-loop
                    # on a unit that keeps failing *here*; other hosts
                    # may re-claim it immediately.
                    cooldown[unit_id] = time.monotonic() + 2 * lease_timeout
                else:
                    units += 1
                    if log is not None:
                        log("worker %s: finished %s" % (host_id, unit_id))
                    if not heartbeat.lost:
                        # Unlink the job *before* the lease: the gap
                        # where neither exists is safe (nothing left to
                        # claim), whereas the reverse order would leave
                        # a claimable job we already published.
                        try:
                            os.unlink(job_path)
                        except OSError:
                            pass
            finally:
                heartbeat.stop()
                heartbeat.join(timeout=2.0)
                if not heartbeat.lost:
                    release_lease(lease)
            _beat_host(spool, host_id, units, started)
            break   # rescan from the top: fresh skip set and stop check
        if not claimed:
            if stop_requested(spool):
                break
            if idle_exit is not None \
                    and time.monotonic() - idle_since >= idle_exit:
                break
            _beat_host(spool, host_id, units, started)
            time.sleep(poll)
    _beat_host(spool, host_id, units, started)
    return {"host_id": host_id, "units": units, "members": members,
            "errors": errors}


# ---- driver side ------------------------------------------------------


class DistExecutor(Executor):
    """Shared-spool work-stealing driver (see the module docstring).

    Subclasses :class:`Executor`, so journal resume, failure policies,
    metrics, progress and outcome accounting all behave exactly as the
    single-host backends -- only ``_execute`` differs: instead of
    running jobs it spools them, merges per-host journal segments, and
    adjudicates host death.

    ``lease_timeout`` declares a host dead (must match the workers');
    ``host_timeout`` bounds census freshness; after ``degrade_after``
    seconds with zero live workers the driver finishes the remainder
    in-process (``local_fallback=False`` disables that and waits
    forever -- only sensible when workers are guaranteed to arrive).
    """

    backend = "dist"
    jobs = 1

    def __init__(self, spool, host_id=None, poll=0.2,
                 lease_timeout=DEFAULT_LEASE_TIMEOUT, host_timeout=None,
                 degrade_after=None, local_fallback=True):
        super().__init__()
        self.spool = ensure_spool(spool)
        self.host_id = host_id or "driver-%s-%d" % (HOSTNAME, os.getpid())
        self.poll = poll
        self.lease_timeout = lease_timeout
        self.host_timeout = (host_timeout if host_timeout is not None
                             else max(2.0 * lease_timeout, 2.0))
        self.degrade_after = (degrade_after if degrade_after is not None
                              else max(4.0 * lease_timeout, 10.0))
        self.local_fallback = local_fallback
        self.host_losses = 0
        self.lease_breaks = 0
        self.degraded = False
        self.hosts_seen = set()

    def describe(self):
        info = {"backend": self.backend, "jobs": self.jobs,
                "spool": self.spool}
        if self.host_losses:
            info["host_losses"] = self.host_losses
        if self.degraded:
            info["degraded"] = True
        return info

    # -- the merge loop -------------------------------------------------

    def _execute(self, pending, results, state):
        clear_stop(self.spool)
        _write_spool_policy(self.spool, state.policy)
        units = {}        # unit_id -> unit
        members = {}      # member job_id -> (unit_id, member SimJob)
        outstanding = {}  # unit_id -> set of unsettled member job_ids
        for unit in pending:
            units[unit.job_id] = unit
            member_jobs = (unit.member_jobs
                           if isinstance(unit, MultiPolicySimJob)
                           else (unit,))
            ids = set()
            for member in member_jobs:
                members[member.job_id] = (unit.job_id, member)
                ids.add(member.job_id)
            outstanding[unit.job_id] = ids
        for unit_id in units:
            # A previous run's verdicts and error logs must not leak
            # into this one's attempt accounting.
            for path in (_skip_path(self.spool, unit_id),
                         _error_path(self.spool, unit_id)):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        spool_jobs(self.spool, pending)
        state.jm.spooled.set(len(outstanding))
        attempts = {}       # unit_id -> failed attempts charged so far
        error_lines = {}    # unit_id -> error-file lines consumed
        tails = {}          # segment path -> JournalTail
        spooled_at = {unit_id: time.perf_counter() for unit_id in units}
        last_alive = time.monotonic()
        while outstanding:
            progressed = self._merge_segments(tails, members, outstanding,
                                              results, state, attempts,
                                              spooled_at)
            if self._consume_errors(error_lines, units, members,
                                    outstanding, state, attempts,
                                    spooled_at):
                progressed = True
            if self._reap_leases(units, members, outstanding, state,
                                 attempts, spooled_at):
                progressed = True
            live = self._census(state)
            state.jm.spooled.set(len(outstanding))
            if not outstanding:
                break
            now = time.monotonic()
            if live:
                last_alive = now
            elif (self.local_fallback
                    and now - last_alive >= self.degrade_after):
                self._run_local(units, members, outstanding, results,
                                state, attempts, spooled_at)
                last_alive = time.monotonic()
                continue
            if not progressed:
                time.sleep(self.poll)
        state.jm.spooled.set(0)

    def _settle(self, outstanding, unit_id, member_id):
        ids = outstanding.get(unit_id)
        if ids is None:
            return
        ids.discard(member_id)
        if not ids:
            del outstanding[unit_id]

    def _merge_segments(self, tails, members, outstanding, results,
                        state, attempts, spooled_at):
        """Pull fresh records from every per-host segment into results."""
        journals = os.path.join(self.spool, "journals")
        try:
            names = sorted(os.listdir(journals))
        except OSError:
            names = []
        progressed = False
        for name in names:
            if not name.endswith(".journal"):
                continue
            path = os.path.join(journals, name)
            if path not in tails:
                tails[path] = JournalTail(path)
            host_id = name[:-len(".journal")]
            for record in tails[path].poll():
                entry = members.get(record["job_id"])
                if entry is None:
                    continue  # another run's record sharing the spool
                unit_id, member = entry
                if record["job_id"] not in outstanding.get(unit_id, ()):
                    continue  # settled already (duplicates are benign:
                              # re-runs are bit-identical by construction)
                result = result_from_record(record)
                results[member] = result
                self._settle(outstanding, unit_id, member.job_id)
                self.hosts_seen.add(host_id)
                state.jm.dist_jobs.labels(host_id).inc()
                state.complete(
                    member, result,
                    attempts=attempts.get(unit_id, 0) + 1,
                    wall=time.perf_counter() - spooled_at[unit_id])
                progressed = True
        return progressed

    def _consume_errors(self, error_lines, units, members, outstanding,
                        state, attempts, spooled_at):
        """Charge worker-reported attempt failures to the policy."""
        progressed = False
        for unit_id in list(outstanding):
            path = _error_path(self.spool, unit_id)
            try:
                with open(path) as handle:
                    lines = [line for line in handle.read().splitlines()
                             if line.strip()]
            except OSError:
                continue
            seen = error_lines.get(unit_id, 0)
            error_lines[unit_id] = len(lines)
            for raw in lines[seen:]:
                try:
                    info = json.loads(raw)
                except ValueError:
                    info = {"error": raw}
                progressed = True
                self._charge_attempt(
                    unit_id, units, members, outstanding, state,
                    attempts, spooled_at,
                    RemoteJobError("%s (on host %s)"
                                   % (info.get("error", "worker error"),
                                      info.get("host_id", "?"))))
                if unit_id not in outstanding:
                    break
        return progressed

    def _reap_leases(self, units, members, outstanding, state, attempts,
                     spooled_at):
        """Break expired leases: host loss becomes a charged attempt."""
        leases = os.path.join(self.spool, "leases")
        try:
            names = sorted(os.listdir(leases))
        except OSError:
            names = []
        progressed = False
        for name in names:
            if not name.endswith(".lease"):
                continue
            unit_id = name[:-len(".lease")]
            path = os.path.join(leases, name)
            age = lease_age(path)
            if age is None or age <= self.lease_timeout:
                continue
            info = read_lease(path) or {}
            host = info.get("host_id", "unknown")
            release_lease(path)
            if unit_id not in outstanding:
                continue   # housekeeping only: the unit is settled
            progressed = True
            self.lease_breaks += 1
            self.host_losses += 1
            state.jm.lease_breaks.inc()
            state.host_lost(host, unit_id, age)
            self._charge_attempt(
                unit_id, units, members, outstanding, state, attempts,
                spooled_at,
                HostLostError("host %s stopped heartbeating (lease age "
                              "%.2fs > %.2fs)"
                              % (host, age, self.lease_timeout)))
        return progressed

    def _charge_attempt(self, unit_id, units, members, outstanding,
                        state, attempts, spooled_at, exc):
        """One failed attempt for ``unit_id``: retry or settle failed."""
        attempts[unit_id] = attempts.get(unit_id, 0) + 1
        count = attempts[unit_id]
        remaining = sorted(outstanding.get(unit_id, ()))
        victim = (members[remaining[0]][1] if remaining
                  else units[unit_id])
        if state.policy.should_retry(count):
            # No backoff sleep here: re-claim is paced by the workers'
            # own poll loops, and sleeping would stall the merge of
            # every *other* host's results.
            state.retry(victim, count,
                        exc, state.policy.backoff(victim.job_id, count))
            return
        # Terminal: tell the fleet to stop claiming it, then record the
        # failure for every member still unsettled.  (Under fail-fast
        # state.fail re-raises, aborting the run -- mark first.)
        with open(_skip_path(self.spool, unit_id), "w"):
            pass
        wall = time.perf_counter() - spooled_at[unit_id]
        for member_id in remaining:
            state.fail(members[member_id][1], count, wall, exc)
        outstanding.pop(unit_id, None)

    def _census(self, state):
        """Hosts with a fresh census heartbeat; updates the gauge."""
        hosts = os.path.join(self.spool, "hosts")
        try:
            names = os.listdir(hosts)
        except OSError:
            names = []
        live = []
        now = time.time()
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            host_id = name[:-len(".json")]
            self.hosts_seen.add(host_id)
            try:
                mtime = os.path.getmtime(os.path.join(hosts, name))
            except OSError:
                continue
            if now - mtime <= self.host_timeout:
                live.append(host_id)
        state.jm.dist_hosts.set(len(live))
        return live

    def _run_local(self, units, members, outstanding, results, state,
                   attempts, spooled_at):
        """Degrade-to-local backstop: no live workers, finish in-process.

        Claims each remaining unit exactly like a worker would (so a
        late-returning host cannot double-run it), trims groups to
        their unsettled members, and reuses the in-process primitives
        -- results and journaling flow through ``state.complete`` like
        any other completion.
        """
        if not self.degraded:
            self.degraded = True
            state.degraded(
                "no live worker hosts for %.1fs; finishing in-process"
                % self.degrade_after,
                remaining=sum(len(ids) for ids in outstanding.values()))
        for unit_id in sorted(outstanding):
            ids = outstanding.get(unit_id)
            if not ids:
                continue
            lpath = _lease_path(self.spool, unit_id)
            age = lease_age(lpath)
            if age is not None:
                if age <= self.lease_timeout:
                    continue   # a worker came back mid-degrade
                release_lease(lpath)
            lease = try_claim(self.spool, unit_id, self.host_id)
            if lease is None:
                continue
            try:
                unit = units[unit_id]
                prior = attempts.get(unit_id, 0)
                if isinstance(unit, MultiPolicySimJob):
                    live_policies = [member.policy
                                     for member in unit.member_jobs
                                     if member.job_id in ids]
                    trimmed = (unit
                               if len(live_policies) == len(unit.policies)
                               else unit.subset(live_policies))
                    self._run_group(trimmed, results, state,
                                    prior_attempts=prior,
                                    started=spooled_at[unit_id])
                else:
                    self._run_one(unit, results, state,
                                  prior_attempts=prior,
                                  started=spooled_at[unit_id])
                outstanding.pop(unit_id, None)
                try:
                    os.unlink(_job_path(self.spool, unit_id))
                except OSError:
                    pass
            finally:
                release_lease(lease)
