"""Job execution backends: one pipeline, serial or multiprocess.

``execute_job`` is the single place a :class:`~repro.exec.job.SimJob`
becomes a :class:`~repro.cpu.core.RunResult`: trace from the cache,
fresh simulator, run, derived metrics.  It is a pure function of the job
(all simulator state is private to the call), which is what makes the
two backends interchangeable: :class:`SerialExecutor` runs jobs in-order
in-process, :class:`ParallelExecutor` fans them out over a
``ProcessPoolExecutor`` -- and both produce bit-identical cycle counts
and stats for the same job set.

Grouped jobs: a :class:`~repro.exec.job.MultiPolicySimJob` routes
through :func:`iter_group_results` instead -- one cached trace and one
structural prepass (:mod:`repro.cpu.prepass`) fanned out to N
shared-kernel policy evaluations inside a single worker.  Each member
evaluation is journaled as the plain :class:`~repro.exec.job.SimJob` it
replaces, under the identical job_id, so resume/retry/chaos/telemetry
see exactly the per-job stream they always did; the serial backend
journals members incrementally, so a kill mid-group re-runs only the
unfinished evaluations.

Fault tolerance: both backends drive every job through the
:class:`~repro.exec.retry.FailurePolicy` handed to :meth:`Executor.run`
-- per-attempt timeouts, bounded retries with deterministic backoff, and
skip-and-report semantics -- and record a per-job
:class:`~repro.exec.retry.JobResult` in ``executor.last_outcomes``.
The parallel backend additionally survives killed workers: a broken
pool is torn down and rebuilt with every incomplete job resubmitted,
and after ``max_rebuilds`` consecutive pool losses the remaining jobs
degrade to in-process serial execution instead of aborting the sweep.
Because ``execute_job`` is pure, none of this perturbs results.

Observability: each completed job emits a ``JOB_DONE`` event on the
``jobs`` lane of the supplied tracer and credits the profiler; retries,
terminal failures and backend degradation emit ``JOB_RETRY``,
``JOB_FAILED`` and ``BACKEND_DEGRADED`` on the same lane; a journal
append that dies (ENOSPC) emits ``JOURNAL_DEGRADED`` and the run
continues without the journal rather than aborting.  The parallel
backend cannot thread a tracer into workers (sinks do not cross
processes), so per-run events are only recorded by the serial backend.
"""

import os
import sys
import time
from contextlib import contextmanager

from repro.errors import JobTimeoutError
from repro.exec.cache import GLOBAL_CACHE, cached_trace
from repro.exec.job import MultiPolicySimJob
from repro.exec.retry import (
    FAIL_FAST,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RESUMED,
    FailurePolicy,
    JobResult,
    attempt_deadline,
)
from repro.obs.events import (
    BACKEND_DEGRADED,
    HOST_LOST,
    JOB_DONE,
    JOB_FAILED,
    JOB_RETRY,
    JOURNAL_DEGRADED,
    LANE_JOBS,
)
from repro.obs.metrics import JobMetrics

#: Optional fault-injection hook called as ``hook(job, attempt)`` at the
#: start of every attempt (in the worker process for the pool backend).
#: Installed by the chaos harness; None in production runs.
_ATTEMPT_HOOK = None


def set_attempt_hook(hook):
    """Install ``hook(job, attempt)`` for this process; returns the old
    hook so callers can restore it.  Pass None to clear."""
    global _ATTEMPT_HOOK
    previous = _ATTEMPT_HOOK
    _ATTEMPT_HOOK = hook
    return previous


def _peak_rss_kb():
    """Peak RSS of this process in KB (None where unavailable).

    Linux reports ``ru_maxrss`` in KB, macOS in bytes (normalised
    here).  This is a process high-water mark, not a per-job delta:
    for pool workers it approximates the job well, for the serial
    backend it is the driver's footprint.
    """
    try:
        import resource
    except ImportError:
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        rss //= 1024
    return rss


def _store_hit_accounting(started):
    """Accounting for a result served from the artifact store.

    ``cache_hit`` is None, not False: the trace cache was never
    consulted, so neither verdict would be true.
    """
    return {
        "wall_seconds": round(time.perf_counter() - started, 6),
        "tracegen_seconds": 0.0,
        "cache_hit": None,
        "store_hit": True,
        "peak_rss_kb": _peak_rss_kb(),
    }


def execute_job(job, tracer=None, profiler=None, cache=None, store=None):
    """Run one job and return its RunResult (with ``.metrics`` attached).

    Pure with respect to ``job``: every call builds a private simulator,
    so results do not depend on execution order or backend.

    ``store`` (default: the process-wide
    :func:`~repro.exec.store.active_store`) short-circuits the whole
    call when it holds a completed result for this ``job_id`` under the
    current code fingerprint -- the rebuild goes through the same
    record shape journal resume uses, so a warm result is bit-identical
    to a simulated one.  Fresh completions are published back.

    Resource accounting rides along on ``result.accounting`` -- wall
    and tracegen seconds, whether the trace came from cache, whether
    the result was a store hit, and the process's peak RSS.  It is
    measured here, inside the worker for the pool backend, because the
    accounting has to cross the pickle boundary with the result; it
    never touches simulated state.
    """
    from repro.exec.store import active_store
    from repro.sim.metrics import collect_metrics
    from repro.sim.runner import build_simulator

    started = time.perf_counter()
    store = store if store is not None else active_store()
    if store is not None:
        result = store.load_result(job)
        if result is not None:
            result.accounting = _store_hit_accounting(started)
            return result
    active_cache = cache if cache is not None else GLOBAL_CACHE
    hits_before = active_cache.hits
    gen_before = active_cache.gen_seconds
    trace = cached_trace(job.benchmark, job.trace_length,
                         job.effective_seed, profiler=profiler,
                         cache=active_cache)
    core, hierarchy = build_simulator(job.config, job.policy, tracer=tracer)
    result = core.run(trace, warmup=job.warmup, profiler=profiler)
    if profiler is not None:
        with profiler.phase("metrics"):
            result.metrics = collect_metrics(result, hierarchy)
    else:
        result.metrics = collect_metrics(result, hierarchy)
    result.accounting = {
        "wall_seconds": round(time.perf_counter() - started, 6),
        "tracegen_seconds": round(active_cache.gen_seconds - gen_before,
                                  6),
        "cache_hit": active_cache.hits > hits_before,
        "store_hit": False,
        "peak_rss_kb": _peak_rss_kb(),
    }
    if store is not None:
        store.save_result(job, result)
    return result


def iter_group_results(group, skip=(), tracer=None, profiler=None,
                       cache=None, attempt_of=None):
    """Execute a :class:`MultiPolicySimJob`; yields ``(member, result)``.

    One decode serves every member: the trace comes from the cache once
    and -- when config and policy fit the shared-pass envelope -- one
    structural prepass (:mod:`repro.cpu.prepass`) feeds the shared
    timestamp kernel once per policy.  Members outside the envelope
    (address obfuscation, non-ctr encryption, hash tree, prefetching)
    run the legacy per-policy simulator on the same cached trace.  Both
    paths produce results bit-identical to :func:`execute_job`.

    ``skip`` is a set of member job_ids to leave out (mid-group resume:
    the retry loop passes the members already journaled).

    The attempt hook fires once per *member*, right before its
    evaluation, exactly as the ungrouped pipeline fires it per job --
    fault injection keyed by member job_id or (benchmark, policy) cell
    keeps working unchanged.  ``attempt_of(member)`` supplies the
    attempt number the hook reports (default: 1).

    Accounting mirrors the ungrouped pipeline: the first executed member
    carries the group's shared cost (tracegen plus prepass) and the
    cache-lookup verdict; every later member is a pure cache reuse
    (``cache_hit`` True, zero tracegen), which
    :meth:`~repro.exec.cache.TraceCache.count_group_reuse` also charges
    to the cache counters.

    The artifact store (when active) resolves members *before* the
    shared decode: members with a stored result are yielded without
    evaluation (``store_hit`` accounting, no attempt hook -- the same
    "settled elsewhere" semantics journal-resumed members have), and if
    every member resolves the trace and prepass are never touched.  The
    prepass itself is store-backed too: loaded when present, built and
    published (under a single-flight lock) when not.
    """
    from repro.cpu.prepass import (build_prepass, policy_supported,
                                   prepass_supported)
    from repro.cpu.shared_kernel import replay_policy
    from repro.exec.store import active_store
    from repro.policies import make_policy
    from repro.sim.metrics import collect_metrics
    from repro.sim.runner import build_simulator

    skip = set(skip)
    members = [m for m in group.member_jobs if m.job_id not in skip]
    if not members:
        return
    store = active_store()
    stored = {}
    if store is not None:
        for member in members:
            lookup_start = time.perf_counter()
            hit = store.load_result(member)
            if hit is not None:
                hit.accounting = _store_hit_accounting(lookup_start)
                stored[member.job_id] = hit
    to_run = [m for m in members if m.job_id not in stored]
    trace = None
    prepass = None
    first_cache_hit = False
    tracegen = 0.0
    shared_seconds = 0.0
    if to_run:
        started = time.perf_counter()
        active_cache = cache if cache is not None else GLOBAL_CACHE
        hits_before = active_cache.hits
        gen_before = active_cache.gen_seconds
        trace = cached_trace(group.benchmark, group.trace_length,
                             group.effective_seed, profiler=profiler,
                             cache=active_cache)
        first_cache_hit = active_cache.hits > hits_before
        tracegen = active_cache.gen_seconds - gen_before
        active_cache.count_group_reuse(len(to_run) - 1)
        policies = {m.policy: make_policy(m.policy) for m in to_run}
        if (prepass_supported(group.config)
                and any(policy_supported(p) for p in policies.values())):
            prepass = _shared_prepass(group, trace, store,
                                      profiler=profiler)
        shared_seconds = time.perf_counter() - started
    position = 0  # over executed (non-store-hit) members
    for member in members:
        hit = stored.get(member.job_id)
        if hit is not None:
            yield member, hit
            continue
        if _ATTEMPT_HOOK is not None:
            _ATTEMPT_HOOK(member,
                          attempt_of(member) if attempt_of is not None
                          else 1)
        member_start = time.perf_counter()
        policy = policies[member.policy]
        hierarchy = None
        if prepass is not None and policy_supported(policy):
            result = replay_policy(prepass, policy, group.config,
                                   trace_name=getattr(trace, "name",
                                                      "trace"),
                                   profiler=profiler)
        else:
            core, hierarchy = build_simulator(group.config, member.policy,
                                              tracer=tracer)
            result = core.run(trace, warmup=group.warmup,
                              profiler=profiler)
        if profiler is not None:
            with profiler.phase("metrics"):
                result.metrics = collect_metrics(result, hierarchy)
        else:
            result.metrics = collect_metrics(result, hierarchy)
        wall = time.perf_counter() - member_start
        if position == 0:
            wall += shared_seconds
        result.accounting = {
            "wall_seconds": round(wall, 6),
            "tracegen_seconds": round(tracegen if position == 0 else 0.0,
                                      6),
            "cache_hit": first_cache_hit if position == 0 else True,
            "store_hit": False,
            "peak_rss_kb": _peak_rss_kb(),
        }
        if store is not None:
            store.save_result(member, result)
        position += 1
        yield member, result


def _shared_prepass(group, trace, store, profiler=None):
    """The group's structural prepass: store-loaded or built-and-saved.

    A store load re-attaches the (cached) trace's packed columns; a
    build publishes under a single-flight lock so concurrent workers
    walking the same (trace, config, warmup) pay one walk.
    """
    from repro.cpu.prepass import build_prepass

    def build():
        if profiler is not None:
            with profiler.phase("prepass"):
                return build_prepass(trace, group.config,
                                     warmup=group.warmup)
        return build_prepass(trace, group.config, warmup=group.warmup)

    if store is None:
        return build()
    packed = trace.packed()
    prepass = store.load_prepass(group.benchmark, group.trace_length,
                                 group.effective_seed, group.config,
                                 group.warmup, packed)
    if prepass is not None:
        return prepass
    name = store.prepass_name(group.benchmark, group.trace_length,
                              group.effective_seed, group.config,
                              group.warmup)
    with store.single_flight("prepass", name):
        prepass = store.load_prepass(group.benchmark, group.trace_length,
                                     group.effective_seed, group.config,
                                     group.warmup, packed)
        if prepass is not None:
            return prepass
        prepass = build()
        store.save_prepass(prepass, group.benchmark, group.trace_length,
                           group.effective_seed, group.config,
                           group.warmup)
    return prepass


def _pool_worker(job, attempt=1):
    """Top-level worker entry (must be picklable by ProcessPoolExecutor)."""
    if _ATTEMPT_HOOK is not None:
        _ATTEMPT_HOOK(job, attempt)
    return job.job_id, execute_job(job)


def _pool_worker_group(group, attempt=1):
    """Pool entry for grouped jobs: runs every member, returns the list.

    The ``[(member_job_id, result), ...]`` list crosses the pickle
    boundary whole, so a pool group attempt is all-or-nothing: a worker
    death mid-group yields no partial results and the retry re-runs the
    full group (bit-identically, since execution is pure).  Incremental
    mid-group journaling is the serial/degraded path's province.  The
    attempt hook fires per member (inside ``iter_group_results``), all
    reporting the group attempt number.
    """
    return group.job_id, [
        (member.job_id, result)
        for member, result in iter_group_results(
            group, attempt_of=lambda member: attempt)
    ]


class Executor:
    """Common driver: journal skip/record, retries, progress, results."""

    backend = "abstract"
    jobs = 1

    def __init__(self):
        self.last_outcomes = {}

    def run(self, jobs, journal=None, tracer=None, profiler=None,
            progress=None, failure_policy=None, metrics=None):
        """Execute ``jobs``; returns ``{job: RunResult}``.

        ``journal`` (a :class:`~repro.sim.checkpoint.JobJournal`) makes
        the call resumable: jobs whose ``job_id`` the journal already
        holds are skipped and their results rebuilt from disk; every
        fresh completion is appended before the next job starts, so an
        interrupted sweep loses at most the in-flight jobs.

        ``failure_policy`` (default: fail-fast, no timeout -- exactly
        the historical behaviour) governs retries, per-attempt timeouts
        and whether a terminal failure aborts or skips.  Jobs skipped
        this way are *absent* from the returned mapping; inspect
        ``self.last_outcomes`` / ``self.failures`` for the report.

        ``progress(job, result, done, total)`` fires per completion in
        the calling process, after the journal append.

        ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
        receives the standard execution-layer families -- jobs settled
        by status, wall-time/backoff histograms, queue depth, cache and
        degradation counters.  None (the default) routes every record
        through the shared null registry: a no-op per event, and
        nothing that can perturb simulated cycle counts.
        """
        jobs = list(jobs)
        results = {}
        pending = []
        outcomes = {}
        total = 0

        def resume(job):
            done = journal.result(job) if journal is not None else None
            if done is None:
                return False
            results[job] = done
            outcomes[job.job_id] = JobResult(
                job_id=job.job_id, status=STATUS_RESUMED, attempts=0,
                cache_hit=(done.accounting or {}).get("cache_hit"),
                store_hit=(done.accounting or {}).get("store_hit"),
                peak_rss_kb=(done.accounting or {}).get("peak_rss_kb"))
            return True

        for job in jobs:
            if isinstance(job, MultiPolicySimJob):
                # Groups resume member-wise: journaled members come back
                # from disk and the group is trimmed to the rest, so a
                # rerun pays only the evaluations that never finished.
                total += len(job.policies)
                remaining = [member.policy for member in job.member_jobs
                             if not resume(member)]
                if remaining:
                    pending.append(job
                                   if len(remaining) == len(job.policies)
                                   else job.subset(remaining))
            else:
                total += 1
                if not resume(job):
                    pending.append(job)
        pending_units = sum(len(job.policies)
                            if isinstance(job, MultiPolicySimJob) else 1
                            for job in pending)
        state = _RunState(total, total - pending_units, journal,
                          tracer, profiler, progress,
                          failure_policy or FailurePolicy(), outcomes,
                          metrics=metrics)
        for outcome in outcomes.values():
            state.jm.jobs.labels(STATUS_RESUMED).inc()
        state.jm.pending.set(pending_units)
        self.last_outcomes = outcomes
        if pending:
            self._execute(pending, results, state)
        return results

    @property
    def failures(self):
        """Failed JobResults from the last run, keyed by job_id."""
        return {job_id: outcome
                for job_id, outcome in self.last_outcomes.items()
                if outcome.status == STATUS_FAILED}

    def _execute(self, pending, results, state):
        raise NotImplementedError

    def _run_one(self, job, results, state, run_tracer=None, cache=None,
                 prior_attempts=0, started=None):
        """In-process attempt loop for one job under the failure policy.

        Shared by the serial backend and the pool backend's degraded
        path.  ``prior_attempts``/``started`` carry bookkeeping from
        attempts the pool already spent on the job.
        """
        policy = state.policy
        attempt = prior_attempts
        start = started if started is not None else time.perf_counter()
        while True:
            attempt += 1
            try:
                with attempt_deadline(policy.timeout):
                    if _ATTEMPT_HOOK is not None:
                        _ATTEMPT_HOOK(job, attempt)
                    result = execute_job(job, tracer=run_tracer,
                                         profiler=state.profiler,
                                         cache=cache)
            except Exception as exc:
                if policy.should_retry(attempt):
                    delay = policy.backoff(job.job_id, attempt)
                    state.retry(job, attempt, exc, delay)
                    if delay:
                        time.sleep(delay)
                    continue
                state.fail(job, attempt, time.perf_counter() - start, exc)
                return
            results[job] = result
            state.complete(job, result, attempts=attempt,
                           wall=time.perf_counter() - start)
            return

    def _run_group(self, group, results, state, run_tracer=None,
                   cache=None, prior_attempts=0, started=None):
        """In-process attempt loop for one grouped job.

        Members are journaled incrementally (``state.complete`` fires
        after each member, before the next starts), so a kill mid-group
        loses only the in-flight member, and a retry after a mid-group
        fault re-runs only the members that never completed -- the
        grouped analogue of per-job journaling.

        Retries are charged *per member*, not per group: a pass aborts
        at its first failing member (members execute in order, so that
        is the first member not yet settled), that member alone is
        charged the attempt, and the next pass resumes from it.  A
        member that exhausts the failure policy is failed individually
        and the rest of the group still runs -- the same semantics N
        ungrouped jobs would have had.
        """
        policy = state.policy
        start = started if started is not None else time.perf_counter()
        done_ids = set()   # settled members: completed or failed
        counts = {}        # member job_id -> failed attempts so far

        def attempt_of(member):
            return (prior_attempts + counts.get(member.job_id, 0) + 1)

        while True:
            try:
                with attempt_deadline(policy.timeout):
                    for member, result in iter_group_results(
                            group, skip=done_ids, tracer=run_tracer,
                            profiler=state.profiler, cache=cache,
                            attempt_of=attempt_of):
                        results[member] = result
                        done_ids.add(member.job_id)
                        state.complete(member, result,
                                       attempts=attempt_of(member),
                                       wall=(time.perf_counter()
                                             - start))
            except Exception as exc:
                victim = next(member for member in group.member_jobs
                              if member.job_id not in done_ids)
                count = attempt_of(victim)
                counts[victim.job_id] = (counts.get(victim.job_id, 0)
                                         + 1)
                if policy.should_retry(count):
                    delay = policy.backoff(victim.job_id, count)
                    state.retry(victim, count, exc, delay)
                    if delay:
                        time.sleep(delay)
                    continue
                state.fail(victim, count,
                           time.perf_counter() - start, exc)
                done_ids.add(victim.job_id)
                continue
            return

    def describe(self):
        """Backend metadata for manifests ({"backend": ..., "jobs": ...})."""
        return {"backend": self.backend, "jobs": self.jobs}

    def close(self):
        """Release backend resources (idempotent)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class _RunState:
    """Per-run completion bookkeeping shared by the backends.

    ``jm`` holds the standard metric families: real ones when the run
    was handed a registry, the shared null metric otherwise, so every
    code path below records unconditionally.
    """

    def __init__(self, total, done, journal, tracer, profiler, progress,
                 policy, outcomes, metrics=None):
        self.total = total
        self.done = done
        self.journal = journal
        self.tracer = tracer
        self.profiler = profiler
        self.progress = progress
        self.policy = policy
        self.outcomes = outcomes
        self.jm = JobMetrics(metrics)

    def complete(self, job, result, attempts=1, wall=0.0):
        self.done += 1
        accounting = getattr(result, "accounting", None) or {}
        self.outcomes[job.job_id] = JobResult(
            job_id=job.job_id, status=STATUS_OK, attempts=attempts,
            wall_time=wall, cache_hit=accounting.get("cache_hit"),
            store_hit=accounting.get("store_hit"),
            peak_rss_kb=accounting.get("peak_rss_kb"))
        self.jm.observe_completed(result, wall, status=STATUS_OK)
        self.jm.pending.set(self.total - self.done)
        if self.journal is not None:
            try:
                self.journal.record(job, result)
            except OSError as exc:
                # A journal append failing (ENOSPC, dead filesystem)
                # must not take the sweep down with it: the results are
                # already in memory.  Drop the journal -- this run just
                # loses resumability from here on -- and say so.
                self.journal = None
                self.jm.journal_degraded.inc()
                if self.tracer is not None:
                    self.tracer.emit(JOURNAL_DEGRADED, LANE_JOBS,
                                     self.done, job_id=job.job_id,
                                     error=repr(exc))
        if self.tracer is not None:
            self.tracer.emit(JOB_DONE, LANE_JOBS, self.done,
                             job_id=job.job_id, benchmark=job.benchmark,
                             policy=job.policy, cycles=result.cycles,
                             attempts=attempts, completed=self.done,
                             total=self.total)
        if self.progress is not None:
            self.progress(job, result, self.done, self.total)

    def retry(self, job, attempt, exc, delay):
        self.jm.retries.inc()
        self.jm.backoff.observe(delay)
        if isinstance(exc, JobTimeoutError):
            self.jm.timeouts.inc()
        if self.tracer is not None:
            self.tracer.emit(JOB_RETRY, LANE_JOBS, self.done,
                             job_id=job.job_id, attempt=attempt,
                             error=repr(exc), delay=round(delay, 6))

    def fail(self, job, attempts, wall, exc):
        """Record a terminal failure; re-raises under fail-fast."""
        self.done += 1
        outcome = JobResult(
            job_id=job.job_id, status=STATUS_FAILED, attempts=attempts,
            wall_time=wall, error=repr(exc))
        self.outcomes[job.job_id] = outcome
        self.jm.jobs.labels(STATUS_FAILED).inc()
        self.jm.pending.set(self.total - self.done)
        if isinstance(exc, JobTimeoutError):
            self.jm.timeouts.inc()
        if self.tracer is not None:
            self.tracer.emit(JOB_FAILED, LANE_JOBS, self.done,
                             job_id=job.job_id, benchmark=job.benchmark,
                             policy=job.policy, attempts=attempts,
                             error=repr(exc))
        if self.progress is not None:
            # Failures advance the same done/total cursor completions
            # do; the renderer receives the failed JobResult (no
            # ``.cycles``) and must render a FAILED marker.  Fired
            # before the fail-fast raise so the status line reflects
            # the terminal job even when the run aborts here.
            self.progress(job, outcome, self.done, self.total)
        if self.policy.mode == FAIL_FAST:
            raise exc

    def degraded(self, reason, remaining):
        self.jm.degraded.inc()
        if self.tracer is not None:
            self.tracer.emit(BACKEND_DEGRADED, LANE_JOBS, self.done,
                             reason=reason, remaining=remaining)

    def host_lost(self, host_id, job_id, lease_age):
        """A dist worker host stopped heartbeating while holding a job."""
        self.jm.host_lost.inc()
        if self.tracer is not None:
            self.tracer.emit(HOST_LOST, LANE_JOBS, self.done,
                             host=host_id, job_id=job_id,
                             lease_age=round(lease_age, 3))


class SerialExecutor(Executor):
    """In-process, in-order execution (the reference backend).

    The only backend that can thread a tracer into the runs themselves,
    so single-run recordings and gap timelines go through it.  Timeouts
    are enforced with ``SIGALRM`` (POSIX main thread only; see
    :func:`~repro.exec.retry.attempt_deadline`).
    """

    backend = "serial"
    jobs = 1

    def __init__(self, cache=None):
        super().__init__()
        self._cache = cache

    def _execute(self, pending, results, state):
        # Evictions can only be observed driver-side (pool workers'
        # caches live in other processes), so this delta is the serial
        # backend's contribution alone.
        cache = self._cache if self._cache is not None else GLOBAL_CACHE
        evictions_before = cache.evictions
        for job in pending:
            if isinstance(job, MultiPolicySimJob):
                self._run_group(job, results, state,
                                run_tracer=state.tracer,
                                cache=self._cache)
            else:
                self._run_one(job, results, state,
                              run_tracer=state.tracer, cache=self._cache)
        state.jm.cache_evictions.inc(cache.evictions - evictions_before)


class ParallelExecutor(Executor):
    """``ProcessPoolExecutor`` fan-out over ``jobs`` worker processes.

    Workers regenerate traces through their own per-process cache (see
    :mod:`repro.exec.cache`) and return pickled ``RunResult``s; results
    are keyed by job, so output is deterministic no matter which worker
    finishes first.  The pool is created lazily and reused across
    ``run`` calls until :meth:`close`, so ablation grids amortise the
    fork cost over the whole parameter grid.

    Crash isolation: a worker death (OOM kill, segfault, chaos
    injection) breaks the whole ``ProcessPoolExecutor``; this backend
    responds by killing the stragglers, rebuilding the pool and
    resubmitting every incomplete job -- no attempt is charged, because
    the pool cannot say whose worker died.  A job that outlives the
    policy timeout *is* charged an attempt: its deadline identifies it,
    the pool is rebuilt around the hung worker and the job re-enters
    the retry loop.  After ``max_rebuilds`` consecutive pool losses the
    remaining jobs run serially in-process (``BACKEND_DEGRADED``), so a
    persistently hostile environment slows a sweep down rather than
    aborting it.

    ``initializer``/``initargs`` are forwarded to every worker process
    (the chaos harness uses this to install its fault plan).
    """

    backend = "process"

    def __init__(self, jobs=None, initializer=None, initargs=(),
                 max_rebuilds=2):
        super().__init__()
        self.jobs = jobs if jobs else (os.cpu_count() or 1)
        self.max_rebuilds = max_rebuilds
        self.rebuilds = 0
        self.degraded = False
        self._initializer = initializer
        self._initargs = initargs
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=self._initializer,
                initargs=self._initargs)
        return self._pool

    def _break_pool(self):
        """Tear down the pool, killing any worker that is still alive."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except (OSError, AttributeError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _execute(self, pending, results, state):
        from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                        wait)

        policy = state.policy
        start = time.perf_counter()
        attempts = {}
        first_start = {}
        queue = list(pending)
        inflight = {}  # future -> (job, deadline or None)
        rebuilds = 0
        try:
            while queue or inflight:
                pool = self._ensure_pool()
                # Cap in-flight submissions at the worker count so a
                # per-attempt deadline measures the attempt, not time
                # spent queued behind other jobs.
                while queue and len(inflight) < self.jobs:
                    job = queue[0]
                    attempt = attempts.get(job.job_id, 0) + 1
                    worker = (_pool_worker_group
                              if isinstance(job, MultiPolicySimJob)
                              else _pool_worker)
                    try:
                        future = pool.submit(worker, job, attempt)
                    except RuntimeError:  # pool broke under us
                        break
                    queue.pop(0)
                    attempts[job.job_id] = attempt
                    first_start.setdefault(job.job_id,
                                           time.perf_counter())
                    deadline = (time.monotonic() + policy.timeout
                                if policy.timeout else None)
                    inflight[future] = (job, deadline)
                if not inflight:
                    # Submission failed before anything was in flight:
                    # rebuild and retry (or degrade).
                    self._break_pool()
                    rebuilds += 1
                    if self._maybe_degrade(rebuilds, queue, results,
                                           state, attempts, first_start):
                        return
                    continue

                deadlines = [dl for (_, dl) in inflight.values()
                             if dl is not None]
                timeout = (max(0.0, min(deadlines) - time.monotonic())
                           if deadlines else None)
                done, _ = wait(list(inflight), timeout=timeout,
                               return_when=FIRST_COMPLETED)

                broke = False
                for future in done:
                    job, _ = inflight.pop(future)
                    try:
                        _, result = future.result()
                    except BrokenExecutor:
                        # A worker died; nobody can tell whose job did
                        # it, so requeue without charging an attempt.
                        broke = True
                        attempts[job.job_id] -= 1
                        queue.append(job)
                    except Exception as exc:
                        self._attempt_failed(job, exc, attempts,
                                             first_start, queue, state)
                    else:
                        wall = (time.perf_counter()
                                - first_start[job.job_id])
                        if isinstance(job, MultiPolicySimJob):
                            members = {member.job_id: member
                                       for member in job.member_jobs}
                            for member_id, member_result in result:
                                member = members[member_id]
                                results[member] = member_result
                                state.complete(
                                    member, member_result,
                                    attempts=attempts[job.job_id],
                                    wall=wall)
                        else:
                            results[job] = result
                            state.complete(
                                job, result,
                                attempts=attempts[job.job_id], wall=wall)

                now = time.monotonic()
                expired = [future
                           for future, (job, dl) in inflight.items()
                           if dl is not None and now >= dl]
                for future in expired:
                    job, _ = inflight.pop(future)
                    broke = True  # its worker is wedged; rebuild
                    exc = JobTimeoutError(
                        "job %s attempt %d exceeded %.3fs timeout"
                        % (job.job_id, attempts[job.job_id],
                           policy.timeout),
                        job_id=job.job_id,
                        attempts=attempts[job.job_id])
                    self._attempt_failed(job, exc, attempts, first_start,
                                         queue, state)

                if broke:
                    for future, (job, _) in inflight.items():
                        attempts[job.job_id] -= 1
                        queue.append(job)
                    inflight.clear()
                    self._break_pool()
                    rebuilds += 1
                    if self._maybe_degrade(rebuilds, queue, results,
                                           state, attempts, first_start):
                        return
        finally:
            self.rebuilds += rebuilds
            state.jm.pool_rebuilds.inc(rebuilds)
            if state.profiler is not None:
                state.profiler.add("execute",
                                   time.perf_counter() - start)

    def _attempt_failed(self, job, exc, attempts, first_start, queue,
                        state):
        """Route one failed attempt through the policy (retry or fail)."""
        count = attempts[job.job_id]
        policy = state.policy
        if policy.should_retry(count):
            delay = policy.backoff(job.job_id, count)
            state.retry(job, count, exc, delay)
            if delay:
                time.sleep(delay)
            queue.append(job)
        else:
            wall = time.perf_counter() - first_start[job.job_id]
            if isinstance(job, MultiPolicySimJob):
                # A pool group attempt is all-or-nothing, so a terminal
                # failure fails every member (each gets its own
                # JOB_FAILED outcome under its legacy job_id).
                for member in job.member_jobs:
                    state.fail(member, count, wall, exc)
            else:
                state.fail(job, count, wall, exc)

    def _maybe_degrade(self, rebuilds, queue, results, state, attempts,
                       first_start):
        """After too many pool losses, finish the run serially."""
        if rebuilds <= self.max_rebuilds:
            return False
        self.degraded = True
        state.degraded("process pool broke %d times" % rebuilds,
                       remaining=len(queue))
        while queue:
            job = queue.pop(0)
            if isinstance(job, MultiPolicySimJob):
                self._run_group(job, results, state,
                                prior_attempts=attempts.get(job.job_id,
                                                            0),
                                started=first_start.get(job.job_id))
            else:
                self._run_one(job, results, state,
                              prior_attempts=attempts.get(job.job_id, 0),
                              started=first_start.get(job.job_id))
        return True

    def describe(self):
        info = {"backend": self.backend, "jobs": self.jobs}
        if self.rebuilds:
            info["pool_rebuilds"] = self.rebuilds
        if self.degraded:
            info["degraded"] = True
        return info

    def close(self):
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def default_jobs():
    """Worker count when none is given: ``REPRO_JOBS`` env var, else 1.

    Serial is the default on purpose -- tests and small runs should not
    pay pool startup -- while ``REPRO_JOBS=8`` turns every sweep in a
    process parallel without touching call sites.
    """
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def make_executor(jobs=None):
    """Backend for ``jobs`` workers (None: :func:`default_jobs`)."""
    jobs = default_jobs() if jobs is None else jobs
    if jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs)


@contextmanager
def executor_scope(executor=None, jobs=None):
    """Yield ``executor``, or a fresh one that is closed on exit.

    Callers that accept an optional executor use this so a borrowed
    executor (and its warm worker pool) survives the call while a
    default-constructed one is cleaned up.
    """
    if executor is not None:
        yield executor
        return
    executor = make_executor(jobs)
    try:
        yield executor
    finally:
        executor.close()
