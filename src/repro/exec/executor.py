"""Job execution backends: one pipeline, serial or multiprocess.

``execute_job`` is the single place a :class:`~repro.exec.job.SimJob`
becomes a :class:`~repro.cpu.core.RunResult`: trace from the cache,
fresh simulator, run, derived metrics.  It is a pure function of the job
(all simulator state is private to the call), which is what makes the
two backends interchangeable: :class:`SerialExecutor` runs jobs in-order
in-process, :class:`ParallelExecutor` fans them out over a
``ProcessPoolExecutor`` -- and both produce bit-identical cycle counts
and stats for the same job set.

Observability: each completed job emits a ``JOB_DONE`` event on the
``jobs`` lane of the supplied tracer and credits the profiler, so sweep
progress shows up through the same hooks single runs already use.  The
parallel backend cannot thread a tracer into workers (sinks do not cross
processes), so per-run events are only recorded by the serial backend;
``JOB_DONE`` progress events are emitted by both.
"""

import os
import time
from contextlib import contextmanager

from repro.exec.cache import cached_trace
from repro.obs.events import JOB_DONE, LANE_JOBS


def execute_job(job, tracer=None, profiler=None, cache=None):
    """Run one job and return its RunResult (with ``.metrics`` attached).

    Pure with respect to ``job``: every call builds a private simulator,
    so results do not depend on execution order or backend.
    """
    from repro.sim.metrics import collect_metrics
    from repro.sim.runner import build_simulator

    trace = cached_trace(job.benchmark, job.trace_length, job.seed,
                         profiler=profiler, cache=cache)
    core, hierarchy = build_simulator(job.config, job.policy, tracer=tracer)
    result = core.run(trace, warmup=job.warmup, profiler=profiler)
    if profiler is not None:
        with profiler.phase("metrics"):
            result.metrics = collect_metrics(result, hierarchy)
    else:
        result.metrics = collect_metrics(result, hierarchy)
    return result


def _pool_worker(job):
    """Top-level worker entry (must be picklable by ProcessPoolExecutor)."""
    return job.job_id, execute_job(job)


class Executor:
    """Common driver: journal skip/record, progress, result assembly."""

    backend = "abstract"
    jobs = 1

    def run(self, jobs, journal=None, tracer=None, profiler=None,
            progress=None):
        """Execute ``jobs``; returns ``{job: RunResult}``.

        ``journal`` (a :class:`~repro.sim.checkpoint.JobJournal`) makes
        the call resumable: jobs whose ``job_id`` the journal already
        holds are skipped and their results rebuilt from disk; every
        fresh completion is appended before the next job starts, so an
        interrupted sweep loses at most the in-flight jobs.

        ``progress(job, result, done, total)`` fires per completion in
        the calling process, after the journal append.
        """
        jobs = list(jobs)
        results = {}
        pending = []
        for job in jobs:
            done = journal.result(job) if journal is not None else None
            if done is not None:
                results[job] = done
            else:
                pending.append(job)
        state = _RunState(len(jobs), len(jobs) - len(pending), journal,
                          tracer, profiler, progress)
        if pending:
            self._execute(pending, results, state)
        return results

    def _execute(self, pending, results, state):
        raise NotImplementedError

    def describe(self):
        """Backend metadata for manifests ({"backend": ..., "jobs": ...})."""
        return {"backend": self.backend, "jobs": self.jobs}

    def close(self):
        """Release backend resources (idempotent)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class _RunState:
    """Per-run completion bookkeeping shared by the backends."""

    def __init__(self, total, done, journal, tracer, profiler, progress):
        self.total = total
        self.done = done
        self.journal = journal
        self.tracer = tracer
        self.profiler = profiler
        self.progress = progress

    def complete(self, job, result):
        self.done += 1
        if self.journal is not None:
            self.journal.record(job, result)
        if self.tracer is not None:
            self.tracer.emit(JOB_DONE, LANE_JOBS, self.done,
                             job_id=job.job_id, benchmark=job.benchmark,
                             policy=job.policy, cycles=result.cycles,
                             completed=self.done, total=self.total)
        if self.progress is not None:
            self.progress(job, result, self.done, self.total)


class SerialExecutor(Executor):
    """In-process, in-order execution (the reference backend).

    The only backend that can thread a tracer into the runs themselves,
    so single-run recordings and gap timelines go through it.
    """

    backend = "serial"
    jobs = 1

    def __init__(self, cache=None):
        self._cache = cache

    def _execute(self, pending, results, state):
        for job in pending:
            result = execute_job(job, tracer=state.tracer,
                                 profiler=state.profiler,
                                 cache=self._cache)
            results[job] = result
            state.complete(job, result)


class ParallelExecutor(Executor):
    """``ProcessPoolExecutor`` fan-out over ``jobs`` worker processes.

    Workers regenerate traces through their own per-process cache (see
    :mod:`repro.exec.cache`) and return pickled ``RunResult``s; results
    are keyed by job, so output is deterministic no matter which worker
    finishes first.  The pool is created lazily and reused across
    ``run`` calls until :meth:`close`, so ablation grids amortise the
    fork cost over the whole parameter grid.
    """

    backend = "process"

    def __init__(self, jobs=None):
        self.jobs = jobs if jobs else (os.cpu_count() or 1)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _execute(self, pending, results, state):
        from concurrent.futures import as_completed

        start = time.perf_counter()
        pool = self._ensure_pool()
        futures = {pool.submit(_pool_worker, job): job for job in pending}
        try:
            for future in as_completed(futures):
                job = futures[future]
                _, result = future.result()
                results[job] = result
                state.complete(job, result)
        finally:
            if state.profiler is not None:
                state.profiler.add("execute",
                                   time.perf_counter() - start)

    def close(self):
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def default_jobs():
    """Worker count when none is given: ``REPRO_JOBS`` env var, else 1.

    Serial is the default on purpose -- tests and small runs should not
    pay pool startup -- while ``REPRO_JOBS=8`` turns every sweep in a
    process parallel without touching call sites.
    """
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def make_executor(jobs=None):
    """Backend for ``jobs`` workers (None: :func:`default_jobs`)."""
    jobs = default_jobs() if jobs is None else jobs
    if jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs)


@contextmanager
def executor_scope(executor=None, jobs=None):
    """Yield ``executor``, or a fresh one that is closed on exit.

    Callers that accept an optional executor use this so a borrowed
    executor (and its warm worker pool) survives the call while a
    default-constructed one is cleaned up.
    """
    if executor is not None:
        yield executor
        return
    executor = make_executor(jobs)
    try:
        yield executor
    finally:
        executor.close()
