"""Chaos harness: deterministically inject faults, prove recovery.

The paper argues a secure processor must keep producing correct results
while memory misbehaves; this module holds the sweep infrastructure to
the same standard.  Instead of hoping the retry/journal machinery works,
:func:`run_chaos` *injects* the failure modes -- killed workers, raised
exceptions, artificial hangs, journal truncation and bit flips, plus the
infrastructure faults (a pool initializer that dies, a journal append
hitting ENOSPC) -- from a seeded schedule, then asserts the sweep still
converges to results bit-identical to a fault-free serial run (cycles,
IPC and the sha256 stats digest of every job).
:func:`run_figures_chaos` holds ``repro figures`` to the same standard:
a worker kill mid-regeneration must still yield byte-identical text
artifacts.  :func:`run_store_chaos` does the same for the persistent
artifact store: truncated and bit-flipped entries plus a stale
single-flight lock from a dead process must cost quarantine and one
regeneration, never a wrong number.  :func:`run_dist_chaos` extends the
standard across hosts: a worker daemon SIGKILLed mid-unit, a journal
segment two daemons appended concurrently (then torn mid-record), and a
fleet that vanishes entirely must all heal to results bit-identical to
``SerialExecutor`` -- with the victim's leased jobs re-run exactly once.

Determinism is the point: a :class:`ChaosPlan` is a pure function of
``(job list, seed, fault kinds)``, so a failing chaos run is exactly
reproducible with the same seed.  Fault injection rides the executors'
attempt hook (installed in pool workers via the pool initializer, and in
the driver for serial/degraded execution); job faults fire on a job's
*first* attempt only, so the retry path -- not luck -- is what heals the
sweep.
"""

import dataclasses
import hashlib
import json
import os
import signal
import socket
import time

from repro.errors import ReproError
from repro.exec.executor import (
    ParallelExecutor,
    SerialExecutor,
    set_attempt_hook,
)
from repro.exec.job import build_jobs
from repro.exec.retry import (
    RETRY_THEN_SKIP,
    STATUS_RESUMED,
    FailurePolicy,
)
from repro.obs.events import (
    BACKEND_DEGRADED,
    JOB_FAILED,
    JOB_RETRY,
    JOURNAL_DEGRADED,
)
from repro.util.rng import DeterministicRng


class InjectedFault(ReproError):
    """The exception a chaos schedule raises inside a job attempt."""


# ---- fault kinds ------------------------------------------------------

FAULT_WORKER_KILL = "worker-kill"          # SIGKILL the worker process
FAULT_JOB_EXCEPTION = "job-exception"      # raise InjectedFault
FAULT_HANG = "hang"                        # sleep past the timeout
FAULT_JOURNAL_TRUNCATE = "journal-truncate"  # tear the journal tail
FAULT_JOURNAL_BITFLIP = "journal-bitflip"    # flip one stored digit
FAULT_POOL_INIT = "pool-init-failure"      # first pool's initializer dies
FAULT_JOURNAL_ENOSPC = "journal-enospc"    # journal append raises ENOSPC

JOB_FAULTS = (FAULT_WORKER_KILL, FAULT_JOB_EXCEPTION, FAULT_HANG)
JOURNAL_FAULTS = (FAULT_JOURNAL_TRUNCATE, FAULT_JOURNAL_BITFLIP)
#: Infrastructure faults: not tied to one job.  ``pool-init-failure``
#: breaks the first worker pool while it is still being populated (the
#: rebuild must heal it); ``journal-enospc`` makes a mid-sweep journal
#: append raise ``OSError(ENOSPC)`` (the sweep must finish unjournaled).
INFRA_FAULTS = (FAULT_POOL_INIT, FAULT_JOURNAL_ENOSPC)
ALL_FAULTS = JOB_FAULTS + JOURNAL_FAULTS + INFRA_FAULTS


class ChaosPlan:
    """A seeded, picklable fault schedule (the executors' attempt hook).

    ``job_faults`` maps job_id -> fault kind, fired on that job's first
    attempt only.  The plan records the driver's pid so a worker-kill
    fault never kills the driver itself: executed in-process (serial
    backend or degraded pool) it downgrades to an :class:`InjectedFault`.
    """

    def __init__(self, seed, job_faults, hang_seconds=2.0,
                 journal_faults=(), infra_faults=()):
        self.seed = seed
        self.job_faults = dict(job_faults)
        self.hang_seconds = hang_seconds
        self.journal_faults = tuple(journal_faults)
        self.infra_faults = tuple(infra_faults)
        self.init_sentinel = None
        self.driver_pid = os.getpid()

    def fault_for(self, job, attempt):
        """The fault to fire for this attempt (None for no fault).

        Keys in ``job_faults`` may be job_ids or ``benchmark/policy``
        pairs -- the latter lets callers (the figures chaos smoke) target
        a job without precomputing its configuration-dependent job_id.
        Grouped execution keeps this targeting surface: the executors
        fire the attempt hook once per *member* evaluation, so a fault
        keyed by a member's job_id or cell lands inside whichever
        grouped job carries it.
        """
        if attempt != 1:
            return None
        kind = self.job_faults.get(job.job_id)
        if kind is None:
            kind = self.job_faults.get("%s/%s"
                                       % (job.benchmark, job.policy))
        return kind

    def arm_init_fault(self, sentinel_path):
        """Arm ``pool-init-failure``: the first worker whose initializer
        creates ``sentinel_path`` raises, breaking its whole pool; every
        later initializer (the rebuilt pool) finds the sentinel and
        succeeds -- so the fault fires exactly once per campaign."""
        self.init_sentinel = sentinel_path

    def init_fault(self):
        """Fire the armed pool-initializer fault (worker side)."""
        if (FAULT_POOL_INIT not in self.infra_faults
                or self.init_sentinel is None):
            return
        try:
            open(self.init_sentinel, "x").close()
        except FileExistsError:
            return
        raise InjectedFault("injected pool-initializer failure "
                            "(first pool only)")

    def __call__(self, job, attempt):
        kind = self.fault_for(job, attempt)
        if kind is None:
            return
        if kind == FAULT_WORKER_KILL:
            if os.getpid() == self.driver_pid:
                raise InjectedFault(
                    "worker-kill downgraded to exception in-process "
                    "(job %s)" % job.job_id)
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == FAULT_HANG:
            time.sleep(self.hang_seconds)
            raise InjectedFault(
                "hang outlived its %.2fs sleep without being timed out "
                "(job %s)" % (self.hang_seconds, job.job_id))
        elif kind == FAULT_JOB_EXCEPTION:
            raise InjectedFault("injected exception (job %s, attempt %d)"
                                % (job.job_id, attempt))


def _install_in_worker(plan):
    """Pool initializer: arm the plan in a freshly forked worker.

    Also the injection point for ``pool-init-failure``: the raise
    happens here, while the pool is still being populated, which is the
    exact window a real initializer bug (bad import, missing mount)
    would hit.
    """
    set_attempt_hook(plan)
    plan.init_fault()


def build_plan(jobs, seed, faults=ALL_FAULTS, hang_seconds=2.0):
    """Derive the deterministic fault schedule for ``jobs``.

    Each requested job-fault kind is assigned to one distinct job,
    chosen by a named RNG stream off ``seed`` -- same inputs, same
    schedule, on every machine.
    """
    unknown = set(faults) - set(ALL_FAULTS)
    if unknown:
        raise ReproError("unknown fault kind(s): %s (expected %s)"
                         % (", ".join(sorted(unknown)),
                            ", ".join(ALL_FAULTS)))
    rng = DeterministicRng(seed).stream("chaos.targets")
    available = [job.job_id for job in jobs]
    job_faults = {}
    for kind in JOB_FAULTS:
        if kind not in faults or not available:
            continue
        job_faults[available.pop(rng.randrange(len(available)))] = kind
    journal_faults = tuple(k for k in JOURNAL_FAULTS if k in faults)
    infra_faults = tuple(k for k in INFRA_FAULTS if k in faults)
    return ChaosPlan(seed, job_faults, hang_seconds=hang_seconds,
                     journal_faults=journal_faults,
                     infra_faults=infra_faults)


def corrupt_journal(path, faults, seed):
    """Apply the journal faults to ``path``; returns what was done.

    ``journal-truncate`` replays a mid-write kill: the final record is
    cut in half.  ``journal-bitflip`` replays silent media corruption:
    one digit somewhere in a seed-chosen record gets its low bit
    flipped -- the payload may stay syntactically valid JSON, which is
    exactly the case only the CRC32 field can catch.
    """
    applied = []
    if not os.path.exists(path):
        return applied
    rng = DeterministicRng(seed).stream("chaos.journal")
    if FAULT_JOURNAL_TRUNCATE in faults:
        with open(path, "rb") as handle:
            data = handle.read()
        stripped = data.rstrip(b"\n")
        line_start = stripped.rfind(b"\n") + 1
        line_len = len(stripped) - line_start
        if line_len > 2:
            cut = line_start + line_len // 2
            with open(path, "wb") as handle:
                handle.write(data[:cut])
            applied.append("truncated final record to %d of %d bytes"
                           % (line_len // 2, line_len))
    if FAULT_JOURNAL_BITFLIP in faults:
        with open(path) as handle:
            lines = handle.read().splitlines()
        if lines:
            target = rng.randrange(len(lines))
            line = lines[target]
            digits = [i for i, ch in enumerate(line) if ch.isdigit()]
            if digits:
                at = digits[rng.randrange(len(digits))]
                lines[target] = (line[:at] + chr(ord(line[at]) ^ 1)
                                 + line[at + 1:])
                with open(path, "w") as handle:
                    handle.write("\n".join(lines) + "\n")
                applied.append("flipped low bit of byte %d in record %d"
                               % (at, target))
    return applied


def _enospc_journal(path, fail_at=2):
    """A ``JobJournal`` whose ``fail_at``-th append raises ``ENOSPC``.

    Replays a full disk mid-sweep.  Only that one append raises: the
    executor is expected to drop the journal on the first ``OSError``
    (emitting ``JOURNAL_DEGRADED``) and finish the sweep from memory,
    so a later append would be a bug, not a heal.
    """
    import errno

    from repro.sim.checkpoint import JobJournal

    class EnospcJournal(JobJournal):
        def __init__(self, journal_path):
            super().__init__(journal_path)
            self._appends = 0

        def record(self, job, result):
            self._appends += 1
            if self._appends == fail_at:
                raise OSError(errno.ENOSPC,
                              "injected: no space left on device")
            return super().record(job, result)

    return EnospcJournal(path)


def result_digest(result):
    """sha256 over everything a run asserts: cycles, IPC inputs, stats."""
    payload = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "stats": result.stats.as_dict(),
        "miss_rates": dict(result.miss_summary),
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclasses.dataclass
class ChaosReport:
    """Outcome of one chaos campaign (see :func:`run_chaos`)."""

    identical: bool
    seed: int
    faults: tuple
    total_jobs: int
    injected: dict          # job_id -> fault kind
    journal_corruption: list
    attempts: dict          # job_id -> attempts across both phases
    failures: list          # JobResult dicts for terminal failures
    mismatches: list        # job_ids whose digest diverged
    quarantined_lines: int
    resumed_jobs: int
    reexecuted_jobs: int
    pool_rebuilds: int
    degraded: bool
    retry_events: int
    failed_events: int
    degraded_events: int
    stats_digest: str       # sha256 over the per-job digests, in order
    journal_path: str
    rej_path: str
    journal_degraded_events: int = 0

    def as_dict(self):
        return dataclasses.asdict(self)

    def render(self):
        lines = ["chaos campaign: seed=%d faults=%s"
                 % (self.seed, ",".join(self.faults))]
        lines.append("  injected: %s" % (
            ", ".join("%s->%s" % (kind, job_id)
                      for job_id, kind in sorted(self.injected.items(),
                                                 key=lambda kv: kv[1]))
            or "none"))
        for note in self.journal_corruption:
            lines.append("  journal: %s" % note)
        retried = sum(1 for n in self.attempts.values() if n > 1)
        lines.append("  %d job(s): %d retried, %d resumed from journal, "
                     "%d re-executed after quarantine"
                     % (self.total_jobs, retried, self.resumed_jobs,
                        self.reexecuted_jobs))
        lines.append("  pool rebuilds: %d%s; events: %d retry, %d "
                     "failed, %d degraded"
                     % (self.pool_rebuilds,
                        " (degraded to serial)" if self.degraded else "",
                        self.retry_events, self.failed_events,
                        self.degraded_events))
        if self.journal_degraded_events:
            lines.append("  journal degraded mid-sweep (%d event(s)): "
                         "append failed, run finished unjournaled"
                         % self.journal_degraded_events)
        if self.quarantined_lines:
            lines.append("  quarantined %d journal line(s) -> %s"
                         % (self.quarantined_lines, self.rej_path))
        if self.failures:
            lines.append("  TERMINAL FAILURES: %s" % self.failures)
        lines.append("  stats digest: %s" % self.stats_digest)
        lines.append("verdict: %s" % (
            "bit-identical to the fault-free serial run"
            if self.identical else
            "DIVERGED from the fault-free serial run: %s"
            % (self.mismatches or "(missing results)")))
        return "\n".join(lines)


def run_chaos(benchmarks=("gzip",),
              policies=("decrypt-only", "authen-then-commit",
                        "authen-then-issue"),
              num_instructions=1500, warmup=750, seed=0,
              faults=ALL_FAULTS, workers=2, hang_seconds=2.0,
              timeout=0.75, max_attempts=4, workdir=None, tracer=None):
    """Run one chaos campaign; returns a :class:`ChaosReport`.

    Three phases:

    1. *Reference*: the job grid runs clean and serial; per-job digests
       are the ground truth.
    2. *Fault phase*: the same grid runs against a journal with the
       seeded job faults armed (pool workers get the plan via the pool
       initializer; the driver gets it for serial/degraded execution)
       under a retry-then-skip policy with a per-attempt timeout.
    3. *Recovery phase*: the journal is corrupted per the schedule,
       then the grid is re-run against it -- quarantined and lost
       records must be re-simulated, everything else resumed.

    The campaign passes when phase 3's results are bit-identical to
    phase 1's for every job and nothing failed terminally.
    """
    from repro.obs import MemorySink, Tracer
    from repro.sim.checkpoint import JobJournal

    jobs = build_jobs(list(benchmarks), list(policies),
                      num_instructions=num_instructions, warmup=warmup)
    reference = SerialExecutor().run(jobs)
    ref_digests = {job.job_id: result_digest(reference[job])
                   for job in jobs}

    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(workdir, exist_ok=True)
    journal_path = os.path.join(workdir, "chaos.journal")
    for stale in (journal_path, journal_path + ".rej"):
        if os.path.exists(stale):
            os.remove(stale)

    plan = build_plan(jobs, seed, faults, hang_seconds=hang_seconds)
    sentinel = os.path.join(workdir, "pool-init.sentinel")
    if os.path.exists(sentinel):
        os.remove(sentinel)
    if FAULT_POOL_INIT in plan.infra_faults:
        plan.arm_init_fault(sentinel)
    policy = FailurePolicy(mode=RETRY_THEN_SKIP,
                           max_attempts=max_attempts, timeout=timeout,
                           backoff_base=0.01, backoff_max=0.05,
                           jitter_seed=seed)
    sink = MemorySink()
    own_tracer = tracer if tracer is not None else Tracer([sink])

    # Phase 2: run with faults armed.
    attempts = {}
    failures = []
    if FAULT_JOURNAL_ENOSPC in plan.infra_faults:
        phase2_journal = _enospc_journal(journal_path)
    else:
        phase2_journal = JobJournal(journal_path)
    previous = set_attempt_hook(plan)
    try:
        if workers and workers > 1:
            executor = ParallelExecutor(
                workers, initializer=_install_in_worker,
                initargs=(plan,))
        else:
            executor = SerialExecutor()
        with executor:
            executor.run(jobs, journal=phase2_journal,
                         tracer=own_tracer, failure_policy=policy)
            for job_id, outcome in executor.last_outcomes.items():
                attempts[job_id] = outcome.attempts
                if outcome.status == "failed":
                    failures.append(outcome.as_dict())
            pool_rebuilds = getattr(executor, "rebuilds", 0)
            degraded = getattr(executor, "degraded", False)
    finally:
        set_attempt_hook(previous)

    # Phase 3: corrupt the journal, then heal by resuming (no faults
    # armed: the hook is restored, workers are fresh).
    corruption = corrupt_journal(journal_path, plan.journal_faults, seed)
    journal = JobJournal(journal_path)
    healer = SerialExecutor()
    final = healer.run(jobs, journal=journal, tracer=own_tracer,
                       failure_policy=policy)
    resumed = reexecuted = 0
    for job_id, outcome in healer.last_outcomes.items():
        if outcome.status == STATUS_RESUMED:
            resumed += 1
        else:
            reexecuted += 1
            attempts[job_id] = attempts.get(job_id, 0) + outcome.attempts
            if outcome.status == "failed":
                failures.append(outcome.as_dict())

    mismatches = []
    digests = []
    for job in jobs:
        if job not in final:
            mismatches.append(job.job_id)
            continue
        digest = result_digest(final[job])
        digests.append(digest)
        if digest != ref_digests[job.job_id]:
            mismatches.append(job.job_id)
    stats_digest = hashlib.sha256(
        "".join(digests).encode()).hexdigest()

    events = sink.events if tracer is None else ()
    return ChaosReport(
        identical=not mismatches and not failures,
        seed=seed,
        faults=tuple(faults),
        total_jobs=len(jobs),
        injected=dict(plan.job_faults),
        journal_corruption=corruption,
        attempts=attempts,
        failures=failures,
        mismatches=mismatches,
        quarantined_lines=journal.quarantined_lines,
        resumed_jobs=resumed,
        reexecuted_jobs=reexecuted,
        pool_rebuilds=pool_rebuilds,
        degraded=degraded,
        retry_events=sum(1 for e in events if e.kind == JOB_RETRY),
        failed_events=sum(1 for e in events if e.kind == JOB_FAILED),
        degraded_events=sum(1 for e in events
                            if e.kind == BACKEND_DEGRADED),
        stats_digest=stats_digest,
        journal_path=journal_path,
        rej_path=journal.rej_path,
        journal_degraded_events=sum(1 for e in events
                                    if e.kind == JOURNAL_DEGRADED),
    )


@dataclasses.dataclass
class GroupChaosReport:
    """Outcome of one :func:`run_group_chaos` campaign."""

    identical: bool
    seed: int
    benchmarks: tuple
    policies: tuple
    victim: str             # "benchmark/policy" cell the faults target
    total_members: int
    pool_rebuilds: int      # worker-kill phase pool losses
    degraded: bool          # worker-kill phase fell back to serial
    journaled_before_kill: int
    resume_exact: bool      # resume re-ran ONLY the unfinished members
    resumed_members: int
    reexecuted_members: int
    mismatches: list        # member job_ids whose digest diverged
    failures: list          # terminal JobResult dicts from any phase
    stats_digest: str
    workdir: str

    def as_dict(self):
        return dataclasses.asdict(self)

    def render(self):
        lines = ["grouped chaos campaign: seed=%d victim=%s"
                 % (self.seed, self.victim)]
        lines.append("  %d benchmark group(s) x %d policies "
                     "(%d member evaluations)"
                     % (len(self.benchmarks), len(self.policies),
                        self.total_members))
        lines.append("  worker-kill phase: %d pool rebuild(s)%s, "
                     "results complete"
                     % (self.pool_rebuilds,
                        " (degraded to serial)" if self.degraded
                        else ""))
        lines.append("  mid-group kill: %d member(s) journaled before "
                     "the fault; resume re-ran %d, resumed %d -- %s"
                     % (self.journaled_before_kill,
                        self.reexecuted_members, self.resumed_members,
                        "exactly the unfinished members"
                        if self.resume_exact else
                        "WRONG member set re-executed"))
        if self.failures:
            lines.append("  TERMINAL FAILURES: %s" % self.failures)
        lines.append("  stats digest: %s" % self.stats_digest)
        lines.append("verdict: %s" % (
            "bit-identical to the fault-free per-job run"
            if self.identical else
            "DIVERGED from the fault-free per-job run: %s"
            % (self.mismatches or "(resume or failure gate)")))
        return "\n".join(lines)


def run_group_chaos(benchmarks=("gzip", "mcf"),
                    policies=("decrypt-only", "authen-then-commit",
                              "authen-then-issue", "authen-then-write"),
                    num_instructions=1500, warmup=750, seed=0,
                    workers=2, timeout=30.0, max_attempts=4,
                    workdir=None):
    """Chaos campaign for the grouped (decode once, evaluate N) path.

    Three phases against a fault-free *per-job* serial reference:

    1. *Worker-kill phase*: the grouped sweep runs on a worker pool with
       a ``worker-kill`` armed against a mid-group member (second
       policy of the first benchmark's group).  The pool keeps dying --
       a killed worker never charges an attempt -- until the executor
       degrades to in-process execution, where the kill downgrades to
       an :class:`InjectedFault` the retry policy heals.  Results must
       come back complete and bit-identical.
    2. *Mid-group kill*: the same grouped sweep runs serially under
       fail-fast with an exception armed against the same member; the
       run aborts mid-group, leaving a journal holding exactly the
       members that completed before the fault (incremental mid-group
       journaling).
    3. *Resume gate*: the grouped sweep re-runs against that torn
       journal.  The gate: every journaled member resumes from disk,
       **only** the unfinished evaluations re-run, and the merged
       results are bit-identical to the reference.
    """
    from repro.exec.job import build_job_groups
    from repro.sim.checkpoint import JobJournal

    benchmarks = list(benchmarks)
    policies = list(policies)
    if len(policies) < 3:
        raise ReproError("run_group_chaos needs >= 3 policies so the "
                         "fault can land mid-group")
    jobs = build_jobs(benchmarks, policies,
                      num_instructions=num_instructions, warmup=warmup)
    groups = build_job_groups(benchmarks, policies,
                              num_instructions=num_instructions,
                              warmup=warmup)
    reference = SerialExecutor().run(jobs)
    ref_digests = {job.job_id: result_digest(reference[job])
                   for job in jobs}

    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-groupchaos-")
    os.makedirs(workdir, exist_ok=True)

    victim_index = 1   # second member: mid-group, never the first
    victim = "%s/%s" % (benchmarks[0], policies[victim_index])
    failures = []

    # Phase 1: worker-kill against the victim member, grouped, on a
    # pool.  Heals via pool rebuild -> degradation -> in-process retry.
    plan = ChaosPlan(seed, {victim: FAULT_WORKER_KILL})
    retry_policy = FailurePolicy(mode=RETRY_THEN_SKIP,
                                 max_attempts=max_attempts,
                                 timeout=timeout, backoff_base=0.01,
                                 backoff_max=0.05, jitter_seed=seed)
    kill_journal = os.path.join(workdir, "group-kill.journal")
    if os.path.exists(kill_journal):
        os.remove(kill_journal)
    previous = set_attempt_hook(plan)
    try:
        if workers and workers > 1:
            executor = ParallelExecutor(
                workers, initializer=_install_in_worker,
                initargs=(plan,))
        else:
            executor = SerialExecutor()
        with executor:
            killed = executor.run(groups,
                                  journal=JobJournal(kill_journal),
                                  failure_policy=retry_policy)
            pool_rebuilds = getattr(executor, "rebuilds", 0)
            degraded = getattr(executor, "degraded", False)
            failures.extend(outcome.as_dict() for outcome
                            in executor.failures.values())
    finally:
        set_attempt_hook(previous)
    kill_mismatches = [
        member.job_id
        for group in groups for member in group.member_jobs
        if member not in killed
        or result_digest(killed[member]) != ref_digests[member.job_id]]

    # Phase 2: abort mid-group under fail-fast, leaving a torn journal.
    resume_journal = os.path.join(workdir, "group-resume.journal")
    if os.path.exists(resume_journal):
        os.remove(resume_journal)
    plan2 = ChaosPlan(seed, {victim: FAULT_JOB_EXCEPTION})
    previous = set_attempt_hook(plan2)
    try:
        SerialExecutor().run(groups, journal=JobJournal(resume_journal),
                             failure_policy=FailurePolicy())
        raise ReproError("mid-group fault never fired (victim %s "
                         "matched no member)" % victim)
    except InjectedFault:
        pass
    finally:
        set_attempt_hook(previous)
    journaled = set(JobJournal(resume_journal).completed_ids)
    expected_prefix = {member.job_id for member
                       in groups[0].member_jobs[:victim_index]}

    # Phase 3: resume.  Only the unfinished members may re-run.
    healer = SerialExecutor()
    final = healer.run(groups, journal=JobJournal(resume_journal),
                       failure_policy=retry_policy)
    resumed = {job_id for job_id, outcome
               in healer.last_outcomes.items()
               if outcome.status == STATUS_RESUMED}
    reexecuted = {job_id for job_id, outcome
                  in healer.last_outcomes.items()
                  if outcome.status != STATUS_RESUMED}
    failures.extend(outcome.as_dict() for outcome
                    in healer.failures.values())
    resume_exact = (journaled == expected_prefix
                    and resumed == journaled
                    and reexecuted == set(ref_digests) - journaled)

    mismatches = []
    digests = []
    for job in jobs:
        match = next((result for member, result in final.items()
                      if member.job_id == job.job_id), None)
        if match is None:
            mismatches.append(job.job_id)
            continue
        digest = result_digest(match)
        digests.append(digest)
        if digest != ref_digests[job.job_id]:
            mismatches.append(job.job_id)
    mismatches.extend(job_id for job_id in kill_mismatches
                      if job_id not in mismatches)
    stats_digest = hashlib.sha256("".join(digests).encode()).hexdigest()

    return GroupChaosReport(
        identical=(not mismatches and not failures and resume_exact),
        seed=seed,
        benchmarks=tuple(benchmarks),
        policies=tuple(policies),
        victim=victim,
        total_members=len(jobs),
        pool_rebuilds=pool_rebuilds,
        degraded=degraded,
        journaled_before_kill=len(journaled),
        resume_exact=resume_exact,
        resumed_members=len(resumed),
        reexecuted_members=len(reexecuted),
        mismatches=mismatches,
        failures=failures,
        stats_digest=stats_digest,
        workdir=workdir,
    )


@dataclasses.dataclass
class FiguresChaosReport:
    """Outcome of one :func:`run_figures_chaos` campaign."""

    identical: bool
    seed: int
    figures: tuple
    benchmarks: tuple
    injected: dict          # target key -> fault kind
    mismatches: list        # artifact names whose bytes diverged
    failures: int           # terminal failures in the faulted run
    pool_rebuilds: int
    degraded: bool
    reference_dir: str
    faulted_dir: str

    def as_dict(self):
        return dataclasses.asdict(self)

    def render(self):
        lines = ["figures chaos campaign: seed=%d figures=%s"
                 % (self.seed, ",".join(self.figures))]
        lines.append("  injected: %s" % (
            ", ".join("%s->%s" % (kind, key)
                      for key, kind in sorted(self.injected.items(),
                                              key=lambda kv: kv[1]))
            or "none"))
        lines.append("  pool rebuilds: %d%s; terminal failures: %d"
                     % (self.pool_rebuilds,
                        " (degraded to serial)" if self.degraded else "",
                        self.failures))
        lines.append("verdict: %s" % (
            "artifacts byte-identical to the fault-free serial run"
            if self.identical else
            "artifacts DIVERGED from the fault-free serial run: %s"
            % (self.mismatches or "(terminal failures)")))
        return "\n".join(lines)


def run_figures_chaos(figures=("fig8",), benchmarks=("gzip", "mcf"),
                      num_instructions=1200, warmup=600, seed=0,
                      workers=2, timeout=30.0, max_attempts=4,
                      target_policy="authen-then-issue", workdir=None):
    """Chaos smoke for ``repro figures``: kill a worker mid-regeneration
    under a retry policy, assert the artifacts come out byte-identical.

    Two phases: a clean serial :func:`~repro.experiments.figures.\
run_figures` produces the reference artifacts, then the same figure set
    regenerates on a worker pool with a ``worker-kill`` armed against
    the first benchmark's first job (targeted by ``benchmark/policy``
    key, so no job_id precomputation).  The kill never charges an
    attempt, so the pool keeps dying until the executor degrades to
    serial execution -- where the plan downgrades the kill to an
    :class:`InjectedFault` that the retry policy heals.  The campaign
    passes when every ``<name>.txt`` is byte-for-byte the reference and
    nothing failed terminally.
    """
    from repro.experiments.figures import ARTIFACTS, run_figures

    figures = tuple(figures)
    unknown = set(figures) - set(ARTIFACTS)
    if unknown:
        raise ReproError("unknown figure(s): %s (expected %s)"
                         % (", ".join(sorted(unknown)),
                            ", ".join(ARTIFACTS)))
    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-figchaos-")
    os.makedirs(workdir, exist_ok=True)
    scale = dict(num_instructions=num_instructions, warmup=warmup,
                 benchmarks=tuple(benchmarks))

    reference = run_figures(figures, os.path.join(workdir, "reference"),
                            jobs=1, **scale)

    # ``target_policy`` must name a policy the chosen figure set really
    # sweeps (the default matches fig8's reference policy) -- a key that
    # matches no job would make the campaign pass without ever injecting.
    target = "%s/%s" % (benchmarks[0], target_policy)
    plan = ChaosPlan(seed, {target: FAULT_WORKER_KILL})
    policy = FailurePolicy(mode=RETRY_THEN_SKIP,
                           max_attempts=max_attempts, timeout=timeout,
                           backoff_base=0.01, backoff_max=0.05,
                           jitter_seed=seed)
    previous = set_attempt_hook(plan)
    try:
        with ParallelExecutor(workers, initializer=_install_in_worker,
                              initargs=(plan,)) as executor:
            faulted = run_figures(
                figures, os.path.join(workdir, "faulted"),
                executor=executor, failure_policy=policy, **scale)
            pool_rebuilds = executor.rebuilds
            degraded = executor.degraded
    finally:
        set_attempt_hook(previous)

    mismatches = []
    for name in figures:
        with open(reference["artifact_paths"][name], "rb") as handle:
            want = handle.read()
        with open(faulted["artifact_paths"][name], "rb") as handle:
            got = handle.read()
        if want != got:
            mismatches.append(name)
    failures = faulted["total_failures"]
    return FiguresChaosReport(
        identical=not mismatches and not failures,
        seed=seed,
        figures=figures,
        benchmarks=tuple(benchmarks),
        injected=dict(plan.job_faults),
        mismatches=mismatches,
        failures=failures,
        pool_rebuilds=pool_rebuilds,
        degraded=degraded,
        reference_dir=os.path.join(workdir, "reference"),
        faulted_dir=os.path.join(workdir, "faulted"),
    )


@dataclasses.dataclass
class StoreChaosReport:
    """Outcome of one :func:`run_store_chaos` campaign."""

    identical: bool
    seed: int
    benchmarks: tuple
    policies: tuple
    injected: dict          # entry basename -> fault kind
    quarantined: int        # entries quarantined during the heal run
    lock_breaks: int        # stale single-flight locks broken
    store_hits: int         # heal-run jobs served from intact entries
    regenerated: int        # heal-run jobs that had to re-simulate
    total_jobs: int
    mismatches: list        # job_ids whose digest diverged (any phase)
    stats_digest: str
    workdir: str

    def as_dict(self):
        return dataclasses.asdict(self)

    def render(self):
        lines = ["store chaos campaign: seed=%d" % self.seed]
        lines.append("  %d benchmark(s) x %d policies (%d jobs) through "
                     "a populated artifact store"
                     % (len(self.benchmarks), len(self.policies),
                        self.total_jobs))
        lines.append("  injected: %s" % (
            ", ".join("%s->%s" % (kind, name[:12])
                      for name, kind in sorted(self.injected.items(),
                                               key=lambda kv: kv[1]))
            or "none"))
        lines.append("  heal run: %d quarantined, %d stale lock(s) "
                     "broken, %d store hit(s), %d regenerated"
                     % (self.quarantined, self.lock_breaks,
                        self.store_hits, self.regenerated))
        lines.append("  stats digest: %s" % self.stats_digest)
        lines.append("verdict: %s" % (
            "bit-identical to the store-free run; corruption was "
            "quarantined and regenerated"
            if self.identical else
            "FAILED: %s" % (self.mismatches
                            or "(quarantine/lock-break gate)")))
        return "\n".join(lines)


def _exit_immediately():
    """Target whose prompt death leaves a provably-dead lock owner pid."""


def run_store_chaos(benchmarks=("gzip", "mcf"),
                    policies=("decrypt-only", "authen-then-commit",
                              "authen-then-issue"),
                    num_instructions=1500, warmup=750, seed=0,
                    workdir=None):
    """Chaos campaign for the persistent artifact store.

    Four phases, all serial (the store's cross-process behaviour is
    exercised through real files, not a pool):

    1. *Reference*: the sweep with no store -- the digests every later
       phase must reproduce.
    2. *Populate*: the same sweep against an empty store (cold), filling
       the trace and result tiers.
    3. *Corrupt*: the first job's trace entry is truncated mid-payload,
       its result entry gets one byte flipped, and a single-flight lock
       for the truncated trace is planted with the pid of a process that
       has already exited -- the killed-worker-left-a-lock case.
    4. *Heal*: the sweep reruns against the damaged store.  The gate:
       both corrupt entries are quarantined (never misread), the stale
       lock is broken rather than waited out, every undamaged job is
       served from the store, exactly the damaged job re-simulates, and
       all digests are bit-identical to the reference.
    """
    import multiprocessing

    from repro.exec.cache import TraceCache
    from repro.exec.store import ArtifactStore, set_active_store

    benchmarks = list(benchmarks)
    policies = list(policies)
    jobs = build_jobs(benchmarks, policies,
                      num_instructions=num_instructions, warmup=warmup)
    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-storechaos-")
    os.makedirs(workdir, exist_ok=True)
    store_dir = os.path.join(workdir, "store")

    def run_jobs(store):
        previous = set_active_store(store)
        try:
            executor = SerialExecutor(cache=TraceCache())
            results = executor.run(jobs)
        finally:
            set_active_store(previous)
        return executor, results

    _, reference = run_jobs(None)
    ref_digests = {job.job_id: result_digest(reference[job])
                   for job in jobs}

    populate_store = ArtifactStore(store_dir)
    _, populated = run_jobs(populate_store)
    mismatches = [job.job_id for job in jobs
                  if result_digest(populated[job])
                  != ref_digests[job.job_id]]

    # Corruption targets one job end to end: flipping its result forces
    # a re-simulation, which forces a read of its (truncated) trace,
    # which forces regeneration under the (stale-locked) single flight.
    victim = jobs[0]
    trace_entry = populate_store.trace_name(
        victim.benchmark, victim.trace_length, victim.effective_seed)
    trace_path = os.path.join(store_dir, "traces", trace_entry)
    with open(trace_path, "r+b") as handle:
        handle.truncate(max(os.path.getsize(trace_path) // 3, 40))
    result_entry = populate_store.result_name(victim) + ".json"
    result_path = os.path.join(store_dir, "results", result_entry)
    with open(result_path, "r+b") as handle:
        body = bytearray(handle.read())
        body[len(body) // 2] ^= 0x01
        handle.seek(0)
        handle.write(bytes(body))
    proc = multiprocessing.Process(target=_exit_immediately)
    proc.start()
    proc.join()
    lock_path = os.path.join(store_dir, "locks",
                             "traces-%s.lock" % trace_entry)
    with open(lock_path, "w") as handle:
        # Recording our own hostname keeps the pid-liveness check in
        # play: locks from *foreign* hosts age out instead (their pids
        # mean nothing here), which is its own satellite-tested path.
        json.dump({"pid": proc.pid, "host": socket.gethostname(),
                   "created": time.time()}, handle)
    injected = {trace_entry: "entry-truncate",
                result_entry: "entry-bitflip",
                os.path.basename(lock_path): "stale-lock"}

    heal_store = ArtifactStore(store_dir)
    healer, healed = run_jobs(heal_store)
    for job in jobs:
        if (job not in healed
                or result_digest(healed[job]) != ref_digests[job.job_id]):
            if job.job_id not in mismatches:
                mismatches.append(job.job_id)
    store_hits = sum(1 for outcome in healer.last_outcomes.values()
                     if outcome.store_hit)
    quarantined = heal_store.counters["quarantined"]
    lock_breaks = heal_store.counters["lock_breaks"]
    digests = [ref_digests[job.job_id] for job in jobs]
    stats_digest = hashlib.sha256("".join(digests).encode()).hexdigest()

    return StoreChaosReport(
        identical=(not mismatches
                   and quarantined >= 2
                   and lock_breaks >= 1
                   and store_hits == len(jobs) - 1),
        seed=seed,
        benchmarks=tuple(benchmarks),
        policies=tuple(policies),
        injected=injected,
        quarantined=quarantined,
        lock_breaks=lock_breaks,
        store_hits=store_hits,
        regenerated=len(jobs) - store_hits,
        total_jobs=len(jobs),
        mismatches=mismatches,
        stats_digest=stats_digest,
        workdir=workdir,
    )


@dataclasses.dataclass
class DistChaosReport:
    """Outcome of one :func:`run_dist_chaos` campaign."""

    identical: bool
    seed: int
    benchmarks: tuple
    policies: tuple
    total_members: int
    # host-death campaign
    host_losses: int        # hosts the driver declared dead
    lease_breaks: int       # expired leases released back to the spool
    victim_records: int     # members the victim journaled before dying
    exactly_once: bool      # every member executed once across segments
    duplicates: list        # member job_ids executed more than once
    death_mismatches: list  # digest divergence in the host-death phase
    # split-journal campaign
    split_records: int      # intact records after the torn-tail resume
    split_quarantined: int  # lines quarantined (must be the tear alone)
    split_resumed: int      # members resumed, not re-simulated
    split_mismatches: list
    # degrade-to-local campaign
    degraded_ok: bool       # empty fleet finished in-process, identical
    failures: list          # terminal JobResult dicts from any phase
    stats_digest: str
    workdir: str

    def as_dict(self):
        return dataclasses.asdict(self)

    def render(self):
        lines = ["dist chaos campaign: seed=%d" % self.seed]
        lines.append("  %d benchmark group(s) x %d policies (%d member "
                     "jobs) over a shared spool"
                     % (len(self.benchmarks), len(self.policies),
                        self.total_members))
        lines.append("  host death: victim journaled %d member(s) then "
                     "died; %d host loss(es), %d lease break(s), "
                     "re-run exactly once: %s"
                     % (self.victim_records, self.host_losses,
                        self.lease_breaks,
                        "yes" if self.exactly_once
                        else "NO %s" % self.duplicates))
        lines.append("  split journal: %d intact record(s), %d "
                     "quarantined, %d resumed without re-simulation"
                     % (self.split_records, self.split_quarantined,
                        self.split_resumed))
        lines.append("  degrade-to-local: %s"
                     % ("empty fleet finished in-process, bit-identical"
                        if self.degraded_ok else "FAILED"))
        if self.failures:
            lines.append("  TERMINAL FAILURES: %s" % self.failures)
        lines.append("  stats digest: %s" % self.stats_digest)
        mismatches = self.death_mismatches + self.split_mismatches
        lines.append("verdict: %s" % (
            "bit-identical to the fault-free serial run across every "
            "campaign" if self.identical else
            "FAILED: %s" % (mismatches or "(recovery gate)")))
        return "\n".join(lines)


def _dist_worker_main(spool, host_id, die_after=None, poll=0.05,
                      lease_timeout=1.0):
    """Child-process entry for the dist campaigns' worker daemons.

    ``die_after=N`` SIGKILLs the process right after its Nth journal
    append -- mid-unit by construction when units are multi-member
    groups -- which is exactly the host-death fault: the lease is left
    behind with a heartbeat that will never refresh again.
    """
    from repro.exec import dist

    state = {"records": 0}

    def on_record(member, result):
        state["records"] += 1
        if die_after is not None and state["records"] >= die_after:
            os.kill(os.getpid(), signal.SIGKILL)

    dist.run_worker(spool, host_id=host_id, poll=poll,
                    lease_timeout=lease_timeout,
                    on_record=on_record if die_after is not None
                    else None)


def run_dist_chaos(benchmarks=("gzip", "mcf"),
                   policies=("decrypt-only", "authen-then-commit",
                             "authen-then-issue"),
                   num_instructions=1500, warmup=750, seed=0,
                   lease_timeout=1.0, workdir=None):
    """Chaos campaign for the multi-host work-stealing backend.

    A fault-free serial run establishes per-member digests, then three
    campaigns over real worker processes and spool directories:

    1. *Host death*: a victim worker claims a group, journals exactly
       one member and SIGKILLs itself; a survivor worker plus the
       driver must detect the expired lease (``HOST_LOST``), re-claim
       the unit, skip the member the victim already published, and
       finish the sweep.  Gate: bit-identical results, at least one
       host loss, and every member executed *exactly once* across all
       journal segments.
    2. *Split journal*: two worker daemons share one ``--host-id`` so
       their appends interleave in a single journal segment; after the
       run the segment gets a torn partial record appended (the
       mid-write kill).  Re-opening it as a ``JobJournal`` plus a
       serial heal run must quarantine exactly the tear, resume every
       member from the concurrently-written records, and stay
       bit-identical after ``compact``.
    3. *Degrade to local*: a driver over an empty spool with no workers
       must degrade to in-process execution and still produce
       bit-identical results.
    """
    import multiprocessing

    from repro.exec import dist
    from repro.exec.job import build_job_groups
    from repro.sim.checkpoint import JobJournal

    benchmarks = list(benchmarks)
    policies = list(policies)
    if len(benchmarks) < 2:
        raise ReproError("dist chaos needs >= 2 benchmarks (the "
                         "survivor must have work while the victim "
                         "dies)")
    if len(policies) < 2:
        raise ReproError("dist chaos needs >= 2 policies (the victim "
                         "must die mid-group, after its first member)")
    jobs = build_jobs(benchmarks, policies,
                      num_instructions=num_instructions, warmup=warmup)
    groups = build_job_groups(benchmarks, policies,
                              num_instructions=num_instructions,
                              warmup=warmup)
    member_ids = {job.job_id for job in jobs}
    reference = SerialExecutor().run(jobs)
    ref_digests = {job.job_id: result_digest(reference[job])
                   for job in jobs}

    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-distchaos-")
    os.makedirs(workdir, exist_ok=True)
    failures = []
    retry_policy = FailurePolicy(mode=RETRY_THEN_SKIP, max_attempts=4,
                                 backoff_base=0.01, backoff_max=0.05,
                                 jitter_seed=seed)

    def reap(proc, timeout=60):
        proc.join(timeout=timeout)
        if proc.is_alive():
            proc.kill()
            proc.join()

    def mismatched(results):
        return sorted(job.job_id for job in jobs
                      if job not in results
                      or result_digest(results[job])
                      != ref_digests[job.job_id])

    # ---- campaign 1: host death ---------------------------------------
    spool_death = os.path.join(workdir, "spool-death")
    dist.ensure_spool(spool_death)
    dist.spool_jobs(spool_death, groups)
    victim = multiprocessing.Process(
        target=_dist_worker_main, args=(spool_death, "victim"),
        kwargs={"die_after": 1, "lease_timeout": lease_timeout})
    victim.start()
    reap(victim)   # it SIGKILLs itself after its first journal append
    survivor = multiprocessing.Process(
        target=_dist_worker_main, args=(spool_death, "survivor"),
        kwargs={"lease_timeout": lease_timeout})
    survivor.start()
    driver = dist.DistExecutor(spool_death, poll=0.05,
                               lease_timeout=lease_timeout,
                               degrade_after=120.0)
    try:
        death_results = driver.run(groups, failure_policy=retry_policy)
    finally:
        dist.request_stop(spool_death)
        reap(survivor)
    failures.extend(outcome.as_dict()
                    for outcome in driver.failures.values())
    death_mismatches = mismatched(death_results)
    counts = {}
    victim_records = 0
    journals_dir = os.path.join(spool_death, "journals")
    for name in sorted(os.listdir(journals_dir)):
        if not name.endswith(".journal"):
            continue
        records = dist.JournalTail(
            os.path.join(journals_dir, name)).poll()
        for record in records:
            counts[record["job_id"]] = counts.get(record["job_id"], 0) + 1
        if name == "victim.journal":
            victim_records = len(records)
    duplicates = sorted(job_id for job_id, n in counts.items() if n > 1)
    exactly_once = (set(counts) == member_ids and not duplicates)

    # ---- campaign 2: split journal ------------------------------------
    spool_split = os.path.join(workdir, "spool-split")
    dist.ensure_spool(spool_split)
    twins = [multiprocessing.Process(
        target=_dist_worker_main, args=(spool_split, "shared"),
        kwargs={"lease_timeout": lease_timeout}) for _ in range(2)]
    for twin in twins:
        twin.start()
    driver2 = dist.DistExecutor(spool_split, poll=0.05,
                                lease_timeout=lease_timeout,
                                degrade_after=120.0)
    try:
        split_results = driver2.run(groups, failure_policy=retry_policy)
    finally:
        dist.request_stop(spool_split)
        for twin in twins:
            reap(twin)
    failures.extend(outcome.as_dict()
                    for outcome in driver2.failures.values())
    split_mismatches = mismatched(split_results)
    segment = dist.segment_path(spool_split, "shared")
    with open(segment, "ab") as handle:
        # A mid-write kill: valid prefix of a record, no newline.
        handle.write(b'{"journal_version": 2, "job_id": "torn-wri')
    journal = JobJournal(segment)   # workers are gone: safe to rewrite
    split_quarantined = journal.quarantined_lines
    journal.compact(keep_ids=member_ids)
    healer = SerialExecutor()
    healed = healer.run(jobs, journal=JobJournal(segment),
                        failure_policy=retry_policy)
    failures.extend(outcome.as_dict()
                    for outcome in healer.failures.values())
    split_resumed = sum(1 for outcome in healer.last_outcomes.values()
                        if outcome.status == STATUS_RESUMED)
    split_mismatches += [job_id for job_id in mismatched(healed)
                         if job_id not in split_mismatches]
    split_records = len(journal)

    # ---- campaign 3: degrade to local ---------------------------------
    spool_local = os.path.join(workdir, "spool-local")
    driver3 = dist.DistExecutor(spool_local, poll=0.05,
                                lease_timeout=lease_timeout,
                                degrade_after=0.3)
    local_results = driver3.run(groups, failure_policy=retry_policy)
    failures.extend(outcome.as_dict()
                    for outcome in driver3.failures.values())
    degraded_ok = driver3.degraded and not mismatched(local_results)

    digests = [ref_digests[job.job_id] for job in jobs]
    stats_digest = hashlib.sha256("".join(digests).encode()).hexdigest()
    return DistChaosReport(
        identical=(not death_mismatches
                   and not split_mismatches
                   and not failures
                   and driver.host_losses >= 1
                   and victim_records >= 1
                   and exactly_once
                   and split_quarantined == 1
                   and split_resumed == len(jobs)
                   and degraded_ok),
        seed=seed,
        benchmarks=tuple(benchmarks),
        policies=tuple(policies),
        total_members=len(jobs),
        host_losses=driver.host_losses,
        lease_breaks=driver.lease_breaks,
        victim_records=victim_records,
        exactly_once=exactly_once,
        duplicates=duplicates,
        death_mismatches=death_mismatches,
        split_records=split_records,
        split_quarantined=split_quarantined,
        split_resumed=split_resumed,
        split_mismatches=split_mismatches,
        degraded_ok=degraded_ok,
        failures=failures,
        stats_digest=stats_digest,
        workdir=workdir,
    )
