"""Chaos harness: deterministically inject faults, prove recovery.

The paper argues a secure processor must keep producing correct results
while memory misbehaves; this module holds the sweep infrastructure to
the same standard.  Instead of hoping the retry/journal machinery works,
:func:`run_chaos` *injects* the failure modes -- killed workers, raised
exceptions, artificial hangs, journal truncation and bit flips -- from a
seeded schedule, then asserts the sweep still converges to results
bit-identical to a fault-free serial run (cycles, IPC and the sha256
stats digest of every job).

Determinism is the point: a :class:`ChaosPlan` is a pure function of
``(job list, seed, fault kinds)``, so a failing chaos run is exactly
reproducible with the same seed.  Fault injection rides the executors'
attempt hook (installed in pool workers via the pool initializer, and in
the driver for serial/degraded execution); job faults fire on a job's
*first* attempt only, so the retry path -- not luck -- is what heals the
sweep.
"""

import dataclasses
import hashlib
import json
import os
import signal
import time

from repro.errors import ReproError
from repro.exec.executor import (
    ParallelExecutor,
    SerialExecutor,
    set_attempt_hook,
)
from repro.exec.job import build_jobs
from repro.exec.retry import (
    RETRY_THEN_SKIP,
    STATUS_RESUMED,
    FailurePolicy,
)
from repro.obs.events import BACKEND_DEGRADED, JOB_FAILED, JOB_RETRY
from repro.util.rng import DeterministicRng


class InjectedFault(ReproError):
    """The exception a chaos schedule raises inside a job attempt."""


# ---- fault kinds ------------------------------------------------------

FAULT_WORKER_KILL = "worker-kill"          # SIGKILL the worker process
FAULT_JOB_EXCEPTION = "job-exception"      # raise InjectedFault
FAULT_HANG = "hang"                        # sleep past the timeout
FAULT_JOURNAL_TRUNCATE = "journal-truncate"  # tear the journal tail
FAULT_JOURNAL_BITFLIP = "journal-bitflip"    # flip one stored digit

JOB_FAULTS = (FAULT_WORKER_KILL, FAULT_JOB_EXCEPTION, FAULT_HANG)
JOURNAL_FAULTS = (FAULT_JOURNAL_TRUNCATE, FAULT_JOURNAL_BITFLIP)
ALL_FAULTS = JOB_FAULTS + JOURNAL_FAULTS


class ChaosPlan:
    """A seeded, picklable fault schedule (the executors' attempt hook).

    ``job_faults`` maps job_id -> fault kind, fired on that job's first
    attempt only.  The plan records the driver's pid so a worker-kill
    fault never kills the driver itself: executed in-process (serial
    backend or degraded pool) it downgrades to an :class:`InjectedFault`.
    """

    def __init__(self, seed, job_faults, hang_seconds=2.0,
                 journal_faults=()):
        self.seed = seed
        self.job_faults = dict(job_faults)
        self.hang_seconds = hang_seconds
        self.journal_faults = tuple(journal_faults)
        self.driver_pid = os.getpid()

    def fault_for(self, job, attempt):
        """The fault to fire for this attempt (None for no fault)."""
        if attempt != 1:
            return None
        return self.job_faults.get(job.job_id)

    def __call__(self, job, attempt):
        kind = self.fault_for(job, attempt)
        if kind is None:
            return
        if kind == FAULT_WORKER_KILL:
            if os.getpid() == self.driver_pid:
                raise InjectedFault(
                    "worker-kill downgraded to exception in-process "
                    "(job %s)" % job.job_id)
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == FAULT_HANG:
            time.sleep(self.hang_seconds)
            raise InjectedFault(
                "hang outlived its %.2fs sleep without being timed out "
                "(job %s)" % (self.hang_seconds, job.job_id))
        elif kind == FAULT_JOB_EXCEPTION:
            raise InjectedFault("injected exception (job %s, attempt %d)"
                                % (job.job_id, attempt))


def _install_in_worker(plan):
    """Pool initializer: arm the plan in a freshly forked worker."""
    set_attempt_hook(plan)


def build_plan(jobs, seed, faults=ALL_FAULTS, hang_seconds=2.0):
    """Derive the deterministic fault schedule for ``jobs``.

    Each requested job-fault kind is assigned to one distinct job,
    chosen by a named RNG stream off ``seed`` -- same inputs, same
    schedule, on every machine.
    """
    unknown = set(faults) - set(ALL_FAULTS)
    if unknown:
        raise ReproError("unknown fault kind(s): %s (expected %s)"
                         % (", ".join(sorted(unknown)),
                            ", ".join(ALL_FAULTS)))
    rng = DeterministicRng(seed).stream("chaos.targets")
    available = [job.job_id for job in jobs]
    job_faults = {}
    for kind in JOB_FAULTS:
        if kind not in faults or not available:
            continue
        job_faults[available.pop(rng.randrange(len(available)))] = kind
    journal_faults = tuple(k for k in JOURNAL_FAULTS if k in faults)
    return ChaosPlan(seed, job_faults, hang_seconds=hang_seconds,
                     journal_faults=journal_faults)


def corrupt_journal(path, faults, seed):
    """Apply the journal faults to ``path``; returns what was done.

    ``journal-truncate`` replays a mid-write kill: the final record is
    cut in half.  ``journal-bitflip`` replays silent media corruption:
    one digit somewhere in a seed-chosen record gets its low bit
    flipped -- the payload may stay syntactically valid JSON, which is
    exactly the case only the CRC32 field can catch.
    """
    applied = []
    if not os.path.exists(path):
        return applied
    rng = DeterministicRng(seed).stream("chaos.journal")
    if FAULT_JOURNAL_TRUNCATE in faults:
        with open(path, "rb") as handle:
            data = handle.read()
        stripped = data.rstrip(b"\n")
        line_start = stripped.rfind(b"\n") + 1
        line_len = len(stripped) - line_start
        if line_len > 2:
            cut = line_start + line_len // 2
            with open(path, "wb") as handle:
                handle.write(data[:cut])
            applied.append("truncated final record to %d of %d bytes"
                           % (line_len // 2, line_len))
    if FAULT_JOURNAL_BITFLIP in faults:
        with open(path) as handle:
            lines = handle.read().splitlines()
        if lines:
            target = rng.randrange(len(lines))
            line = lines[target]
            digits = [i for i, ch in enumerate(line) if ch.isdigit()]
            if digits:
                at = digits[rng.randrange(len(digits))]
                lines[target] = (line[:at] + chr(ord(line[at]) ^ 1)
                                 + line[at + 1:])
                with open(path, "w") as handle:
                    handle.write("\n".join(lines) + "\n")
                applied.append("flipped low bit of byte %d in record %d"
                               % (at, target))
    return applied


def result_digest(result):
    """sha256 over everything a run asserts: cycles, IPC inputs, stats."""
    payload = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "stats": result.stats.as_dict(),
        "miss_rates": dict(result.miss_summary),
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclasses.dataclass
class ChaosReport:
    """Outcome of one chaos campaign (see :func:`run_chaos`)."""

    identical: bool
    seed: int
    faults: tuple
    total_jobs: int
    injected: dict          # job_id -> fault kind
    journal_corruption: list
    attempts: dict          # job_id -> attempts across both phases
    failures: list          # JobResult dicts for terminal failures
    mismatches: list        # job_ids whose digest diverged
    quarantined_lines: int
    resumed_jobs: int
    reexecuted_jobs: int
    pool_rebuilds: int
    degraded: bool
    retry_events: int
    failed_events: int
    degraded_events: int
    stats_digest: str       # sha256 over the per-job digests, in order
    journal_path: str
    rej_path: str

    def as_dict(self):
        return dataclasses.asdict(self)

    def render(self):
        lines = ["chaos campaign: seed=%d faults=%s"
                 % (self.seed, ",".join(self.faults))]
        lines.append("  injected: %s" % (
            ", ".join("%s->%s" % (kind, job_id)
                      for job_id, kind in sorted(self.injected.items(),
                                                 key=lambda kv: kv[1]))
            or "none"))
        for note in self.journal_corruption:
            lines.append("  journal: %s" % note)
        retried = sum(1 for n in self.attempts.values() if n > 1)
        lines.append("  %d job(s): %d retried, %d resumed from journal, "
                     "%d re-executed after quarantine"
                     % (self.total_jobs, retried, self.resumed_jobs,
                        self.reexecuted_jobs))
        lines.append("  pool rebuilds: %d%s; events: %d retry, %d "
                     "failed, %d degraded"
                     % (self.pool_rebuilds,
                        " (degraded to serial)" if self.degraded else "",
                        self.retry_events, self.failed_events,
                        self.degraded_events))
        if self.quarantined_lines:
            lines.append("  quarantined %d journal line(s) -> %s"
                         % (self.quarantined_lines, self.rej_path))
        if self.failures:
            lines.append("  TERMINAL FAILURES: %s" % self.failures)
        lines.append("  stats digest: %s" % self.stats_digest)
        lines.append("verdict: %s" % (
            "bit-identical to the fault-free serial run"
            if self.identical else
            "DIVERGED from the fault-free serial run: %s"
            % (self.mismatches or "(missing results)")))
        return "\n".join(lines)


def run_chaos(benchmarks=("gzip",),
              policies=("decrypt-only", "authen-then-commit",
                        "authen-then-issue"),
              num_instructions=1500, warmup=750, seed=0,
              faults=ALL_FAULTS, workers=2, hang_seconds=2.0,
              timeout=0.75, max_attempts=4, workdir=None, tracer=None):
    """Run one chaos campaign; returns a :class:`ChaosReport`.

    Three phases:

    1. *Reference*: the job grid runs clean and serial; per-job digests
       are the ground truth.
    2. *Fault phase*: the same grid runs against a journal with the
       seeded job faults armed (pool workers get the plan via the pool
       initializer; the driver gets it for serial/degraded execution)
       under a retry-then-skip policy with a per-attempt timeout.
    3. *Recovery phase*: the journal is corrupted per the schedule,
       then the grid is re-run against it -- quarantined and lost
       records must be re-simulated, everything else resumed.

    The campaign passes when phase 3's results are bit-identical to
    phase 1's for every job and nothing failed terminally.
    """
    from repro.obs import MemorySink, Tracer
    from repro.sim.checkpoint import JobJournal

    jobs = build_jobs(list(benchmarks), list(policies),
                      num_instructions=num_instructions, warmup=warmup)
    reference = SerialExecutor().run(jobs)
    ref_digests = {job.job_id: result_digest(reference[job])
                   for job in jobs}

    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(workdir, exist_ok=True)
    journal_path = os.path.join(workdir, "chaos.journal")
    for stale in (journal_path, journal_path + ".rej"):
        if os.path.exists(stale):
            os.remove(stale)

    plan = build_plan(jobs, seed, faults, hang_seconds=hang_seconds)
    policy = FailurePolicy(mode=RETRY_THEN_SKIP,
                           max_attempts=max_attempts, timeout=timeout,
                           backoff_base=0.01, backoff_max=0.05,
                           jitter_seed=seed)
    sink = MemorySink()
    own_tracer = tracer if tracer is not None else Tracer([sink])

    # Phase 2: run with faults armed.
    attempts = {}
    failures = []
    previous = set_attempt_hook(plan)
    try:
        if workers and workers > 1:
            executor = ParallelExecutor(
                workers, initializer=_install_in_worker,
                initargs=(plan,))
        else:
            executor = SerialExecutor()
        with executor:
            executor.run(jobs, journal=JobJournal(journal_path),
                         tracer=own_tracer, failure_policy=policy)
            for job_id, outcome in executor.last_outcomes.items():
                attempts[job_id] = outcome.attempts
                if outcome.status == "failed":
                    failures.append(outcome.as_dict())
            pool_rebuilds = getattr(executor, "rebuilds", 0)
            degraded = getattr(executor, "degraded", False)
    finally:
        set_attempt_hook(previous)

    # Phase 3: corrupt the journal, then heal by resuming (no faults
    # armed: the hook is restored, workers are fresh).
    corruption = corrupt_journal(journal_path, plan.journal_faults, seed)
    journal = JobJournal(journal_path)
    healer = SerialExecutor()
    final = healer.run(jobs, journal=journal, tracer=own_tracer,
                       failure_policy=policy)
    resumed = reexecuted = 0
    for job_id, outcome in healer.last_outcomes.items():
        if outcome.status == STATUS_RESUMED:
            resumed += 1
        else:
            reexecuted += 1
            attempts[job_id] = attempts.get(job_id, 0) + outcome.attempts
            if outcome.status == "failed":
                failures.append(outcome.as_dict())

    mismatches = []
    digests = []
    for job in jobs:
        if job not in final:
            mismatches.append(job.job_id)
            continue
        digest = result_digest(final[job])
        digests.append(digest)
        if digest != ref_digests[job.job_id]:
            mismatches.append(job.job_id)
    stats_digest = hashlib.sha256(
        "".join(digests).encode()).hexdigest()

    events = sink.events if tracer is None else ()
    return ChaosReport(
        identical=not mismatches and not failures,
        seed=seed,
        faults=tuple(faults),
        total_jobs=len(jobs),
        injected=dict(plan.job_faults),
        journal_corruption=corruption,
        attempts=attempts,
        failures=failures,
        mismatches=mismatches,
        quarantined_lines=journal.quarantined_lines,
        resumed_jobs=resumed,
        reexecuted_jobs=reexecuted,
        pool_rebuilds=pool_rebuilds,
        degraded=degraded,
        retry_events=sum(1 for e in events if e.kind == JOB_RETRY),
        failed_events=sum(1 for e in events if e.kind == JOB_FAILED),
        degraded_events=sum(1 for e in events
                            if e.kind == BACKEND_DEGRADED),
        stats_digest=stats_digest,
        journal_path=journal_path,
        rej_path=journal.rej_path,
    )
