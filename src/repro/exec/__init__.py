"""Job-based execution layer: config -> job -> executor -> result.

Every experiment in this repository is a Cartesian product of
benchmark x policy x config.  This package gives that product one
pipeline: describe each point as a frozen :class:`SimJob`, execute it
with the pure :func:`execute_job`, and drive whole sets through an
:class:`Executor` -- serial in-process or fanned out over a process
pool -- with optional resume via a
:class:`~repro.sim.checkpoint.JobJournal`.  See
``docs/architecture.md`` ("The execution layer").
"""

from repro.exec.cache import GLOBAL_CACHE, TraceCache, cached_trace
from repro.exec.dist import DistExecutor, run_worker
from repro.exec.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    execute_job,
    executor_scope,
    iter_group_results,
    make_executor,
    set_attempt_hook,
)
from repro.exec.job import (
    MultiPolicySimJob,
    SimJob,
    build_job_groups,
    build_jobs,
    stable_hash,
)
from repro.exec.retry import (
    FAIL_FAST,
    RETRY_THEN_SKIP,
    SKIP_AND_REPORT,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RESUMED,
    FailurePolicy,
    JobResult,
)
from repro.exec.store import (
    ArtifactStore,
    StoredTrace,
    active_store,
    code_fingerprint,
    default_store_path,
    set_active_store,
)

__all__ = [
    "SimJob",
    "MultiPolicySimJob",
    "build_jobs",
    "build_job_groups",
    "stable_hash",
    "execute_job",
    "iter_group_results",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "DistExecutor",
    "run_worker",
    "make_executor",
    "default_jobs",
    "executor_scope",
    "set_attempt_hook",
    "TraceCache",
    "GLOBAL_CACHE",
    "cached_trace",
    "FailurePolicy",
    "JobResult",
    "FAIL_FAST",
    "SKIP_AND_REPORT",
    "RETRY_THEN_SKIP",
    "STATUS_OK",
    "STATUS_RESUMED",
    "STATUS_FAILED",
    "ArtifactStore",
    "StoredTrace",
    "active_store",
    "set_active_store",
    "default_store_path",
    "code_fingerprint",
]
