"""Policy interface: where authentication gates the pipeline."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SecurityProperties:
    """The four columns of the paper's Table 2."""

    prevents_fetch_side_channel: bool
    precise_exception: bool
    authenticated_memory_state: bool
    authenticated_processor_state: bool


class AuthPolicy:
    """Base authentication control point.

    Subclasses toggle the four gates; the timing core consults them at the
    matching pipeline points.  The base class is the *decrypt-only
    baseline*: verification never blocks anything (and is not even
    performed -- ``authentication`` is False).
    """

    name = "decrypt-only"
    #: verification engine active at all (False only for the baseline)
    authentication = False
    #: operands/instructions usable only once verified (authen-then-issue)
    gate_issue = False
    #: instructions commit only once verified (authen-then-commit)
    gate_commit = False
    #: stores leave the store buffer only once verified (authen-then-write)
    gate_store = False
    #: bus fetches gated on the authentication frontier (authen-then-fetch)
    gate_fetch = False
    #: fetch gating granularity: "tag" (LastRequest register), "drain"
    #: (whole queue), or "precise" (exact data/control dependency slice)
    fetch_mode = "tag"
    #: address obfuscation layer enabled
    obfuscation = False
    #: multiplier on the functional machine's verification window (lazy
    #: authentication batches verification over a much larger window)
    window_scale = 1

    security = SecurityProperties(
        prevents_fetch_side_channel=False,
        precise_exception=False,
        authenticated_memory_state=False,
        authenticated_processor_state=False,
    )

    # ---- decision points consulted by the timing core -----------------

    def value_ready(self, data_time, verify_time):
        """When a fetched value may feed dependent instructions."""
        return verify_time if self.gate_issue else data_time

    def commit_ready(self, complete_time, verify_time):
        """When a finished instruction may commit."""
        if self.gate_commit or self.gate_issue:
            # authen-then-issue subsumes commit gating: nothing unverified
            # ever issued, so the max() here is a no-op for it, but keeping
            # the bound makes the invariant explicit.
            return max(complete_time, verify_time)
        return complete_time

    def store_release(self, commit_time, auth_frontier_time):
        """When a committed store may drain to the memory system."""
        if self.gate_store:
            return max(commit_time, auth_frontier_time)
        return commit_time

    def fetch_gate_time(self, engine, issue_time, fetch_time):
        """Earliest cycle a new external fetch may be granted.

        The tag variant (Section 4.2.4) waits on the LastRequest register
        as read at the *triggering instruction's issue*; see the drain
        variant below for the alternative.
        """
        if not self.gate_fetch:
            return 0
        return engine.auth_frontier(issue_time)

    # ---- functional-machine semantics ----------------------------------

    @property
    def speculation_window(self):
        """May unverified instructions execute speculatively at all?

        True for every policy except authen-then-issue: that is precisely
        the decryption/authentication disassociation under study.
        """
        return not self.gate_issue

    def __repr__(self):
        return "<policy %s>" % self.name


class DecryptOnlyPolicy(AuthPolicy):
    """Baseline: decryption only, no integrity verification (Figure 7's
    normalisation baseline)."""

    name = "decrypt-only"


class AuthenThenIssuePolicy(AuthPolicy):
    """Section 4.2.1: conservative; verification is on the critical path."""

    name = "authen-then-issue"
    authentication = True
    gate_issue = True
    security = SecurityProperties(True, True, True, True)


class AuthenThenWritePolicy(AuthPolicy):
    """Section 4.2.2: only memory state must derive from verified inputs."""

    name = "authen-then-write"
    authentication = True
    gate_store = True
    security = SecurityProperties(False, False, True, False)


class AuthenThenCommitPolicy(AuthPolicy):
    """Section 4.2.3: speculative issue, verified commit, precise
    authentication exceptions."""

    name = "authen-then-commit"
    authentication = True
    gate_commit = True
    security = SecurityProperties(False, True, True, True)


class AuthenThenFetchPolicy(AuthPolicy):
    """Section 4.2.4 (LastRequest-tag variant): a bus fetch waits for the
    authentication frontier recorded at its triggering instruction."""

    name = "authen-then-fetch"
    authentication = True
    gate_fetch = True
    # Alone it neither commits-verified nor write-gates; the paper pairs
    # it with authen-then-commit for the full property set.
    security = SecurityProperties(True, False, False, False)


class DrainAuthenThenFetchPolicy(AuthenThenFetchPolicy):
    """Section 4.2.4 drain variant: a new fetch waits for every request
    outstanding at *fetch-creation* time to drain (more conservative than
    the tag variant, which snapshots at the trigger's issue)."""

    name = "authen-then-fetch-drain"
    fetch_mode = "drain"

    def fetch_gate_time(self, engine, issue_time, fetch_time):
        return engine.auth_frontier(fetch_time)


class PreciseAuthenThenFetchPolicy(AuthenThenFetchPolicy):
    """Section 4.2.4's *precise* implementation: a fetch waits only for
    verification of the exact program slice it depends on (the fetch
    instruction, its address operands, and their control/data ancestry).
    The paper deems the required dependency tracking "too complex and
    expensive" in hardware; this variant quantifies what the tag/drain
    simplifications give up.

    The timing core computes the slice frontier itself (per-register
    verification timestamps); ``fetch_gate_time`` is not used."""

    name = "authen-then-fetch-precise"
    fetch_mode = "precise"


class CommitPlusFetchPolicy(AuthPolicy):
    """The paper's recommended combination (Table 2 row 4)."""

    name = "commit+fetch"
    authentication = True
    gate_commit = True
    gate_fetch = True
    security = SecurityProperties(True, True, True, True)


class CommitPlusObfuscationPolicy(AuthPolicy):
    """Authen-then-commit plus address obfuscation (Table 2 row 5)."""

    name = "commit+obfuscation"
    authentication = True
    gate_commit = True
    obfuscation = True
    security = SecurityProperties(True, True, True, True)


class LazyAuthPolicy(AuthPolicy):
    """Lazy authentication (Yan et al. [25], discussed in Section 6):
    verification happens in large batches over a vulnerable window; no
    pipeline gating at all.  Weaker than every scheme above."""

    name = "lazy"
    authentication = True
    window_scale = 100
    security = SecurityProperties(False, False, False, False)
