"""Policy interface: where authentication gates the pipeline.

Each policy is a *declarative* set of gating terms (:class:`GatingTerms`):
which pipeline points verification blocks, how bus fetches are gated, and
whether the address space is obfuscated.  The shared timestamp kernel
(:mod:`repro.cpu.shared_kernel`) and the legacy per-policy core
(:mod:`repro.cpu.core`) both consume the same terms, so a policy is one
frozen record -- there is no per-policy timing code left to drift.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SecurityProperties:
    """The four columns of the paper's Table 2."""

    prevents_fetch_side_channel: bool
    precise_exception: bool
    authenticated_memory_state: bool
    authenticated_processor_state: bool


@dataclass(frozen=True)
class GatingTerms:
    """The complete declarative timing contract of one policy.

    Every field is consumed by the shared timestamp kernel; a policy
    subclass declares exactly one of these and nothing else (plus its
    security matrix row).  The legacy class attributes
    (``policy.gate_issue`` etc.) are unpacked from the terms at class
    creation, so all historical call sites keep working.
    """

    #: verification engine active at all (False only for the baseline)
    authentication: bool = False
    #: operands/instructions usable only once verified (authen-then-issue)
    gate_issue: bool = False
    #: instructions commit only once verified (authen-then-commit)
    gate_commit: bool = False
    #: stores leave the store buffer only once verified (authen-then-write)
    gate_store: bool = False
    #: bus fetches gated on the authentication frontier (authen-then-fetch)
    gate_fetch: bool = False
    #: fetch gating granularity: "tag" (LastRequest register), "drain"
    #: (whole queue), or "precise" (exact data/control dependency slice)
    fetch_mode: str = "tag"
    #: address obfuscation layer enabled
    obfuscation: bool = False
    #: multiplier on the functional machine's verification window (lazy
    #: authentication batches verification over a much larger window)
    window_scale: int = 1


class AuthPolicy:
    """Base authentication control point.

    Subclasses declare their :class:`GatingTerms`; the base class turns
    the terms into the decision methods the timing core consults.  The
    base class itself is the *decrypt-only baseline*: verification never
    blocks anything (and is not even performed -- ``authentication`` is
    False).
    """

    name = "decrypt-only"
    terms = GatingTerms()

    # Legacy flat attributes, unpacked from ``terms`` (see
    # ``__init_subclass__``); kept so policy consumers predating the
    # declarative refactor -- and pickled configs -- read the same shape.
    authentication = False
    gate_issue = False
    gate_commit = False
    gate_store = False
    gate_fetch = False
    fetch_mode = "tag"
    obfuscation = False
    window_scale = 1

    security = SecurityProperties(
        prevents_fetch_side_channel=False,
        precise_exception=False,
        authenticated_memory_state=False,
        authenticated_processor_state=False,
    )

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        terms = cls.__dict__.get("terms")
        if terms is not None:
            cls.authentication = terms.authentication
            cls.gate_issue = terms.gate_issue
            cls.gate_commit = terms.gate_commit
            cls.gate_store = terms.gate_store
            cls.gate_fetch = terms.gate_fetch
            cls.fetch_mode = terms.fetch_mode
            cls.obfuscation = terms.obfuscation
            cls.window_scale = terms.window_scale

    # ---- decision points consulted by the timing core -----------------

    def value_ready(self, data_time, verify_time):
        """When a fetched value may feed dependent instructions."""
        return verify_time if self.gate_issue else data_time

    def commit_ready(self, complete_time, verify_time):
        """When a finished instruction may commit."""
        if self.gate_commit or self.gate_issue:
            # authen-then-issue subsumes commit gating: nothing unverified
            # ever issued, so the max() here is a no-op for it, but keeping
            # the bound makes the invariant explicit.
            return max(complete_time, verify_time)
        return complete_time

    def store_release(self, commit_time, auth_frontier_time):
        """When a committed store may drain to the memory system."""
        if self.gate_store:
            return max(commit_time, auth_frontier_time)
        return commit_time

    def fetch_gate_time(self, engine, issue_time, fetch_time):
        """Earliest cycle a new external fetch may be granted.

        The tag variant (Section 4.2.4) waits on the LastRequest register
        as read at the *triggering instruction's issue*; the drain variant
        waits for every request outstanding at fetch-creation time.  The
        precise variant's slice frontier is computed by the core itself,
        so this method is not consulted for it.
        """
        if not self.gate_fetch:
            return 0
        if self.fetch_mode == "drain":
            return engine.auth_frontier(fetch_time)
        return engine.auth_frontier(issue_time)

    # ---- functional-machine semantics ----------------------------------

    @property
    def speculation_window(self):
        """May unverified instructions execute speculatively at all?

        True for every policy except authen-then-issue: that is precisely
        the decryption/authentication disassociation under study.
        """
        return not self.gate_issue

    def __repr__(self):
        return "<policy %s>" % self.name


class DecryptOnlyPolicy(AuthPolicy):
    """Baseline: decryption only, no integrity verification (Figure 7's
    normalisation baseline)."""

    name = "decrypt-only"
    terms = GatingTerms()


class AuthenThenIssuePolicy(AuthPolicy):
    """Section 4.2.1: conservative; verification is on the critical path."""

    name = "authen-then-issue"
    terms = GatingTerms(authentication=True, gate_issue=True)
    security = SecurityProperties(True, True, True, True)


class AuthenThenWritePolicy(AuthPolicy):
    """Section 4.2.2: only memory state must derive from verified inputs."""

    name = "authen-then-write"
    terms = GatingTerms(authentication=True, gate_store=True)
    security = SecurityProperties(False, False, True, False)


class AuthenThenCommitPolicy(AuthPolicy):
    """Section 4.2.3: speculative issue, verified commit, precise
    authentication exceptions."""

    name = "authen-then-commit"
    terms = GatingTerms(authentication=True, gate_commit=True)
    security = SecurityProperties(False, True, True, True)


class AuthenThenFetchPolicy(AuthPolicy):
    """Section 4.2.4 (LastRequest-tag variant): a bus fetch waits for the
    authentication frontier recorded at its triggering instruction."""

    name = "authen-then-fetch"
    terms = GatingTerms(authentication=True, gate_fetch=True)
    # Alone it neither commits-verified nor write-gates; the paper pairs
    # it with authen-then-commit for the full property set.
    security = SecurityProperties(True, False, False, False)


class DrainAuthenThenFetchPolicy(AuthenThenFetchPolicy):
    """Section 4.2.4 drain variant: a new fetch waits for every request
    outstanding at *fetch-creation* time to drain (more conservative than
    the tag variant, which snapshots at the trigger's issue)."""

    name = "authen-then-fetch-drain"
    terms = GatingTerms(authentication=True, gate_fetch=True,
                        fetch_mode="drain")


class PreciseAuthenThenFetchPolicy(AuthenThenFetchPolicy):
    """Section 4.2.4's *precise* implementation: a fetch waits only for
    verification of the exact program slice it depends on (the fetch
    instruction, its address operands, and their control/data ancestry).
    The paper deems the required dependency tracking "too complex and
    expensive" in hardware; this variant quantifies what the tag/drain
    simplifications give up.

    The timing core computes the slice frontier itself (per-register
    verification timestamps); ``fetch_gate_time`` is not used."""

    name = "authen-then-fetch-precise"
    terms = GatingTerms(authentication=True, gate_fetch=True,
                        fetch_mode="precise")


class CommitPlusFetchPolicy(AuthPolicy):
    """The paper's recommended combination (Table 2 row 4)."""

    name = "commit+fetch"
    terms = GatingTerms(authentication=True, gate_commit=True,
                        gate_fetch=True)
    security = SecurityProperties(True, True, True, True)


class CommitPlusObfuscationPolicy(AuthPolicy):
    """Authen-then-commit plus address obfuscation (Table 2 row 5)."""

    name = "commit+obfuscation"
    terms = GatingTerms(authentication=True, gate_commit=True,
                        obfuscation=True)
    security = SecurityProperties(True, True, True, True)


class LazyAuthPolicy(AuthPolicy):
    """Lazy authentication (Yan et al. [25], discussed in Section 6):
    verification happens in large batches over a vulnerable window; no
    pipeline gating at all.  Weaker than every scheme above."""

    name = "lazy"
    terms = GatingTerms(authentication=True, window_scale=100)
    security = SecurityProperties(False, False, False, False)
