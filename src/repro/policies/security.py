"""Security characteristics of the schemes (the paper's Table 2).

The static matrix mirrors the paper's analysis; the *empirical* version of
the same table is produced by running the attack suite against each policy
(:mod:`repro.attacks.harness`), and a test asserts the two agree.
"""

from repro.policies.registry import make_policy, policy_set

TABLE2_POLICIES = policy_set("table2")

COLUMNS = (
    ("prevents active fetch side-channel", "prevents_fetch_side_channel"),
    ("precise exception", "precise_exception"),
    ("authenticated memory state", "authenticated_memory_state"),
    ("authenticated processor state", "authenticated_processor_state"),
)


def security_matrix(policy_names=TABLE2_POLICIES):
    """Return ``{policy: {column: bool}}`` for the requested policies."""
    matrix = {}
    for name in policy_names:
        policy = make_policy(name)
        matrix[name] = {
            label: getattr(policy.security, attr) for label, attr in COLUMNS
        }
    return matrix


def table2_rows(policy_names=TABLE2_POLICIES):
    """Render Table 2 as text rows (checkmark per satisfied property)."""
    matrix = security_matrix(policy_names)
    header = ["scheme"] + [label for label, _ in COLUMNS]
    rows = [header]
    for name in policy_names:
        rows.append(
            [name] + ["yes" if matrix[name][label] else "-" for label, _ in COLUMNS]
        )
    return rows
