"""Authentication control points (the paper's core contribution).

A *policy* decides where in the out-of-order pipeline the result of
integrity verification gates execution:

===========================  =====================================
``decrypt-only``             baseline: no verification at all
``authen-then-issue``        nothing unverified may issue
``authen-then-commit``       speculative issue, verified commit
``authen-then-write``        stores drain only after verification
``authen-then-fetch``        bus fetches gated on the auth frontier
``authen-then-fetch-drain``  drain-variant of the above (Section 4.2.4)
``commit+fetch``             the paper's recommended combination
``commit+obfuscation``       verified commit + re-mapped addresses
``lazy``                     batched verification (Yan et al. [25])
===========================  =====================================

Policies are pure decision objects: the timing core and the functional
machine both consult the same instance, so the performance results and the
security results (Table 2) always describe the same mechanism.
"""

from repro.policies.base import AuthPolicy, GatingTerms, SecurityProperties
from repro.policies.registry import (
    FIGURE7_POLICIES,
    POLICY_NAMES,
    POLICY_REGISTRY,
    POLICY_SETS,
    PolicyEntry,
    available_policies,
    make_policy,
    policy_label,
    policy_set,
)
from repro.policies.security import security_matrix, table2_rows

__all__ = [
    "AuthPolicy",
    "GatingTerms",
    "SecurityProperties",
    "PolicyEntry",
    "POLICY_REGISTRY",
    "POLICY_SETS",
    "POLICY_NAMES",
    "FIGURE7_POLICIES",
    "available_policies",
    "make_policy",
    "policy_label",
    "policy_set",
    "security_matrix",
    "table2_rows",
]
