"""Policy registry: the one catalogue of authentication schemes.

Every consumer -- experiments, sweeps, figures, the CLI, manifests --
resolves policies through this module: ``scheme name -> class -> label``
via :data:`POLICY_REGISTRY`, and the named policy *sets* the figures and
tables are built from via :data:`POLICY_SETS` (previously scattered as
per-module tuples across ``experiments/fig*.py`` / ``table*.py``).
"""

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.policies.base import (
    AuthenThenCommitPolicy,
    AuthenThenFetchPolicy,
    AuthenThenIssuePolicy,
    AuthenThenWritePolicy,
    CommitPlusFetchPolicy,
    CommitPlusObfuscationPolicy,
    DecryptOnlyPolicy,
    DrainAuthenThenFetchPolicy,
    LazyAuthPolicy,
    PreciseAuthenThenFetchPolicy,
)


@dataclass(frozen=True)
class PolicyEntry:
    """One registered scheme: its name, class and presentation label."""

    name: str
    cls: type
    label: str

    def make(self):
        return self.cls()


#: scheme name -> :class:`PolicyEntry`, in the paper's presentation order.
POLICY_REGISTRY = {
    entry.name: entry
    for entry in (
        PolicyEntry("decrypt-only", DecryptOnlyPolicy, "Decrypt Only"),
        PolicyEntry("authen-then-issue", AuthenThenIssuePolicy,
                    "Authen-then-Issue"),
        PolicyEntry("authen-then-write", AuthenThenWritePolicy,
                    "Authen-then-Write"),
        PolicyEntry("authen-then-commit", AuthenThenCommitPolicy,
                    "Authen-then-Commit"),
        PolicyEntry("authen-then-fetch", AuthenThenFetchPolicy,
                    "Authen-then-Fetch"),
        PolicyEntry("authen-then-fetch-drain", DrainAuthenThenFetchPolicy,
                    "Authen-then-Fetch (drain)"),
        PolicyEntry("authen-then-fetch-precise",
                    PreciseAuthenThenFetchPolicy,
                    "Authen-then-Fetch (precise)"),
        PolicyEntry("commit+fetch", CommitPlusFetchPolicy,
                    "Commit + Fetch"),
        PolicyEntry("commit+obfuscation", CommitPlusObfuscationPolicy,
                    "Commit + Obfuscation"),
        PolicyEntry("lazy", LazyAuthPolicy, "Lazy Authentication"),
    )
}

_POLICIES = {name: entry.cls for name, entry in POLICY_REGISTRY.items()}

POLICY_NAMES = tuple(sorted(POLICY_REGISTRY))

#: The six schemes of Figure 7, in the paper's presentation order.
FIGURE7_POLICIES = (
    "authen-then-issue",
    "authen-then-write",
    "authen-then-commit",
    "authen-then-fetch",
    "commit+fetch",
    "commit+obfuscation",
)

#: Named policy sets the experiments draw from.  A figure module names
#: its set instead of carrying a private tuple, and manifests record the
#: resolved membership, so "which schemes did this cell cover" has one
#: authoritative answer.
POLICY_SETS = {
    # Everything registered, deterministic order.
    "all": POLICY_NAMES,
    "figure7": FIGURE7_POLICIES,
    # Figure 8 compares these against authen-then-issue.
    "figure8": ("authen-then-commit", "authen-then-write",
                "commit+fetch"),
    # Figures 10/11 (RUU sensitivity) and the seed-variance experiment.
    "figure10": ("authen-then-issue", "authen-then-write",
                 "authen-then-commit", "commit+fetch"),
    # Figures 12/13 (hash-tree authentication).
    "figure12": ("authen-then-issue", "authen-then-write",
                 "authen-then-commit", "authen-then-fetch",
                 "commit+fetch"),
    # Parameter-sensitivity studies (Section 5.2), column order as
    # rendered.
    "sensitivity": ("authen-then-issue", "authen-then-commit",
                    "authen-then-write", "commit+fetch"),
    # Table 2's security matrix.
    "table2": ("authen-then-issue", "authen-then-write",
               "authen-then-commit", "commit+fetch",
               "commit+obfuscation"),
    # ``repro run``/``repro sweep`` when no --policy is given.
    "cli-default": ("decrypt-only", "authen-then-issue",
                    "authen-then-commit", "authen-then-write",
                    "commit+fetch"),
}


def make_policy(name):
    """Instantiate the policy called ``name``.

    >>> make_policy("authen-then-commit").gate_commit
    True
    """
    try:
        return POLICY_REGISTRY[name].make()
    except KeyError:
        raise ConfigError(
            "unknown policy %r (available: %s)" % (name, ", ".join(POLICY_NAMES))
        ) from None


def available_policies():
    """All registered policy names."""
    return POLICY_NAMES


def policy_label(name):
    """Presentation label for ``name`` (the name itself if unregistered)."""
    entry = POLICY_REGISTRY.get(name)
    return entry.label if entry is not None else name


def policy_set(name):
    """The named policy set as a tuple; raises ConfigError when unknown."""
    try:
        return tuple(POLICY_SETS[name])
    except KeyError:
        raise ConfigError(
            "unknown policy set %r (available: %s)"
            % (name, ", ".join(sorted(POLICY_SETS)))
        ) from None
