"""Policy registry: construct policies by name."""

from repro.errors import ConfigError
from repro.policies.base import (
    AuthenThenCommitPolicy,
    AuthenThenFetchPolicy,
    AuthenThenIssuePolicy,
    AuthenThenWritePolicy,
    CommitPlusFetchPolicy,
    CommitPlusObfuscationPolicy,
    DecryptOnlyPolicy,
    DrainAuthenThenFetchPolicy,
    LazyAuthPolicy,
    PreciseAuthenThenFetchPolicy,
)

_POLICIES = {
    cls.name: cls
    for cls in (
        DecryptOnlyPolicy,
        AuthenThenIssuePolicy,
        AuthenThenWritePolicy,
        AuthenThenCommitPolicy,
        AuthenThenFetchPolicy,
        DrainAuthenThenFetchPolicy,
        PreciseAuthenThenFetchPolicy,
        CommitPlusFetchPolicy,
        CommitPlusObfuscationPolicy,
        LazyAuthPolicy,
    )
}

POLICY_NAMES = tuple(sorted(_POLICIES))

#: The six schemes of Figure 7, in the paper's presentation order.
FIGURE7_POLICIES = (
    "authen-then-issue",
    "authen-then-write",
    "authen-then-commit",
    "authen-then-fetch",
    "commit+fetch",
    "commit+obfuscation",
)


def make_policy(name):
    """Instantiate the policy called ``name``.

    >>> make_policy("authen-then-commit").gate_commit
    True
    """
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ConfigError(
            "unknown policy %r (available: %s)" % (name, ", ".join(POLICY_NAMES))
        ) from None


def available_policies():
    """All registered policy names."""
    return POLICY_NAMES
