"""Set-associative TLB (tag-only).

Virtual memory matters to the paper twice: TLB misses add latency, and
address translation is what the shift-window / page-mask exploit variants
(Section 3.3) work around.  The timing TLB here is a thin wrapper around
page-granular tags; translation itself is identity in the timing model
(synthetic traces use physical addresses), while the *functional* machine
implements a real page table for the exploit demos.
"""

from repro.config import CacheConfig
from repro.cache.cache import Cache


class Tlb:
    """A TLB modelled as a small set-associative tag cache over pages."""

    def __init__(self, entries=128, associativity=4, page_bytes=4096,
                 miss_latency=30, name="tlb", stats=None):
        config = CacheConfig(
            name=name,
            size_bytes=entries * page_bytes,
            line_bytes=page_bytes,
            associativity=associativity,
            latency=1,
        )
        self._cache = Cache(config, stats=stats)
        self.miss_latency = miss_latency
        self.page_bytes = page_bytes
        # Bound methods hoisted once: translate_latency runs once per
        # memory access, so even the attribute lookups matter.
        self._hit_line = self._cache.hit_line
        self._fill = self._cache.fill

    def translate_latency(self, vaddr):
        """Latency contribution of translating ``vaddr`` (0 on a hit)."""
        if self._hit_line(vaddr) is not None:
            return 0
        self._fill(vaddr)
        return self.miss_latency

    @property
    def stats(self):
        return self._cache.stats

    def miss_rate(self):
        return self._cache.miss_rate()

    def reset(self):
        self._cache.reset()
