"""Cache substrate: set-associative caches and TLBs.

These are *tag-timing* models: they track which lines are resident, LRU
state, dirty bits and per-line metadata (decrypt/verify timestamps), but
not data contents -- the timing simulator is trace-driven, and the
functional machine keeps plaintext in its own structures.
"""

from repro.cache.cache import Cache, CacheAccess, LineState
from repro.cache.tlb import Tlb

__all__ = ["Cache", "CacheAccess", "LineState", "Tlb"]
