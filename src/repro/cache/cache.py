"""Generic set-associative, write-back, LRU cache (tag-timing model).

Each resident line carries a :class:`LineState` with the timestamps the
secure processor needs for authentication-control-point gating:

- ``data_time``: when the line's (decrypted) data became available;
- ``verify_time``: when its integrity verification completed (equal to
  ``data_time`` for lines that were verified before insertion or produced
  on-chip, later for lines still in the authentication queue).

A hit to a still-unverified line must observe its pending ``verify_time``:
that is exactly the window the paper's exploits live in.
"""

from repro.config import CacheConfig
from repro.util.statistics import StatGroup


class LineState:
    """Metadata of one resident cache line."""

    __slots__ = ("tag", "dirty", "data_time", "verify_time", "last_use")

    def __init__(self, tag, data_time=0, verify_time=0):
        self.tag = tag
        self.dirty = False
        self.data_time = data_time
        self.verify_time = verify_time
        self.last_use = 0


class CacheAccess:
    """Outcome of one cache lookup."""

    __slots__ = ("hit", "line", "victim_addr", "victim_dirty")

    def __init__(self, hit, line, victim_addr=None, victim_dirty=False):
        self.hit = hit
        self.line = line
        self.victim_addr = victim_addr
        self.victim_dirty = victim_dirty


class Cache:
    """Set-associative cache over line addresses.

    ``lookup`` probes without allocating; ``access`` probes and, on a miss,
    allocates (evicting the LRU way) and reports the victim so the caller
    can schedule a writeback.
    """

    def __init__(self, config, stats=None):
        if not isinstance(config, CacheConfig):
            raise TypeError("config must be a CacheConfig")
        self.config = config
        self.num_sets = config.num_sets
        self.line_bytes = config.line_bytes
        self.assoc = config.associativity
        self._sets = [dict() for _ in range(self.num_sets)]  # tag -> LineState
        self.stats = stats if stats is not None else StatGroup(config.name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._evictions = self.stats.counter("evictions")
        self._writebacks = self.stats.counter("writebacks")
        self._tick = 0

    def _index_tag(self, addr):
        line_addr = addr // self.line_bytes
        return line_addr % self.num_sets, line_addr // self.num_sets

    def line_addr(self, addr):
        """The line-aligned byte address containing ``addr``."""
        return (addr // self.line_bytes) * self.line_bytes

    def lookup(self, addr):
        """Probe for ``addr`` without any state change; LineState or None."""
        index, tag = self._index_tag(addr)
        return self._sets[index].get(tag)

    def access(self, addr, is_write=False):
        """Probe and allocate-on-miss; returns a :class:`CacheAccess`."""
        self._tick += 1
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        line = cache_set.get(tag)
        if line is not None:
            self._hits.add()
            line.last_use = self._tick
            if is_write:
                line.dirty = True
            return CacheAccess(True, line)

        self._misses.add()
        victim_addr = None
        victim_dirty = False
        if len(cache_set) >= self.assoc:
            lru_tag = min(cache_set, key=lambda t: cache_set[t].last_use)
            victim = cache_set.pop(lru_tag)
            self._evictions.add()
            victim_dirty = victim.dirty
            if victim_dirty:
                self._writebacks.add()
            victim_addr = (victim.tag * self.num_sets + index) * self.line_bytes
        line = LineState(tag)
        line.last_use = self._tick
        if is_write:
            line.dirty = True
        cache_set[tag] = line
        return CacheAccess(False, line, victim_addr, victim_dirty)

    def invalidate(self, addr):
        """Drop the line containing ``addr`` if resident (no writeback)."""
        index, tag = self._index_tag(addr)
        return self._sets[index].pop(tag, None) is not None

    def resident_lines(self):
        """Byte addresses of all resident lines (diagnostics/tests)."""
        out = []
        for index, cache_set in enumerate(self._sets):
            for tag in cache_set:
                out.append((tag * self.num_sets + index) * self.line_bytes)
        return sorted(out)

    @property
    def occupancy(self):
        return sum(len(s) for s in self._sets)

    def miss_rate(self):
        total = self._hits.value + self._misses.value
        return self._misses.value / total if total else 0.0

    def reset(self):
        for cache_set in self._sets:
            cache_set.clear()
        self.stats.reset()
        self._tick = 0
