"""Generic set-associative, write-back, LRU cache (tag-timing model).

Each resident line carries a :class:`LineState` with the timestamps the
secure processor needs for authentication-control-point gating:

- ``data_time``: when the line's (decrypted) data became available;
- ``verify_time``: when its integrity verification completed (equal to
  ``data_time`` for lines that were verified before insertion or produced
  on-chip, later for lines still in the authentication queue).

A hit to a still-unverified line must observe its pending ``verify_time``:
that is exactly the window the paper's exploits live in.

Recency is tracked by dict insertion order (Python dicts preserve it):
a hit re-inserts the tag at the back, so the LRU victim is always the
*first* key of the set -- an O(1) pop instead of an O(assoc) scan.  The
``hit_line``/``fill`` pair is the allocation-free hot path the memory
hierarchy uses; ``access`` wraps it in a :class:`CacheAccess` for
callers off the critical path.
"""

from repro.config import CacheConfig
from repro.util.statistics import StatGroup


class LineState:
    """Metadata of one resident cache line."""

    __slots__ = ("tag", "dirty", "data_time", "verify_time")

    def __init__(self, tag, data_time=0, verify_time=0):
        self.tag = tag
        self.dirty = False
        self.data_time = data_time
        self.verify_time = verify_time


class CacheAccess:
    """Outcome of one cache lookup."""

    __slots__ = ("hit", "line", "victim_addr", "victim_dirty")

    def __init__(self, hit, line, victim_addr=None, victim_dirty=False):
        self.hit = hit
        self.line = line
        self.victim_addr = victim_addr
        self.victim_dirty = victim_dirty


class Cache:
    """Set-associative cache over line addresses.

    ``lookup`` probes without allocating or touching recency;
    ``hit_line`` probes the hit fast path (stats and recency updated, no
    allocation); ``fill`` allocates after a miss, evicting the LRU way
    in O(1) and reporting the victim so the caller can schedule a
    writeback; ``access`` combines the two and wraps the outcome in a
    :class:`CacheAccess` for convenience.
    """

    def __init__(self, config, stats=None):
        if not isinstance(config, CacheConfig):
            raise TypeError("config must be a CacheConfig")
        self.config = config
        self.num_sets = config.num_sets
        self.line_bytes = config.line_bytes
        self.assoc = config.associativity
        self.latency = config.latency
        # tag -> LineState; insertion order IS recency order (LRU first).
        self._sets = [dict() for _ in range(self.num_sets)]
        self.stats = stats if stats is not None else StatGroup(config.name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._evictions = self.stats.counter("evictions")
        self._writebacks = self.stats.counter("writebacks")

    def _index_tag(self, addr):
        line_addr = addr // self.line_bytes
        return line_addr % self.num_sets, line_addr // self.num_sets

    def line_addr(self, addr):
        """The line-aligned byte address containing ``addr``."""
        return (addr // self.line_bytes) * self.line_bytes

    def lookup(self, addr):
        """Probe for ``addr`` without any state change; LineState or None."""
        index, tag = self._index_tag(addr)
        return self._sets[index].get(tag)

    def hit_line(self, addr, is_write=False):
        """Hit fast path: the LineState on a hit, None on a miss.

        A hit counts and refreshes recency; a miss changes *nothing* --
        the caller decides whether to ``fill``.  Nothing is allocated
        either way.
        """
        line_addr = addr // self.line_bytes
        cache_set = self._sets[line_addr % self.num_sets]
        tag = line_addr // self.num_sets
        line = cache_set.get(tag)
        if line is None:
            return None
        self._hits.value += 1
        # Move-to-back keeps dict order == recency order.
        del cache_set[tag]
        cache_set[tag] = line
        if is_write:
            line.dirty = True
        return line

    def fill(self, addr, is_write=False):
        """Allocate ``addr`` after a ``hit_line`` miss.

        Returns ``(line, victim_addr, victim_dirty)``; the victim fields
        are ``(None, False)`` when no eviction was needed.
        """
        line_addr = addr // self.line_bytes
        index = line_addr % self.num_sets
        cache_set = self._sets[index]
        tag = line_addr // self.num_sets
        self._misses.value += 1
        if len(cache_set) >= self.assoc:
            lru_tag = next(iter(cache_set))
            victim = cache_set.pop(lru_tag)
            self._evictions.value += 1
            victim_dirty = victim.dirty
            if victim_dirty:
                self._writebacks.value += 1
            victim_addr = (victim.tag * self.num_sets + index) * self.line_bytes
            # Recycle the evicted LineState: every field is reset, so this
            # is indistinguishable from a fresh allocation.
            victim.tag = tag
            victim.dirty = is_write
            victim.data_time = 0
            victim.verify_time = 0
            cache_set[tag] = victim
            return victim, victim_addr, victim_dirty
        line = LineState(tag)
        if is_write:
            line.dirty = True
        cache_set[tag] = line
        return line, None, False

    def access(self, addr, is_write=False):
        """Probe and allocate-on-miss; returns a :class:`CacheAccess`."""
        line = self.hit_line(addr, is_write=is_write)
        if line is not None:
            return CacheAccess(True, line)
        line, victim_addr, victim_dirty = self.fill(addr, is_write=is_write)
        return CacheAccess(False, line, victim_addr, victim_dirty)

    def invalidate(self, addr):
        """Drop the line containing ``addr`` if resident (no writeback)."""
        index, tag = self._index_tag(addr)
        return self._sets[index].pop(tag, None) is not None

    def resident_lines(self):
        """Byte addresses of all resident lines (diagnostics/tests)."""
        out = []
        for index, cache_set in enumerate(self._sets):
            for tag in cache_set:
                out.append((tag * self.num_sets + index) * self.line_bytes)
        return sorted(out)

    @property
    def occupancy(self):
        return sum(len(s) for s in self._sets)

    def miss_rate(self):
        total = self._hits.value + self._misses.value
        return self._misses.value / total if total else 0.0

    def reset(self):
        for cache_set in self._sets:
            cache_set.clear()
        self.stats.reset()
