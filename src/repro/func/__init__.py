"""Functional secure machine.

Executes real programs (the repro RISC ISA) over *really encrypted,
really MAC-protected* memory, with the authentication control point
governing how far unverified instructions and data may influence
execution.  The machine exposes exactly the observables an adversary with
physical access has:

- the **bus trace** (plaintext fetch addresses, Section 3);
- the **I/O port** output;
- the **page-fault log** (Section 3.3: systems that display/log faulting
  addresses leak them);

plus the ciphertext in external memory, which the attack toolkit mutates.
"""

from repro.func.loader import load_program
from repro.func.machine import BusEvent, MachineResult, SecureMachine

__all__ = ["SecureMachine", "MachineResult", "BusEvent", "load_program"]
