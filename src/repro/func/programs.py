"""A small library of victim/benchmark programs for the repro RISC ISA.

Used by tests, examples and the execution-driven capture bridge.  Each
entry is (source, data, description); load with
:func:`repro.func.loader.load_program`.
"""

# Sums an array of 64 words at 0x2000 into r3, then outputs it.
ARRAY_SUM = """
    lui  r1, 0x0
    ori  r1, r1, 0x2000      ; base
    addi r2, r0, 64          ; count
    addi r3, r0, 0           ; sum
loop:
    lw   r4, 0(r1)
    add  r3, r3, r4
    addi r1, r1, 4
    addi r2, r2, -1
    bne  r2, r0, loop
    out  r3
    halt
"""

ARRAY_SUM_DATA = {0x2000: list(range(1, 65))}
ARRAY_SUM_EXPECTED = sum(range(1, 65))

# Walks a 16-node linked list accumulating node values.
LIST_WALK = """
    lui  r1, 0x0
    ori  r1, r1, 0x4000      ; head
    addi r3, r0, 0
walk:
    beq  r1, r0, done
    lw   r2, 4(r1)
    add  r3, r3, r2
    lw   r1, 0(r1)
    jmp  walk
done:
    out  r3
    halt
"""


def list_walk_data(nodes=16, base=0x4000, stride=0x40):
    """Build the linked-list data image for LIST_WALK."""
    data = {}
    for index in range(nodes):
        addr = base + index * stride
        next_addr = base + (index + 1) * stride if index + 1 < nodes else 0
        data[addr] = [next_addr, index + 1]
    return data


LIST_WALK_EXPECTED = sum(range(1, 17))

# Computes fib(20) iteratively.
FIBONACCI = """
    addi r1, r0, 0           ; fib(0)
    addi r2, r0, 1           ; fib(1)
    addi r3, r0, 20          ; iterations
loop:
    add  r4, r1, r2
    add  r1, r0, r2
    add  r2, r0, r4
    addi r3, r3, -1
    bne  r3, r0, loop
    out  r1
    halt
"""

FIBONACCI_EXPECTED = 6765

# Stores then reloads a scratch region (write-back exercise).
STORE_RELOAD = """
    lui  r1, 0x0
    ori  r1, r1, 0x6000
    addi r2, r0, 32
    addi r3, r0, 0
fill:
    sw   r2, 0(r1)
    addi r1, r1, 4
    addi r2, r2, -1
    bne  r2, r0, fill
    lui  r1, 0x0
    ori  r1, r1, 0x6000
    addi r2, r0, 32
drain:
    lw   r4, 0(r1)
    add  r3, r3, r4
    addi r1, r1, 4
    addi r2, r2, -1
    bne  r2, r0, drain
    out  r3
    halt
"""

STORE_RELOAD_EXPECTED = sum(range(1, 33))

# Insertion sort over 32 words at 0x7000 (in-place), then outputs a
# checksum sum(value * index) so ordering errors are visible.
INSERTION_SORT = """
    lui  r10, 0x0
    ori  r10, r10, 0x7000    ; base
    addi r11, r0, 32         ; n
    addi r1, r0, 1           ; i = 1
outer:
    bge  r1, r11, check
    slli r2, r1, 2
    add  r2, r2, r10         ; &a[i]
    lw   r3, 0(r2)           ; key = a[i]
    addi r4, r1, -1          ; j = i-1
inner:
    blt  r4, r0, place
    slli r5, r4, 2
    add  r5, r5, r10
    lw   r6, 0(r5)           ; a[j]
    bge  r3, r6, place       ; key >= a[j] -> stop shifting
    sw   r6, 4(r5)           ; a[j+1] = a[j]
    addi r4, r4, -1
    jmp  inner
place:
    addi r4, r4, 1
    slli r5, r4, 2
    add  r5, r5, r10
    sw   r3, 0(r5)           ; a[j+1] = key
    addi r1, r1, 1
    jmp  outer
check:
    addi r1, r0, 0           ; i = 0
    addi r7, r0, 0           ; checksum
sumloop:
    bge  r1, r11, done
    slli r2, r1, 2
    add  r2, r2, r10
    lw   r3, 0(r2)
    mul  r4, r3, r1
    add  r7, r7, r4
    addi r1, r1, 1
    jmp  sumloop
done:
    out  r7
    halt
"""


def insertion_sort_data(values):
    """Data image for INSERTION_SORT (exactly 32 values)."""
    if len(values) != 32:
        raise ValueError("need exactly 32 values")
    return {0x7000: list(values)}


def insertion_sort_expected(values):
    ordered = sorted(values)
    return sum(v * i for i, v in enumerate(ordered)) & 0xFFFFFFFF


# CRC-32 (bitwise, reflected 0xEDB88320) over 16 bytes at 0x7800.
CRC32 = """
    lui  r10, 0x0
    ori  r10, r10, 0x7800    ; data base
    addi r11, r0, 16         ; length
    addi r1, r0, -1          ; crc = 0xffffffff
    lui  r12, 0xedb8         ; polynomial 0xedb88320
    ori  r12, r12, 0x8320
    addi r2, r0, 0           ; byte index
byteloop:
    bge  r2, r11, finish
    add  r3, r10, r2
    lb   r4, 0(r3)           ; data byte
    xor  r1, r1, r4
    addi r5, r0, 8           ; bit counter
bitloop:
    beq  r5, r0, nextbyte
    andi r6, r1, 0x0001
    srli r1, r1, 1
    beq  r6, r0, skip
    xor  r1, r1, r12
skip:
    addi r5, r5, -1
    jmp  bitloop
nextbyte:
    addi r2, r2, 1
    jmp  byteloop
finish:
    addi r7, r0, -1
    xor  r1, r1, r7          ; final xor
    out  r1
    halt
"""


def crc32_data(payload):
    """Data image for CRC32 (exactly 16 bytes)."""
    if len(payload) != 16:
        raise ValueError("need exactly 16 bytes")
    return {0x7800: bytes(payload)}


def crc32_expected(payload):
    import binascii

    return binascii.crc32(bytes(payload)) & 0xFFFFFFFF


# 4x4 integer matrix multiply: C = A x B, then outputs sum(C).
MATMUL = """
    lui  r10, 0x0
    ori  r10, r10, 0x7c00    ; A
    lui  r11, 0x0
    ori  r11, r11, 0x7d00    ; B
    addi r9, r0, 0           ; total
    addi r1, r0, 0           ; i
iloop:
    addi r2, r0, 0           ; j
jloop:
    addi r3, r0, 0           ; k
    addi r4, r0, 0           ; acc
kloop:
    slli r5, r1, 4           ; i*16
    slli r6, r3, 2           ; k*4
    add  r5, r5, r6
    add  r5, r5, r10
    lw   r7, 0(r5)           ; A[i][k]
    slli r5, r3, 4           ; k*16
    slli r6, r2, 2           ; j*4
    add  r5, r5, r6
    add  r5, r5, r11
    lw   r8, 0(r5)           ; B[k][j]
    mul  r7, r7, r8
    add  r4, r4, r7
    addi r3, r3, 1
    slti r5, r3, 4
    bne  r5, r0, kloop
    add  r9, r9, r4          ; total += C[i][j]
    addi r2, r2, 1
    slti r5, r2, 4
    bne  r5, r0, jloop
    addi r1, r1, 1
    slti r5, r1, 4
    bne  r5, r0, iloop
    out  r9
    halt
"""


def matmul_data(a_rows, b_rows):
    """Data image for MATMUL (two 4x4 integer matrices)."""
    flat_a = [v for row in a_rows for v in row]
    flat_b = [v for row in b_rows for v in row]
    if len(flat_a) != 16 or len(flat_b) != 16:
        raise ValueError("matrices must be 4x4")
    return {0x7C00: flat_a, 0x7D00: flat_b}


def matmul_expected(a_rows, b_rows):
    total = 0
    for i in range(4):
        for j in range(4):
            total += sum(a_rows[i][k] * b_rows[k][j] for k in range(4))
    return total & 0xFFFFFFFF
