"""Program loader for the functional secure machine.

Assembles source (or accepts raw words), encrypts line-by-line and
installs code and data into the machine's protected memory.
"""

from repro.errors import ConfigError
from repro.func.machine import LINE_BYTES
from repro.isa.assembler import assemble


def load_words(machine, base_address, words):
    """Encrypt + install 32-bit ``words`` at ``base_address``."""
    if base_address % 4:
        raise ConfigError("base address must be word aligned")
    data = b"".join((w & 0xFFFFFFFF).to_bytes(4, "big") for w in words)
    load_bytes(machine, base_address, data)


def load_bytes(machine, base_address, data):
    """Encrypt + install raw ``data`` at ``base_address`` (line RMW)."""
    addr = base_address
    remaining = data
    while remaining:
        line = (addr // LINE_BYTES) * LINE_BYTES
        offset = addr - line
        take = min(len(remaining), LINE_BYTES - offset)
        plain = bytearray(machine.peek_plaintext(line, LINE_BYTES))
        plain[offset : offset + take] = remaining[:take]
        machine.install_line(line, bytes(plain))
        addr += take
        remaining = remaining[take:]


def load_program(machine, source, base_address=0, data=None):
    """Assemble ``source``, install it at ``base_address``, set the PC.

    ``data`` is an optional ``{address: words-or-bytes}`` mapping of
    initialised data regions.  If the machine uses virtual memory, pages
    covering the installed regions are identity-mapped.
    """
    words = assemble(source, base_address)
    load_words(machine, base_address, words)
    _map_region(machine, base_address, 4 * len(words))
    if data:
        for addr, payload in sorted(data.items()):
            if isinstance(payload, (bytes, bytearray)):
                load_bytes(machine, addr, bytes(payload))
                _map_region(machine, addr, len(payload))
            else:
                load_words(machine, addr, list(payload))
                _map_region(machine, addr, 4 * len(payload))
    machine.pc = base_address
    return words


def _map_region(machine, base, length):
    if not machine.use_vm:
        return
    for vpage in range(base >> 12, (base + max(length, 1) - 1 >> 12) + 1):
        machine.map_page(vpage)
