"""The functional secure machine.

Execution model
---------------

The machine is a simple RISC interpreter, but its *memory* is the secure
processor's external RAM: every line is counter-mode encrypted and
carries a truncated HMAC bound to (address, counter).  Fetching a line:

1. puts the line's (possibly re-mapped) address on the **bus trace** --
   this is the side channel of Section 3;
2. decrypts the ciphertext with the line's counter-mode pad (tampered
   ciphertext decrypts to predictably-flipped garbage -- malleability);
3. enqueues an authentication request that completes ``auth_delay``
   *instructions* later, modelling the decrypt-to-verify window in
   instruction-count units.

The active :class:`~repro.policies.base.AuthPolicy` decides what may
happen inside that window:

- *authen-then-issue* verifies every line before its first use (window
  collapses to zero);
- *authen-then-commit* / *authen-then-write* let dependent loads put
  secret-derived addresses on the bus before verification completes
  (the exploits of Section 3.2 succeed);
- *authen-then-fetch* tracks taint: a memory fetch whose address or
  control path depends on unverified data forces those verifications
  first, so tampering is detected before the fetch reaches the bus;
- *address obfuscation* re-maps the addresses the bus observer sees;
- ``gate_commit`` policies additionally hold I/O output (``out``) until
  verification, blocking the I/O variant of the disclosing kernel.

Verification failure raises :class:`~repro.errors.IntegrityError` -- the
architectural security exception.
"""

from repro.crypto.aes import AES
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_transform
from repro.errors import IntegrityError, IsaError, MemoryError_
from repro.isa.encoding import decode
from repro.isa.instructions import OpClass
from repro.mem.physical import PhysicalMemory
from repro.secure.hash_tree import MerkleTree
from repro.secure.verifier import MacVerifier

LINE_BYTES = 32
_WORD = 0xFFFFFFFF


class PageFault(MemoryError_):
    """Raised when virtual translation fails; the address is logged."""

    def __init__(self, vaddr):
        super().__init__("page fault at 0x%08x" % vaddr)
        self.vaddr = vaddr


class BusEvent:
    """One address observed on the memory bus."""

    __slots__ = ("kind", "addr", "instr_index")

    def __init__(self, kind, addr, instr_index):
        self.kind = kind            # "ifetch" | "data"
        self.addr = addr            # bus-visible (possibly re-mapped) addr
        self.instr_index = instr_index

    def __repr__(self):
        return "BusEvent(%s, 0x%08x, #%d)" % (self.kind, self.addr,
                                              self.instr_index)


class MachineResult:
    """Outcome of a (possibly attacked) run."""

    def __init__(self, halted, detected, steps, bus_trace, io_log,
                 fault_log, fault=None):
        self.halted = halted          # reached HALT normally
        self.detected = detected      # integrity violation raised
        self.steps = steps
        self.bus_trace = bus_trace
        self.io_log = io_log
        self.fault_log = fault_log    # page-fault addresses (leaky logs)
        self.fault = fault

    def bus_addresses(self, kind=None):
        return [e.addr for e in self.bus_trace
                if kind is None or e.kind == kind]


class _PendingAuth:
    __slots__ = ("line_addr", "deadline", "ok")

    def __init__(self, line_addr, deadline, ok):
        self.line_addr = line_addr
        self.deadline = deadline
        self.ok = ok


class SecureMachine:
    """Functional secure processor with a real encrypted memory."""

    def __init__(self, policy, key=b"\x13" * 32, memory_bytes=1 << 24,
                 auth_delay=30, use_vm=False, hash_tree=False,
                 obfuscator=None, mac_bits=64, mode="ctr"):
        if mode not in ("ctr", "cbc"):
            raise ValueError("mode must be 'ctr' or 'cbc'")
        self.policy = policy
        self.mode = mode
        self.aes = AES(key)
        self.verifier = MacVerifier(key, mac_bits=mac_bits)
        self.memory_bytes = memory_bytes
        self.mem = PhysicalMemory(memory_bytes)     # ciphertext
        self.mac_store = {}                          # line -> tag bytes
        self.counter_store = {}                      # line -> int
        if not policy.authentication:
            self.auth_delay = None     # verification never happens
        elif policy.gate_issue:
            self.auth_delay = 0        # verification precedes any use
        else:
            self.auth_delay = auth_delay * policy.window_scale
        self.use_vm = use_vm
        self.page_table = {}                         # vpage -> ppage
        self.obfuscator = obfuscator
        self.hash_tree = (
            MerkleTree(memory_bytes // LINE_BYTES) if hash_tree else None
        )

        self.regs = [0] * 32
        self.pc = 0
        self.steps = 0
        self.bus_trace = []
        self.io_log = []
        self.fault_log = []
        self._pending = []                 # FIFO of _PendingAuth
        self._pending_lines = {}           # line -> _PendingAuth
        self._reg_taint = [frozenset()] * 32
        self._pc_taint = frozenset()
        self._plain_cache = {}             # line -> decrypted bytes
        # Execution hook for trace capture: (pc, Instruction, mem vaddr)
        # of the most recently executed instruction.
        self.last_executed = None

    # ------------------------------------------------------------------
    # external-memory crypto layer

    def _line_of(self, addr):
        return (addr // LINE_BYTES) * LINE_BYTES

    def _nonce(self, line_addr, counter):
        return (line_addr << 64) | (counter & (2**64 - 1))

    def _iv(self, line_addr, counter):
        """Per-line CBC initialisation vector (derived on-chip)."""
        material = self._nonce(line_addr, counter).to_bytes(16, "big")
        return self.aes.encrypt_block(material)

    def _encrypt(self, line_addr, counter, plaintext):
        if self.mode == "cbc":
            return cbc_encrypt(self.aes, plaintext,
                               self._iv(line_addr, counter))
        return ctr_transform(self.aes, self._nonce(line_addr, counter),
                             plaintext)

    def _decrypt(self, line_addr, counter, cipher):
        if self.mode == "cbc":
            return cbc_decrypt(self.aes, cipher,
                               self._iv(line_addr, counter))
        return ctr_transform(self.aes, self._nonce(line_addr, counter),
                             cipher)

    def install_line(self, line_addr, plaintext):
        """Encrypt + MAC one line into external memory (trusted loader)."""
        if len(plaintext) != LINE_BYTES:
            raise ValueError("line must be %d bytes" % LINE_BYTES)
        counter = self.counter_store.get(line_addr, 0) + 1
        self.counter_store[line_addr] = counter
        cipher = self._encrypt(line_addr, counter, plaintext)
        self.mem.write(line_addr, cipher)
        self.mac_store[line_addr] = self.verifier.tag(line_addr, counter,
                                                      cipher)
        if self.hash_tree is not None:
            self.hash_tree.update(line_addr // LINE_BYTES, cipher)
        self._plain_cache.pop(line_addr, None)

    def peek_plaintext(self, addr, length):
        """Trusted debug view of decrypted memory (tests/loader only)."""
        out = b""
        while length:
            line = self._line_of(addr)
            offset = addr - line
            take = min(length, LINE_BYTES - offset)
            out += self._decrypt_line(line)[offset : offset + take]
            addr += take
            length -= take
        return out

    def _decrypt_line(self, line_addr):
        cached = self._plain_cache.get(line_addr)
        if cached is None:
            counter = self.counter_store.get(line_addr)
            if counter is None:
                # Never-installed memory reads as plaintext zeros (there
                # is no pad to strip -- nothing was ever encrypted here).
                cached = self.mem.read(line_addr, LINE_BYTES)
            else:
                cipher = self.mem.read(line_addr, LINE_BYTES)
                cached = self._decrypt(line_addr, counter, cipher)
            self._plain_cache[line_addr] = cached
        return cached

    def _verify_line(self, line_addr):
        """Run the MAC (and hash-tree) check; raise on mismatch."""
        counter = self.counter_store.get(line_addr, 0)
        cipher = self.mem.read(line_addr, LINE_BYTES)
        stored = self.mac_store.get(line_addr)
        if stored is None or not self.verifier.verify(line_addr, counter,
                                                      cipher, stored):
            raise IntegrityError(
                "MAC mismatch on line 0x%08x" % line_addr,
                line_addr=line_addr,
            )
        if self.hash_tree is not None:
            self.hash_tree.verify(line_addr // LINE_BYTES, cipher)

    # ------------------------------------------------------------------
    # speculative-window bookkeeping

    def _fetch_line(self, line_addr, kind):
        """Bring a line on-chip: bus event + auth request."""
        bus_addr = line_addr
        if self.obfuscator is not None:
            bus_addr = self.obfuscator.remap_address(line_addr)
        self.bus_trace.append(BusEvent(kind, bus_addr, self.steps))
        if self.auth_delay is None:
            return  # decrypt-only baseline: no verification at all
        if line_addr in self._pending_lines:
            return
        if self.auth_delay == 0:
            # authen-then-issue: verification precedes any use.
            self._verify_line(line_addr)
            return
        pending = _PendingAuth(line_addr, self.steps + self.auth_delay, True)
        self._pending.append(pending)
        self._pending_lines[line_addr] = pending

    def _drain_due_auths(self):
        """Complete verification requests whose window elapsed."""
        while self._pending and self._pending[0].deadline <= self.steps:
            pending = self._pending.pop(0)
            self._pending_lines.pop(pending.line_addr, None)
            self._verify_line(pending.line_addr)

    def _force_verify(self, taint):
        """Immediately verify all pending lines in a taint set."""
        for line_addr in sorted(taint):
            pending = self._pending_lines.pop(line_addr, None)
            if pending is not None:
                self._pending.remove(pending)
                self._verify_line(line_addr)

    def _drain_all(self):
        while self._pending:
            pending = self._pending.pop(0)
            self._pending_lines.pop(pending.line_addr, None)
            self._verify_line(pending.line_addr)

    def _line_taint(self, line_addr):
        if line_addr in self._pending_lines:
            return frozenset((line_addr,))
        return frozenset()

    # ------------------------------------------------------------------
    # address translation

    def map_page(self, vpage, ppage=None):
        """Install a virtual->physical page mapping (4 KB pages)."""
        self.page_table[vpage] = ppage if ppage is not None else vpage

    def _translate(self, vaddr):
        if not self.use_vm:
            if not 0 <= vaddr < self.memory_bytes:
                raise PageFault(vaddr & _WORD)
            return vaddr
        vpage = (vaddr & _WORD) >> 12
        ppage = self.page_table.get(vpage)
        if ppage is None:
            raise PageFault(vaddr & _WORD)
        return (ppage << 12) | (vaddr & 0xFFF)

    # ------------------------------------------------------------------
    # memory operations (policy-aware)

    def _translate_gated(self, vaddr):
        """Translate, deferring faults behind verification where required.

        A translation fault is an architectural exception: policies with
        precise (commit-gated) exception semantics cannot take it -- and
        cannot log its leaky faulting address -- before every outstanding
        verification has completed.  Pure authen-then-fetch lacks this
        property (Table 2), which is one reason the paper pairs it with
        authen-then-commit.
        """
        try:
            return self._translate(vaddr)
        except PageFault:
            if self.policy.gate_commit or self.policy.gate_issue:
                self._drain_all()  # may raise IntegrityError instead
            raise

    def _load(self, vaddr, addr_taint, width=4):
        """Policy-gated data load; returns (value, taint)."""
        paddr = self._translate_gated(vaddr)
        line = self._line_of(paddr)
        if self.policy.gate_fetch:
            # The fetch depends on its address computation: verify that
            # slice before granting the bus cycle.
            self._force_verify(addr_taint | self._pc_taint)
        self._fetch_line(line, "data")
        plain = self._decrypt_line(line)
        offset = paddr - line
        if offset + width > LINE_BYTES:
            # straddles lines; fetch the second line too
            second = self._decrypt_line_with_fetch(line + LINE_BYTES)
            plain = plain + second
        value = int.from_bytes(plain[offset : offset + width], "big")
        taint = addr_taint | self._line_taint(line)
        return value, taint

    def _decrypt_line_with_fetch(self, line_addr):
        self._fetch_line(line_addr, "data")
        return self._decrypt_line(line_addr)

    def _store(self, vaddr, value, data_taint, width=4):
        """Policy-gated store (read-modify-write of the line)."""
        paddr = self._translate_gated(vaddr)
        line = self._line_of(paddr)
        if self.policy.gate_store or self.policy.gate_commit:
            # Memory state must derive from verified inputs.  The store's
            # authentication tag covers every request outstanding at its
            # issue (Section 4.2.2), so drain the whole queue.
            self._drain_all()
        plain = bytearray(self._decrypt_line(line))
        offset = paddr - line
        plain[offset : offset + width] = (value & _WORD).to_bytes(width,
                                                                  "big")
        self.install_line(line, bytes(plain))

    # ------------------------------------------------------------------
    # execution

    def _set_reg(self, reg, value, taint):
        if reg != 0:
            self.regs[reg] = value & _WORD
            self._reg_taint[reg] = taint

    def _taint_of(self, regs):
        taint = frozenset()
        for reg in regs:
            taint |= self._reg_taint[reg]
        return taint

    def step(self):
        """Execute one instruction; returns False when halted."""
        self._drain_due_auths()

        ipaddr = self._translate_gated(self.pc)
        iline = self._line_of(ipaddr)
        if self.policy.gate_fetch and self._pc_taint:
            # Control-dependent instruction fetch: the control transfer
            # and everything it depended on must be verified first.
            self._force_verify(self._pc_taint)
            self._pc_taint = frozenset()
        self._fetch_line(iline, "ifetch")
        word = int.from_bytes(
            self._decrypt_line(iline)[ipaddr - iline : ipaddr - iline + 4],
            "big",
        )
        inst = decode(word)  # IsaError on tampered garbage
        inst_taint = self._line_taint(iline)

        self.steps += 1
        next_pc = self.pc + 4
        op = inst.op
        regs = self.regs
        mem_vaddr = -1
        if op in ("lw", "lb", "sw", "sb"):
            mem_vaddr = (regs[inst.rs1] + inst.imm) & _WORD
        self.last_executed = (self.pc, inst, mem_vaddr)

        if op == "halt":
            # Architectural completion: everything outstanding verifies.
            self._drain_all()
            return False
        if op == "nop":
            pass
        elif op in _ALU_R:
            value = _ALU_R[op](regs[inst.rs1], regs[inst.rs2])
            self._set_reg(inst.rd, value,
                          self._taint_of((inst.rs1, inst.rs2)) | inst_taint)
        elif op in _ALU_I:
            value = _ALU_I[op](regs[inst.rs1], inst.imm)
            self._set_reg(inst.rd, value,
                          self._taint_of((inst.rs1,)) | inst_taint)
        elif op == "lui":
            self._set_reg(inst.rd, (inst.imm & 0xFFFF) << 16, inst_taint)
        elif op in ("lw", "lb"):
            width = 4 if op == "lw" else 1
            vaddr = (regs[inst.rs1] + inst.imm) & _WORD
            addr_taint = self._taint_of((inst.rs1,)) | inst_taint
            value, taint = self._load(vaddr, addr_taint, width)
            self._set_reg(inst.rd, value, taint)
        elif op in ("sw", "sb"):
            width = 4 if op == "sw" else 1
            vaddr = (regs[inst.rs1] + inst.imm) & _WORD
            taint = self._taint_of((inst.rs1, inst.rd)) | inst_taint
            self._store(vaddr, regs[inst.rd], taint, width)
        elif op in ("beq", "bne", "blt", "bge"):
            lhs, rhs = regs[inst.rs1], regs[inst.rd]
            taken = _BRANCH[op](_signed(lhs), _signed(rhs))
            taint = self._taint_of((inst.rs1, inst.rd)) | inst_taint
            if taken:
                next_pc = self.pc + 4 + 4 * inst.imm
            self._pc_taint = self._pc_taint | taint
        elif op == "jmp":
            next_pc = 4 * inst.imm
            self._pc_taint = self._pc_taint | inst_taint
        elif op == "jal":
            self._set_reg(31, self.pc + 4, inst_taint)
            next_pc = 4 * inst.imm
            self._pc_taint = self._pc_taint | inst_taint
        elif op == "jalr":
            target = regs[inst.rs1] & ~3
            self._set_reg(inst.rd, self.pc + 4, inst_taint)
            self._pc_taint = (self._pc_taint
                              | self._taint_of((inst.rs1,)) | inst_taint)
            next_pc = target
        elif op == "out":
            taint = self._taint_of((inst.rs1,)) | inst_taint
            if self.policy.gate_commit or self.policy.gate_issue:
                # I/O is an architectural commit point: it happens only
                # after everything outstanding has been verified (this is
                # why authen-then-commit stops the I/O disclosing kernel).
                self._drain_all()
            self.io_log.append(regs[inst.rs1])
        else:
            raise IsaError("unhandled op %r" % op)

        self.pc = next_pc & _WORD
        return True

    def run(self, max_steps=10_000):
        """Run until HALT, a fault, or ``max_steps``; never raises."""
        fault = None
        halted = False
        detected = False
        try:
            while self.steps < max_steps:
                if not self.step():
                    halted = True
                    break
        except IntegrityError as exc:
            detected = True
            fault = exc
        except (PageFault, IsaError, MemoryError_) as exc:
            if isinstance(exc, PageFault):
                self.fault_log.append(exc.vaddr)
            fault = exc
        return MachineResult(halted, detected, self.steps,
                             list(self.bus_trace), list(self.io_log),
                             list(self.fault_log), fault)


def _signed(value):
    value &= _WORD
    return value - (1 << 32) if value & 0x80000000 else value


_ALU_R = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << (b & 31),
    "srl": lambda a, b: (a & _WORD) >> (b & 31),
    "sra": lambda a, b: _signed(a) >> (b & 31),
    "slt": lambda a, b: int(_signed(a) < _signed(b)),
    "sltu": lambda a, b: int((a & _WORD) < (b & _WORD)),
    "mul": lambda a, b: a * b,
    "div": lambda a, b: 0 if b == 0 else _signed(a) // _signed(b),
}

_ALU_I = {
    "addi": lambda a, imm: a + imm,
    "andi": lambda a, imm: a & (imm & 0xFFFF),
    "ori": lambda a, imm: a | (imm & 0xFFFF),
    "xori": lambda a, imm: a ^ (imm & 0xFFFF),
    "slli": lambda a, imm: a << (imm & 31),
    "srli": lambda a, imm: (a & _WORD) >> (imm & 31),
    "srai": lambda a, imm: _signed(a) >> (imm & 31),
    "slti": lambda a, imm: int(_signed(a) < imm),
}

_BRANCH = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
}
