"""The secure-memory engine: Figure 5's crypto pipeline, assembled.

Sits between the L2 cache and the memory controller.  On every L2 miss it
produces a :class:`ProtectedFetch` carrying the two timestamps the
authentication control points gate on:

- ``data_time`` -- when decrypted data is available to the pipeline
  (critical word, counter-mode pad overlap, counter-cache effects);
- ``verify_time`` -- when the line's integrity verification completes
  (whole line + MAC on-chip, optional hash-tree ancestors, in-order
  authentication queue);

plus the authentication-queue ``tag`` used by authen-then-write and
authen-then-fetch.
"""

from repro.config import SecureConfig
from repro.obs.events import (
    DECRYPT_DONE,
    LANE_DECRYPT,
    LANE_GAP,
    LANE_VERIFY,
    VERIFY_DONE,
    VERIFY_WINDOW,
)
from repro.secure.auth_queue import AuthQueue
from repro.secure.counter_cache import CounterCache
from repro.secure.decryption import DecryptionEngine
from repro.secure.hash_tree import HashTreeTiming
from repro.secure.metadata import MetadataLayout
from repro.secure.remap import AddressObfuscator


class ProtectedFetch:
    """Timing summary of one protected line fetch."""

    __slots__ = ("addr", "tag", "data_time", "verify_time", "mem_done")

    def __init__(self, addr, tag, data_time, verify_time, mem_done):
        self.addr = addr
        self.tag = tag
        self.data_time = data_time
        self.verify_time = verify_time
        self.mem_done = mem_done

    @property
    def gap(self):
        """The decrypt-to-verify window this fetch exposes."""
        return self.verify_time - self.data_time


def _make_fetch_line(engine):
    """Build the flattened counter-mode fetch path for ``engine``.

    Mirrors :meth:`SecureMemoryEngine.fetch_line` exactly for the common
    configuration (counter mode, no address obfuscation, stats attached),
    with the counter-cache probe, memory controller, SDRAM bank/bus
    timing and decryption-overlap logic inlined into one closure -- the
    per-L2-miss cost drops from a five-deep call chain with three
    intermediate result objects to straight-line arithmetic.  Returns
    ``None`` when the configuration needs the general path; delegates to
    the bound method whenever a tracer is enabled (the inline path emits
    no events).  The golden parity suite (``tests/perf``) pins the
    equivalence.
    """
    if engine.config.encryption_mode == "cbc" or engine.obfuscator is not None:
        return None
    if engine.stats is None:
        return None
    layout = engine.layout
    if engine.config.split_counters:
        counter_div = 4096
        counter_step = layout.line_bytes
    else:
        counter_div = layout.line_bytes
        counter_step = layout.counter_bytes
    counter_base = layout.counter_base
    meta_bytes = layout.line_bytes
    # Counter-cache probe (inline Cache.hit_line over the tag dicts).
    cc = engine.counter_cache._cache
    cc_sets = cc._sets
    cc_num_sets = cc.num_sets
    cc_line_bytes = cc.line_bytes
    cc_hits = cc._hits
    cc_fill = cc.fill
    predict = engine._predict
    # Memory controller + SDRAM + bus (inline fetch_line/access/reserve).
    controller = engine.controller
    fetch_metadata = controller.fetch_metadata
    dram = controller.dram
    dram_cfg = dram.config
    banks = dram._banks
    num_banks = dram_cfg.num_banks
    interleave = dram_cfg.interleave_bytes
    row_div = num_banks * dram_cfg.row_bytes
    cas = dram_cfg.cas_cycles
    rcd_cas = dram_cfg.rcd_cycles + cas
    rp_rcd_cas = dram_cfg.rp_cycles + rcd_cas
    dram_hits = dram._hits
    dram_empties = dram._empties
    dram_conflicts = dram._conflicts
    dram_accesses = dram._accesses
    bus = dram.bus
    bus_busy = bus._busy
    bus_transfers = bus._transfers
    bus_wait = bus._wait
    # Transfer size is fixed per engine (line + MAC rider), so the bus
    # occupancy is a captured constant.
    total_bytes = controller.line_bytes + controller.mac_rider_bytes
    duration = -(-total_bytes // bus.width_bytes) * bus.cycles_per_beat
    ctl_reads = controller._reads
    read_lat_buckets = controller._read_latency.buckets
    # Decryption overlap (inline DecryptionEngine.data_ready).
    decrypt = engine.decrypt
    decrypt_latency = decrypt.decrypt_latency
    xor_latency = decrypt.xor_latency
    pad_hidden = decrypt._hidden
    pad_exposed = decrypt._exposed
    auth_enabled = engine.authentication_enabled
    hash_tree = engine.hash_tree
    aq_enqueue = engine.auth_queue.enqueue
    gap_buckets = engine._gap_hist.buckets
    slow = SecureMemoryEngine.fetch_line.__get__(engine)

    def fetch_line(addr, cycle, gate_time=0):
        tracer = engine.tracer
        if tracer is not None and tracer.enabled:
            return slow(addr, cycle, gate_time=gate_time)
        issue = cycle if cycle > gate_time else gate_time
        # ---- counter-mode pad start (counter cache / prediction) -----
        caddr = counter_base + (addr // counter_div) * counter_step
        cline = caddr // cc_line_bytes
        cset = cc_sets[cline % cc_num_sets]
        ctag = cline // cc_num_sets
        centry = cset.get(ctag)
        if centry is not None:
            cc_hits.value += 1
            del cset[ctag]
            cset[ctag] = centry
            pad_start = issue
        else:
            cc_fill(caddr)
            if predict():
                pad_start = issue
            else:
                pad_start = fetch_metadata(
                    caddr, issue, meta_bytes, kind="counter").done_cycle
        # ---- SDRAM access + bus transfer -----------------------------
        bank = banks[(addr // interleave) % num_banks]
        row = addr // row_div
        open_row = bank.open_row
        dram_accesses.value += 1
        ready_at = bank.ready_at
        start = issue if issue > ready_at else ready_at
        if open_row == row:
            dram_hits.value += 1
            data_ready = start + cas
        elif open_row is None:
            dram_empties.value += 1
            data_ready = start + rcd_cas
        else:
            dram_conflicts.value += 1
            data_ready = start + rp_rcd_cas
        free_at = bus.free_at
        bstart = data_ready if data_ready > free_at else free_at
        done = bstart + duration
        bus.free_at = done
        bus_busy.value += duration
        bus_transfers.value += 1
        bus_wait.value += bstart - data_ready
        bank.open_row = row
        bank.ready_at = done
        ctl_reads.value += 1
        lat = done - issue
        read_lat_buckets[lat] = read_lat_buckets.get(lat, 0) + 1
        # ---- decrypt overlap -----------------------------------------
        pad_done = pad_start + decrypt_latency
        if pad_done <= done:
            pad_hidden.value += 1
            data_time = done + xor_latency
        else:
            pad_exposed.value += pad_done - done
            data_time = pad_done + xor_latency
        if not auth_enabled:
            return ProtectedFetch(addr, -1, data_time, data_time, done)
        # ---- verification --------------------------------------------
        verify_ready = done
        extra = 0
        if hash_tree is not None:
            nodes_ready, extra = hash_tree.verification_extra(
                addr, verify_ready, controller)
            if nodes_ready > verify_ready:
                verify_ready = nodes_ready
        tag, verify_time = aq_enqueue(verify_ready, extra, fetch_time=done)
        gap = verify_time - data_time
        if gap < 0:
            gap = 0
        gap_buckets[gap] = gap_buckets.get(gap, 0) + 1
        return ProtectedFetch(addr, tag, data_time, verify_time, done)

    return fetch_line


class SecureMemoryEngine:
    """Timing model of the secure processor's memory crypto engine."""

    def __init__(self, config=None, layout=None, controller=None, rng=None,
                 stats=None, authentication_enabled=True, tracer=None):
        if controller is None:
            raise ValueError("a MemoryController is required")
        self.config = config or SecureConfig()
        self.layout = layout or MetadataLayout(
            counter_bytes=self.config.counter_bytes,
            mac_bits=self.config.mac_bits,
        )
        self.controller = controller
        self.stats = stats
        self.tracer = tracer
        self.authentication_enabled = authentication_enabled
        # MACs ride along with each line only when verification is on.
        controller.mac_rider_bytes = (
            self.config.mac_bits // 8 if authentication_enabled else 0
        )

        self.decrypt = DecryptionEngine(self.config.decrypt_latency,
                                        stats=stats)
        self.counter_cache = CounterCache(self.config.counter_cache_bytes,
                                          stats=stats)
        # Deterministic LCG deciding counter-prediction outcomes, so runs
        # are reproducible without threading an RNG through the hierarchy.
        self._predict_state = 0x2545F4914F6CDD1D
        self._predict_threshold = int(
            self.config.counter_prediction_rate * (1 << 16))
        if self.config.mac_scheme == "gmac":
            mac_latency = self.config.gmac_latency
            mac_throughput = max(1, self.config.gmac_latency // 2)
        else:
            mac_latency = self.config.hmac_latency
            mac_throughput = self.config.mac_throughput
        self.auth_queue = AuthQueue(
            depth=self.config.auth_queue_depth,
            mac_latency=mac_latency,
            throughput=mac_throughput,
            stats=stats,
            tracer=tracer,
        )
        self.hash_tree = None
        if authentication_enabled and self.config.hash_tree_enabled:
            self.hash_tree = HashTreeTiming(
                self.layout,
                cache_bytes=self.config.hash_tree_cache_bytes,
                hash_latency=self.config.hmac_latency,
                stats=stats,
            )
        self.obfuscator = None
        if self.config.obfuscation_enabled:
            if rng is None:
                raise ValueError("obfuscation requires an rng stream")
            self.obfuscator = AddressObfuscator(
                self.layout,
                rng,
                cache_bytes=self.config.remap_cache_bytes,
                entry_bytes=self.config.remap_entry_bytes,
                cache_latency=self.config.remap_cache_latency,
                chunk_bytes=self.config.remap_chunk_bytes,
                shuffle_period=self.config.remap_shuffle_period,
                stats=stats,
            )
        self._minor_counts = {}
        if stats is not None:
            self._gap_hist = stats.histogram("decrypt_verify_gap")
            self._reencrypts = stats.counter("page_reencryptions")
        else:
            self._gap_hist = None
            self._reencrypts = None
        #: Flattened fetch path (see :func:`_make_fetch_line`); shadows
        #: the bound method when the configuration allows it.
        fast = _make_fetch_line(self)
        if fast is not None:
            self.fetch_line = fast

    def _counter_addr(self, addr):
        """Counter location for the line containing ``addr``.

        With split counters (per-page major + per-line minors), all of a
        4KB page's counters pack into one counter block, so the counter
        cache covers 8x more data per line.
        """
        if self.config.split_counters:
            page = addr // 4096
            return self.layout.counter_base + page * self.layout.line_bytes
        return self.layout.counter_addr(self.layout.line_index(addr))

    def _bump_minor(self, addr, cycle):
        """Advance a line's minor counter; overflow re-encrypts the page.

        The re-encryption reads and rewrites every line of the page under
        the bumped major counter -- a burst of bus traffic that is the
        price split counters pay for their compact storage.
        """
        line = self.layout.line_index(addr)
        count = self._minor_counts.get(line, 0) + 1
        if count < (1 << self.config.minor_counter_bits):
            self._minor_counts[line] = count
            return
        page_base = (addr // 4096) * 4096
        lines_per_page = 4096 // self.layout.line_bytes
        first_line = self.layout.line_index(page_base)
        for index in range(lines_per_page):
            self._minor_counts[first_line + index] = 0
            self.controller.write_line(
                page_base + index * self.layout.line_bytes, cycle,
                kind="reencrypt")
        if self._reencrypts is not None:
            self._reencrypts.add()

    def _predict(self):
        """Advance the prediction LCG; True on a successful prediction."""
        self._predict_state = (
            self._predict_state * 6364136223846793005 + 1442695040888963407
        ) & (2**64 - 1)
        return (self._predict_state >> 33) & 0xFFFF < self._predict_threshold

    def _trace_fetch(self, addr, tag, data_time, verify_time):
        """Emit the decrypt/verify events of one protected fetch."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        tracer.emit(DECRYPT_DONE, LANE_DECRYPT, data_time, addr=addr)
        if tag < 0:
            return
        tracer.emit(VERIFY_DONE, LANE_VERIFY, verify_time, addr=addr,
                    tag=tag, gap=verify_time - data_time)
        if verify_time > data_time:
            tracer.emit(VERIFY_WINDOW, LANE_GAP, data_time,
                        dur=verify_time - data_time, addr=addr, tag=tag)

    @property
    def last_request(self):
        """The LastRequest register (Section 4.1)."""
        return self.auth_queue.last_request

    def auth_completion(self, tag):
        """Completion cycle of authentication request ``tag``."""
        return self.auth_queue.completion_time(tag)

    def auth_frontier(self, cycle):
        """Completion time of the LastRequest register as read at ``cycle``
        (the tag an instruction issuing then would record)."""
        if not self.authentication_enabled:
            return 0
        return self.auth_queue.frontier_completion(cycle)

    def fetch_line(self, addr, cycle, gate_time=0):
        """Fetch one protected line from external memory.

        ``gate_time`` is the earliest cycle any resulting bus traffic may
        be granted -- this is how authen-then-fetch stalls the fetch until
        the authentication frontier it depends on has drained.
        """
        issue = max(cycle, gate_time)

        if self.config.encryption_mode == "cbc":
            return self._fetch_line_cbc(addr, issue)

        # Counter-mode pad: starts at issue on a counter-cache hit or a
        # successful counter prediction ([19]); a mispredicted miss waits
        # for the counter block to arrive from memory.
        counter_addr = self._counter_addr(addr)
        if self.counter_cache.lookup_counter(counter_addr):
            pad_start = issue
        elif self._predict():
            pad_start = issue
        else:
            meta = self.controller.fetch_metadata(
                counter_addr, issue, self.layout.line_bytes, kind="counter"
            )
            pad_start = meta.done_cycle

        # Address obfuscation: find the line's current physical location.
        target = addr
        fetch_ready = issue
        if self.obfuscator is not None:
            target, fetch_ready = self.obfuscator.resolve(
                addr, issue, self.controller
            )
            fetch_ready = max(fetch_ready, issue)

        access = self.controller.fetch_line(target, fetch_ready)
        # Table 1 accounting: decrypted data is charged from whole-line
        # fetch completion (pads cover the full line), so the decrypt-to-
        # verify gap is exactly the MAC latency plus queueing.
        data_time = self.decrypt.data_ready(pad_start, access.done_cycle)

        if not self.authentication_enabled:
            self._trace_fetch(addr, -1, data_time, data_time)
            return ProtectedFetch(addr, -1, data_time, data_time,
                                  access.done_cycle)

        # Verification needs the whole line and its MAC on-chip, plus any
        # uncached hash-tree ancestors.
        verify_ready = access.done_cycle
        extra = 0
        if self.hash_tree is not None:
            nodes_ready, extra = self.hash_tree.verification_extra(
                addr, verify_ready, self.controller
            )
            verify_ready = max(verify_ready, nodes_ready)
        # The LastRequest register bumps when the fetched block arrives
        # on-chip (a block can only be queued for verification once its
        # ciphertext is present).  An instruction issuing at time T can
        # only depend on blocks that arrived before T, so the frontier
        # indexed by arrival time is exactly the set authen-then-fetch
        # and authen-then-write must wait on.
        tag, verify_time = self.auth_queue.enqueue(
            verify_ready, extra, fetch_time=access.done_cycle)
        if self._gap_hist is not None:
            self._gap_hist.add(max(0, verify_time - data_time))
        self._trace_fetch(addr, tag, data_time, verify_time)
        return ProtectedFetch(addr, tag, data_time, verify_time,
                              access.done_cycle)

    def _fetch_line_cbc(self, addr, issue):
        """Table 1's second row: CBC decryption is serial per 128-bit
        chunk, and the CBC-MAC finishes with the last chunk -- no
        decrypt-to-verify gap, but a far later data time."""
        target = addr
        fetch_ready = issue
        if self.obfuscator is not None:
            target, fetch_ready = self.obfuscator.resolve(
                addr, issue, self.controller)
            fetch_ready = max(fetch_ready, issue)
        access = self.controller.fetch_line(target, fetch_ready)
        chunks = self.layout.line_bytes // 16
        decrypt = self.config.decrypt_latency
        # A consumer's word sits in a uniformly distributed chunk; charge
        # the mean serial-decryption position.
        data_time = access.done_cycle + decrypt * ((chunks + 1) // 2)
        full_line = access.done_cycle + decrypt * chunks
        if not self.authentication_enabled:
            self._trace_fetch(addr, -1, data_time, data_time)
            return ProtectedFetch(addr, -1, data_time, data_time,
                                  access.done_cycle)
        verify_ready = full_line
        extra = 0
        if self.hash_tree is not None:
            nodes_ready, extra = self.hash_tree.verification_extra(
                addr, verify_ready, self.controller)
            verify_ready = max(verify_ready, nodes_ready)
        tag, verify_time = self.auth_queue.enqueue(
            verify_ready, extra, fetch_time=access.done_cycle)
        if self._gap_hist is not None:
            self._gap_hist.add(max(0, verify_time - data_time))
        self._trace_fetch(addr, tag, data_time, verify_time)
        return ProtectedFetch(addr, tag, data_time, verify_time,
                              access.done_cycle)

    def write_line(self, addr, cycle):
        """Retire one dirty-line writeback through the crypto engine.

        Bumps the line's counter (re-encryption), recomputes its MAC
        (pipelined, off the critical path), updates hash-tree path nodes,
        and re-shuffles the line under address obfuscation.
        """
        self.counter_cache.bump(self._counter_addr(addr))
        if self.config.split_counters:
            self._bump_minor(addr, cycle)
        if self.hash_tree is not None:
            self.hash_tree.touch_for_update(addr)
        if self.obfuscator is not None:
            self.obfuscator.reshuffle_on_writeback(addr, cycle,
                                                   self.controller)
        else:
            self.controller.post_write(addr, cycle)
