"""Address obfuscation: chunk-granular memory re-mapping (HIDE-style).

Based on the revised model of [29] in Section 5.2.4.  The protected space
is divided into *chunks* (default 1 KB = 16 lines).  A permutation over
chunks plus a keyed intra-chunk line scramble determines every line's
current physical location, so the address bus never carries a protected
address in the clear.  An on-chip **re-map cache** holds recently used
(encrypted) re-map entries; missing entries are fetched from the re-map
table in external memory.  When a line is written back, its location is
re-mapped: the re-map entry is updated and, periodically, the whole chunk
is re-shuffled (charged as a burst of line moves on the bus).

Two classes:

- :class:`RemapTable` -- the functional permutation (always a bijection).
- :class:`AddressObfuscator` -- the timing model + address transform.
"""

from repro.cache.cache import Cache
from repro.config import CacheConfig


class RemapTable:
    """A lazily materialised permutation of chunk indices."""

    def __init__(self, num_chunks, rng):
        if num_chunks < 1:
            raise ValueError("need at least one chunk")
        self.num_chunks = num_chunks
        self._rng = rng
        self._forward = {}   # chunk -> slot (identity if absent)
        self._reverse = {}   # slot -> chunk

    def _check(self, chunk):
        if not 0 <= chunk < self.num_chunks:
            raise ValueError("chunk %d out of range" % chunk)

    def lookup(self, chunk):
        """Current slot of ``chunk``.

        Invariant: reshuffles are slot *swaps*, so a chunk absent from the
        forward map still owns its identity slot.
        """
        self._check(chunk)
        return self._forward.get(chunk, chunk)

    def reshuffle(self, chunk):
        """Swap ``chunk`` into a random slot; returns
        ``(new_slot, displaced_chunk)``."""
        self._check(chunk)
        target_slot = self._rng.randrange(self.num_chunks)
        current_slot = self.lookup(chunk)
        occupant = self._reverse.get(target_slot, target_slot)
        if occupant == chunk:
            return current_slot, chunk
        self._set(chunk, target_slot)
        self._set(occupant, current_slot)
        return target_slot, occupant

    def _set(self, chunk, slot):
        self._forward[chunk] = slot
        self._reverse[slot] = chunk

    def is_permutation(self):
        """Check bijectivity over all entries (tests)."""
        slots = [self.lookup(chunk) for chunk in range(self.num_chunks)]
        return sorted(slots) == list(range(self.num_chunks))


class AddressObfuscator:
    """Timing + address transform of the obfuscation layer."""

    def __init__(self, layout, rng, cache_bytes=256 * 1024,
                 entry_bytes=8, cache_latency=2, chunk_bytes=1024,
                 shuffle_period=16, stats=None):
        if chunk_bytes % layout.line_bytes:
            raise ValueError("chunk must be a whole number of lines")
        self.layout = layout
        self.chunk_bytes = chunk_bytes
        self.lines_per_chunk = chunk_bytes // layout.line_bytes
        self.num_chunks = layout.protected_bytes // chunk_bytes
        self.table = RemapTable(self.num_chunks, rng)
        self.entry_bytes = entry_bytes
        self.cache_latency = cache_latency
        self.shuffle_period = shuffle_period
        self._rng = rng
        self._writebacks_per_chunk = {}
        config = CacheConfig(
            name="remap_cache",
            size_bytes=cache_bytes,
            line_bytes=64,
            associativity=4,
            latency=cache_latency,
        )
        self.remap_cache = Cache(config, stats=stats)
        self.stats = stats
        if stats is not None:
            self._lookups = stats.counter("remap_lookups")
            self._entry_fetches = stats.counter("remap_entry_fetches")
            self._reshuffles = stats.counter("remap_reshuffles")
        else:
            self._lookups = self._entry_fetches = self._reshuffles = None

    def _chunk_of(self, addr):
        return addr // self.chunk_bytes

    def _entry_addr(self, chunk):
        # Re-map entries are packed in the table region (one per chunk).
        return self.layout.remap_base + chunk * self.entry_bytes

    def _scramble(self, chunk, line_in_chunk):
        """Keyed intra-chunk line permutation (bijective for powers of 2).

        An affine map ``(a*x + b) mod n`` with odd ``a`` is a permutation
        of the power-of-two range ``n``; ``a``/``b`` derive from the chunk
        index so every chunk scrambles differently.
        """
        n = self.lines_per_chunk
        a = (chunk * 2 + 1) % n or 1
        b = (chunk * 7 + 3) % n
        return (a * line_in_chunk + b) % n

    def remap_address(self, addr):
        """The physical (bus-visible) address of protected byte ``addr``."""
        chunk = self._chunk_of(addr)
        slot = self.table.lookup(chunk)
        line_in_chunk = (addr % self.chunk_bytes) // self.layout.line_bytes
        offset = addr % self.layout.line_bytes
        scrambled = self._scramble(chunk, line_in_chunk)
        return (slot * self.chunk_bytes
                + scrambled * self.layout.line_bytes + offset)

    def resolve(self, line_addr, cycle, controller):
        """Map a protected line address to its current physical location.

        Returns ``(remapped_addr, ready_cycle)``: the location, and when it
        is known (after the re-map cache lookup and, on a miss, the
        encrypted table-entry fetch from external memory).
        """
        chunk = self._chunk_of(line_addr)
        if self._lookups is not None:
            self._lookups.add()
        ready = cycle + self.cache_latency
        access = self.remap_cache.access(self._entry_addr(chunk))
        if not access.hit:
            fetch = controller.fetch_metadata(
                self._entry_addr(chunk), ready, self.entry_bytes,
                kind="remap",
            )
            ready = fetch.done_cycle
            if self._entry_fetches is not None:
                self._entry_fetches.add()
        return self.remap_address(line_addr), ready

    def reshuffle_on_writeback(self, line_addr, cycle, controller):
        """Re-map the line being written back; returns its new address.

        The line is written to its (re-mapped) location; every
        ``shuffle_period``-th writeback to a chunk triggers a chunk
        re-shuffle: the chunk swaps slots with a random peer and both
        chunks' lines are re-written (a burst of bus traffic), modelling
        the periodic re-randomisation of [29].
        """
        chunk = self._chunk_of(line_addr)
        count = self._writebacks_per_chunk.get(chunk, 0) + 1
        self._writebacks_per_chunk[chunk] = count
        if count % self.shuffle_period == 0:
            new_slot, displaced = self.table.reshuffle(chunk)
            self.remap_cache.access(self._entry_addr(chunk), is_write=True)
            if displaced != chunk:
                self.remap_cache.access(self._entry_addr(displaced),
                                        is_write=True)
            # Chunk move: both chunks' lines stream over the bus.
            base = new_slot * self.chunk_bytes
            for i in range(self.lines_per_chunk):
                controller.write_line(base + i * self.layout.line_bytes,
                                      cycle, kind="reshuffle")
            if self._reshuffles is not None:
                self._reshuffles.add()
        else:
            self.remap_cache.access(self._entry_addr(chunk), is_write=True)
        target = self.remap_address(line_addr)
        controller.write_line(target, cycle, kind="writeback")
        return target

    def reset(self):
        self.remap_cache.reset()
        self._writebacks_per_chunk.clear()
