"""The authentication queue and LastRequest register (Section 4.1).

Every block fetched from memory becomes a numbered authentication request.
The verification unit drains the queue **in request order**; a request's
entry index is its identity, and the *LastRequest register* always names
the most recent request.  Policies use these tags:

- authen-then-write associates the LastRequest value with each ready
  store and holds the store until that request completes;
- authen-then-fetch stalls a new bus fetch until the request tagged at
  the triggering instruction's issue has completed.

The timing model is a pipelined, in-order engine: request *n* may start
``throughput`` cycles after request *n-1* started (initiation interval),
takes ``mac_latency`` (plus any hash-tree extra) to finish, and never
completes before its predecessor.  A finite ``depth`` applies
backpressure: request *n* cannot enter the queue until request
``n - depth`` has left it.
"""

import bisect

from repro.obs.events import AUTH_QUEUE_FULL, LANE_VERIFY

NO_REQUEST = -1


class AuthQueue:
    """In-order integrity-verification queue (timing model)."""

    def __init__(self, depth=16, mac_latency=74, throughput=18, stats=None,
                 tracer=None):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        if mac_latency < 1 or throughput < 1:
            raise ValueError("latencies must be >= 1")
        self.depth = depth
        self.mac_latency = mac_latency
        self.throughput = throughput
        self._completions = []
        # Monotone (running-max) fetch-initiation time per request, so the
        # frontier query below can bisect.
        self._fetch_times = []
        self._last_start = None
        self.stats = stats
        self.tracer = tracer
        if stats is not None:
            self._requests = stats.counter("auth_requests")
            self._queue_full = stats.counter("auth_queue_full")
        else:
            self._requests = None
            self._queue_full = None

    @property
    def last_request(self):
        """Contents of the LastRequest register (NO_REQUEST when empty)."""
        return len(self._completions) - 1

    def enqueue(self, ready_time, extra_latency=0, fetch_time=None):
        """Add a verification request; returns ``(tag, completion_time)``.

        ``ready_time`` is when the block's ciphertext (and MAC) is fully
        on-chip; ``extra_latency`` accounts for hash-tree ancestor work.
        ``fetch_time`` is when the block's *memory fetch was initiated* --
        the moment the LastRequest register was bumped for this request
        (defaults to ``ready_time``).
        """
        completions = self._completions
        fetch_times = self._fetch_times
        tag = len(completions)
        if fetch_time is None:
            fetch_time = ready_time
        if fetch_times and fetch_time < fetch_times[-1]:
            fetch_time = fetch_times[-1]
        fetch_times.append(fetch_time)
        if tag >= self.depth:
            slot_free = completions[tag - self.depth]
            if slot_free > ready_time:
                if self._queue_full is not None:
                    self._queue_full.value += 1
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.emit(AUTH_QUEUE_FULL, LANE_VERIFY, ready_time,
                                dur=slot_free - ready_time, tag=tag)
                ready_time = slot_free
        last_start = self._last_start
        if last_start is None:
            start = ready_time
        else:
            start = last_start + self.throughput
            if ready_time > start:
                start = ready_time
        done = start + self.mac_latency + extra_latency
        if tag and done < completions[-1]:
            done = completions[-1]  # in-order completion broadcast
        self._last_start = start
        completions.append(done)
        if self._requests is not None:
            self._requests.value += 1
        return tag, done

    def completion_time(self, tag):
        """Cycle when request ``tag`` completes (0 for NO_REQUEST)."""
        if tag == NO_REQUEST:
            return 0
        return self._completions[tag]

    def drained_after(self, tag):
        """Cycle by which every request up to ``tag`` has completed.

        Because completion is in order, this equals ``completion_time``;
        the method exists for readability at drain-style call sites.
        """
        return self.completion_time(tag)

    def frontier_completion(self, cycle):
        """Completion time of the LastRequest as observed at ``cycle``.

        This is the tag mechanism of Section 4.2.4: an instruction issuing
        at ``cycle`` records the then-current LastRequest register; a fetch
        it triggers stalls until that request completes.  Requests whose
        memory fetch had not yet been initiated at ``cycle`` are *not*
        waited on -- which is why bursts of independent misses issued from
        the window do not serialise each other.
        """
        index = bisect.bisect_right(self._fetch_times, cycle) - 1
        if index < 0:
            return 0
        return self._completions[index]

    def pending_at(self, cycle):
        """Number of requests not yet complete at ``cycle`` (diagnostics)."""
        return sum(1 for done in self._completions if done > cycle)

    def reset(self):
        self._completions.clear()
        self._fetch_times.clear()
        self._last_start = None
