"""Counter-mode decryption engine (timing model).

Implements the paper's reference decryption path (Section 5.2.2, based on
the counter-mode architecture of [19]): the pad for a line is

    pad = AES_k(line address || line counter)

and can be computed *in parallel with the memory fetch* whenever the
counter is known (counter-cache hit).  Decrypted data is then a single XOR
away from the arriving ciphertext:

    data_time = max(ciphertext arrival, pad_start + decrypt_latency)

On a counter-cache miss the pad cannot start until the counter block
arrives from memory.
"""


class DecryptionEngine:
    """Timing of the counter-mode decryption path."""

    def __init__(self, decrypt_latency=80, xor_latency=1, stats=None):
        if decrypt_latency < 1:
            raise ValueError("decrypt_latency must be >= 1")
        self.decrypt_latency = decrypt_latency
        self.xor_latency = xor_latency
        self.stats = stats
        if stats is not None:
            self._hidden = stats.counter("pad_fully_hidden")
            self._exposed = stats.counter("pad_exposed_cycles")
        else:
            self._hidden = None
            self._exposed = None

    def data_ready(self, pad_start, ciphertext_arrival):
        """Cycle when plaintext is available to the cache hierarchy."""
        pad_done = pad_start + self.decrypt_latency
        ready = max(ciphertext_arrival, pad_done) + self.xor_latency
        if self._hidden is not None:
            if pad_done <= ciphertext_arrival:
                self._hidden.add()
            else:
                self._exposed.add(pad_done - ciphertext_arrival)
        return ready
