"""MAC verification unit -- functional black box.

The paper treats the MAC logic as a black box returning a binary result
per fetched block (Section 4).  This module provides the *functional*
verifier used by the functional secure machine: a keyed, truncated
HMAC-SHA-256 over (ciphertext, line address, line counter), so that
splicing and replay are detected, not just bit flips.

Timing lives in :class:`repro.secure.auth_queue.AuthQueue`.
"""

from repro.crypto.hmac import truncated_mac


class MacVerifier:
    """Computes and checks per-line MACs."""

    def __init__(self, key, mac_bits=64):
        self.key = bytes(key)
        self.mac_bits = mac_bits

    def tag(self, line_addr, counter, ciphertext):
        """MAC over the line's ciphertext bound to its address and counter.

        Binding the address prevents relocation/splicing attacks; binding
        the counter prevents replaying a stale (ciphertext, MAC) pair after
        the line has been rewritten.
        """
        message = (
            line_addr.to_bytes(8, "big")
            + (counter & (2**64 - 1)).to_bytes(8, "big")
            + bytes(ciphertext)
        )
        return truncated_mac(self.key, message, self.mac_bits)

    def verify(self, line_addr, counter, ciphertext, stored_tag):
        """Return True iff ``stored_tag`` matches the recomputed MAC."""
        return self.tag(line_addr, counter, ciphertext) == bytes(stored_tag)
