"""CHTree-style hash tree: functional Merkle tree + timing model.

Per-line MACs alone cannot stop **replay**: an adversary records a stale
(ciphertext, MAC) pair and restores it after the line is rewritten.  The
CHTree approach ([22], Section 5.2.3) builds an m-ary hash tree over the
protected region, keeps the root on-chip, and caches verified tree nodes
in a small dedicated cache so most verifications terminate at a cached
ancestor instead of walking to the root.

Two classes:

- :class:`MerkleTree` -- the functional tree used by the functional secure
  machine (real SHA-256 hashes, detects any tamper/replay).
- :class:`HashTreeTiming` -- the timing model used by the simulator
  (node-cache hits/misses, ancestor fetches, pipelined hashing).
"""

from repro.cache.cache import Cache
from repro.config import CacheConfig
from repro.crypto.sha256 import sha256
from repro.errors import IntegrityError


class MerkleTree:
    """Functional m-ary Merkle tree over fixed-size leaves.

    Leaves are the protected lines' ciphertexts.  ``update`` recomputes the
    path to the root; ``verify`` walks leaf-up and compares against stored
    node hashes, raising :class:`IntegrityError` on the first mismatch --
    including the replay case, because the stored path hashes no longer
    match a stale leaf.
    """

    def __init__(self, num_leaves, arity=4, hash_bytes=16):
        if num_leaves < 1:
            raise ValueError("need at least one leaf")
        if arity < 2:
            raise ValueError("arity must be >= 2")
        self.arity = arity
        self.hash_bytes = hash_bytes
        self.num_leaves = num_leaves
        self._levels = []  # level 0 = hashes of leaves, ...
        count = num_leaves
        while count > 1:
            count = -(-count // arity)
            self._levels.append([None] * count)
        if not self._levels:
            self._levels.append([None])
        self._leaf_hashes = [None] * num_leaves

    @property
    def root(self):
        return self._levels[-1][0]

    def _hash_leaf(self, index, data):
        return sha256(b"leaf" + index.to_bytes(8, "big") + bytes(data))[
            : self.hash_bytes
        ]

    def _hash_children(self, level, index, children):
        material = b"node" + level.to_bytes(2, "big") + index.to_bytes(8, "big")
        for child in children:
            material += child if child is not None else b"\x00" * self.hash_bytes
        return sha256(material)[: self.hash_bytes]

    def _recompute_node(self, level, index):
        if level == 0:
            lo = index * self.arity
            children = self._leaf_hashes[lo : lo + self.arity]
        else:
            lo = index * self.arity
            children = self._levels[level - 1][lo : lo + self.arity]
        return self._hash_children(level, index, children)

    def update(self, leaf_index, data):
        """Install leaf ``leaf_index`` = ``data`` and refresh its path."""
        if not 0 <= leaf_index < self.num_leaves:
            raise ValueError("leaf index out of range")
        self._leaf_hashes[leaf_index] = self._hash_leaf(leaf_index, data)
        index = leaf_index
        for level in range(len(self._levels)):
            index //= self.arity
            self._levels[level][index] = self._recompute_node(level, index)

    def verify(self, leaf_index, data):
        """Verify leaf ``leaf_index`` against the tree; raise on mismatch."""
        if not 0 <= leaf_index < self.num_leaves:
            raise ValueError("leaf index out of range")
        expected = self._leaf_hashes[leaf_index]
        if expected is None or self._hash_leaf(leaf_index, data) != expected:
            raise IntegrityError(
                "leaf %d fails hash-tree verification" % leaf_index,
                line_addr=leaf_index,
            )
        index = leaf_index
        for level in range(len(self._levels)):
            index //= self.arity
            stored = self._levels[level][index]
            if stored is None or self._recompute_node(level, index) != stored:
                raise IntegrityError(
                    "tree node (level %d, %d) fails verification"
                    % (level, index),
                    line_addr=leaf_index,
                )
        return True


class HashTreeTiming:
    """Timing of CHTree verification with a dedicated node cache.

    For each protected-line verification, the engine must have verified
    tree nodes up to the first cached (hence already-verified) ancestor.
    Uncached ancestors are fetched from memory; hashing is pipelined so the
    verification's extra cost is dominated by the ancestor fetches plus one
    hash latency per fetched level (the paper performs internal-node
    verification "concurrently when allowed"; we charge the serial fetch
    chain and a single extra hash per level beyond the leaf).
    """

    def __init__(self, layout, cache_bytes=8 * 1024, hash_latency=74,
                 stats=None):
        self.layout = layout
        self.hash_latency = hash_latency
        config = CacheConfig(
            name="tree_cache",
            size_bytes=cache_bytes,
            line_bytes=layout.line_bytes,
            associativity=4,
            latency=1,
        )
        self.node_cache = Cache(config, stats=stats)
        # Evicted-but-verified tree nodes also live in the regular L2
        # (CHTree keeps internal nodes cacheable); attached by the
        # hierarchy after construction.
        self.backing_cache = None
        self.backing_latency = 0
        self.stats = stats
        if stats is not None:
            self._node_fetches = stats.counter("tree_node_fetches")
            self._backing_hits = stats.counter("tree_backing_hits")
            self._walk_depth = stats.histogram("tree_walk_depth")
        else:
            self._node_fetches = None
            self._backing_hits = None
            self._walk_depth = None

    def attach_backing(self, cache, latency):
        """Let verified tree nodes occupy the unified L2 as well."""
        self.backing_cache = cache
        self.backing_latency = latency

    def verification_extra(self, line_addr, ready_time, controller):
        """Extra verification inputs for one line.

        Returns ``(nodes_ready, extra_hash_latency)``: the cycle by which
        every required tree node is on-chip, and the additional hashing
        latency beyond the leaf MAC check.  Fetched nodes are installed in
        the node cache (they are verified as part of this walk).
        """
        line_index = self.layout.line_index(line_addr)
        depth = 0
        nodes_ready = ready_time
        for node_addr in self.layout.tree_path(line_index):
            access = self.node_cache.access(node_addr)
            if access.hit:
                break
            depth += 1
            if self.backing_cache is not None:
                backing = self.backing_cache.access(node_addr)
                if backing.hit:
                    # A verified node resident in the unified L2 ends the
                    # walk just like a tree-cache hit.
                    nodes_ready += self.backing_latency
                    if self._backing_hits is not None:
                        self._backing_hits.add()
                    break
            fetch = controller.fetch_metadata(
                node_addr, nodes_ready, self.layout.line_bytes, kind="tree"
            )
            nodes_ready = fetch.done_cycle
            if self._node_fetches is not None:
                self._node_fetches.add()
        if self._walk_depth is not None:
            self._walk_depth.add(depth)
        # Internal-node verification runs concurrently (Section 5.3.3:
        # "performs the verification of the internal hash tree nodes
        # concurrently when it is allowed"), so a non-trivial walk costs
        # one extra pipelined hash, not one per level.
        return nodes_ready, self.hash_latency if depth else 0

    def touch_for_update(self, line_addr):
        """Mark the line's leaf-path nodes dirty (writeback updates them)."""
        line_index = self.layout.line_index(line_addr)
        for node_addr in self.layout.tree_path(line_index):
            access = self.node_cache.access(node_addr, is_write=True)
            if access.hit:
                break

    def reset(self):
        self.node_cache.reset()
