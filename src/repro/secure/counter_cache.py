"""Counter cache: on-chip cache of per-line counter-mode counters.

Counter-mode pad precomputation needs the line's counter.  When the
counter is cached on-chip, pad generation starts the moment the fetch
address is known; on a miss the counter must itself be fetched from
memory first, delaying the pad (and widening the window in which the
arriving ciphertext sits undecrypted).
"""

from repro.cache.cache import Cache
from repro.config import CacheConfig


class CounterCache:
    """Tag cache over counter *blocks* (several counters per line)."""

    def __init__(self, size_bytes=32 * 1024, line_bytes=64, associativity=4,
                 stats=None):
        config = CacheConfig(
            name="counter_cache",
            size_bytes=size_bytes,
            line_bytes=line_bytes,
            associativity=associativity,
            latency=1,
        )
        self._cache = Cache(config, stats=stats)

    def lookup_counter(self, counter_addr):
        """Probe-and-fill for the counter block; returns True on a hit.

        The fill models the counter block arriving later via
        :meth:`install`; callers that miss must schedule the metadata
        fetch themselves.
        """
        if self._cache.hit_line(counter_addr) is not None:
            return True
        self._cache.fill(counter_addr)
        return False

    def install(self, counter_addr):
        """Ensure the counter block is resident (after a metadata fetch)."""
        if self._cache.hit_line(counter_addr) is None:
            self._cache.fill(counter_addr)

    def bump(self, counter_addr):
        """Mark the counter block dirty (a writeback incremented a counter)."""
        if self._cache.hit_line(counter_addr, is_write=True) is None:
            self._cache.fill(counter_addr, is_write=True)

    @property
    def stats(self):
        return self._cache.stats

    def miss_rate(self):
        return self._cache.miss_rate()

    def reset(self):
        self._cache.reset()
