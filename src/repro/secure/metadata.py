"""Physical layout of the secure-memory metadata.

The protected region occupies the bottom of the physical address space.
Per-line metadata lives in dedicated regions above it:

- per-line counters (counter-mode nonces, bumped on every writeback);
- the re-map table for address obfuscation;
- hash-tree node levels (level 0 = hashes over data lines, level k over
  level k-1), each level contiguous.

MAC tags are *co-located* with their lines (fetched as a rider on the same
burst), so they need no address of their own; the layout still reports the
MAC rider size for bus accounting.
"""

from repro.errors import ConfigError


class MetadataLayout:
    """Address arithmetic for secure-memory metadata regions."""

    def __init__(self, protected_bytes=256 * 1024 * 1024, line_bytes=64,
                 counter_bytes=8, mac_bits=64, remap_entry_bytes=8,
                 hash_bytes=16):
        if protected_bytes % line_bytes:
            raise ConfigError("protected region must be a whole number of lines")
        self.protected_bytes = protected_bytes
        self.line_bytes = line_bytes
        self.counter_bytes = counter_bytes
        self.mac_bytes = mac_bits // 8
        self.remap_entry_bytes = remap_entry_bytes
        self.hash_bytes = hash_bytes
        self.num_lines = protected_bytes // line_bytes

        self.counter_base = protected_bytes
        counter_region = self.num_lines * counter_bytes
        self.remap_base = self.counter_base + counter_region
        remap_region = self.num_lines * remap_entry_bytes
        self.tree_base = self.remap_base + remap_region

        # CHTree levels: level 0 holds one hash per data line, packed into
        # line_bytes-sized nodes; each higher level hashes the level below.
        self.tree_arity = line_bytes // hash_bytes
        if self.tree_arity < 2:
            raise ConfigError("hash tree arity must be >= 2")
        self._level_bases = []
        self._level_nodes = []
        count = self.num_lines
        base = self.tree_base
        while count > 1:
            nodes = -(-count // self.tree_arity)
            self._level_bases.append(base)
            self._level_nodes.append(nodes)
            # Skew successive level bases by a few lines: without this,
            # node 0 of every level aliases to the same tree-cache set
            # (power-of-two level sizes), evicting a hot path's ancestors.
            base += (nodes + 3) * line_bytes
            count = nodes
        self.total_bytes = base

    def line_index(self, addr):
        """Index of the protected line containing byte address ``addr``."""
        if not 0 <= addr < self.protected_bytes:
            raise ConfigError(
                "address 0x%x outside protected region (%d bytes)"
                % (addr, self.protected_bytes)
            )
        return addr // self.line_bytes

    def counter_addr(self, line_index):
        """Physical address of the per-line counter."""
        return self.counter_base + line_index * self.counter_bytes

    def counters_per_line(self):
        """How many counters share one memory line (fetch granularity)."""
        return self.line_bytes // self.counter_bytes

    def remap_entry_addr(self, line_index):
        """Physical address of the re-map table entry for a line."""
        return self.remap_base + line_index * self.remap_entry_bytes

    @property
    def tree_levels(self):
        """Number of internal tree levels (excluding the on-chip root)."""
        return len(self._level_bases)

    def tree_node_addr(self, level, node_index):
        """Physical address of node ``node_index`` at tree ``level``."""
        if not 0 <= level < self.tree_levels:
            raise ConfigError("tree level %d out of range" % level)
        if not 0 <= node_index < self._level_nodes[level]:
            raise ConfigError("tree node %d out of range at level %d"
                              % (node_index, level))
        return self._level_bases[level] + node_index * self.line_bytes

    def tree_path(self, line_index):
        """Addresses of the tree nodes covering ``line_index``, leaf-up."""
        path = []
        index = line_index
        for level in range(self.tree_levels):
            index //= self.tree_arity
            # Level 0 node covering the line is at line_index//arity; each
            # higher level divides again.
            path.append(self.tree_node_addr(level, index))
        return path
