"""Secure-memory engine (Figure 5 of the paper).

Every block fetched from external memory passes through two decoupled
paths:

- the **decryption path** (counter cache + counter-mode pad precompute),
  which usually finishes as the data arrives; and
- the **authentication path** (the authentication queue + MAC verification
  unit, optionally a CHTree hash tree), which finishes tens to hundreds of
  cycles later.

The gap between the two is the security window the authentication control
points (:mod:`repro.policies`) manage.
"""

from repro.secure.auth_queue import AuthQueue, NO_REQUEST
from repro.secure.counter_cache import CounterCache
from repro.secure.decryption import DecryptionEngine
from repro.secure.engine import ProtectedFetch, SecureMemoryEngine
from repro.secure.hash_tree import HashTreeTiming, MerkleTree
from repro.secure.metadata import MetadataLayout
from repro.secure.remap import AddressObfuscator, RemapTable
from repro.secure.verifier import MacVerifier

__all__ = [
    "AuthQueue",
    "NO_REQUEST",
    "CounterCache",
    "DecryptionEngine",
    "MacVerifier",
    "MerkleTree",
    "HashTreeTiming",
    "MetadataLayout",
    "RemapTable",
    "AddressObfuscator",
    "MetadataLayout",
    "ProtectedFetch",
    "SecureMemoryEngine",
]
