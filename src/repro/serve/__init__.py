"""Simulation-as-a-service: HTTP figure/sweep serving over the store.

The serving tier turns the simulator into the memoized slow tier of a
request/response stack: warm figures and result-tier sweep cells are
answered straight from disk artifacts, cold ones enqueue one
regeneration through the normal executor path and answer 202 until it
lands.  :class:`~repro.serve.service.FigureService` holds the state
machine, :mod:`repro.serve.http` is the stdlib HTTP skin, and
:mod:`repro.serve.diff` compares the per-figure JSON artifacts two
runs produced.
"""

from repro.serve.diff import diff_figures, load_series_dir, render_diff
from repro.serve.http import make_server, serve_forever
from repro.serve.service import RETRY_AFTER_SECONDS, FigureService

__all__ = [
    "FigureService",
    "RETRY_AFTER_SECONDS",
    "diff_figures",
    "load_series_dir",
    "make_server",
    "render_diff",
    "serve_forever",
]
