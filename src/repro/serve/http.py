"""stdlib HTTP skin over :class:`~repro.serve.service.FigureService`.

``ThreadingHTTPServer`` + ``BaseHTTPRequestHandler`` -- one daemon
thread per connection is plenty for a figure server whose hot path is
an ``open()`` + ``read()``.  The handler only routes and serialises;
every decision lives in the service, which is what the tests drive.

Routes (GET only):

- ``/figures``            -- registry listing with warm/cold state
- ``/figure/<name>``      -- the per-figure JSON series artifact
  (``?format=txt`` for the text render); 202 + Retry-After while cold
- ``/sweep?benchmark=a,b&policy=x,y[&n=...&warmup=...&seed=...]``
  -- result-tier grid; 202 while misses regenerate
- ``/healthz``            -- liveness + queue/warm state
- ``/metricsz``           -- Prometheus text exposition
"""

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.serve.service import JSON_TYPE, dumps


def _csv(query, *names):
    """The first present query param among ``names``, split on commas."""
    for name in names:
        values = query.get(name)
        if values:
            return [part.strip() for part in ",".join(values).split(",")
                    if part.strip()]
    return []


def _int_param(query, name):
    values = query.get(name)
    if not values:
        return None
    return int(values[0])


def make_handler(service):
    """A request-handler class bound to ``service``."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1"
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):
            service.log("%s %s" % (self.address_string(),
                                   format % args))

        def _respond(self, status, body, content_type):
            if isinstance(body, dict):
                payload = (dumps(body) + "\n").encode()
            elif isinstance(body, str):
                payload = body.encode()
            else:
                payload = body
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if status == 202:
                retry = (body.get("retry_after")
                         if isinstance(body, dict) else None)
                if retry:
                    self.send_header("Retry-After", str(retry))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self):
            parts = urlsplit(self.path)
            query = parse_qs(parts.query)
            try:
                self._route(parts.path, query)
            except (ValueError, TypeError) as exc:
                self._respond(400, {"error": str(exc)}, JSON_TYPE)
            except Exception as exc:  # never kill the connection thread
                self._respond(500, {"error": repr(exc)}, JSON_TYPE)

        def _route(self, path, query):
            if path == "/figures":
                self._respond(*service.list_figures())
            elif path.startswith("/figure/"):
                name = path[len("/figure/"):]
                fmt = query.get("format", ["json"])[0]
                self._respond(*service.figure(name, fmt))
            elif path == "/sweep":
                self._respond(*service.sweep(
                    _csv(query, "benchmark", "benchmarks"),
                    _csv(query, "policy", "policies"),
                    num_instructions=_int_param(query, "n"),
                    warmup=_int_param(query, "warmup"),
                    seed=_int_param(query, "seed")))
            elif path == "/healthz":
                self._respond(*service.health())
            elif path == "/metricsz":
                self._respond(*service.metrics_text())
            else:
                self._respond(404, {"error": "no route %r" % path},
                              JSON_TYPE)

    return Handler


def make_server(service, host="127.0.0.1", port=0):
    """A bound (not yet serving) server; ``port=0`` picks a free port."""
    return ThreadingHTTPServer((host, port), make_handler(service))


def serve_forever(service, host="127.0.0.1", port=8178, log=None):
    """Bind and serve until interrupted; closes the service on exit."""
    httpd = make_server(service, host, port)
    if log is not None:
        log("serving figures on http://%s:%d/ (artifacts: %s)"
            % (httpd.server_address[0], httpd.server_address[1],
               service.out_dir))
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        service.close()
    return 0
