"""The figure server's state machine (transport-agnostic).

:class:`FigureService` answers figure and sweep requests from the
artifacts on disk and the artifact store, and funnels every miss
through one background regeneration worker:

- A *warm* figure is one whose ``<name>.json`` series artifact exists
  in ``out_dir`` (``run_figures`` writes the ``.txt`` first and the
  JSON last, atomically, so the JSON doubles as the completion
  marker).  Warm requests return the artifact file's bytes verbatim --
  byte-identical to what ``repro figures --emit-json`` wrote, because
  it *is* that file.
- A *cold* figure enqueues one regeneration unit and answers 202 with
  a retry hint.  The in-process ``_warming`` set coalesces K
  concurrent clients asking for the same cold figure into one unit,
  and the regeneration itself runs through the normal executor path --
  honouring ``jobs``, the :class:`~repro.exec.retry.FailurePolicy` and
  the store's cross-process single-flight locks -- so one simulation
  serves everyone, even with several servers sharing a store.
- A failed regeneration parks the error; the next request for that
  figure reports it (500) and re-arms the queue, so a transient
  failure never wedges a figure permanently.

Sweep requests build the job grid with the same content-hashed job
specs the CLI uses and answer from the store's result tier: all-hit
grids are 200, partial grids enqueue exactly the missing jobs and
answer 202 with the warm cells inlined.

All methods return ``(status, body, content_type)`` with a dict body
for JSON responses, so the HTTP layer stays a thin skin and tests can
drive the service directly.
"""

import json
import os
import threading
import time

#: Hint clients how long to back off while a figure warms.  Regenerating
#: a figure takes seconds-to-minutes; anything shorter just burns polls.
RETRY_AFTER_SECONDS = 5

JSON_TYPE = "application/json"
TEXT_TYPE = "text/plain; charset=utf-8"


class FigureService:
    """Memoized figure/sweep answering over ``out_dir`` + the store."""

    def __init__(self, out_dir, store=None, num_instructions=12_000,
                 warmup=12_000, jobs=None, failure_policy=None,
                 benchmarks=None, metrics=None, log=None):
        self.out_dir = os.fspath(out_dir)
        self.store = store
        self.num_instructions = num_instructions
        self.warmup = warmup
        self.jobs = jobs
        self.failure_policy = failure_policy
        self.benchmarks = benchmarks
        self.metrics = metrics
        self.log = log if log is not None else (lambda message: None)
        self.started = time.time()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue = []      # unit keys, FIFO
        self._units = {}      # unit key -> payload (sweep job lists)
        self._warming = {}    # unit key -> enqueue timestamp
        self._failed = {}     # unit key -> error string
        self._worker = None
        self._stopping = False
        #: Completed regeneration units (the single-flight test hook).
        self.regenerations = 0
        os.makedirs(self.out_dir, exist_ok=True)
        if metrics is not None and metrics.enabled:
            self._requests = metrics.counter(
                "repro_serve_requests_total",
                "Service requests answered, by endpoint and status",
                ("endpoint", "status"))
            self._regens = metrics.counter(
                "repro_serve_regenerations_total",
                "Regeneration units drained, by outcome", ("outcome",))
        else:
            self._requests = self._regens = None

    # -- lifecycle ------------------------------------------------------

    def close(self):
        """Stop the regeneration worker (pending queue is dropped)."""
        with self._lock:
            self._stopping = True
            self._wakeup.notify_all()
            worker = self._worker
        if worker is not None:
            worker.join(timeout=10.0)

    def _count(self, endpoint, status):
        if self._requests is not None:
            self._requests.labels(endpoint, str(status)).inc()

    # -- regeneration worker --------------------------------------------

    def _enqueue(self, key, payload=None):
        """Queue one regeneration unit.  Caller holds the lock."""
        self._warming[key] = time.time()
        if payload is not None:
            self._units[key] = payload
        self._queue.append(key)
        self._wakeup.notify()
        if self._worker is None:
            self._worker = threading.Thread(target=self._drain,
                                            name="repro-serve-regen",
                                            daemon=True)
            self._worker.start()

    def _drain(self):
        while True:
            with self._lock:
                while not self._queue and not self._stopping:
                    self._wakeup.wait()
                if self._stopping:
                    return
                key = self._queue.pop(0)
                payload = self._units.pop(key, None)
            error = None
            try:
                self._regenerate(key, payload)
            except BaseException as exc:  # the worker must survive
                error = repr(exc)
            with self._lock:
                self._warming.pop(key, None)
                if error is not None:
                    self._failed[key] = error
                else:
                    self.regenerations += 1
            if self._regens is not None:
                self._regens.labels("failed" if error else "ok").inc()
            self.log("regenerated %s%s" % ("/".join(str(part) for part
                                                    in key[:2]),
                                           ": %s" % error if error
                                           else ""))

    def _regenerate(self, key, payload):
        if key[0] == "figure":
            from repro.experiments.figures import run_figures
            run_figures([key[1]], self.out_dir,
                        num_instructions=self.num_instructions,
                        warmup=self.warmup, jobs=self.jobs,
                        failure_policy=self.failure_policy,
                        benchmarks=self.benchmarks,
                        metrics=self.metrics, emit_json=True)
        else:  # ("sweep", grid-key): payload is the missing job list
            from repro.exec import executor_scope
            with executor_scope(None, jobs=self.jobs) as executor:
                executor.run(payload, failure_policy=self.failure_policy,
                             metrics=self.metrics)

    # -- figures --------------------------------------------------------

    def _artifact(self, name, fmt):
        suffix = ".txt" if fmt == "txt" else ".json"
        return os.path.join(self.out_dir, name + suffix)

    def figure_state(self, name):
        """warm | warming | failed | cold (lock held by caller)."""
        if os.path.exists(self._artifact(name, "json")):
            return "warm"
        key = ("figure", name)
        if key in self._warming:
            return "warming"
        if key in self._failed:
            return "failed"
        return "cold"

    def list_figures(self):
        """``GET /figures``: every registered artifact and its state."""
        from repro.experiments.figures import ARTIFACTS
        with self._lock:
            figures = [{"name": name, "state": self.figure_state(name)}
                       for name in ARTIFACTS]
        self._count("figures", 200)
        return 200, {"kind": "figure-list", "figures": figures,
                     "out_dir": self.out_dir}, JSON_TYPE

    def figure(self, name, fmt="json"):
        """``GET /figure/<name>[?format=txt]``.

        Warm: the artifact file's bytes, verbatim.  Cold: enqueue one
        regeneration (coalescing concurrent requests) and 202.  A
        parked failure is reported once (500) and cleared so the next
        request retries.
        """
        from repro.experiments.figures import ARTIFACTS
        if name not in ARTIFACTS:
            self._count("figure", 404)
            return 404, {"error": "unknown figure %r (choose from %s)"
                                  % (name, ", ".join(ARTIFACTS))}, JSON_TYPE
        if fmt not in ("json", "txt"):
            self._count("figure", 400)
            return 400, {"error": "unknown format %r (json or txt)"
                                  % fmt}, JSON_TYPE
        key = ("figure", name)
        with self._lock:
            warm = os.path.exists(self._artifact(name, "json"))
            if not warm:
                if key in self._warming:
                    self._count("figure", 202)
                    return 202, self._warming_body(name), JSON_TYPE
                error = self._failed.pop(key, None)
                if error is not None:
                    self._count("figure", 500)
                    return 500, {"error": error, "figure": name,
                                 "note": "failure cleared; the next "
                                         "request retries"}, JSON_TYPE
                self._enqueue(key)
                self._count("figure", 202)
                return 202, self._warming_body(name), JSON_TYPE
        # Read outside the lock: the artifact is complete (the JSON is
        # written last, atomically) and never rewritten mid-read.
        path = self._artifact(name, fmt)
        try:
            with open(path, "rb") as handle:
                body = handle.read()
        except OSError as exc:
            self._count("figure", 500)
            return 500, {"error": repr(exc), "figure": name}, JSON_TYPE
        self._count("figure", 200)
        return 200, body, (TEXT_TYPE if fmt == "txt" else JSON_TYPE)

    def _warming_body(self, name):
        return {"status": "warming", "figure": name,
                "retry_after": RETRY_AFTER_SECONDS}

    # -- sweeps ---------------------------------------------------------

    def sweep(self, benchmarks, policies, num_instructions=None,
              warmup=None, seed=None):
        """``GET /sweep``: the policy x benchmark grid from the store.

        Every cell the result tier holds is inlined; missing cells
        enqueue exactly those jobs and the response is 202 until the
        grid is complete.
        """
        if self.store is None:
            self._count("sweep", 400)
            return 400, {"error": "sweep serving requires an artifact "
                                  "store (start with --store)"}, JSON_TYPE
        from repro.errors import ConfigError
        from repro.exec.job import build_jobs
        n = num_instructions or self.num_instructions
        warm = self.warmup if warmup is None else warmup
        try:
            jobs = build_jobs(benchmarks, policies, num_instructions=n,
                              warmup=warm, seed=seed)
        except (ConfigError, KeyError, ValueError) as exc:
            self._count("sweep", 400)
            return 400, {"error": str(exc)}, JSON_TYPE
        cells = []
        misses = []
        for job in jobs:
            result = self.store.load_result(job)
            cell = {"benchmark": job.benchmark, "policy": job.policy,
                    "job_id": job.job_id}
            if result is None:
                cell["status"] = "miss"
                misses.append(job)
            else:
                cell.update(status="hit", cycles=result.cycles,
                            ipc=result.ipc,
                            instructions=result.instructions)
            cells.append(cell)
        body = {"kind": "sweep-grid", "num_instructions": n,
                "warmup": warm, "seed": seed, "cells": cells,
                "misses": len(misses)}
        if not misses:
            self._count("sweep", 200)
            return 200, body, JSON_TYPE
        key = ("sweep", tuple(sorted(job.job_id for job in misses)))
        with self._lock:
            if key not in self._warming:
                self._failed.pop(key, None)
                self._enqueue(key, payload=misses)
        body["status"] = "warming"
        body["retry_after"] = RETRY_AFTER_SECONDS
        self._count("sweep", 202)
        return 202, body, JSON_TYPE

    # -- health + metrics -----------------------------------------------

    def health(self):
        """``GET /healthz``: liveness plus queue/warm state."""
        from repro.experiments.figures import ARTIFACTS
        with self._lock:
            body = {
                "status": "ok",
                "uptime_seconds": round(time.time() - self.started, 3),
                "queue_depth": len(self._queue) + len(self._warming),
                "warming": sorted("/".join(str(part) for part in key[:2])
                                  for key in self._warming),
                "failed": sorted("/".join(str(part) for part in key[:2])
                                 for key in self._failed),
                "regenerations": self.regenerations,
                "warm_figures": [name for name in ARTIFACTS
                                 if os.path.exists(
                                     self._artifact(name, "json"))],
                "out_dir": self.out_dir,
                "store": (os.fspath(self.store.root)
                          if self.store is not None else None),
            }
        self._count("healthz", 200)
        return 200, body, JSON_TYPE

    def metrics_text(self):
        """``GET /metricsz``: the Prometheus text exposition."""
        self._count("metricsz", 200)
        if self.metrics is None:
            return 200, "", TEXT_TYPE
        return 200, self.metrics.render_prometheus(), TEXT_TYPE


def dumps(payload):
    """The service's canonical JSON serialisation (for dict bodies)."""
    return json.dumps(payload, indent=1, sort_keys=True, default=str)
