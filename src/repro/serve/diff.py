"""``repro diff``: compare per-figure JSON artifacts across two runs.

Two output directories (or store-backed serve dirs, or checkouts of
the same figures at different commits) each hold ``<figure>.json``
figure-series artifacts.  :func:`diff_figures` flattens every artifact
to ``(panel, series, x) -> y`` cells and reports exactly which cells
changed, with absolute/relative tolerances for float noise --
``repro figures`` output is deterministic, so the default tolerance is
exact equality and *any* changed cell is a real behaviour change.

Exit-code contract (the CLI's): 0 identical, 1 differences, 2 nothing
comparable (a side had no figure-series artifacts at all).
"""

import json
import os

_ABSENT = object()


def load_series_dir(path, only=None):
    """``{figure: payload}`` from every figure-series JSON under ``path``.

    Non-series JSON (the figures manifest, metrics snapshots) and
    unparseable files are skipped; ``only`` (a set of figure names)
    filters the result.
    """
    out = {}
    try:
        entries = sorted(os.listdir(path))
    except OSError:
        return out
    for entry in entries:
        if not entry.endswith(".json"):
            continue
        try:
            with open(os.path.join(path, entry)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        if (not isinstance(payload, dict)
                or payload.get("kind") != "figure-series"):
            continue
        figure = payload.get("figure") or entry[:-len(".json")]
        if only is not None and figure not in only:
            continue
        out[figure] = payload
    return out


def flatten_cells(payload):
    """``{(panel, series, x): y}`` for one figure-series payload.

    ``extra`` scalars participate as ``("extra", key, "")`` cells so a
    changed fig6 advantage or variance verdict is a diff, not silence.
    """
    cells = {}
    for panel in payload.get("panels", ()):
        for series in panel.get("series", ()):
            for point in series.get("points", ()):
                key = (str(panel.get("name")), str(series.get("name")),
                       str(point.get("x")))
                cells[key] = point.get("y")
    extra = payload.get("extra")
    if isinstance(extra, dict):
        for name in extra:
            cells[("extra", str(name), "")] = extra[name]
    return cells


def _close(a, b, atol, rtol):
    numbers = (int, float)
    if (isinstance(a, numbers) and isinstance(b, numbers)
            and not isinstance(a, bool) and not isinstance(b, bool)):
        return abs(a - b) <= atol + rtol * max(abs(a), abs(b))
    return a == b


def diff_figures(dir_a, dir_b, atol=0.0, rtol=0.0, only=None):
    """Structured diff of two figure-series directories.

    Returns a report dict: ``only_a``/``only_b`` (figures present on
    one side), per-figure changed-cell lists (each ``{panel, series,
    x, a, b}``; a missing cell's side is None with ``missing`` naming
    it), ``changed_cells``, ``compared`` and the rolled-up
    ``identical`` verdict.  Tolerances apply to numeric cells only --
    string cells (table2's LEAK/blocked) compare exactly.
    """
    series_a = load_series_dir(dir_a, only=only)
    series_b = load_series_dir(dir_b, only=only)
    report = {
        "kind": "figure-diff",
        "dir_a": os.fspath(dir_a),
        "dir_b": os.fspath(dir_b),
        "atol": atol,
        "rtol": rtol,
        "only_a": sorted(set(series_a) - set(series_b)),
        "only_b": sorted(set(series_b) - set(series_a)),
        "figures": {},
        "compared": 0,
        "changed_cells": 0,
    }
    for figure in sorted(set(series_a) & set(series_b)):
        cells_a = flatten_cells(series_a[figure])
        cells_b = flatten_cells(series_b[figure])
        changed = []
        for key in sorted(set(cells_a) | set(cells_b)):
            value_a = cells_a.get(key, _ABSENT)
            value_b = cells_b.get(key, _ABSENT)
            if value_a is _ABSENT or value_b is _ABSENT:
                changed.append({
                    "panel": key[0], "series": key[1], "x": key[2],
                    "a": None if value_a is _ABSENT else value_a,
                    "b": None if value_b is _ABSENT else value_b,
                    "missing": "a" if value_a is _ABSENT else "b",
                })
            elif not _close(value_a, value_b, atol, rtol):
                changed.append({"panel": key[0], "series": key[1],
                                "x": key[2], "a": value_a, "b": value_b})
        report["compared"] += 1
        if changed:
            report["figures"][figure] = changed
            report["changed_cells"] += len(changed)
    report["identical"] = (not report["only_a"] and not report["only_b"]
                           and report["changed_cells"] == 0)
    return report


def _cell(value):
    if value is None:
        return "(absent)"
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def render_diff(report):
    """The changed-cells table (or the all-clear line)."""
    from repro.sim.report import render_table

    lines = ["figure diff: %s vs %s" % (report["dir_a"],
                                        report["dir_b"])]
    if report["atol"] or report["rtol"]:
        lines.append("tolerances: atol=%g rtol=%g"
                     % (report["atol"], report["rtol"]))
    for side, figures in (("a", report["only_a"]),
                          ("b", report["only_b"])):
        if figures:
            lines.append("only in %s: %s" % (side, ", ".join(figures)))
    if report["changed_cells"]:
        rows = []
        for figure in sorted(report["figures"]):
            for cell in report["figures"][figure]:
                rows.append([figure, cell["panel"], cell["series"],
                             cell["x"], _cell(cell["a"]),
                             _cell(cell["b"])])
        lines.append(render_table(
            ["figure", "panel", "series", "x", "a", "b"], rows))
        lines.append("%d changed cell(s) across %d figure(s)"
                     % (report["changed_cells"],
                        len(report["figures"])))
    elif report["compared"]:
        lines.append("%d figure(s) compared, no changed cells"
                     % report["compared"])
    else:
        lines.append("no figure-series artifacts to compare")
    return "\n".join(lines)
