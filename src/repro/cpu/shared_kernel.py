"""Shared timestamp kernel: replay one prepass under one policy's terms.

The second half of the decode-once/evaluate-many pipeline
(:mod:`repro.cpu.prepass` is the first).  Given a
:class:`~repro.cpu.prepass.TracePrepass`, :func:`replay_policy` runs the
full out-of-order timestamp model for one policy -- but every structural
decision (cache outcomes, evictions, bank/row classification,
prediction draws) is a column read instead of a cache-dict walk, so the
per-policy cost is pure cycle arithmetic.

The pipeline loop is a line-for-line mirror of
:meth:`repro.cpu.core.TimestampCore.run`, and the memory replay mirrors
the timing half of ``hierarchy._make_l1_path`` / ``_l2_miss`` /
``engine.fetch_line``: the differential equivalence suite and the perf
goldens pin cycles and every ``StatGroup`` counter bit-identical to the
legacy path.

The replay arithmetic is all int64, so it also has a native build:
:mod:`repro.cpu.native` compiles the same loop with the system C
compiler and runs it through ctypes.  :func:`replay_policy` prefers the
native kernel when one is available (set ``REPRO_NATIVE=0`` to force
the pure-Python loop); both paths feed the same constants
(:func:`_policy_constants`) and the same stats assembly, and the
differential tests pin them bit-identical to each other and to the
legacy simulator.
"""

from bisect import bisect_right
from time import perf_counter

from repro.cpu.core import _UNIT_LATENCY, _CALENDAR_PRUNE_INTERVAL, RunResult
from repro.cpu import native
from repro.util.statistics import StatGroup


def _policy_constants(policy, config):
    """Every scalar the replay consumes, derived from (policy, config).

    One derivation feeds both the pure-Python loop and the native
    kernel, so the two cannot drift apart on a constant.
    """
    cfg = config.core
    secure = config.secure
    dram_cfg = config.dram

    gate_fetch = policy.gate_fetch
    fetch_mode = getattr(policy, "fetch_mode", "tag")
    auth_enabled = policy.authentication

    line_bytes = config.l2.line_bytes
    mac_rider = secure.mac_bits // 8 if auth_enabled else 0
    bus_width = dram_cfg.bus_width_bytes
    beat = dram_cfg.bus_multiplier
    cas = dram_cfg.cas_cycles
    if secure.mac_scheme == "gmac":
        mac_latency = secure.gmac_latency
        mac_throughput = max(1, secure.gmac_latency // 2)
    else:
        mac_latency = secure.hmac_latency
        mac_throughput = secure.mac_throughput

    return {
        "gate_issue": policy.gate_issue,
        "gate_commit": policy.gate_commit,
        "gate_fetch": gate_fetch,
        "gate_store": policy.gate_store,
        "precise_fetch": gate_fetch and fetch_mode == "precise",
        "drain_fetch": gate_fetch and fetch_mode == "drain",
        "auth_enabled": auth_enabled,
        "dur_line": -(-(line_bytes + mac_rider) // bus_width) * beat,
        "dur_meta": -(-line_bytes // bus_width) * beat,
        "ras": (cas, dram_cfg.rcd_cycles + cas,
                dram_cfg.rp_cycles + dram_cfg.rcd_cycles + cas),
        "mac_latency": mac_latency,
        "mac_throughput": mac_throughput,
        "queue_depth": secure.auth_queue_depth,
        "decrypt_latency": secure.decrypt_latency,
        "xor_latency": 1,  # DecryptionEngine default; not config-routed
        "l1i_latency": config.l1i.latency,
        "l1d_latency": config.l1d.latency,
        "l2_latency": config.l2.latency,
        "num_banks": dram_cfg.num_banks,
        "mshr_entries": max(1, config.mshr_entries),
        "fetch_width": cfg.fetch_width,
        "issue_width": cfg.issue_width,
        "commit_width": cfg.commit_width,
        "ruu_size": cfg.ruu_entries,
        "lsq_size": cfg.lsq_entries,
        "depth": cfg.pipeline_depth,
        "penalty": cfg.branch_mispredict_penalty,
        "sb_size": secure.store_buffer_entries,
        "unit_latency": [_UNIT_LATENCY.get(code, 0) for code in range(8)],
        "prune_interval": _CALENDAR_PRUNE_INTERVAL,
    }


def replay_policy(prepass, policy, config, trace_name="trace",
                  profiler=None):
    """Replay ``prepass`` under ``policy``; returns a :class:`RunResult`.

    The result's ``stats`` group carries the same counters (including
    zero-valued ones) as a legacy ``build_simulator`` + ``core.run``
    pass, so stats digests match byte-for-byte.  Uses the compiled
    kernel from :mod:`repro.cpu.native` when available, the pure-Python
    loop below otherwise -- both produce identical ``o`` payloads.
    """
    start_wall = perf_counter() if profiler is not None else 0.0

    c = _policy_constants(policy, config)
    o = native.replay(prepass, c)
    if o is None:
        o = _replay_python(prepass, c)

    # ---- assemble the stats group (legacy counter inventory) ---------
    stats = StatGroup("sim")
    counter = stats.counter
    n_line_ops = prepass.n_misses + prepass.n_writes
    counter("line_reads").value = prepass.n_misses
    counter("line_writes").value = prepass.n_writes
    counter("metadata_accesses").value = prepass.n_meta
    stats.histogram("read_latency").buckets.update(o["read_lat_buckets"])
    counter("row_hits").value = prepass.row_hits
    counter("row_empty").value = prepass.row_empty
    counter("row_conflicts").value = prepass.row_conflicts
    counter("accesses").value = prepass.dram_ops
    counter("busy_cycles").value = (n_line_ops * c["dur_line"]
                                    + prepass.n_meta * c["dur_meta"])
    counter("transfers").value = prepass.dram_ops
    counter("wait_cycles").value = o["wait_cycles"]
    counter("pad_fully_hidden").value = o["pad_hidden"]
    counter("pad_exposed_cycles").value = o["pad_exposed"]
    counter("hits").value = prepass.cc_hits
    counter("misses").value = prepass.cc_misses
    counter("evictions").value = prepass.cc_evictions
    counter("writebacks").value = prepass.cc_writebacks
    counter("auth_requests").value = o["auth_requests"]
    counter("auth_queue_full").value = o["queue_full"]
    stats.histogram("decrypt_verify_gap").buckets.update(o["gap_buckets"])
    counter("page_reencryptions").value = prepass.page_reencryptions
    counter("mshr_stall_events").value = o["mshr_stalls"]
    counter("prefetch_issued").value = 0
    counter("auth_commit_stall_cycles").value = o["auth_commit_stall"]
    counter("auth_issue_stall_cycles").value = o["auth_issue_stall"]
    counter("store_buffer_full_stalls").value = o["sb_full_stall"]
    counter("branch_mispredicts").value = o["branch_mispredicts"]

    if profiler is not None:
        profiler.add("replay", perf_counter() - start_wall)
    return RunResult(
        trace_name,
        policy.name,
        prepass.num_instructions - prepass.warmup,
        o["cycles"],
        stats,
        dict(prepass.miss_summary),
    )


def _replay_python(prepass, c):
    """Pure-Python replay loop; returns the kernel-output payload."""
    gate_issue = c["gate_issue"]
    gate_commit = c["gate_commit"]
    gate_fetch = c["gate_fetch"]
    gate_store = c["gate_store"]
    precise_fetch = c["precise_fetch"]
    drain_fetch = c["drain_fetch"]
    auth_enabled = c["auth_enabled"]
    dur_line = c["dur_line"]
    dur_meta = c["dur_meta"]
    ras = c["ras"]
    mac_latency = c["mac_latency"]
    mac_throughput = c["mac_throughput"]
    queue_depth = c["queue_depth"]
    decrypt_latency = c["decrypt_latency"]
    xor_latency = c["xor_latency"]
    l1i_latency = c["l1i_latency"]
    l1d_latency = c["l1d_latency"]
    l2_latency = c["l2_latency"]

    # ---- replay state -------------------------------------------------
    bank_ready = [0] * c["num_banks"]
    bus_free = 0
    wait_cycles = 0
    read_lat_buckets = {}
    gap_buckets = {}
    pad_hidden = 0
    pad_exposed = 0
    queue_full = 0
    mshr_stalls = 0
    completions = []
    fetch_times = []
    last_start = None
    mshr_ring = [0] * c["mshr_entries"]
    mshr_index = 0
    mshr_len = len(mshr_ring)

    n_accesses = prepass.n_accesses
    n_misses = prepass.n_misses
    acc_data = [0] * n_accesses
    acc_verify = [0] * n_accesses
    miss_data = [0] * n_misses
    miss_verify = [0] * n_misses
    acc_cursor = 0
    dram_cursor = 0

    a_pre = prepass.a_pre
    a_lvl = prepass.a_lvl
    a_ref = prepass.a_ref
    a_wb = prepass.a_wb
    m_wb = prepass.m_wb
    m_counter = prepass.m_counter
    d_bank = prepass.d_bank
    d_cat = prepass.d_cat

    def mem_access(cycle, gate_time, l1_latency):
        """Timing replay of one ``ifetch``/``load``/``store`` access."""
        nonlocal acc_cursor, dram_cursor, bus_free, wait_cycles
        nonlocal pad_hidden, pad_exposed, queue_full, mshr_stalls
        nonlocal last_start, mshr_index
        i = acc_cursor
        acc_cursor = i + 1
        cycle += a_pre[i]
        # Posted writes from the L1 victim writeback, at post-TLB cycle.
        for _ in range(a_wb[i]):
            d = dram_cursor
            dram_cursor = d + 1
            ready = bank_ready[d_bank[d]]
            bstart = cycle if cycle > ready else ready
            data_ready = bstart + ras[d_cat[d]]
            free_at = bus_free
            tstart = data_ready if data_ready > free_at else free_at
            done = tstart + dur_line
            bus_free = done
            wait_cycles += tstart - data_ready
            bank_ready[d_bank[d]] = done
        lvl = a_lvl[i]
        if lvl == 0:  # L1 hit
            ref = a_ref[i]
            data_time = acc_data[ref]
            l1_done = cycle + l1_latency
            if l1_done > data_time:
                data_time = l1_done
            verify_time = acc_verify[ref]
            if verify_time < data_time:
                verify_time = data_time
            acc_data[i] = data_time
            acc_verify[i] = verify_time
            return data_time, verify_time
        l1_done = cycle + l1_latency
        l2_cycle = l1_done + l2_latency
        if lvl == 1:  # L2 hit
            ref = a_ref[i]
            if ref >= 0:
                data_time = miss_data[ref]
                verify_time = miss_verify[ref]
            else:
                data_time = 0
                verify_time = 0
            if l2_cycle > data_time:
                data_time = l2_cycle
            if verify_time < data_time:
                verify_time = data_time
        else:  # L2 miss
            m = a_ref[i]
            # Posted writes from the L2 victim writeback, at l2_cycle.
            for _ in range(m_wb[m]):
                d = dram_cursor
                dram_cursor = d + 1
                ready = bank_ready[d_bank[d]]
                bstart = l2_cycle if l2_cycle > ready else ready
                data_ready = bstart + ras[d_cat[d]]
                free_at = bus_free
                tstart = data_ready if data_ready > free_at else free_at
                done = tstart + dur_line
                bus_free = done
                wait_cycles += tstart - data_ready
                bank_ready[d_bank[d]] = done
            # MSHR backpressure, then the fetch gate.
            fetch_cycle = l2_cycle
            slot_free = mshr_ring[mshr_index]
            if slot_free > fetch_cycle:
                mshr_stalls += 1
                fetch_cycle = slot_free
            issue = fetch_cycle if fetch_cycle > gate_time else gate_time
            # Counter-mode pad source.
            mc = m_counter[m]
            if mc == 2:
                d = dram_cursor
                dram_cursor = d + 1
                ready = bank_ready[d_bank[d]]
                bstart = issue if issue > ready else ready
                data_ready = bstart + ras[d_cat[d]]
                free_at = bus_free
                tstart = data_ready if data_ready > free_at else free_at
                pad_start = tstart + dur_meta
                bus_free = pad_start
                wait_cycles += tstart - data_ready
                bank_ready[d_bank[d]] = pad_start
            else:
                pad_start = issue
            # Main line fetch.
            d = dram_cursor
            dram_cursor = d + 1
            ready = bank_ready[d_bank[d]]
            bstart = issue if issue > ready else ready
            data_ready = bstart + ras[d_cat[d]]
            free_at = bus_free
            tstart = data_ready if data_ready > free_at else free_at
            done = tstart + dur_line
            bus_free = done
            wait_cycles += tstart - data_ready
            bank_ready[d_bank[d]] = done
            lat = done - issue
            read_lat_buckets[lat] = read_lat_buckets.get(lat, 0) + 1
            # Decrypt overlap.
            pad_done = pad_start + decrypt_latency
            if pad_done <= done:
                pad_hidden += 1
                data_time = done + xor_latency
            else:
                pad_exposed += pad_done - done
                data_time = pad_done + xor_latency
            if auth_enabled:
                # AuthQueue.enqueue(done, 0, fetch_time=done); tag == m.
                fetch_time = done
                if fetch_times and fetch_time < fetch_times[-1]:
                    fetch_time = fetch_times[-1]
                fetch_times.append(fetch_time)
                ready_time = done
                if m >= queue_depth:
                    qslot = completions[m - queue_depth]
                    if qslot > ready_time:
                        queue_full += 1
                        ready_time = qslot
                if last_start is None:
                    qstart = ready_time
                else:
                    qstart = last_start + mac_throughput
                    if ready_time > qstart:
                        qstart = ready_time
                verify_time = qstart + mac_latency
                if m and verify_time < completions[-1]:
                    verify_time = completions[-1]
                last_start = qstart
                completions.append(verify_time)
                gap = verify_time - data_time
                if gap < 0:
                    gap = 0
                gap_buckets[gap] = gap_buckets.get(gap, 0) + 1
            else:
                verify_time = data_time
            mshr_ring[mshr_index] = done
            mshr_index += 1
            if mshr_index == mshr_len:
                mshr_index = 0
            miss_data[m] = data_time
            miss_verify[m] = verify_time
        if l1_done > data_time:
            data_time = l1_done
        if data_time > verify_time:
            verify_time = data_time
        acc_data[i] = data_time
        acc_verify[i] = verify_time
        return data_time, verify_time

    def frontier(cycle):
        """engine.auth_frontier: LastRequest completion as read at
        ``cycle``."""
        if not auth_enabled:
            return 0
        index = bisect_right(fetch_times, cycle) - 1
        if index < 0:
            return 0
        return completions[index]

    # ---- pipeline replay (mirror of TimestampCore.run) ---------------
    fetch_width = c["fetch_width"]
    issue_width = c["issue_width"]
    commit_width = c["commit_width"]
    ruu_size = c["ruu_size"]
    lsq_size = c["lsq_size"]
    depth = c["depth"]
    penalty = c["penalty"]
    sb_size = c["sb_size"]

    reg_ready = [0] * 64
    reg_frontier = [0] * 64
    ctrl_frontier = 0
    ruu_ring = [0] * ruu_size
    lsq_ring = [0] * lsq_size
    sb_ring = [0] * sb_size

    fetch_frontier = 0
    fetched_in_cycle = 0
    fetch_cycle = -1
    redirect_time = 0
    issue_calendar = {}
    last_commit = 0
    commit_cycle = -1
    committed_in_cycle = 0
    ruu_index = 0
    lsq_index = 0
    sb_index = 0

    auth_commit_stall = 0
    auth_issue_stall = 0
    sb_full_stall = 0
    branch_mispredicts = 0

    warmup = prepass.warmup
    warmup_commit = 0

    op_load = 3  # Op.LOAD
    op_store = 4  # Op.STORE
    op_branch = 5  # Op.BRANCH
    op_jump = 6  # Op.JUMP
    unit_latency = c["unit_latency"]
    calendar_get = issue_calendar.get
    if_flags = prepass.if_flags
    prune_mask = c["prune_interval"] - 1
    iline_data = 0
    iline_verify = 0

    packed = prepass.packed
    for index, (op, dest, srcs, mispredict) in enumerate(
            zip(packed.ops, packed.dests, packed.srcss,
                packed.mispredicts)):
        if index == warmup and warmup:
            warmup_commit = last_commit
        # ---------------- fetch ----------------------------------
        base = fetch_frontier
        if redirect_time > base:
            base = redirect_time
        if base != fetch_cycle:
            fetch_cycle = base
            fetched_in_cycle = 0
        elif fetched_in_cycle >= fetch_width:
            fetch_cycle += 1
            fetched_in_cycle = 0
            base = fetch_cycle
        fetched_in_cycle += 1

        if if_flags[index]:
            if precise_fetch:
                gate = ctrl_frontier
            elif gate_fetch:
                gate = frontier(base)
            else:
                gate = 0
            iline_data, iline_verify = mem_access(base, gate, l1i_latency)
        if iline_data > base:
            base = iline_data
            fetch_cycle = base
            fetched_in_cycle = 1
        fetch_frontier = base

        # ---------------- dispatch -------------------------------
        dispatch = base + depth
        slot_free = ruu_ring[ruu_index]
        if slot_free > dispatch:
            dispatch = slot_free
        is_mem = op == op_load or op == op_store
        if is_mem:
            lsq_free = lsq_ring[lsq_index]
            if lsq_free > dispatch:
                dispatch = lsq_free

        # ---------------- issue ----------------------------------
        ready = dispatch
        for src in srcs:
            t = reg_ready[src]
            if t > ready:
                ready = t
        if gate_issue:
            if iline_verify > ready:
                auth_issue_stall += iline_verify - ready
                ready = iline_verify
        count = calendar_get(ready, 0)
        while count >= issue_width:
            ready += 1
            count = calendar_get(ready, 0)
        issue_calendar[ready] = count + 1
        issue = ready

        # ---------------- execute --------------------------------
        verify_needed = iline_verify if gate_commit else 0
        store_frontier = 0
        if precise_fetch:
            slice_frontier = ctrl_frontier
            if iline_verify > slice_frontier:
                slice_frontier = iline_verify
            for src in srcs:
                f = reg_frontier[src]
                if f > slice_frontier:
                    slice_frontier = f
        if op == op_load:
            if precise_fetch:
                gate = slice_frontier
            elif gate_fetch:
                gate = frontier(issue + 1) if drain_fetch else frontier(issue)
            else:
                gate = 0
            data_time, verify_time = mem_access(issue + 1, gate,
                                                l1d_latency)
            value_time = verify_time if gate_issue else data_time
            if gate_issue and value_time > data_time:
                auth_issue_stall += value_time - data_time
            complete = value_time
            if dest >= 0:
                reg_ready[dest] = value_time
                if precise_fetch:
                    f = slice_frontier
                    if verify_time > f:
                        f = verify_time
                    reg_frontier[dest] = f
            if gate_commit and verify_time > verify_needed:
                verify_needed = verify_time
        elif op == op_store:
            complete = issue + 1
            if gate_store:
                store_frontier = frontier(issue)
        else:
            complete = issue + unit_latency[op]
            if dest >= 0:
                reg_ready[dest] = complete
                if precise_fetch:
                    reg_frontier[dest] = slice_frontier

        if precise_fetch and (op == op_branch or op == op_jump):
            if slice_frontier > ctrl_frontier:
                ctrl_frontier = slice_frontier

        if mispredict:
            branch_mispredicts += 1
            resolve = complete + penalty
            if resolve > redirect_time:
                redirect_time = resolve

        # ---------------- commit ---------------------------------
        commit = complete + 1
        if last_commit > commit:
            commit = last_commit
        if verify_needed > commit:
            auth_commit_stall += verify_needed - commit
            commit = verify_needed
        if op == op_store:
            sb_free = sb_ring[sb_index]
            if sb_free > commit:
                sb_full_stall += 1
                commit = sb_free
        if commit != commit_cycle:
            commit_cycle = commit
            committed_in_cycle = 0
        elif committed_in_cycle >= commit_width:
            commit_cycle += 1
            committed_in_cycle = 0
            commit = commit_cycle
        committed_in_cycle += 1
        last_commit = commit

        if op == op_store:
            if gate_store:
                release = commit if commit > store_frontier \
                    else store_frontier
            else:
                release = commit
            if precise_fetch:
                gate = slice_frontier
            elif gate_fetch:
                gate = frontier(release) if drain_fetch else frontier(issue)
            else:
                gate = 0
            mem_access(release, gate, l1d_latency)
            sb_ring[sb_index] = release
            sb_index += 1
            if sb_index == sb_size:
                sb_index = 0

        ruu_ring[ruu_index] = commit
        ruu_index += 1
        if ruu_index == ruu_size:
            ruu_index = 0
        if is_mem:
            lsq_ring[lsq_index] = commit
            lsq_index += 1
            if lsq_index == lsq_size:
                lsq_index = 0

        if index & prune_mask == prune_mask:
            floor = fetch_frontier + depth
            for key in [k for k in issue_calendar if k < floor]:
                del issue_calendar[key]

    return {
        "cycles": last_commit - warmup_commit,
        "wait_cycles": wait_cycles,
        "read_lat_buckets": read_lat_buckets,
        "gap_buckets": gap_buckets,
        "pad_hidden": pad_hidden,
        "pad_exposed": pad_exposed,
        "queue_full": queue_full,
        "mshr_stalls": mshr_stalls,
        "auth_requests": len(completions),
        "auth_commit_stall": auth_commit_stall,
        "auth_issue_stall": auth_issue_stall,
        "sb_full_stall": sb_full_stall,
        "branch_mispredicts": branch_mispredicts,
    }
