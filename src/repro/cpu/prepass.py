"""Policy-independent structural prepass over one decoded trace.

The decode-once/evaluate-many pipeline rests on one observation: every
*structural* decision the memory system makes -- TLB and cache hit/miss
outcomes, LRU evictions and dirty writebacks, counter-cache probes,
counter-prediction draws, SDRAM bank/row classification -- depends only
on the address stream and its order, never on the policy's gating terms.
Policies change *when* things happen (cycle arithmetic), not *what*
happens.  So the walk over caches and banks can run once per trace, and
each policy evaluation replays only the timing arithmetic over the
recorded outcomes (:mod:`repro.cpu.shared_kernel`).

:func:`build_prepass` performs that walk.  It mirrors, decision for
decision, the structural half of ``hierarchy._make_l1_path`` /
``hierarchy._l2_miss`` / ``engine.fetch_line`` / ``engine.write_line``
and records the outcomes on flat per-access / per-miss / per-DRAM-op
columns (the same structure-of-arrays discipline as
:class:`~repro.workloads.trace.PackedTrace`).  The differential
equivalence suite (``tests/cpu/test_shared_kernel.py``) and the perf
goldens pin the mirror bit-identically against the legacy path.

Supported configurations are gated by :func:`prepass_supported`; the
grouped executor falls back to the legacy per-policy path for the rest
(CBC mode, hash trees, address obfuscation, prefetching).
"""

from repro.secure.metadata import MetadataLayout

#: Sentinel row id meaning "bank precharged/idle" (rows are >= 0).
_NO_ROW = -1

# DRAM page-status categories recorded per op (index into the kernel's
# RAS-latency table).
ROW_HIT = 0
ROW_EMPTY = 1
ROW_CONFLICT = 2

# L1 lookup outcomes recorded per access.
LVL_L1_HIT = 0
LVL_L2_HIT = 1
LVL_MISS = 2


def prepass_supported(config):
    """Can this configuration be evaluated through the shared kernel?

    The structural walk mirrors the counter-mode fast path only; the
    exotic configurations keep their legacy per-policy path (they are
    exercised by dedicated experiments, not the broad sweeps).
    """
    secure = config.secure
    return (secure.encryption_mode == "ctr"
            and not secure.obfuscation_enabled
            and not secure.hash_tree_enabled
            and config.prefetch_degree == 0)


def policy_supported(policy):
    """Can ``policy`` be replayed over a shared prepass?

    Obfuscating policies restructure the engine (re-map table accesses
    interleave with data fetches), so they keep the legacy path.
    """
    return not policy.obfuscation


class TracePrepass:
    """Recorded structural outcomes of one (trace, config, warmup) walk.

    Column semantics (all parallel lists of ints):

    - per instruction: ``if_flags[i]`` is 1 when instruction ``i``
      fetches a new I-line (the ``iline != cur_iline`` test);
    - per memory access, in global access order (I-fetch then D-side per
      instruction): ``a_pre`` (TLB miss latency to add), ``a_lvl`` (one
      of the ``LVL_*`` outcomes), ``a_ref`` (for an L1 hit: index of the
      access that filled the line; for an L2 hit: index of the *miss*
      that filled it, or -1 for a line installed by an L1 writeback; for
      a miss: its miss index), ``a_wb`` (posted DRAM writes issued by
      the L1 victim writeback, incl. re-encryption bursts);
    - per L2 demand miss: ``m_wb`` (posted DRAM writes from the L2
      victim writeback), ``m_counter`` (0 = counter-cache hit, 1 =
      predicted, 2 = counter block fetched from memory);
    - per DRAM op, in issue order: ``d_bank`` and ``d_cat`` (``ROW_*``).

    Plus the policy-independent stat totals and the post-warmup
    ``miss_summary`` the replay hands through unchanged.
    """

    __slots__ = (
        "num_instructions", "warmup", "packed", "if_flags",
        "a_pre", "a_lvl", "a_ref", "a_wb",
        "m_wb", "m_counter",
        "d_bank", "d_cat",
        "n_accesses", "n_misses", "n_meta", "n_writes",
        "cc_hits", "cc_misses", "cc_evictions", "cc_writebacks",
        "row_hits", "row_empty", "row_conflicts",
        "page_reencryptions", "miss_summary",
        "_native",   # lazily-built flat buffers for repro.cpu.native
    )

    @property
    def dram_ops(self):
        """Total DRAM accesses (= bus transfers)."""
        return len(self.d_bank)


def build_prepass(trace, config, warmup=0,
                  protected_bytes=256 * 1024 * 1024):
    """Run the structural walk; returns a :class:`TracePrepass`.

    Must only be called for configurations passing
    :func:`prepass_supported`; the walk assumes the counter-mode fast
    path's structure.
    """
    packed = trace.packed()
    num_insts = len(packed)
    warmup = min(warmup, num_insts)

    secure = config.secure
    layout = MetadataLayout(
        protected_bytes=protected_bytes,
        line_bytes=config.l2.line_bytes,
        counter_bytes=secure.counter_bytes,
        mac_bits=secure.mac_bits,
        hash_bytes=secure.hash_bytes,
    )
    wrap = layout.protected_bytes
    counter_base = layout.counter_base
    if secure.split_counters:
        counter_div = 4096
        counter_step = layout.line_bytes
    else:
        counter_div = layout.line_bytes
        counter_step = layout.counter_bytes

    # ---- mirrored cache state (dict insertion order == recency) ------
    l1i_cfg, l1d_cfg, l2_cfg = config.l1i, config.l1d, config.l2
    l1i_sets = [dict() for _ in range(l1i_cfg.num_sets)]
    l1d_sets = [dict() for _ in range(l1d_cfg.num_sets)]
    l2_sets = [dict() for _ in range(l2_cfg.num_sets)]
    l2_num_sets = l2_cfg.num_sets
    l2_line_bytes = l2_cfg.line_bytes
    l2_assoc = l2_cfg.associativity
    page_bytes = config.page_bytes
    tlb_assoc = config.tlb_associativity
    itlb_num_sets = max(1, config.itlb_entries // tlb_assoc)
    dtlb_num_sets = max(1, config.dtlb_entries // tlb_assoc)
    itlb_sets = [dict() for _ in range(itlb_num_sets)]
    dtlb_sets = [dict() for _ in range(dtlb_num_sets)]
    tlb_miss_latency = config.tlb_miss_latency

    # Counter cache: 64B lines, 4-way (CounterCache's fixed geometry).
    cc_line_bytes = 64
    cc_assoc = 4
    cc_num_sets = max(1, secure.counter_cache_bytes
                      // (cc_line_bytes * cc_assoc))
    cc_sets = [dict() for _ in range(cc_num_sets)]
    minor_counts = {}
    minor_limit = 1 << secure.minor_counter_bits
    split_counters = secure.split_counters
    lines_per_page = 4096 // layout.line_bytes
    line_bytes = layout.line_bytes

    # Counter-prediction LCG (SecureMemoryEngine._predict).
    predict_state = 0x2545F4914F6CDD1D
    predict_threshold = int(secure.counter_prediction_rate * (1 << 16))

    # SDRAM bank/row state.
    dram_cfg = config.dram
    num_banks = dram_cfg.num_banks
    interleave = dram_cfg.interleave_bytes
    row_div = num_banks * dram_cfg.row_bytes
    open_rows = [_NO_ROW] * num_banks

    # ---- output columns ----------------------------------------------
    if_flags = bytearray(num_insts)
    a_pre = []
    a_lvl = []
    a_ref = []
    a_wb = []
    m_wb = []
    m_counter = []
    d_bank = []
    d_cat = []

    # ---- structural counters -----------------------------------------
    counts = {
        "cc_hits": 0, "cc_misses": 0, "cc_evictions": 0,
        "cc_writebacks": 0,
        "row_hits": 0, "row_empty": 0, "row_conflicts": 0,
        "n_meta": 0, "n_writes": 0, "reencrypts": 0,
    }
    # Per-level hit/miss pairs for miss_summary (reset at warmup).
    hm = {"l1i": [0, 0], "l1d": [0, 0], "l2": [0, 0],
          "itlb": [0, 0], "dtlb": [0, 0]}

    def dram_op(addr):
        """Classify one DRAM access against the mirrored bank state."""
        bank = (addr // interleave) % num_banks
        row = addr // row_div
        prev = open_rows[bank]
        if prev == row:
            cat = ROW_HIT
            counts["row_hits"] += 1
        elif prev == _NO_ROW:
            cat = ROW_EMPTY
            counts["row_empty"] += 1
        else:
            cat = ROW_CONFLICT
            counts["row_conflicts"] += 1
        open_rows[bank] = row
        d_bank.append(bank)
        d_cat.append(cat)

    def cc_bump(caddr):
        """CounterCache.bump: probe-as-write, fill-as-write on miss."""
        cline = caddr // cc_line_bytes
        cset = cc_sets[cline % cc_num_sets]
        ctag = cline // cc_num_sets
        entry = cset.get(ctag)
        if entry is not None:
            counts["cc_hits"] += 1
            del cset[ctag]
            cset[ctag] = True  # dirty
            return
        counts["cc_misses"] += 1
        if len(cset) >= cc_assoc:
            victim_dirty = cset.pop(next(iter(cset)))
            counts["cc_evictions"] += 1
            if victim_dirty:
                counts["cc_writebacks"] += 1
        cset[ctag] = True

    def engine_write(addr):
        """SecureMemoryEngine.write_line, structurally; returns the
        number of posted DRAM writes it issued."""
        nonlocal predict_state
        if split_counters:
            caddr = counter_base + (addr // 4096) * line_bytes
        else:
            caddr = counter_base + (addr // line_bytes) * secure.counter_bytes
        cc_bump(caddr)
        ops = 0
        if split_counters:
            line = addr // line_bytes
            count = minor_counts.get(line, 0) + 1
            if count < minor_limit:
                minor_counts[line] = count
            else:
                page_base = (addr // 4096) * 4096
                first_line = page_base // line_bytes
                for index in range(lines_per_page):
                    minor_counts[first_line + index] = 0
                    dram_op(page_base + index * line_bytes)
                ops += lines_per_page
                counts["reencrypts"] += 1
        dram_op(addr)
        counts["n_writes"] += ops + 1
        return ops + 1

    def l1_writeback(victim_addr):
        """MemoryHierarchy._l1_writeback, structurally; returns the
        number of posted DRAM writes it issued."""
        vline = victim_addr // l2_line_bytes
        vset = l2_sets[vline % l2_num_sets]
        vtag = vline // l2_num_sets
        entry = vset.get(vtag)
        if entry is not None:
            hm["l2"][0] += 1
            del vset[vtag]
            vset[vtag] = entry
            entry[1] = True  # mark dirty
            return 0
        hm["l2"][1] += 1
        ops = 0
        if len(vset) >= l2_assoc:
            victim = vset.pop(next(iter(vset)))
            if victim[1]:
                ops = engine_write(((victim[2] * l2_num_sets
                                     + vline % l2_num_sets)
                                    * l2_line_bytes) % wrap)
        vset[vtag] = [-1, True, vtag]
        return ops

    def l2_miss(addr):
        """MemoryHierarchy._l2_miss + engine.fetch_line, structurally;
        returns the number of posted DRAM writes from the L2 victim."""
        nonlocal predict_state
        miss_index = len(m_counter)
        mline = addr // l2_line_bytes
        set_index = mline % l2_num_sets
        mset = l2_sets[set_index]
        mtag = mline // l2_num_sets
        hm["l2"][1] += 1
        wb_ops = 0
        victim = None
        if len(mset) >= l2_assoc:
            victim = mset.pop(next(iter(mset)))
        mset[mtag] = [miss_index, False, mtag]
        if victim is not None and victim[1]:
            wb_ops = engine_write(((victim[2] * l2_num_sets + set_index)
                                   * l2_line_bytes) % wrap)
        target = mline * l2_line_bytes % wrap
        # Counter-mode pad source: counter cache, prediction, or memory.
        caddr = counter_base + (target // counter_div) * counter_step
        cline = caddr // cc_line_bytes
        cset = cc_sets[cline % cc_num_sets]
        ctag = cline // cc_num_sets
        entry = cset.get(ctag)
        if entry is not None:
            counts["cc_hits"] += 1
            del cset[ctag]
            cset[ctag] = entry
            mc = 0
        else:
            counts["cc_misses"] += 1
            if len(cset) >= cc_assoc:
                victim_dirty = cset.pop(next(iter(cset)))
                counts["cc_evictions"] += 1
                if victim_dirty:
                    counts["cc_writebacks"] += 1
            cset[ctag] = False
            predict_state = (
                predict_state * 6364136223846793005 + 1442695040888963407
            ) & (2**64 - 1)
            if (predict_state >> 33) & 0xFFFF < predict_threshold:
                mc = 1
            else:
                mc = 2
                counts["n_meta"] += 1
                dram_op(caddr)
        dram_op(target)
        m_counter.append(mc)
        m_wb.append(wb_ops)
        return miss_index

    def make_access(l1_sets_, l1_num_sets, l1_line_bytes, l1_assoc,
                    tlb_sets_, tlb_num_sets, level_key, tlb_key, is_write):
        l1_hm = hm[level_key]
        tlb_hm = hm[tlb_key]

        def access(addr):
            acc_index = len(a_lvl)
            # TLB probe (Tlb.translate_latency).
            page = addr // page_bytes
            tset = tlb_sets_[page % tlb_num_sets]
            ttag = page // tlb_num_sets
            if ttag in tset:
                tlb_hm[0] += 1
                del tset[ttag]
                tset[ttag] = True
                pre = 0
            else:
                tlb_hm[1] += 1
                if len(tset) >= tlb_assoc:
                    tset.pop(next(iter(tset)))
                tset[ttag] = True
                pre = tlb_miss_latency
            # L1 probe (Cache.hit_line).
            line_addr = addr // l1_line_bytes
            set_index = line_addr % l1_num_sets
            cache_set = l1_sets_[set_index]
            tag = line_addr // l1_num_sets
            line = cache_set.get(tag)
            if line is not None:
                l1_hm[0] += 1
                del cache_set[tag]
                cache_set[tag] = line
                if is_write:
                    line[1] = True
                a_pre.append(pre)
                a_lvl.append(LVL_L1_HIT)
                a_ref.append(line[0])
                a_wb.append(0)
                return
            # L1 miss: evict, write back, probe L2.
            l1_hm[1] += 1
            wb_ops = 0
            if len(cache_set) >= l1_assoc:
                victim = cache_set.pop(next(iter(cache_set)))
                if victim[1]:
                    wb_ops = l1_writeback(
                        (victim[2] * l1_num_sets + set_index) * l1_line_bytes)
            cache_set[tag] = [acc_index, is_write, tag]
            l2_line_addr = addr // l2_line_bytes
            l2_set = l2_sets[l2_line_addr % l2_num_sets]
            l2_tag = l2_line_addr // l2_num_sets
            l2_line = l2_set.get(l2_tag)
            if l2_line is not None:
                hm["l2"][0] += 1
                del l2_set[l2_tag]
                l2_set[l2_tag] = l2_line
                a_lvl.append(LVL_L2_HIT)
                a_ref.append(l2_line[0])
            else:
                a_lvl.append(LVL_MISS)
                a_ref.append(l2_miss(addr))
            a_pre.append(pre)
            a_wb.append(wb_ops)

        return access

    ifetch = make_access(
        l1i_sets, l1i_cfg.num_sets, l1i_cfg.line_bytes,
        l1i_cfg.associativity, itlb_sets, itlb_num_sets,
        "l1i", "itlb", False)
    load = make_access(
        l1d_sets, l1d_cfg.num_sets, l1d_cfg.line_bytes,
        l1d_cfg.associativity, dtlb_sets, dtlb_num_sets,
        "l1d", "dtlb", False)
    store = make_access(
        l1d_sets, l1d_cfg.num_sets, l1d_cfg.line_bytes,
        l1d_cfg.associativity, dtlb_sets, dtlb_num_sets,
        "l1d", "dtlb", True)

    # ---- the walk ----------------------------------------------------
    iline_bytes = config.l1i.line_bytes
    op_load = 3  # Op.LOAD
    op_store = 4  # Op.STORE
    cur_iline = -1
    warmup_snapshot = None

    pcs = packed.pcs
    ops = packed.ops
    addrs = packed.addrs
    for index in range(num_insts):
        if index == warmup and warmup:
            # hierarchy.reset_stats(): the per-level groups restart here,
            # so miss_summary covers the measured region only.
            warmup_snapshot = {key: list(pair) for key, pair in hm.items()}
        pc = pcs[index]
        iline = pc // iline_bytes
        if iline != cur_iline:
            if_flags[index] = 1
            ifetch(pc)
            cur_iline = iline
        op = ops[index]
        if op == op_load:
            load(addrs[index])
        elif op == op_store:
            store(addrs[index])

    if warmup_snapshot is None:
        warmup_snapshot = {key: [0, 0] for key in hm}
    miss_summary = {}
    for key in ("l1i", "l1d", "l2", "itlb", "dtlb"):
        hits = hm[key][0] - warmup_snapshot[key][0]
        misses = hm[key][1] - warmup_snapshot[key][1]
        total = hits + misses
        miss_summary[key] = misses / total if total else 0.0

    pre = TracePrepass()
    pre.num_instructions = num_insts
    pre.warmup = warmup
    pre.packed = packed
    pre.if_flags = if_flags
    pre.a_pre = a_pre
    pre.a_lvl = a_lvl
    pre.a_ref = a_ref
    pre.a_wb = a_wb
    pre.m_wb = m_wb
    pre.m_counter = m_counter
    pre.d_bank = d_bank
    pre.d_cat = d_cat
    pre.n_accesses = len(a_lvl)
    pre.n_misses = len(m_counter)
    pre.n_meta = counts["n_meta"]
    pre.n_writes = counts["n_writes"]
    pre.cc_hits = counts["cc_hits"]
    pre.cc_misses = counts["cc_misses"]
    pre.cc_evictions = counts["cc_evictions"]
    pre.cc_writebacks = counts["cc_writebacks"]
    pre.row_hits = counts["row_hits"]
    pre.row_empty = counts["row_empty"]
    pre.row_conflicts = counts["row_conflicts"]
    pre.page_reencryptions = counts["reencrypts"]
    pre.miss_summary = miss_summary
    return pre
