"""One-pass timestamp model of the out-of-order pipeline.

For each committed-path instruction the model computes, in program order:

``fetch`` -> bounded by fetch width, I-cache/ITLB, branch redirects;
``dispatch`` -> fetch + pipeline depth, bounded by a free RUU entry (and
LSQ entry for memory ops);
``issue`` -> operands ready (register timestamps), bounded by issue width;
under *authen-then-issue* also by the instruction line's verification;
``complete`` -> functional-unit latency, or the D-cache/memory path for
loads (whose value availability is policy-gated);
``commit`` -> in order, bounded by commit width and, under
*authen-then-commit*, by verification of the instruction's own line and
its memory operand's line.  Stores additionally need a free store-buffer
slot; under *authen-then-write* a slot frees only when the authentication
frontier recorded at the store's issue has drained.

External fetches triggered by any level are gated through the policy's
``fetch_gate`` (*authen-then-fetch*).
"""

from time import perf_counter

from repro.obs.events import (
    COMMIT,
    FETCH_ISSUED,
    ISSUE,
    LANE_COMMIT,
    LANE_FETCH,
    LANE_ISSUE,
    LANE_STORE,
    SQUASH,
    STORE_RELEASED,
)
from repro.util.statistics import StatGroup
from repro.workloads.trace import Op, pack_instructions

_UNIT_LATENCY = {
    Op.IALU: 1,
    Op.IMUL: 3,
    Op.FPU: 4,
    Op.BRANCH: 1,
    Op.JUMP: 1,
    Op.SYSTEM: 1,
    Op.STORE: 1,  # address generation; data is written at commit
}

# The issue calendar (issue cycle -> instructions issued that cycle) is
# pruned every this-many instructions: entries behind the fetch frontier
# plus pipeline depth can never be probed again (every future probe is at
# ``>= fetch_frontier + depth`` and the frontier is monotonic), so
# dropping them is timing-neutral while keeping the dict's size bounded
# by the prune interval plus the in-flight issue spread instead of
# growing with the run length.
_CALENDAR_PRUNE_INTERVAL = 4096


class RunResult:
    """Outcome of one timing-simulation run."""

    def __init__(self, name, policy_name, instructions, cycles, stats,
                 miss_summary):
        self.name = name
        self.policy_name = policy_name
        self.instructions = instructions
        self.cycles = cycles
        self.stats = stats
        self.miss_summary = miss_summary
        # Derived RunMetrics, attached by repro.exec.execute_job; None
        # for results produced by driving the core directly.
        self.metrics = None
        # Per-job resource accounting (wall/tracegen seconds, cache hit,
        # peak RSS), attached by repro.exec.execute_job; never part of
        # the simulated state, so it stays out of result digests.
        self.accounting = None

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    def __repr__(self):
        return "RunResult(%s/%s, ipc=%.3f)" % (
            self.name, self.policy_name, self.ipc)


class TimestampCore:
    """Trace-driven out-of-order core with authentication control points."""

    def __init__(self, config, policy, hierarchy, stats=None, tracer=None):
        self.config = config
        self.policy = policy
        self.hierarchy = hierarchy
        self.stats = stats if stats is not None else StatGroup("core")
        self.tracer = tracer
        # Peak issue-calendar population observed by the last run()
        # (sampled at every prune point and at the end of the run):
        # observability for the sliding-window bound, and what the
        # bounded-memory regression test asserts on.
        self.issue_calendar_peak = 0

    def run(self, trace, warmup=0, profiler=None):
        """Replay ``trace`` and return a :class:`RunResult`.

        ``trace`` is replayed via its packed columnar form
        (:meth:`~repro.workloads.trace.Trace.packed`); a bare iterable of
        :class:`~repro.workloads.trace.TraceInst` is packed on the fly.
        The hot loop iterates parallel columns, so per-instruction cost
        is one tuple unpack instead of six attribute lookups.

        The first ``warmup`` instructions warm the caches, TLBs, counter
        cache and branch state but are excluded from the reported cycle
        and instruction counts (the paper warms L1/L2 during SimPoint
        fast-forward; this is the trace-driven equivalent).

        ``profiler`` (a :class:`~repro.obs.profile.PhaseProfiler`) splits
        the replay wall clock into ``warmup`` and ``measure`` phases.
        """
        cfg = self.config.core
        policy = self.policy
        hier = self.hierarchy
        engine = hier.engine

        packed = trace.packed() if hasattr(trace, "packed") \
            else pack_instructions(trace)
        num_insts = len(packed)

        fetch_width = cfg.fetch_width
        issue_width = cfg.issue_width
        commit_width = cfg.commit_width
        ruu_size = cfg.ruu_entries
        lsq_size = cfg.lsq_entries
        depth = cfg.pipeline_depth
        penalty = cfg.branch_mispredict_penalty
        sb_size = self.config.secure.store_buffer_entries
        gate_issue = policy.gate_issue
        gate_commit = policy.gate_commit
        gate_fetch = policy.gate_fetch
        gate_store = policy.gate_store
        precise_fetch = gate_fetch and \
            getattr(policy, "fetch_mode", "tag") == "precise"
        iline_bytes = self.config.l1i.line_bytes

        reg_ready = [0] * 64
        # Precise authen-then-fetch: per-register verification frontier of
        # the value's whole data/control ancestry, plus the control-flow
        # frontier carried by branches.
        reg_frontier = [0] * 64
        ctrl_frontier = 0
        ruu_ring = [0] * ruu_size
        lsq_ring = [0] * lsq_size
        sb_ring = [0] * sb_size

        fetch_frontier = 0
        fetched_in_cycle = 0
        fetch_cycle = -1
        redirect_time = 0
        issue_calendar = {}
        last_commit = 0
        commit_cycle = -1
        committed_in_cycle = 0
        # Rolling ring cursors (cheaper than a modulo per instruction).
        ruu_index = 0
        lsq_index = 0
        sb_index = 0
        cur_iline = -1

        auth_commit_stall = self.stats.counter("auth_commit_stall_cycles")
        auth_issue_stall = self.stats.counter("auth_issue_stall_cycles")
        sb_full_stall = self.stats.counter("store_buffer_full_stalls")
        mispredicts = self.stats.counter("branch_mispredicts")

        warmup = min(warmup, num_insts)
        warmup_commit = 0

        # Tracing fast path: one hoisted boolean; a disabled tracer costs
        # the hot loop only these predicate tests.
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        op_names = Op.NAMES
        run_start = perf_counter() if profiler is not None else 0.0
        warmup_wall = 0.0

        # Everything the loop touches per instruction lives in a local:
        # globals, class attributes and bound methods all cost a dict
        # probe per use in CPython.
        op_load = Op.LOAD
        op_store = Op.STORE
        op_branch = Op.BRANCH
        op_jump = Op.JUMP
        # Ops are small ints: list indexing beats a dict probe.
        unit_latency = [_UNIT_LATENCY.get(code, 0) for code in range(8)]
        ifetch = hier.ifetch
        do_load = hier.load
        do_store = hier.store
        fetch_gate_time = policy.fetch_gate_time
        value_ready = policy.value_ready
        store_release = policy.store_release
        auth_frontier = engine.auth_frontier
        calendar_get = issue_calendar.get
        auth_issue_add = auth_issue_stall.add
        auth_commit_add = auth_commit_stall.add

        prune_mask = _CALENDAR_PRUNE_INTERVAL - 1
        calendar_peak = 0
        iline_data = 0
        iline_verify = 0

        for index, (pc, op, dest, srcs, addr, mispredict) in enumerate(
                packed.rows()):
            if index == warmup and warmup:
                warmup_commit = last_commit
                self.hierarchy.reset_stats()
                if profiler is not None:
                    warmup_wall = perf_counter() - run_start
                    profiler.add("warmup", warmup_wall)
            # ---------------- fetch ----------------------------------
            base = fetch_frontier
            if redirect_time > base:
                base = redirect_time
            if base != fetch_cycle:
                fetch_cycle = base
                fetched_in_cycle = 0
            elif fetched_in_cycle >= fetch_width:
                fetch_cycle += 1
                fetched_in_cycle = 0
                base = fetch_cycle
            fetched_in_cycle += 1

            iline = pc // iline_bytes
            if iline != cur_iline:
                if precise_fetch:
                    # Instruction fetch depends on the control slice only.
                    gate = ctrl_frontier
                elif gate_fetch:
                    gate = fetch_gate_time(engine, base, base)
                else:
                    gate = 0
                if tracing:
                    tracer.emit(FETCH_ISSUED, LANE_FETCH, base, pc=pc,
                                iline=iline)
                iline_data, iline_verify = ifetch(pc, base, gate_time=gate)
                cur_iline = iline
            if iline_data > base:
                base = iline_data
                fetch_cycle = base
                fetched_in_cycle = 1
            fetch_frontier = base

            # ---------------- dispatch -------------------------------
            dispatch = base + depth
            slot_free = ruu_ring[ruu_index]
            if slot_free > dispatch:
                dispatch = slot_free
            is_mem = op == op_load or op == op_store
            if is_mem:
                lsq_free = lsq_ring[lsq_index]
                if lsq_free > dispatch:
                    dispatch = lsq_free

            # ---------------- issue ----------------------------------
            ready = dispatch
            for src in srcs:
                t = reg_ready[src]
                if t > ready:
                    ready = t
            if gate_issue:
                if iline_verify > ready:
                    auth_issue_add(iline_verify - ready)
                    ready = iline_verify
            # issue bandwidth
            count = calendar_get(ready, 0)
            while count >= issue_width:
                ready += 1
                count = calendar_get(ready, 0)
            issue_calendar[ready] = count + 1
            issue = ready
            if tracing:
                tracer.emit(ISSUE, LANE_ISSUE, issue, pc=pc,
                            op=op_names.get(op, op))

            # ---------------- execute --------------------------------
            verify_needed = iline_verify if gate_commit else 0
            store_frontier = 0
            if precise_fetch:
                # Verification frontier of this instruction's slice: its
                # own I-line, its operands' ancestry, the control slice.
                slice_frontier = ctrl_frontier
                if iline_verify > slice_frontier:
                    slice_frontier = iline_verify
                for src in srcs:
                    f = reg_frontier[src]
                    if f > slice_frontier:
                        slice_frontier = f
            if op == op_load:
                if precise_fetch:
                    gate = slice_frontier
                elif gate_fetch:
                    gate = fetch_gate_time(engine, issue, issue + 1)
                else:
                    gate = 0
                data_time, verify_time = do_load(addr, issue + 1,
                                                 gate_time=gate)
                value_time = value_ready(data_time, verify_time)
                if gate_issue and value_time > data_time:
                    auth_issue_add(value_time - data_time)
                complete = value_time
                if dest >= 0:
                    reg_ready[dest] = value_time
                    if precise_fetch:
                        f = slice_frontier
                        if verify_time > f:
                            f = verify_time
                        reg_frontier[dest] = f
                if gate_commit and verify_time > verify_needed:
                    verify_needed = verify_time
            elif op == op_store:
                complete = issue + 1
                if gate_store:
                    store_frontier = auth_frontier(issue)
            else:
                complete = issue + unit_latency[op]
                if dest >= 0:
                    reg_ready[dest] = complete
                    if precise_fetch:
                        reg_frontier[dest] = slice_frontier

            if precise_fetch and (op == op_branch or op == op_jump):
                if slice_frontier > ctrl_frontier:
                    ctrl_frontier = slice_frontier

            if mispredict:
                mispredicts.value += 1
                resolve = complete + penalty
                if tracing:
                    tracer.emit(SQUASH, LANE_FETCH, resolve, pc=pc)
                if resolve > redirect_time:
                    redirect_time = resolve

            # ---------------- commit ---------------------------------
            commit = complete + 1
            if last_commit > commit:
                commit = last_commit
            if verify_needed > commit:
                auth_commit_add(verify_needed - commit)
                commit = verify_needed
            if op == op_store:
                sb_free = sb_ring[sb_index]
                if sb_free > commit:
                    sb_full_stall.value += 1
                    commit = sb_free
            # commit bandwidth (in order -> monotonic counter)
            if commit != commit_cycle:
                commit_cycle = commit
                committed_in_cycle = 0
            elif committed_in_cycle >= commit_width:
                commit_cycle += 1
                committed_in_cycle = 0
                commit = commit_cycle
            committed_in_cycle += 1
            last_commit = commit
            if tracing:
                tracer.emit(COMMIT, LANE_COMMIT, commit, pc=pc,
                            op=op_names.get(op, op))

            if op == op_store:
                release = store_release(commit, store_frontier)
                if precise_fetch:
                    gate = slice_frontier
                elif gate_fetch:
                    gate = fetch_gate_time(engine, issue, release)
                else:
                    gate = 0
                if tracing:
                    tracer.emit(STORE_RELEASED, LANE_STORE, release,
                                addr=addr)
                do_store(addr, release, gate_time=gate)
                sb_ring[sb_index] = release
                sb_index += 1
                if sb_index == sb_size:
                    sb_index = 0

            ruu_ring[ruu_index] = commit
            ruu_index += 1
            if ruu_index == ruu_size:
                ruu_index = 0
            if is_mem:
                lsq_ring[lsq_index] = commit
                lsq_index += 1
                if lsq_index == lsq_size:
                    lsq_index = 0

            # ------------- issue-calendar sliding window --------------
            if index & prune_mask == prune_mask:
                size = len(issue_calendar)
                if size > calendar_peak:
                    calendar_peak = size
                # Probes are always at >= fetch_frontier + depth and the
                # frontier never moves backwards, so everything behind
                # that floor is dead weight.
                floor = fetch_frontier + depth
                for key in [k for k in issue_calendar if k < floor]:
                    del issue_calendar[key]

        size = len(issue_calendar)
        if size > calendar_peak:
            calendar_peak = size
        self.issue_calendar_peak = calendar_peak

        if profiler is not None:
            profiler.add("measure", perf_counter() - run_start - warmup_wall)
        cycles = last_commit - warmup_commit
        return RunResult(
            getattr(trace, "name", "trace"),
            policy.name,
            num_insts - warmup,
            cycles,
            self.stats,
            hier.miss_summary(),
        )
