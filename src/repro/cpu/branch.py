"""Branch prediction.

Two uses:

- synthetic traces carry per-branch ``mispredict`` flags drawn from each
  benchmark's predictability parameter, so the core needs no predictor;
- traces converted from *real* program executions (the functional secure
  machine) are annotated by running this :class:`BimodalPredictor` over
  the branch outcomes.
"""


class BimodalPredictor:
    """Classic bimodal predictor: 2-bit saturating counters + a BTB."""

    def __init__(self, table_entries=2048, btb_entries=512):
        if table_entries & (table_entries - 1):
            raise ValueError("table_entries must be a power of two")
        self.table_entries = table_entries
        self._counters = [2] * table_entries  # weakly taken
        self._btb = {}
        self._btb_entries = btb_entries
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc):
        return (pc >> 2) & (self.table_entries - 1)

    def predict_update(self, pc, taken, target=None):
        """Predict the branch at ``pc``, train, and return True on a
        *mispredict* (direction wrong, or taken with a BTB target miss)."""
        self.lookups += 1
        index = self._index(pc)
        counter = self._counters[index]
        predicted_taken = counter >= 2

        wrong = predicted_taken != taken
        if taken and not wrong and target is not None:
            if self._btb.get(pc) != target:
                wrong = True  # direction right but target unknown/stale

        # Train direction counter.
        if taken and counter < 3:
            self._counters[index] = counter + 1
        elif not taken and counter > 0:
            self._counters[index] = counter - 1
        # Train BTB.
        if taken and target is not None:
            if pc not in self._btb and len(self._btb) >= self._btb_entries:
                self._btb.pop(next(iter(self._btb)))
            self._btb[pc] = target

        if wrong:
            self.mispredicts += 1
        return wrong

    def accuracy(self):
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups
