"""Out-of-order core timing model.

A one-pass *timestamp* model of an 8-wide out-of-order pipeline
(SimpleScalar-class, Table 3): each committed-path instruction flows
through fetch -> dispatch -> issue -> execute -> commit, and the model
computes the cycle each event happens under bandwidth, window (RUU/LSQ),
dependency, memory-hierarchy and **authentication-gating** constraints.

This is the standard fast alternative to cycle stepping: it preserves the
mechanisms the paper's results flow from (issue gating delays dependents;
commit gating backs up the RUU until fetch stalls; store gating fills the
store buffer; fetch gating serialises dependent misses) while being fast
enough to sweep 18 benchmarks x 9 policies in pure Python.
"""

from repro.cpu.branch import BimodalPredictor
from repro.cpu.core import RunResult, TimestampCore
from repro.cpu.hierarchy import MemoryHierarchy

__all__ = [
    "BimodalPredictor",
    "TimestampCore",
    "RunResult",
    "MemoryHierarchy",
]
