"""Memory hierarchy glue: L1I/L1D + TLBs + unified L2 + secure engine.

Every resident line carries ``(data_time, verify_time)`` so that hits to
in-flight or still-unverified lines observe the correct timestamps -- the
decrypt-to-verify window survives into the caches, which is exactly what
the authentication control points gate on.

``ifetch``/``load``/``store`` return a plain ``(data_time, verify_time)``
tuple.  The overwhelmingly common L1/L2 hit case allocates nothing but
that tuple: the caches' ``hit_line`` fast path replaces the
``CacheAccess``/``LineTiming`` objects the hierarchy used to build per
access (the verify component is always ``>= data_time`` on the returned
tuple, as before).

The three entry points are built by :func:`_make_l1_path` as closures
that inline the TLB and L1 probes over the caches' internal tag dicts:
the common all-hits case is one function call with no attribute chasing,
instead of the five-deep ``load -> _l1_access -> translate_latency ->
hit_line -> hit_line`` chain.  The closures must mirror
:meth:`repro.cache.cache.Cache.hit_line` exactly; the golden parity
suite (``tests/perf``) pins that equivalence.
"""

from repro.cache.cache import Cache, LineState
from repro.cache.tlb import Tlb
from repro.mem.controller import MemoryController
from repro.obs.events import L2_MISS, LANE_MEM, MSHR_STALL
from repro.secure.engine import SecureMemoryEngine
from repro.secure.metadata import MetadataLayout
from repro.util.statistics import StatGroup


def _make_l1_path(hierarchy, l1, tlb, is_write):
    """Build the flattened TLB+L1 fast path for one access kind.

    Everything the per-access code touches is captured in closure cells:
    no ``self`` lookups, no sub-calls on the TLB-hit/L1-hit path.  The
    probe/recency/stat behaviour is a manual inline of
    ``Tlb.translate_latency`` and ``Cache.hit_line``; misses fall back to
    :meth:`MemoryHierarchy._l1_miss`.
    """
    l1_sets = l1._sets
    l1_num_sets = l1.num_sets
    l1_line_bytes = l1.line_bytes
    l1_latency = l1.latency
    l1_hits = l1.stats.counter("hits")
    l1_misses = l1.stats.counter("misses")
    l1_evictions = l1.stats.counter("evictions")
    l1_wb_count = l1.stats.counter("writebacks")
    l1_assoc = l1.assoc
    tlb_cache = tlb._cache
    tlb_sets = tlb_cache._sets
    tlb_num_sets = tlb_cache.num_sets
    tlb_page_bytes = tlb_cache.line_bytes
    tlb_hits = tlb_cache.stats.counter("hits")
    tlb_fill = tlb_cache.fill
    tlb_miss_latency = tlb.miss_latency
    l2 = hierarchy.l2
    l2_sets = l2._sets
    l2_num_sets = l2.num_sets
    l2_line_bytes = l2.line_bytes
    l2_latency = l2.latency
    l2_hits = l2.stats.counter("hits")
    l2_miss = hierarchy._l2_miss
    l1_writeback = hierarchy._l1_writeback

    def access(addr, cycle, gate_time=0):
        # ---- TLB probe (inline Tlb.translate_latency) ----------------
        page = addr // tlb_page_bytes
        tlb_set = tlb_sets[page % tlb_num_sets]
        tlb_tag = page // tlb_num_sets
        tlb_line = tlb_set.get(tlb_tag)
        if tlb_line is not None:
            tlb_hits.value += 1
            del tlb_set[tlb_tag]
            tlb_set[tlb_tag] = tlb_line
        else:
            tlb_fill(addr)
            cycle += tlb_miss_latency
        # ---- L1 probe (inline Cache.hit_line) ------------------------
        line_addr = addr // l1_line_bytes
        set_index = line_addr % l1_num_sets
        cache_set = l1_sets[set_index]
        tag = line_addr // l1_num_sets
        line = cache_set.get(tag)
        if line is not None:
            l1_hits.value += 1
            del cache_set[tag]
            cache_set[tag] = line
            if is_write:
                line.dirty = True
            data_time = line.data_time
            l1_done = cycle + l1_latency
            if l1_done > data_time:
                data_time = l1_done
            verify_time = line.verify_time
            return (data_time,
                    verify_time if verify_time > data_time else data_time)
        # ---- L1 miss: allocate, write back, probe L2 (inline) --------
        # (inline Cache.fill, reusing the index/tag computed above; the
        # evicted LineState is recycled exactly as fill does)
        l1_misses.value += 1
        if len(cache_set) >= l1_assoc:
            victim = cache_set.pop(next(iter(cache_set)))
            l1_evictions.value += 1
            if victim.dirty:
                l1_wb_count.value += 1
                l1_writeback(
                    (victim.tag * l1_num_sets + set_index) * l1_line_bytes,
                    cycle)
            victim.tag = tag
            victim.dirty = is_write
            victim.data_time = 0
            victim.verify_time = 0
            line = victim
        else:
            line = LineState(tag)
            if is_write:
                line.dirty = True
        cache_set[tag] = line
        l1_done = cycle + l1_latency
        l2_cycle = l1_done + l2_latency
        l2_line_addr = addr // l2_line_bytes
        l2_set = l2_sets[l2_line_addr % l2_num_sets]
        l2_tag = l2_line_addr // l2_num_sets
        l2_line = l2_set.get(l2_tag)
        if l2_line is not None:
            l2_hits.value += 1
            del l2_set[l2_tag]
            l2_set[l2_tag] = l2_line
            data_time = l2_line.data_time
            if l2_cycle > data_time:
                data_time = l2_cycle
            verify_time = l2_line.verify_time
            if verify_time < data_time:
                verify_time = data_time
        else:
            data_time, verify_time = l2_miss(addr, l2_cycle, gate_time)
        if l1_done > data_time:
            data_time = l1_done
        if data_time > verify_time:
            verify_time = data_time
        line.data_time = data_time
        line.verify_time = verify_time
        return (data_time, verify_time)

    return access


class MemoryHierarchy:
    """Two-level hierarchy in front of the secure-memory engine."""

    def __init__(self, config, policy, rng=None, stats=None,
                 protected_bytes=256 * 1024 * 1024, tracer=None):
        self.config = config
        self.policy = policy
        self.stats = stats if stats is not None else StatGroup("hier")
        self.tracer = tracer
        secure_cfg = config.secure
        if policy.obfuscation and not secure_cfg.obfuscation_enabled:
            secure_cfg = config.with_secure(obfuscation_enabled=True).secure
        layout = MetadataLayout(
            protected_bytes=protected_bytes,
            line_bytes=config.l2.line_bytes,
            counter_bytes=secure_cfg.counter_bytes,
            mac_bits=secure_cfg.mac_bits,
            hash_bytes=secure_cfg.hash_bytes,
        )
        self.controller = MemoryController(
            config.dram, line_bytes=config.l2.line_bytes, stats=self.stats,
            tracer=tracer,
        )
        self.engine = SecureMemoryEngine(
            secure_cfg,
            layout,
            self.controller,
            rng=rng,
            stats=self.stats,
            authentication_enabled=policy.authentication,
            tracer=tracer,
        )
        self.l1i = Cache(config.l1i, stats=StatGroup("l1i"))
        self.l1d = Cache(config.l1d, stats=StatGroup("l1d"))
        self.l2 = Cache(config.l2, stats=StatGroup("l2"))
        if self.engine.hash_tree is not None:
            # CHTree nodes are cacheable: evicted-but-verified nodes may
            # also sit in the unified L2 (they compete with data lines).
            self.engine.hash_tree.attach_backing(self.l2,
                                                 config.l2.latency)
        self.itlb = Tlb(config.itlb_entries, config.tlb_associativity,
                        config.page_bytes, config.tlb_miss_latency, "itlb")
        self.dtlb = Tlb(config.dtlb_entries, config.tlb_associativity,
                        config.page_bytes, config.tlb_miss_latency, "dtlb")
        self._wrap = layout.protected_bytes
        # MSHRs bound memory-level parallelism: a new external fetch
        # waits for a free outstanding-miss slot.
        self._mshr_ring = [0] * max(1, config.mshr_entries)
        self._mshr_index = 0
        self._mshr_stalls = self.stats.counter("mshr_stall_events")
        self._prefetches = self.stats.counter("prefetch_issued")
        #: Flattened access paths (see :func:`_make_l1_path`).
        #: ``ifetch(pc, cycle, gate_time=0)`` fetches the I-line holding
        #: ``pc``; ``load``/``store`` access the D-side; all three return
        #: ``(data_time, verify_time)``.
        self.ifetch = _make_l1_path(self, self.l1i, self.itlb, False)
        self.load = _make_l1_path(self, self.l1d, self.dtlb, False)
        self.store = _make_l1_path(self, self.l1d, self.dtlb, True)

    # ------------------------------------------------------------------

    def _clamp(self, addr):
        """Fold any address into the protected region."""
        return addr % self._wrap

    def _l2_fill(self, addr, cycle, gate_time):
        """Access L2; fill from memory on a miss.

        Returns a ``(data_time, verify_time)`` tuple.
        """
        l2 = self.l2
        line = l2.hit_line(addr)
        if line is not None:
            data_time = line.data_time
            if cycle > data_time:
                data_time = cycle
            verify_time = line.verify_time
            return (data_time,
                    verify_time if verify_time > data_time else data_time)
        return self._l2_miss(addr, cycle, gate_time)

    def _l2_miss(self, addr, cycle, gate_time):
        """L2 miss slow path: allocate, write back, fetch through the
        secure engine (with MSHR backpressure), prefetch.

        Returns a ``(data_time, verify_time)`` tuple.
        """
        l2 = self.l2
        line, victim_addr, victim_dirty = l2.fill(addr)
        if victim_dirty:
            self.engine.write_line(self._clamp(victim_addr), cycle)
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        slot_free = self._mshr_ring[self._mshr_index]
        if slot_free > cycle:
            self._mshr_stalls.value += 1
            if tracing:
                tracer.emit(MSHR_STALL, LANE_MEM, cycle,
                            dur=slot_free - cycle, addr=addr)
            cycle = slot_free
        target = (addr // l2.line_bytes) * l2.line_bytes % self._wrap
        if tracing:
            tracer.emit(L2_MISS, LANE_MEM, cycle, addr=target)
        fetch = self.engine.fetch_line(target, cycle, gate_time=gate_time)
        self._mshr_ring[self._mshr_index] = fetch.mem_done
        self._mshr_index = (self._mshr_index + 1) % len(self._mshr_ring)
        line.data_time = fetch.data_time
        line.verify_time = fetch.verify_time
        if self.config.prefetch_degree:
            self._prefetch_after(addr, fetch)
        return (fetch.data_time, fetch.verify_time)

    def _prefetch_after(self, addr, trigger_fetch):
        """Next-N-lines prefetch on a demand miss.

        Prefetches are never gated by authen-then-fetch (they are not
        program-dependent), and their verification starts as soon as they
        arrive -- often completing before the demand access that would
        otherwise expose the gap.
        """
        degree = self.config.prefetch_degree
        if not degree:
            return
        line_bytes = self.l2.line_bytes
        base = self.l2.line_addr(addr)
        # Stream detection: only prefetch when the preceding line is
        # already resident (evidence of a sequential walk) -- otherwise
        # random misses just pollute the L2 and burn bus bandwidth.
        if self.l2.lookup(base - line_bytes) is None:
            return
        for step in range(1, degree + 1):
            next_addr = base + step * line_bytes
            if self.l2.hit_line(next_addr) is not None:
                continue
            line, victim_addr, victim_dirty = self.l2.fill(next_addr)
            if victim_dirty:
                self.engine.write_line(self._clamp(victim_addr),
                                       trigger_fetch.mem_done)
            fetch = self.engine.fetch_line(self._clamp(next_addr),
                                           trigger_fetch.mem_done)
            line.data_time = fetch.data_time
            line.verify_time = fetch.verify_time
            self._prefetches.value += 1

    def _l1_miss(self, l1, addr, cycle, gate_time, is_write):
        """L1 miss slow path: allocate, write back, fill from L2.

        ``cycle`` already includes the TLB translation latency (the fast
        path charged it before probing L1).
        """
        line, victim_addr, victim_dirty = l1.fill(addr, is_write)
        if victim_dirty:
            self._l1_writeback(victim_addr, cycle)
        l1_lat = l1.latency
        data_time, verify_time = self._l2_fill(
            addr, cycle + l1_lat + self.l2.latency, gate_time)
        l1_done = cycle + l1_lat
        if l1_done > data_time:
            data_time = l1_done
        if data_time > verify_time:
            verify_time = data_time
        line.data_time = data_time
        line.verify_time = verify_time
        return (data_time, verify_time)

    def _l1_writeback(self, victim_addr, cycle):
        """Write a dirty L1 victim into L2 (write-validate allocate)."""
        if self.l2.hit_line(victim_addr, is_write=True) is not None:
            return
        _, l2_victim, l2_victim_dirty = self.l2.fill(victim_addr,
                                                     is_write=True)
        if l2_victim_dirty:
            self.engine.write_line(self._clamp(l2_victim), cycle)

    # ------------------------------------------------------------------

    def reset_stats(self):
        """Reset hit/miss counters without touching cache contents
        (used at the warmup boundary)."""
        for cache in (self.l1i, self.l1d, self.l2):
            cache.stats.reset()
        self.itlb.stats.reset()
        self.dtlb.stats.reset()

    def miss_summary(self):
        """Per-level miss rates (diagnostics and calibration tests)."""
        return {
            "l1i": self.l1i.miss_rate(),
            "l1d": self.l1d.miss_rate(),
            "l2": self.l2.miss_rate(),
            "itlb": self.itlb.miss_rate(),
            "dtlb": self.dtlb.miss_rate(),
        }
