"""Memory hierarchy glue: L1I/L1D + TLBs + unified L2 + secure engine.

Every resident line carries ``(data_time, verify_time)`` so that hits to
in-flight or still-unverified lines observe the correct timestamps -- the
decrypt-to-verify window survives into the caches, which is exactly what
the authentication control points gate on.
"""

from repro.cache.cache import Cache
from repro.cache.tlb import Tlb
from repro.mem.controller import MemoryController
from repro.obs.events import L2_MISS, LANE_MEM, MSHR_STALL
from repro.secure.engine import SecureMemoryEngine
from repro.secure.metadata import MetadataLayout
from repro.util.statistics import StatGroup


class LineTiming:
    """Timing view of one accessed line."""

    __slots__ = ("data_time", "verify_time")

    def __init__(self, data_time, verify_time):
        self.data_time = data_time
        self.verify_time = verify_time


class MemoryHierarchy:
    """Two-level hierarchy in front of the secure-memory engine."""

    def __init__(self, config, policy, rng=None, stats=None,
                 protected_bytes=256 * 1024 * 1024, tracer=None):
        self.config = config
        self.policy = policy
        self.stats = stats if stats is not None else StatGroup("hier")
        self.tracer = tracer
        secure_cfg = config.secure
        if policy.obfuscation and not secure_cfg.obfuscation_enabled:
            secure_cfg = config.with_secure(obfuscation_enabled=True).secure
        layout = MetadataLayout(
            protected_bytes=protected_bytes,
            line_bytes=config.l2.line_bytes,
            counter_bytes=secure_cfg.counter_bytes,
            mac_bits=secure_cfg.mac_bits,
            hash_bytes=secure_cfg.hash_bytes,
        )
        self.controller = MemoryController(
            config.dram, line_bytes=config.l2.line_bytes, stats=self.stats,
            tracer=tracer,
        )
        self.engine = SecureMemoryEngine(
            secure_cfg,
            layout,
            self.controller,
            rng=rng,
            stats=self.stats,
            authentication_enabled=policy.authentication,
            tracer=tracer,
        )
        self.l1i = Cache(config.l1i, stats=StatGroup("l1i"))
        self.l1d = Cache(config.l1d, stats=StatGroup("l1d"))
        self.l2 = Cache(config.l2, stats=StatGroup("l2"))
        if self.engine.hash_tree is not None:
            # CHTree nodes are cacheable: evicted-but-verified nodes may
            # also sit in the unified L2 (they compete with data lines).
            self.engine.hash_tree.attach_backing(self.l2,
                                                 config.l2.latency)
        self.itlb = Tlb(config.itlb_entries, config.tlb_associativity,
                        config.page_bytes, config.tlb_miss_latency, "itlb")
        self.dtlb = Tlb(config.dtlb_entries, config.tlb_associativity,
                        config.page_bytes, config.tlb_miss_latency, "dtlb")
        self._wrap = layout.protected_bytes
        # MSHRs bound memory-level parallelism: a new external fetch
        # waits for a free outstanding-miss slot.
        self._mshr_ring = [0] * max(1, config.mshr_entries)
        self._mshr_index = 0
        self._mshr_stalls = self.stats.counter("mshr_stall_events")
        self._prefetches = self.stats.counter("prefetch_issued")

    # ------------------------------------------------------------------

    def _clamp(self, addr):
        """Fold any address into the protected region."""
        return addr % self._wrap

    def _l2_fill(self, addr, cycle, gate_time):
        """Access L2; fill from memory on a miss.  Returns a LineTiming."""
        access = self.l2.access(addr)
        line = access.line
        if access.hit:
            data_time = max(cycle, line.data_time)
            return LineTiming(data_time, max(data_time, line.verify_time))
        if access.victim_dirty:
            self.engine.write_line(self._clamp(access.victim_addr), cycle)
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        slot_free = self._mshr_ring[self._mshr_index]
        if slot_free > cycle:
            self._mshr_stalls.add()
            if tracing:
                tracer.emit(MSHR_STALL, LANE_MEM, cycle,
                            dur=slot_free - cycle, addr=addr)
            cycle = slot_free
        if tracing:
            tracer.emit(L2_MISS, LANE_MEM, cycle,
                        addr=self._clamp(self.l2.line_addr(addr)))
        fetch = self.engine.fetch_line(self._clamp(self.l2.line_addr(addr)),
                                       cycle, gate_time=gate_time)
        self._mshr_ring[self._mshr_index] = fetch.mem_done
        self._mshr_index = (self._mshr_index + 1) % len(self._mshr_ring)
        line.data_time = fetch.data_time
        line.verify_time = fetch.verify_time
        self._prefetch_after(addr, fetch)
        return LineTiming(fetch.data_time, fetch.verify_time)

    def _prefetch_after(self, addr, trigger_fetch):
        """Next-N-lines prefetch on a demand miss.

        Prefetches are never gated by authen-then-fetch (they are not
        program-dependent), and their verification starts as soon as they
        arrive -- often completing before the demand access that would
        otherwise expose the gap.
        """
        degree = self.config.prefetch_degree
        if not degree:
            return
        line_bytes = self.l2.line_bytes
        base = self.l2.line_addr(addr)
        # Stream detection: only prefetch when the preceding line is
        # already resident (evidence of a sequential walk) -- otherwise
        # random misses just pollute the L2 and burn bus bandwidth.
        if self.l2.lookup(base - line_bytes) is None:
            return
        for step in range(1, degree + 1):
            next_addr = base + step * line_bytes
            access = self.l2.access(next_addr)
            if access.hit:
                continue
            if access.victim_dirty:
                self.engine.write_line(self._clamp(access.victim_addr),
                                       trigger_fetch.mem_done)
            fetch = self.engine.fetch_line(self._clamp(next_addr),
                                           trigger_fetch.mem_done)
            access.line.data_time = fetch.data_time
            access.line.verify_time = fetch.verify_time
            self._prefetches.add()

    def _l1_access(self, l1, tlb, addr, cycle, gate_time, is_write=False):
        cycle = cycle + tlb.translate_latency(addr)
        access = l1.access(addr, is_write=is_write)
        line = access.line
        l1_done = cycle + l1.config.latency
        if access.hit:
            data_time = max(l1_done, line.data_time)
            return LineTiming(data_time, max(data_time, line.verify_time))
        if access.victim_dirty:
            self._l1_writeback(access.victim_addr, cycle)
        timing = self._l2_fill(addr, cycle + l1.config.latency +
                               self.l2.config.latency, gate_time)
        line.data_time = max(l1_done, timing.data_time)
        line.verify_time = max(line.data_time, timing.verify_time)
        return LineTiming(line.data_time, line.verify_time)

    def _l1_writeback(self, victim_addr, cycle):
        """Write a dirty L1 victim into L2 (write-validate allocate)."""
        access = self.l2.access(victim_addr, is_write=True)
        if not access.hit and access.victim_dirty:
            self.engine.write_line(self._clamp(access.victim_addr), cycle)

    # ------------------------------------------------------------------

    def ifetch(self, pc, cycle, gate_time=0):
        """Fetch the instruction line containing ``pc``."""
        return self._l1_access(self.l1i, self.itlb, pc, cycle, gate_time)

    def load(self, addr, cycle, gate_time=0):
        """Load access at ``addr`` issued at ``cycle``."""
        return self._l1_access(self.l1d, self.dtlb, addr, cycle, gate_time)

    def store(self, addr, cycle, gate_time=0):
        """Commit-time store (write-allocate, write-back)."""
        return self._l1_access(self.l1d, self.dtlb, addr, cycle, gate_time,
                               is_write=True)

    # ------------------------------------------------------------------

    def reset_stats(self):
        """Reset hit/miss counters without touching cache contents
        (used at the warmup boundary)."""
        for cache in (self.l1i, self.l1d, self.l2):
            cache.stats.reset()
        self.itlb.stats.reset()
        self.dtlb.stats.reset()

    def miss_summary(self):
        """Per-level miss rates (diagnostics and calibration tests)."""
        return {
            "l1i": self.l1i.miss_rate(),
            "l1d": self.l1d.miss_rate(),
            "l2": self.l2.miss_rate(),
            "itlb": self.itlb.miss_rate(),
            "dtlb": self.dtlb.miss_rate(),
        }
