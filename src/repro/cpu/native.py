"""Optional native (C) build of the shared timestamp kernel.

The decode-once/evaluate-many pipeline makes the per-policy replay the
hot loop of every multi-policy sweep: one
:class:`~repro.cpu.prepass.TracePrepass` is walked once per registered
policy, and the walk is pure int64 arithmetic over flat columns -- a
shape the system C compiler turns into code an order of magnitude
faster than the CPython interpreter loop.  This module carries a
line-for-line C port of the pure-Python kernel in
:mod:`repro.cpu.shared_kernel`, compiles it at first use, and drives it
through :mod:`ctypes`.

Everything is integer arithmetic, so the native replay is
*bit-identical* to the pure-Python one: the differential suite in
``tests/cpu/`` pins native == python == legacy, and ``repro perf
--check`` gates the pinned goldens.  The kernel is strictly optional --
no C compiler, a failed compile, or ``REPRO_NATIVE=0`` in the
environment all fall back to the pure-Python replay with identical
results (``REPRO_NATIVE=require`` turns an unavailable kernel into an
error, for CI jobs that must measure the native path).

The compiled object is cached as
``<tmpdir>/repro-kernel-<source-hash>.so``; each machine compiles once
and process-pool workers just dlopen the cached object.  The prepass
columns are marshalled to flat int64 arrays once per trace
(``array('q')``; no third-party deps) and reused across all N policy
replays of a group.
"""

import ctypes
import hashlib
import os
import subprocess
import tempfile
from array import array

#: Scalar block layouts -- keep in lockstep with the CFG_*/OUT_*
#: defines in the C source.
_CFG_SLOTS = 43
_OUT_SLOTS = 12

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

/* Scalar config block layout (mirror of _pack_cfg in native.py). */
enum {
    CFG_NUM_INSTS, CFG_WARMUP, CFG_N_ACCESSES, CFG_N_MISSES,
    CFG_GATE_ISSUE, CFG_GATE_COMMIT, CFG_GATE_FETCH, CFG_GATE_STORE,
    CFG_PRECISE_FETCH, CFG_DRAIN_FETCH, CFG_AUTH_ENABLED,
    CFG_DUR_LINE, CFG_DUR_META, CFG_RAS0, CFG_RAS1, CFG_RAS2,
    CFG_MAC_LATENCY, CFG_MAC_THROUGHPUT, CFG_QUEUE_DEPTH,
    CFG_DECRYPT_LAT, CFG_XOR_LAT,
    CFG_L1I_LAT, CFG_L1D_LAT, CFG_L2_LAT,
    CFG_NUM_BANKS, CFG_MSHR_ENTRIES,
    CFG_FETCH_WIDTH, CFG_ISSUE_WIDTH, CFG_COMMIT_WIDTH,
    CFG_RUU_SIZE, CFG_LSQ_SIZE, CFG_DEPTH, CFG_PENALTY, CFG_SB_SIZE,
    CFG_UNIT_LAT0,                    /* ..+7: latency per op code 0..7 */
    CFG_PRUNE_INTERVAL = CFG_UNIT_LAT0 + 8,
    CFG_SLOTS
};

/* Scalar output block layout (mirror of replay() in native.py). */
enum {
    OUT_LAST_COMMIT, OUT_WARMUP_COMMIT, OUT_WAIT_CYCLES,
    OUT_PAD_HIDDEN, OUT_PAD_EXPOSED, OUT_QUEUE_FULL, OUT_MSHR_STALLS,
    OUT_AUTH_COMMIT_STALL, OUT_AUTH_ISSUE_STALL, OUT_SB_FULL_STALL,
    OUT_BRANCH_MISPRED, OUT_N_COMPLETIONS, OUT_SLOTS
};

#define OP_LOAD   3
#define OP_STORE  4
#define OP_BRANCH 5
#define OP_JUMP   6

/* ---- issue calendar: open-addressing int64 -> int64 map.
 * One insert per instruction, pruned wholesale every
 * CFG_PRUNE_INTERVAL instructions (same contract as the Python dict in
 * TimestampCore.run: keys behind fetch_frontier + depth can never be
 * probed again, so the table stays bounded). */
typedef struct {
    int64_t cap;                      /* power of two */
    int64_t used;
    int64_t *keys;
    int64_t *vals;
    uint8_t *full;
} cal_t;

static int cal_init(cal_t *c, int64_t cap)
{
    c->cap = cap;
    c->used = 0;
    c->keys = (int64_t *)malloc(sizeof(int64_t) * (size_t)cap);
    c->vals = (int64_t *)malloc(sizeof(int64_t) * (size_t)cap);
    c->full = (uint8_t *)calloc((size_t)cap, 1);
    return (c->keys && c->vals && c->full) ? 0 : -1;
}

static void cal_free(cal_t *c)
{
    free(c->keys);
    free(c->vals);
    free(c->full);
    c->keys = c->vals = 0;
    c->full = 0;
}

static int64_t cal_slot(const cal_t *c, int64_t key)
{
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    int64_t mask = c->cap - 1;
    int64_t i = (int64_t)(h >> 17) & mask;
    while (c->full[i] && c->keys[i] != key)
        i = (i + 1) & mask;
    return i;
}

static int64_t cal_get(const cal_t *c, int64_t key)
{
    int64_t i = cal_slot(c, key);
    return c->full[i] ? c->vals[i] : 0;
}

/* Rebuild the table: doubled when `floor_key` is negative (load-factor
 * growth), same-size keeping only keys >= floor_key otherwise (prune). */
static int cal_rebuild(cal_t *c, int64_t floor_key)
{
    cal_t next;
    int64_t cap = floor_key < 0 ? c->cap * 2 : c->cap;
    int64_t i;
    if (cal_init(&next, cap) != 0)
        return -1;
    for (i = 0; i < c->cap; i++) {
        if (!c->full[i])
            continue;
        if (floor_key >= 0 && c->keys[i] < floor_key)
            continue;
        {
            int64_t j = cal_slot(&next, c->keys[i]);
            next.full[j] = 1;
            next.keys[j] = c->keys[i];
            next.vals[j] = c->vals[i];
            next.used++;
        }
    }
    cal_free(c);
    *c = next;
    return 0;
}

static int cal_put(cal_t *c, int64_t key, int64_t val)
{
    int64_t i = cal_slot(c, key);
    if (!c->full[i]) {
        c->full[i] = 1;
        c->keys[i] = key;
        c->vals[i] = val;
        c->used++;
        if (c->used * 4 > c->cap * 3)
            return cal_rebuild(c, -1);
        return 0;
    }
    c->vals[i] = val;
    return 0;
}

/* ---- replay state shared with mem_access ------------------------- */
typedef struct {
    const int64_t *a_pre, *a_lvl, *a_ref, *a_wb;
    const int64_t *m_wb, *m_counter, *d_bank, *d_cat;
    int64_t *acc_data, *acc_verify, *miss_data, *miss_verify;
    int64_t *bank_ready, *mshr_ring, *completions, *fetch_times;
    int64_t *lat_out, *gap_out;
    int64_t acc_cursor, dram_cursor, bus_free, wait_cycles;
    int64_t pad_hidden, pad_exposed, queue_full, mshr_stalls;
    int64_t mshr_index, mshr_len;
    int64_t n_completions, n_fetch_times, last_start, has_last_start;
    int64_t dur_line, dur_meta;
    int64_t ras[3];
    int64_t mac_latency, mac_throughput, queue_depth;
    int64_t decrypt_latency, xor_latency, l2_latency;
    int64_t auth_enabled;
} rs_t;

/* engine.auth_frontier: LastRequest completion as read at `cycle`. */
static int64_t frontier(const rs_t *rs, int64_t cycle)
{
    int64_t lo = 0, hi = rs->n_fetch_times;
    if (!rs->auth_enabled)
        return 0;
    while (lo < hi) {                 /* bisect_right(fetch_times, cycle) */
        int64_t mid = (lo + hi) / 2;
        if (cycle < rs->fetch_times[mid])
            hi = mid;
        else
            lo = mid + 1;
    }
    if (lo == 0)
        return 0;
    return rs->completions[lo - 1];
}

/* One posted DRAM write (L1/L2 victim writeback burst member). */
static void posted_write(rs_t *rs, int64_t cycle)
{
    int64_t d = rs->dram_cursor++;
    int64_t bank = rs->d_bank[d];
    int64_t ready = rs->bank_ready[bank];
    int64_t bstart = cycle > ready ? cycle : ready;
    int64_t data_ready = bstart + rs->ras[rs->d_cat[d]];
    int64_t free_at = rs->bus_free;
    int64_t tstart = data_ready > free_at ? data_ready : free_at;
    int64_t done = tstart + rs->dur_line;
    rs->bus_free = done;
    rs->wait_cycles += tstart - data_ready;
    rs->bank_ready[bank] = done;
}

/* Timing replay of one ifetch/load/store access. */
static void mem_access(rs_t *rs, int64_t cycle, int64_t gate_time,
                       int64_t l1_latency,
                       int64_t *out_data, int64_t *out_verify)
{
    int64_t i = rs->acc_cursor++;
    int64_t w, lvl, data_time, verify_time, l1_done, l2_cycle;
    cycle += rs->a_pre[i];
    for (w = 0; w < rs->a_wb[i]; w++)
        posted_write(rs, cycle);
    lvl = rs->a_lvl[i];
    if (lvl == 0) {                                   /* L1 hit */
        int64_t ref = rs->a_ref[i];
        data_time = rs->acc_data[ref];
        l1_done = cycle + l1_latency;
        if (l1_done > data_time)
            data_time = l1_done;
        verify_time = rs->acc_verify[ref];
        if (verify_time < data_time)
            verify_time = data_time;
        rs->acc_data[i] = data_time;
        rs->acc_verify[i] = verify_time;
        *out_data = data_time;
        *out_verify = verify_time;
        return;
    }
    l1_done = cycle + l1_latency;
    l2_cycle = l1_done + rs->l2_latency;
    if (lvl == 1) {                                   /* L2 hit */
        int64_t ref = rs->a_ref[i];
        if (ref >= 0) {
            data_time = rs->miss_data[ref];
            verify_time = rs->miss_verify[ref];
        } else {
            data_time = 0;
            verify_time = 0;
        }
        if (l2_cycle > data_time)
            data_time = l2_cycle;
        if (verify_time < data_time)
            verify_time = data_time;
    } else {                                          /* L2 miss */
        int64_t m = rs->a_ref[i];
        int64_t fetch_cycle, slot_free, issue, mc, pad_start;
        int64_t d, bank, ready, bstart, data_ready, free_at, tstart;
        int64_t done, pad_done;
        for (w = 0; w < rs->m_wb[m]; w++)
            posted_write(rs, l2_cycle);
        /* MSHR backpressure, then the fetch gate. */
        fetch_cycle = l2_cycle;
        slot_free = rs->mshr_ring[rs->mshr_index];
        if (slot_free > fetch_cycle) {
            rs->mshr_stalls++;
            fetch_cycle = slot_free;
        }
        issue = fetch_cycle > gate_time ? fetch_cycle : gate_time;
        /* Counter-mode pad source. */
        mc = rs->m_counter[m];
        if (mc == 2) {
            d = rs->dram_cursor++;
            bank = rs->d_bank[d];
            ready = rs->bank_ready[bank];
            bstart = issue > ready ? issue : ready;
            data_ready = bstart + rs->ras[rs->d_cat[d]];
            free_at = rs->bus_free;
            tstart = data_ready > free_at ? data_ready : free_at;
            pad_start = tstart + rs->dur_meta;
            rs->bus_free = pad_start;
            rs->wait_cycles += tstart - data_ready;
            rs->bank_ready[bank] = pad_start;
        } else {
            pad_start = issue;
        }
        /* Main line fetch. */
        d = rs->dram_cursor++;
        bank = rs->d_bank[d];
        ready = rs->bank_ready[bank];
        bstart = issue > ready ? issue : ready;
        data_ready = bstart + rs->ras[rs->d_cat[d]];
        free_at = rs->bus_free;
        tstart = data_ready > free_at ? data_ready : free_at;
        done = tstart + rs->dur_line;
        rs->bus_free = done;
        rs->wait_cycles += tstart - data_ready;
        rs->bank_ready[bank] = done;
        rs->lat_out[m] = done - issue;
        /* Decrypt overlap. */
        pad_done = pad_start + rs->decrypt_latency;
        if (pad_done <= done) {
            rs->pad_hidden++;
            data_time = done + rs->xor_latency;
        } else {
            rs->pad_exposed += pad_done - done;
            data_time = pad_done + rs->xor_latency;
        }
        if (rs->auth_enabled) {
            /* AuthQueue.enqueue(done, 0, fetch_time=done); tag == m. */
            int64_t fetch_time = done, ready_time, qstart;
            if (rs->n_fetch_times
                    && fetch_time < rs->fetch_times[rs->n_fetch_times - 1])
                fetch_time = rs->fetch_times[rs->n_fetch_times - 1];
            rs->fetch_times[rs->n_fetch_times++] = fetch_time;
            ready_time = done;
            if (m >= rs->queue_depth) {
                int64_t qslot = rs->completions[m - rs->queue_depth];
                if (qslot > ready_time) {
                    rs->queue_full++;
                    ready_time = qslot;
                }
            }
            if (!rs->has_last_start) {
                qstart = ready_time;
            } else {
                qstart = rs->last_start + rs->mac_throughput;
                if (ready_time > qstart)
                    qstart = ready_time;
            }
            verify_time = qstart + rs->mac_latency;
            if (m && verify_time < rs->completions[rs->n_completions - 1])
                verify_time = rs->completions[rs->n_completions - 1];
            rs->last_start = qstart;
            rs->has_last_start = 1;
            rs->completions[rs->n_completions++] = verify_time;
            {
                int64_t gap = verify_time - data_time;
                if (gap < 0)
                    gap = 0;
                rs->gap_out[m] = gap;
            }
        } else {
            verify_time = data_time;
        }
        rs->mshr_ring[rs->mshr_index] = done;
        rs->mshr_index++;
        if (rs->mshr_index == rs->mshr_len)
            rs->mshr_index = 0;
        rs->miss_data[m] = data_time;
        rs->miss_verify[m] = verify_time;
    }
    if (l1_done > data_time)
        data_time = l1_done;
    if (data_time > verify_time)
        verify_time = data_time;
    rs->acc_data[i] = data_time;
    rs->acc_verify[i] = verify_time;
    *out_data = data_time;
    *out_verify = verify_time;
}

int64_t repro_replay(const int64_t *cfg,
                     const int64_t *ops, const int64_t *dests,
                     const int64_t *src_off, const int64_t *src_flat,
                     const int64_t *mispredicts, const int64_t *if_flags,
                     const int64_t *a_pre, const int64_t *a_lvl,
                     const int64_t *a_ref, const int64_t *a_wb,
                     const int64_t *m_wb, const int64_t *m_counter,
                     const int64_t *d_bank, const int64_t *d_cat,
                     int64_t *lat_out, int64_t *gap_out, int64_t *out)
{
    const int64_t n = cfg[CFG_NUM_INSTS];
    const int64_t warmup = cfg[CFG_WARMUP];
    const int64_t n_accesses = cfg[CFG_N_ACCESSES];
    const int64_t n_misses = cfg[CFG_N_MISSES];
    const int64_t gate_issue = cfg[CFG_GATE_ISSUE];
    const int64_t gate_commit = cfg[CFG_GATE_COMMIT];
    const int64_t gate_fetch = cfg[CFG_GATE_FETCH];
    const int64_t gate_store = cfg[CFG_GATE_STORE];
    const int64_t precise_fetch = cfg[CFG_PRECISE_FETCH];
    const int64_t drain_fetch = cfg[CFG_DRAIN_FETCH];
    const int64_t l1i_latency = cfg[CFG_L1I_LAT];
    const int64_t l1d_latency = cfg[CFG_L1D_LAT];
    const int64_t fetch_width = cfg[CFG_FETCH_WIDTH];
    const int64_t issue_width = cfg[CFG_ISSUE_WIDTH];
    const int64_t commit_width = cfg[CFG_COMMIT_WIDTH];
    const int64_t ruu_size = cfg[CFG_RUU_SIZE];
    const int64_t lsq_size = cfg[CFG_LSQ_SIZE];
    const int64_t depth = cfg[CFG_DEPTH];
    const int64_t penalty = cfg[CFG_PENALTY];
    const int64_t sb_size = cfg[CFG_SB_SIZE];
    const int64_t prune_mask = cfg[CFG_PRUNE_INTERVAL] - 1;

    int64_t reg_ready[64] = {0};
    int64_t reg_frontier[64] = {0};
    int64_t ctrl_frontier = 0;
    int64_t fetch_frontier = 0, fetched_in_cycle = 0, fetch_cycle = -1;
    int64_t redirect_time = 0, last_commit = 0, commit_cycle = -1;
    int64_t committed_in_cycle = 0;
    int64_t ruu_index = 0, lsq_index = 0, sb_index = 0;
    int64_t auth_commit_stall = 0, auth_issue_stall = 0;
    int64_t sb_full_stall = 0, branch_mispredicts = 0;
    int64_t warmup_commit = 0;
    int64_t iline_data = 0, iline_verify = 0;
    int64_t index, rc = -1;

    rs_t rs = {0};
    cal_t cal = {0};
    int64_t *ruu_ring = 0, *lsq_ring = 0, *sb_ring = 0;

    rs.a_pre = a_pre; rs.a_lvl = a_lvl; rs.a_ref = a_ref; rs.a_wb = a_wb;
    rs.m_wb = m_wb; rs.m_counter = m_counter;
    rs.d_bank = d_bank; rs.d_cat = d_cat;
    rs.lat_out = lat_out; rs.gap_out = gap_out;
    rs.mshr_len = cfg[CFG_MSHR_ENTRIES];
    rs.dur_line = cfg[CFG_DUR_LINE];
    rs.dur_meta = cfg[CFG_DUR_META];
    rs.ras[0] = cfg[CFG_RAS0];
    rs.ras[1] = cfg[CFG_RAS1];
    rs.ras[2] = cfg[CFG_RAS2];
    rs.mac_latency = cfg[CFG_MAC_LATENCY];
    rs.mac_throughput = cfg[CFG_MAC_THROUGHPUT];
    rs.queue_depth = cfg[CFG_QUEUE_DEPTH];
    rs.decrypt_latency = cfg[CFG_DECRYPT_LAT];
    rs.xor_latency = cfg[CFG_XOR_LAT];
    rs.l2_latency = cfg[CFG_L2_LAT];
    rs.auth_enabled = cfg[CFG_AUTH_ENABLED];

    rs.acc_data = (int64_t *)calloc((size_t)(n_accesses + 1), 8);
    rs.acc_verify = (int64_t *)calloc((size_t)(n_accesses + 1), 8);
    rs.miss_data = (int64_t *)calloc((size_t)(n_misses + 1), 8);
    rs.miss_verify = (int64_t *)calloc((size_t)(n_misses + 1), 8);
    rs.completions = (int64_t *)calloc((size_t)(n_misses + 1), 8);
    rs.fetch_times = (int64_t *)calloc((size_t)(n_misses + 1), 8);
    rs.bank_ready = (int64_t *)calloc((size_t)cfg[CFG_NUM_BANKS], 8);
    rs.mshr_ring = (int64_t *)calloc((size_t)rs.mshr_len, 8);
    ruu_ring = (int64_t *)calloc((size_t)ruu_size, 8);
    lsq_ring = (int64_t *)calloc((size_t)lsq_size, 8);
    sb_ring = (int64_t *)calloc((size_t)(sb_size + 1), 8);
    if (!rs.acc_data || !rs.acc_verify || !rs.miss_data
            || !rs.miss_verify || !rs.completions || !rs.fetch_times
            || !rs.bank_ready || !rs.mshr_ring
            || !ruu_ring || !lsq_ring || !sb_ring)
        goto done;
    if (cal_init(&cal, 1 << 14) != 0)
        goto done;

    for (index = 0; index < n; index++) {
        int64_t op = ops[index];
        int64_t dest = dests[index];
        int64_t mispredict = mispredicts[index];
        int64_t base, dispatch, slot_free, ready, count, issue;
        int64_t verify_needed, store_frontier, slice_frontier = 0;
        int64_t complete, commit, s;
        int is_mem;

        if (index == warmup && warmup)
            warmup_commit = last_commit;

        /* ---------------- fetch ---------------------------------- */
        base = fetch_frontier;
        if (redirect_time > base)
            base = redirect_time;
        if (base != fetch_cycle) {
            fetch_cycle = base;
            fetched_in_cycle = 0;
        } else if (fetched_in_cycle >= fetch_width) {
            fetch_cycle += 1;
            fetched_in_cycle = 0;
            base = fetch_cycle;
        }
        fetched_in_cycle += 1;

        if (if_flags[index]) {
            int64_t gate;
            if (precise_fetch)
                gate = ctrl_frontier;
            else if (gate_fetch)
                gate = frontier(&rs, base);
            else
                gate = 0;
            mem_access(&rs, base, gate, l1i_latency,
                       &iline_data, &iline_verify);
        }
        if (iline_data > base) {
            base = iline_data;
            fetch_cycle = base;
            fetched_in_cycle = 1;
        }
        fetch_frontier = base;

        /* ---------------- dispatch ------------------------------- */
        dispatch = base + depth;
        slot_free = ruu_ring[ruu_index];
        if (slot_free > dispatch)
            dispatch = slot_free;
        is_mem = (op == OP_LOAD || op == OP_STORE);
        if (is_mem) {
            int64_t lsq_free = lsq_ring[lsq_index];
            if (lsq_free > dispatch)
                dispatch = lsq_free;
        }

        /* ---------------- issue ---------------------------------- */
        ready = dispatch;
        for (s = src_off[index]; s < src_off[index + 1]; s++) {
            int64_t t = reg_ready[src_flat[s]];
            if (t > ready)
                ready = t;
        }
        if (gate_issue && iline_verify > ready) {
            auth_issue_stall += iline_verify - ready;
            ready = iline_verify;
        }
        count = cal_get(&cal, ready);
        while (count >= issue_width) {
            ready += 1;
            count = cal_get(&cal, ready);
        }
        if (cal_put(&cal, ready, count + 1) != 0)
            goto done;
        issue = ready;

        /* ---------------- execute -------------------------------- */
        verify_needed = gate_commit ? iline_verify : 0;
        store_frontier = 0;
        if (precise_fetch) {
            slice_frontier = ctrl_frontier;
            if (iline_verify > slice_frontier)
                slice_frontier = iline_verify;
            for (s = src_off[index]; s < src_off[index + 1]; s++) {
                int64_t f = reg_frontier[src_flat[s]];
                if (f > slice_frontier)
                    slice_frontier = f;
            }
        }
        if (op == OP_LOAD) {
            int64_t gate, data_time, verify_time, value_time;
            if (precise_fetch)
                gate = slice_frontier;
            else if (gate_fetch)
                gate = drain_fetch ? frontier(&rs, issue + 1)
                                   : frontier(&rs, issue);
            else
                gate = 0;
            mem_access(&rs, issue + 1, gate, l1d_latency,
                       &data_time, &verify_time);
            value_time = gate_issue ? verify_time : data_time;
            if (gate_issue && value_time > data_time)
                auth_issue_stall += value_time - data_time;
            complete = value_time;
            if (dest >= 0) {
                reg_ready[dest] = value_time;
                if (precise_fetch) {
                    int64_t f = slice_frontier;
                    if (verify_time > f)
                        f = verify_time;
                    reg_frontier[dest] = f;
                }
            }
            if (gate_commit && verify_time > verify_needed)
                verify_needed = verify_time;
        } else if (op == OP_STORE) {
            complete = issue + 1;
            if (gate_store)
                store_frontier = frontier(&rs, issue);
        } else {
            complete = issue + cfg[CFG_UNIT_LAT0 + op];
            if (dest >= 0) {
                reg_ready[dest] = complete;
                if (precise_fetch)
                    reg_frontier[dest] = slice_frontier;
            }
        }

        if (precise_fetch && (op == OP_BRANCH || op == OP_JUMP)
                && slice_frontier > ctrl_frontier)
            ctrl_frontier = slice_frontier;

        if (mispredict) {
            int64_t resolve = complete + penalty;
            branch_mispredicts++;
            if (resolve > redirect_time)
                redirect_time = resolve;
        }

        /* ---------------- commit --------------------------------- */
        commit = complete + 1;
        if (last_commit > commit)
            commit = last_commit;
        if (verify_needed > commit) {
            auth_commit_stall += verify_needed - commit;
            commit = verify_needed;
        }
        if (op == OP_STORE) {
            int64_t sb_free = sb_ring[sb_index];
            if (sb_free > commit) {
                sb_full_stall++;
                commit = sb_free;
            }
        }
        if (commit != commit_cycle) {
            commit_cycle = commit;
            committed_in_cycle = 0;
        } else if (committed_in_cycle >= commit_width) {
            commit_cycle += 1;
            committed_in_cycle = 0;
            commit = commit_cycle;
        }
        committed_in_cycle += 1;
        last_commit = commit;

        if (op == OP_STORE) {
            int64_t release, gate, dd, dv;
            if (gate_store)
                release = commit > store_frontier ? commit : store_frontier;
            else
                release = commit;
            if (precise_fetch)
                gate = slice_frontier;
            else if (gate_fetch)
                gate = drain_fetch ? frontier(&rs, release)
                                   : frontier(&rs, issue);
            else
                gate = 0;
            mem_access(&rs, release, gate, l1d_latency, &dd, &dv);
            sb_ring[sb_index] = release;
            sb_index++;
            if (sb_index == sb_size)
                sb_index = 0;
        }

        ruu_ring[ruu_index] = commit;
        ruu_index++;
        if (ruu_index == ruu_size)
            ruu_index = 0;
        if (is_mem) {
            lsq_ring[lsq_index] = commit;
            lsq_index++;
            if (lsq_index == lsq_size)
                lsq_index = 0;
        }

        if ((index & prune_mask) == prune_mask
                && cal_rebuild(&cal, fetch_frontier + depth) != 0)
            goto done;
    }

    out[OUT_LAST_COMMIT] = last_commit;
    out[OUT_WARMUP_COMMIT] = warmup_commit;
    out[OUT_WAIT_CYCLES] = rs.wait_cycles;
    out[OUT_PAD_HIDDEN] = rs.pad_hidden;
    out[OUT_PAD_EXPOSED] = rs.pad_exposed;
    out[OUT_QUEUE_FULL] = rs.queue_full;
    out[OUT_MSHR_STALLS] = rs.mshr_stalls;
    out[OUT_AUTH_COMMIT_STALL] = auth_commit_stall;
    out[OUT_AUTH_ISSUE_STALL] = auth_issue_stall;
    out[OUT_SB_FULL_STALL] = sb_full_stall;
    out[OUT_BRANCH_MISPRED] = branch_mispredicts;
    out[OUT_N_COMPLETIONS] = rs.n_completions;
    rc = 0;

done:
    free(rs.acc_data); free(rs.acc_verify);
    free(rs.miss_data); free(rs.miss_verify);
    free(rs.completions); free(rs.fetch_times);
    free(rs.bank_ready); free(rs.mshr_ring);
    free(ruu_ring); free(lsq_ring); free(sb_ring);
    cal_free(&cal);
    return rc;
}
"""

_lib = None
_lib_tried = False


def _mode():
    """``auto`` (default), ``off`` (REPRO_NATIVE=0) or ``require``."""
    raw = os.environ.get("REPRO_NATIVE", "auto").strip().lower()
    if raw in ("0", "off", "no", "false"):
        return "off"
    if raw in ("require", "force"):
        return "require"
    return "auto"


def _compiler():
    return os.environ.get("CC", "cc")


def _ensure_compiled():
    """Compile the kernel into the cache dir; returns the .so path."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = (os.environ.get("REPRO_NATIVE_CACHE")
             or tempfile.gettempdir())
    so_path = os.path.join(cache, "repro-kernel-%s.so" % digest)
    if os.path.exists(so_path):
        return so_path
    os.makedirs(cache, exist_ok=True)
    fd, c_path = tempfile.mkstemp(suffix=".c", dir=cache)
    tmp_so = c_path[:-2] + ".so"
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(_C_SOURCE)
        subprocess.run(
            [_compiler(), "-O2", "-shared", "-fPIC", "-o", tmp_so, c_path],
            check=True, capture_output=True, timeout=120)
        os.replace(tmp_so, so_path)  # atomic: racing workers both win
    finally:
        for leftover in (c_path, tmp_so):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    return so_path


def _load():
    """The loaded kernel, or None when off/unavailable (memoised)."""
    global _lib, _lib_tried
    if _lib_tried:
        return _lib
    _lib_tried = True
    if _mode() == "off":
        return None
    try:
        lib = ctypes.CDLL(_ensure_compiled())
        fn = lib.repro_replay
        fn.restype = ctypes.c_int64
        fn.argtypes = [ctypes.c_void_p] * 18
        _lib = lib
    except Exception:
        _lib = None
    if _lib is None and _mode() == "require":
        raise RuntimeError(
            "REPRO_NATIVE=require but the native kernel could not be "
            "compiled/loaded (is a C compiler installed?)")
    return _lib


def native_available():
    """True when the compiled kernel is (or can be made) loadable."""
    return _load() is not None


def reset():
    """Forget the memoised load state (tests toggle REPRO_NATIVE)."""
    global _lib, _lib_tried
    _lib = None
    _lib_tried = False


def _addr(arr):
    return arr.buffer_info()[0]


def _buffers(prepass):
    """Flat int64 marshalling of one prepass, built once and cached.

    The conversion is paid once per trace and amortised over every
    policy replay of the group (the whole point of decode-once).
    """
    buf = getattr(prepass, "_native", None)
    if buf is not None:
        return buf
    packed = prepass.packed
    n = prepass.num_instructions
    flat = []
    src_off = array("q", bytes(8 * (n + 1)))
    offset = 0
    for i, srcs in enumerate(packed.srcss):
        offset += len(srcs)
        src_off[i + 1] = offset
        flat.extend(srcs)
    buf = (
        array("q", packed.ops),
        array("q", packed.dests),
        src_off,
        array("q", flat or [0]),
        array("q", (1 if m else 0 for m in packed.mispredicts)),
        # if_flags is a bytearray; array('q', bytearray) would reinterpret
        # raw bytes, so convert element-wise.
        array("q", (1 if f else 0 for f in prepass.if_flags)),
        array("q", prepass.a_pre),
        array("q", prepass.a_lvl),
        array("q", prepass.a_ref),
        array("q", prepass.a_wb),
        array("q", prepass.m_wb or [0]),
        array("q", prepass.m_counter or [0]),
        array("q", prepass.d_bank or [0]),
        array("q", prepass.d_cat or [0]),
    )
    prepass._native = buf
    return buf


def _pack_cfg(prepass, c):
    """The scalar config block (CFG_* layout in the C source)."""
    cfg = array("q", bytes(8 * _CFG_SLOTS))
    values = [
        prepass.num_instructions, prepass.warmup,
        prepass.n_accesses, prepass.n_misses,
        int(c["gate_issue"]), int(c["gate_commit"]),
        int(c["gate_fetch"]), int(c["gate_store"]),
        int(c["precise_fetch"]), int(c["drain_fetch"]),
        int(c["auth_enabled"]),
        c["dur_line"], c["dur_meta"],
        c["ras"][0], c["ras"][1], c["ras"][2],
        c["mac_latency"], c["mac_throughput"], c["queue_depth"],
        c["decrypt_latency"], c["xor_latency"],
        c["l1i_latency"], c["l1d_latency"], c["l2_latency"],
        c["num_banks"], c["mshr_entries"],
        c["fetch_width"], c["issue_width"], c["commit_width"],
        c["ruu_size"], c["lsq_size"], c["depth"], c["penalty"],
        c["sb_size"],
    ] + list(c["unit_latency"]) + [c["prune_interval"]]
    for i, value in enumerate(values):
        cfg[i] = value
    return cfg


def replay(prepass, c):
    """Run the native kernel; returns the output payload dict, or None.

    ``c`` is the constants dict from
    :func:`repro.cpu.shared_kernel._policy_constants`.  A None return
    (kernel off, unavailable, or an internal allocation failure) tells
    the caller to use the pure-Python loop instead.
    """
    lib = _load()
    if lib is None:
        return None
    buf = _buffers(prepass)
    cfg = _pack_cfg(prepass, c)
    n_misses = prepass.n_misses
    lat_out = array("q", bytes(8 * (n_misses + 1)))
    gap_out = array("q", bytes(8 * (n_misses + 1)))
    out = array("q", bytes(8 * _OUT_SLOTS))
    rc = lib.repro_replay(
        _addr(cfg),
        *[_addr(column) for column in buf],
        _addr(lat_out), _addr(gap_out), _addr(out))
    if rc != 0:
        return None
    read_lat_buckets = {}
    for m in range(n_misses):
        lat = lat_out[m]
        read_lat_buckets[lat] = read_lat_buckets.get(lat, 0) + 1
    gap_buckets = {}
    if c["auth_enabled"]:
        for m in range(out[11]):
            gap = gap_out[m]
            gap_buckets[gap] = gap_buckets.get(gap, 0) + 1
    return {
        "cycles": out[0] - out[1],
        "wait_cycles": out[2],
        "read_lat_buckets": read_lat_buckets,
        "gap_buckets": gap_buckets,
        "pad_hidden": out[3],
        "pad_exposed": out[4],
        "queue_full": out[5],
        "mshr_stalls": out[6],
        "auth_requests": out[11],
        "auth_commit_stall": out[7],
        "auth_issue_stall": out[8],
        "sb_full_stall": out[9],
        "branch_mispredicts": out[10],
    }
