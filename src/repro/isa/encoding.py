"""Binary encoding and decoding of instruction words.

The functional secure machine stores *encoded* instructions in (encrypted)
memory; the attack toolkit manipulates their ciphertext, so encode/decode
must be exact inverses for every representable instruction.
"""

from repro.errors import IsaError
from repro.isa.instructions import (
    FORMATS,
    IMM_BITS,
    TARGET_BITS,
    Instruction,
    InstructionFormat,
    opcode_name,
    opcode_number,
)
from repro.util.bitops import bits_of, mask, sign_extend

_IMM_MASK = mask(IMM_BITS)
_TARGET_MASK = mask(TARGET_BITS)


def encode(inst):
    """Encode an :class:`Instruction` into a 32-bit word."""
    if inst.op == "nop":
        return 0  # canonical encoding; operand fields are meaningless
    opcode = opcode_number(inst.op)
    word = opcode << 26
    fmt = inst.fmt
    if fmt is InstructionFormat.R:
        return word | (inst.rd << 21) | (inst.rs1 << 16) | (inst.rs2 << 11)
    if fmt is InstructionFormat.I:
        if not -(1 << (IMM_BITS - 1)) <= inst.imm < (1 << (IMM_BITS - 1)):
            raise IsaError(
                "immediate %d does not fit in %d signed bits for %s"
                % (inst.imm, IMM_BITS, inst.op)
            )
        return word | (inst.rd << 21) | (inst.rs1 << 16) | (inst.imm & _IMM_MASK)
    # J-type: imm is a word index into the code segment.
    if not 0 <= inst.imm <= _TARGET_MASK:
        raise IsaError("jump target %d out of 26-bit range" % inst.imm)
    return word | inst.imm


def decode(word):
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`~repro.errors.IsaError` for unknown opcodes or non-zero
    padding bits -- tampered code frequently decodes to garbage, and the
    functional machine treats that as an illegal-instruction fault.
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise IsaError("instruction word out of 32-bit range: %r" % (word,))
    opcode = bits_of(word, 26, 6)
    name = opcode_name(opcode)
    if name is None:
        raise IsaError("unknown opcode 0x%02x in word 0x%08x" % (opcode, word))
    if name == "nop" and word != 0:
        # Opcode 0 with any operand bits set is not a canonical nop; treat
        # it as an illegal encoding so tampering cannot hide inside nops.
        raise IsaError("non-canonical nop encoding 0x%08x" % word)
    fmt = FORMATS[name]
    if fmt is InstructionFormat.R:
        if bits_of(word, 0, 11):
            raise IsaError("non-zero padding in R-type word 0x%08x" % word)
        return Instruction(
            name,
            rd=bits_of(word, 21, 5),
            rs1=bits_of(word, 16, 5),
            rs2=bits_of(word, 11, 5),
        )
    if fmt is InstructionFormat.I:
        return Instruction(
            name,
            rd=bits_of(word, 21, 5),
            rs1=bits_of(word, 16, 5),
            imm=sign_extend(word & _IMM_MASK, IMM_BITS),
        )
    return Instruction(name, imm=word & _TARGET_MASK)


def try_decode(word):
    """Decode ``word``, returning None instead of raising on bad encodings."""
    try:
        return decode(word)
    except IsaError:
        return None
