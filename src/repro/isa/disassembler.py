"""Disassembler: inverse rendering of instruction words for diagnostics."""

from repro.errors import IsaError
from repro.isa.encoding import decode
from repro.isa.instructions import InstructionFormat


def disassemble_word(word):
    """Render one instruction word; bad encodings render as ``.word``."""
    try:
        inst = decode(word)
    except IsaError:
        return ".word 0x%08x" % word
    return render(inst)


def render(inst):
    """Render a decoded :class:`Instruction` as assembly text."""
    op = inst.op
    if op in ("nop", "halt"):
        return op
    if op == "out":
        return "out r%d" % inst.rs1
    if op == "jalr":
        return "jalr r%d, r%d" % (inst.rd, inst.rs1)
    fmt = inst.fmt
    if fmt is InstructionFormat.J:
        return "%s %d" % (op, inst.imm)
    if op in ("lw", "lb", "sw", "sb"):
        return "%s r%d, %d(r%d)" % (op, inst.rd, inst.imm, inst.rs1)
    if op in ("beq", "bne", "blt", "bge"):
        return "%s r%d, r%d, %d" % (op, inst.rs1, inst.rd, inst.imm)
    if op == "lui":
        return "lui r%d, 0x%x" % (inst.rd, inst.imm & 0xFFFF)
    if fmt is InstructionFormat.I:
        return "%s r%d, r%d, %d" % (op, inst.rd, inst.rs1, inst.imm)
    return "%s r%d, r%d, r%d" % (op, inst.rd, inst.rs1, inst.rs2)


def disassemble(words, base_address=0):
    """Disassemble a sequence of words into annotated lines."""
    lines = []
    for index, word in enumerate(words):
        lines.append(
            "0x%08x:  %08x  %s"
            % (base_address + 4 * index, word, disassemble_word(word))
        )
    return "\n".join(lines)
