"""A small 32-bit RISC ISA used by the functional secure machine.

The paper's exploits (Section 3) are code- and data-tampering attacks on a
RISC processor.  To execute them end-to-end against real encrypted memory
we define a compact load/store ISA with fixed 32-bit instruction words --
"RISC instructions even in encrypted format are highly predictable", and
fixed-width words are what makes the disclosing-kernel XOR-splice work.

- :mod:`repro.isa.instructions` -- the instruction model and opcode table.
- :mod:`repro.isa.encoding` -- binary encode/decode of instruction words.
- :mod:`repro.isa.assembler` -- a two-pass assembler for test programs.
- :mod:`repro.isa.disassembler` -- inverse rendering for diagnostics.
"""

from repro.isa.assembler import assemble, assemble_to_bytes
from repro.isa.disassembler import disassemble, disassemble_word
from repro.isa.encoding import decode, encode
from repro.isa.instructions import (
    FORMATS,
    OPCODES,
    Instruction,
    InstructionFormat,
    OpClass,
    op_class,
)

__all__ = [
    "Instruction",
    "InstructionFormat",
    "OpClass",
    "OPCODES",
    "FORMATS",
    "op_class",
    "encode",
    "decode",
    "assemble",
    "assemble_to_bytes",
    "disassemble",
    "disassemble_word",
]
