"""Instruction model and opcode table for the repro RISC ISA.

Encoding formats (32-bit words, big-endian in memory):

- R-type: ``opcode[31:26] rd[25:21] rs1[20:16] rs2[15:11] zero[10:0]``
- I-type: ``opcode[31:26] rd[25:21] rs1[20:16] imm16[15:0]`` (imm signed)
- J-type: ``opcode[31:26] target26[25:0]`` (word-aligned byte offset / 4)

Register ``r0`` reads as zero and ignores writes, as in MIPS/Alpha.

Stores reuse the ``rd`` field as the *source* register (``sw rd, imm(rs1)``
stores ``rd``).  Branches reuse ``rd`` as the second comparison operand.
"""

import enum
from dataclasses import dataclass


class InstructionFormat(enum.Enum):
    R = "R"
    I = "I"  # noqa: E741 - conventional format name
    J = "J"


class OpClass(enum.Enum):
    """Execution class, used by the timing model to pick latencies."""

    IALU = "ialu"
    IMUL = "imul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    FPU = "fpu"
    SYSTEM = "system"


# name -> (opcode number, format, op class)
OPCODES = {
    # R-type ALU
    "add": (0x01, InstructionFormat.R, OpClass.IALU),
    "sub": (0x02, InstructionFormat.R, OpClass.IALU),
    "and": (0x03, InstructionFormat.R, OpClass.IALU),
    "or": (0x04, InstructionFormat.R, OpClass.IALU),
    "xor": (0x05, InstructionFormat.R, OpClass.IALU),
    "sll": (0x06, InstructionFormat.R, OpClass.IALU),
    "srl": (0x07, InstructionFormat.R, OpClass.IALU),
    "sra": (0x08, InstructionFormat.R, OpClass.IALU),
    "slt": (0x09, InstructionFormat.R, OpClass.IALU),
    "sltu": (0x0A, InstructionFormat.R, OpClass.IALU),
    "mul": (0x0B, InstructionFormat.R, OpClass.IMUL),
    "div": (0x0C, InstructionFormat.R, OpClass.IMUL),
    # I-type ALU
    "addi": (0x10, InstructionFormat.I, OpClass.IALU),
    "andi": (0x11, InstructionFormat.I, OpClass.IALU),
    "ori": (0x12, InstructionFormat.I, OpClass.IALU),
    "xori": (0x13, InstructionFormat.I, OpClass.IALU),
    "slli": (0x14, InstructionFormat.I, OpClass.IALU),
    "srli": (0x15, InstructionFormat.I, OpClass.IALU),
    "srai": (0x16, InstructionFormat.I, OpClass.IALU),
    "slti": (0x17, InstructionFormat.I, OpClass.IALU),
    "lui": (0x18, InstructionFormat.I, OpClass.IALU),
    # Memory
    "lw": (0x20, InstructionFormat.I, OpClass.LOAD),
    "lb": (0x21, InstructionFormat.I, OpClass.LOAD),
    "sw": (0x22, InstructionFormat.I, OpClass.STORE),
    "sb": (0x23, InstructionFormat.I, OpClass.STORE),
    # Control transfer
    "beq": (0x30, InstructionFormat.I, OpClass.BRANCH),
    "bne": (0x31, InstructionFormat.I, OpClass.BRANCH),
    "blt": (0x32, InstructionFormat.I, OpClass.BRANCH),
    "bge": (0x33, InstructionFormat.I, OpClass.BRANCH),
    "jmp": (0x38, InstructionFormat.J, OpClass.JUMP),
    "jal": (0x39, InstructionFormat.J, OpClass.JUMP),
    "jalr": (0x3A, InstructionFormat.I, OpClass.JUMP),
    # System
    "nop": (0x00, InstructionFormat.R, OpClass.IALU),
    "halt": (0x3E, InstructionFormat.R, OpClass.SYSTEM),
    "out": (0x3F, InstructionFormat.I, OpClass.SYSTEM),
}

FORMATS = {name: fmt for name, (_, fmt, _) in OPCODES.items()}
_BY_NUMBER = {number: name for name, (number, _, _) in OPCODES.items()}

NUM_REGISTERS = 32
IMM_BITS = 16
TARGET_BITS = 26


def opcode_number(name):
    """Return the numeric opcode of mnemonic ``name``."""
    return OPCODES[name][0]


def opcode_name(number):
    """Return the mnemonic for numeric opcode ``number`` (or None)."""
    return _BY_NUMBER.get(number)


def op_class(name):
    """Return the :class:`OpClass` of mnemonic ``name``."""
    return OPCODES[name][2]


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction.

    ``imm`` is the sign-extended immediate for I-type instructions and the
    word-index target for J-type ones.  Unused fields are zero.
    """

    op: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self):
        from repro.errors import IsaError

        if self.op not in OPCODES:
            raise IsaError("unknown mnemonic %r" % self.op)
        for field in ("rd", "rs1", "rs2"):
            value = getattr(self, field)
            if not 0 <= value < NUM_REGISTERS:
                raise IsaError(
                    "%s=%d out of range for %s" % (field, value, self.op)
                )

    @property
    def fmt(self):
        return FORMATS[self.op]

    @property
    def op_class(self):
        return OPCODES[self.op][2]

    @property
    def is_load(self):
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self):
        return self.op_class is OpClass.STORE

    @property
    def is_branch(self):
        return self.op_class is OpClass.BRANCH

    @property
    def is_control(self):
        return self.op_class in (OpClass.BRANCH, OpClass.JUMP)

    def sources(self):
        """Architectural source registers read by this instruction."""
        if self.op == "nop":
            return ()
        fmt = self.fmt
        if fmt is InstructionFormat.J:
            return ()
        if self.is_store:
            return (self.rs1, self.rd)  # address base + store data
        if self.is_branch:
            return (self.rs1, self.rd)  # two comparison operands
        if self.op == "out":
            return (self.rs1,)
        if self.op == "lui":
            return ()
        if fmt is InstructionFormat.R:
            return (self.rs1, self.rs2)
        return (self.rs1,)

    def destination(self):
        """Architectural destination register, or None."""
        if self.op in ("nop", "halt", "out", "sw", "sb"):
            return None
        if self.is_branch or self.op == "jmp":
            return None
        if self.op == "jal":
            return 31  # link register by convention
        if self.rd == 0:
            return None  # writes to r0 are discarded
        return self.rd
