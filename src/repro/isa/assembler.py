"""A two-pass assembler for the repro RISC ISA.

Syntax (one instruction per line, ``;`` or ``#`` start a comment)::

    start:                      ; label
        addi  r1, r0, 10
        lw    r2, 4(r1)         ; load word at r1+4
        sw    r2, 0(r3)
        beq   r1, r2, done      ; branch to label (PC-relative)
        lui   r4, 0x1ebc        ; r4 = 0x1ebc << 16
        jmp   start             ; absolute word target (label)
    done:
        halt

    .word 0xdeadbeef            ; literal data word
    .space 8                    ; 8 zero bytes (must be word multiple)

Branch immediates are encoded as *word* offsets relative to the next
instruction; jump targets are absolute word indices relative to the code
base.  The assembler accepts either a label or a bare integer in both
positions.
"""

import re

from repro.errors import IsaError
from repro.isa.encoding import encode
from repro.isa.instructions import FORMATS, Instruction, InstructionFormat, OPCODES

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_MEM_OPERAND_RE = re.compile(r"^(-?(?:0x[0-9A-Fa-f]+|\d+))\((r\d+|zero)\)$")


def _strip(line):
    for marker in (";", "#"):
        if marker in line:
            line = line[: line.index(marker)]
    return line.strip()


def _parse_register(token):
    token = token.strip().lower()
    if token == "zero":
        return 0
    if token.startswith("r") and token[1:].isdigit():
        reg = int(token[1:])
        if 0 <= reg < 32:
            return reg
    raise IsaError("bad register %r" % token)


def _parse_int(token):
    try:
        return int(token, 0)
    except ValueError:
        raise IsaError("bad integer literal %r" % token) from None


class _Line:
    """One statement after pass 1: either an instruction or data words."""

    def __init__(self, kind, payload, word_index, source):
        self.kind = kind  # 'inst' | 'word'
        self.payload = payload
        self.word_index = word_index
        self.source = source


def assemble(text, base_address=0):
    """Assemble ``text`` into a list of 32-bit words.

    ``base_address`` is the byte address the code will be loaded at; it
    only matters for rendering absolute jump targets of *labels*, which are
    stored as word indices relative to address 0 (so the loader must place
    code at ``base_address``).
    """
    if base_address % 4:
        raise IsaError("base_address must be word aligned")
    labels = {}
    statements = []
    word_index = 0

    # Pass 1: record label positions and parse statements.
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            label = match.group(1)
            if label in labels:
                raise IsaError("duplicate label %r (line %d)" % (label, lineno))
            labels[label] = word_index
            continue
        if line.startswith(".word"):
            values = [
                _parse_int(tok) for tok in line[len(".word") :].split(",") if tok.strip()
            ]
            if not values:
                raise IsaError(".word needs at least one value (line %d)" % lineno)
            statements.append(_Line("word", values, word_index, raw))
            word_index += len(values)
            continue
        if line.startswith(".space"):
            count = _parse_int(line[len(".space") :].strip())
            if count % 4:
                raise IsaError(".space must be a multiple of 4 (line %d)" % lineno)
            statements.append(_Line("word", [0] * (count // 4), word_index, raw))
            word_index += count // 4
            continue
        for expanded in _expand_pseudo(line, lineno):
            statements.append(_Line("inst", (expanded, lineno),
                                    word_index, raw))
            word_index += 1

    # Pass 2: encode.
    words = []
    for statement in statements:
        if statement.kind == "word":
            for value in statement.payload:
                words.append(value & 0xFFFFFFFF)
            continue
        line, lineno = statement.payload
        inst = _parse_instruction(line, lineno, statement.word_index, labels)
        words.append(encode(inst))
    return words


def assemble_to_bytes(text, base_address=0):
    """Assemble to big-endian bytes ready for the loader."""
    return b"".join(w.to_bytes(4, "big") for w in assemble(text, base_address))


def _expand_pseudo(line, lineno):
    """Expand pseudo-instructions into real instruction lines.

    ``li rX, imm32`` -> ``lui`` + ``ori`` (always two words, so label
    arithmetic stays predictable); ``mv rA, rB`` -> ``add``;
    ``not rA, rB`` -> ``xori`` with -1; ``b target`` -> ``jmp target``.
    """
    parts = line.replace(",", " ").split()
    mnemonic = parts[0].lower()
    operands = parts[1:]

    def want(n):
        if len(operands) != n:
            raise IsaError("%s expects %d operands (line %d)"
                           % (mnemonic, n, lineno))

    if mnemonic == "li":
        want(2)
        value = _parse_int(operands[1]) & 0xFFFFFFFF
        reg = operands[0]
        return [
            "lui %s, 0x%x" % (reg, value >> 16),
            "ori %s, %s, 0x%x" % (reg, reg, value & 0xFFFF),
        ]
    if mnemonic == "mv":
        want(2)
        return ["add %s, %s, r0" % (operands[0], operands[1])]
    if mnemonic == "not":
        want(2)
        # ~b == -b - 1 (logical immediates are zero-extended, so a
        # single xori cannot flip the upper half).
        return [
            "sub %s, r0, %s" % (operands[0], operands[1]),
            "addi %s, %s, -1" % (operands[0], operands[0]),
        ]
    if mnemonic == "b":
        want(1)
        return ["jmp %s" % operands[0]]
    return [line]


def _parse_instruction(line, lineno, word_index, labels):
    parts = line.replace(",", " ").split()
    mnemonic = parts[0].lower()
    operands = parts[1:]
    if mnemonic not in OPCODES:
        raise IsaError("unknown mnemonic %r (line %d)" % (mnemonic, lineno))
    fmt = FORMATS[mnemonic]

    def want(n):
        if len(operands) != n:
            raise IsaError(
                "%s expects %d operands, got %d (line %d)"
                % (mnemonic, n, len(operands), lineno)
            )

    if mnemonic == "nop":
        want(0)
        return Instruction("nop")
    if mnemonic == "halt":
        want(0)
        return Instruction("halt")
    if mnemonic == "out":
        want(1)
        return Instruction("out", rs1=_parse_register(operands[0]))
    if mnemonic == "jalr":
        want(2)
        return Instruction(
            "jalr",
            rd=_parse_register(operands[0]),
            rs1=_parse_register(operands[1]),
        )
    if fmt is InstructionFormat.J:
        want(1)
        target = operands[0]
        if target in labels:
            imm = labels[target]
        else:
            imm = _parse_int(target)
        return Instruction(mnemonic, imm=imm)
    if mnemonic == "lui":
        want(2)
        return Instruction(
            "lui", rd=_parse_register(operands[0]), imm=_parse_imm16(operands[1])
        )
    if mnemonic in ("lw", "lb", "sw", "sb"):
        want(2)
        match = _MEM_OPERAND_RE.match(operands[1].strip())
        if not match:
            raise IsaError(
                "bad memory operand %r (line %d)" % (operands[1], lineno)
            )
        return Instruction(
            mnemonic,
            rd=_parse_register(operands[0]),
            rs1=_parse_register(match.group(2)),
            imm=_parse_int(match.group(1)),
        )
    if mnemonic in ("beq", "bne", "blt", "bge"):
        want(3)
        target = operands[2]
        if target in labels:
            offset = labels[target] - (word_index + 1)
        else:
            offset = _parse_int(target)
        return Instruction(
            mnemonic,
            rs1=_parse_register(operands[0]),
            rd=_parse_register(operands[1]),
            imm=offset,
        )
    if fmt is InstructionFormat.I:
        want(3)
        return Instruction(
            mnemonic,
            rd=_parse_register(operands[0]),
            rs1=_parse_register(operands[1]),
            imm=_parse_imm16(operands[2]),
        )
    # R-type ALU
    want(3)
    return Instruction(
        mnemonic,
        rd=_parse_register(operands[0]),
        rs1=_parse_register(operands[1]),
        rs2=_parse_register(operands[2]),
    )


def _parse_imm16(token):
    value = _parse_int(token)
    # Accept unsigned-looking literals up to 0xFFFF and reinterpret them,
    # so `andi r1, r0, 0xff00` works as programmers expect.
    if 0x8000 <= value <= 0xFFFF:
        value -= 0x10000
    return value
