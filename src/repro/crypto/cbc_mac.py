"""CBC-MAC, the second authentication scheme in Table 1.

CBC-MAC chains the cipher over every block of the message, so its latency
scales with the number of 128-bit chunks in a cache line (N in Table 1).
We use the length-prepended variant, which is secure for the fixed-length
cache-line messages the secure processor authenticates.
"""

from repro.util.bitops import xor_bytes


def cbc_mac(cipher, message, mac_bits=64):
    """Compute a (truncated) CBC-MAC of ``message``.

    The message length is folded into the first block so that the MAC is
    not extendable; cache lines are fixed-size so this is sufficient.
    """
    if mac_bits % 8 or not 0 < mac_bits <= 8 * cipher.block_size:
        raise ValueError("mac_bits must be a multiple of 8 within one block")
    size = cipher.block_size
    original_length = len(message)
    if len(message) % size:
        message = message + b"\x00" * (size - len(message) % size)
    state = cipher.encrypt_block(original_length.to_bytes(size, "big"))
    for i in range(0, len(message), size):
        state = cipher.encrypt_block(xor_bytes(state, message[i : i + size]))
    return state[: mac_bits // 8]
