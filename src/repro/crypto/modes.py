"""Block cipher modes of operation: ECB, CBC and counter (CTR).

Counter mode is the paper's preferred memory-encryption mode because the
keystream ("decryption pad") can be precomputed from the fetch address and
a per-line counter, in parallel with the memory fetch itself.  CBC is
provided for the Table 1 comparison and for demonstrating CBC's
malleability structure in the attack suite.

All functions take an object with ``encrypt_block``/``decrypt_block`` and a
``block_size`` attribute (e.g. :class:`repro.crypto.aes.AES`).
"""

from repro.util.bitops import xor_bytes


def _check_blocks(cipher, data, what):
    if len(data) % cipher.block_size:
        raise ValueError(
            "%s length %d is not a multiple of the %d-byte block size"
            % (what, len(data), cipher.block_size)
        )


def ecb_encrypt(cipher, plaintext):
    """Encrypt ``plaintext`` block-by-block (electronic codebook)."""
    _check_blocks(cipher, plaintext, "plaintext")
    size = cipher.block_size
    return b"".join(
        cipher.encrypt_block(plaintext[i : i + size])
        for i in range(0, len(plaintext), size)
    )


def ecb_decrypt(cipher, ciphertext):
    """Decrypt ``ciphertext`` block-by-block."""
    _check_blocks(cipher, ciphertext, "ciphertext")
    size = cipher.block_size
    return b"".join(
        cipher.decrypt_block(ciphertext[i : i + size])
        for i in range(0, len(ciphertext), size)
    )


def cbc_encrypt(cipher, plaintext, iv):
    """CBC-encrypt ``plaintext`` with initialisation vector ``iv``."""
    _check_blocks(cipher, plaintext, "plaintext")
    if len(iv) != cipher.block_size:
        raise ValueError("iv must be one block")
    size = cipher.block_size
    out = []
    prev = iv
    for i in range(0, len(plaintext), size):
        block = cipher.encrypt_block(xor_bytes(plaintext[i : i + size], prev))
        out.append(block)
        prev = block
    return b"".join(out)


def cbc_decrypt(cipher, ciphertext, iv):
    """CBC-decrypt ``ciphertext`` with initialisation vector ``iv``.

    Note the serial structure: block *n*'s plaintext needs block *n-1*'s
    ciphertext, which is why CBC decryption latency in Table 1 scales with
    the chunk index.
    """
    _check_blocks(cipher, ciphertext, "ciphertext")
    if len(iv) != cipher.block_size:
        raise ValueError("iv must be one block")
    size = cipher.block_size
    out = []
    prev = iv
    for i in range(0, len(ciphertext), size):
        block = ciphertext[i : i + size]
        out.append(xor_bytes(cipher.decrypt_block(block), prev))
        prev = block
    return b"".join(out)


def ctr_keystream(cipher, nonce, length):
    """Generate ``length`` bytes of counter-mode keystream.

    The counter block is ``nonce + block_index`` (big-endian, one cipher
    block wide).  For the secure-memory engine the nonce encodes the line's
    physical address and its per-line write counter, so the pad depends
    only on (address, counter) -- precomputable before data arrives.
    """
    size = cipher.block_size
    blocks = (length + size - 1) // size
    limit = 1 << (8 * size)
    stream = b"".join(
        cipher.encrypt_block(((nonce + i) % limit).to_bytes(size, "big"))
        for i in range(blocks)
    )
    return stream[:length]


def ctr_transform(cipher, nonce, data):
    """Counter-mode encrypt/decrypt (the operation is its own inverse).

    This mode is *malleable*: flipping ciphertext bit *k* flips plaintext
    bit *k* -- the property every exploit in Section 3 relies on.
    """
    return bytes(
        d ^ k for d, k in zip(data, ctr_keystream(cipher, nonce, len(data)))
    )
