"""GHASH and GMAC (the Galois MAC of AES-GCM), from scratch.

Later secure-processor work (e.g. Yan et al. [25]) moved to GCM-class
authentication because a Galois-field MAC is far shallower in hardware
than an HMAC: GHASH is a polynomial evaluation in GF(2^128) whose
per-block step is one carry-less multiply, so the verification engine's
latency approaches the data arrival itself.  This module provides the
functional primitive and is wired into the latency model as the
``counter+gmac`` scheme.

GHASH(H, X1..Xn) = (((X1*H) ^ X2)*H ... ^ Xn)*H   in GF(2^128)
with the GCM reduction polynomial x^128 + x^7 + x^2 + x + 1.
"""

from repro.util.bitops import xor_bytes

_R = 0xE1000000000000000000000000000000  # GCM reduction constant


def gf128_mul(x, y):
    """Multiply two 128-bit field elements (GCM bit order)."""
    if not (0 <= x < 1 << 128 and 0 <= y < 1 << 128):
        raise ValueError("operands must be 128-bit")
    z = 0
    v = x
    for i in range(128):
        if (y >> (127 - i)) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def ghash(h_key, data):
    """GHASH of ``data`` (zero-padded to 16-byte blocks) under ``h_key``."""
    h = int.from_bytes(h_key, "big") if isinstance(h_key, (bytes, bytearray)) \
        else h_key
    if len(data) % 16:
        data = data + b"\x00" * (16 - len(data) % 16)
    y = 0
    for i in range(0, len(data), 16):
        block = int.from_bytes(data[i : i + 16], "big")
        y = gf128_mul(y ^ block, h)
    return y.to_bytes(16, "big")


def gmac(cipher, nonce, message, mac_bits=64):
    """GMAC: GHASH keyed by H = E_k(0), masked by E_k(nonce).

    ``cipher`` is a block cipher (AES); ``nonce`` must be unique per
    message under a given key -- the secure-memory engine uses the line's
    (address, counter) pair, exactly like its encryption pads.
    """
    if mac_bits % 8 or not 0 < mac_bits <= 128:
        raise ValueError("mac_bits must be a multiple of 8 in (0, 128]")
    h = cipher.encrypt_block(b"\x00" * 16)
    length_block = (len(message) * 8).to_bytes(16, "big")
    digest = ghash(h, bytes(message) + length_block)
    mask = cipher.encrypt_block((nonce % (1 << 128)).to_bytes(16, "big"))
    return xor_bytes(digest, mask)[: mac_bits // 8]
