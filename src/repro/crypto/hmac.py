"""HMAC (RFC 2104 / FIPS 198) over SHA-256, plus MAC truncation.

The paper's reference MAC is a 64-bit truncated HMAC-SHA-256 per protected
cache line (Section 5.2.3).
"""

from repro.crypto.sha256 import Sha256

_BLOCK_SIZE = 64


def hmac_sha256(key, message):
    """Compute HMAC-SHA-256 of ``message`` under ``key``."""
    key = bytes(key)
    if len(key) > _BLOCK_SIZE:
        key = Sha256(key).digest()
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    inner = Sha256(ipad).update(message).digest()
    return Sha256(opad).update(inner).digest()


def truncated_mac(key, message, mac_bits=64):
    """Truncated HMAC tag, default 64 bits per the reference design."""
    if mac_bits % 8 or not 0 < mac_bits <= 256:
        raise ValueError("mac_bits must be a multiple of 8 in (0, 256]")
    return hmac_sha256(key, message)[: mac_bits // 8]
