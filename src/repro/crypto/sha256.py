"""SHA-256 (FIPS 180-2), implemented from scratch.

The paper's reference integrity scheme is a truncated HMAC over SHA-256
with a 74 ns latency per 512-bit padded input (Section 5.2.3).  This module
provides the functional hash; :mod:`repro.crypto.latency` models the time.
"""

from repro.util.bitops import rotr32

_K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
]

_H0 = [
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
]

_M32 = 0xFFFFFFFF


def _compress(state, block):
    """One SHA-256 compression round over a 64-byte block."""
    w = [int.from_bytes(block[i : i + 4], "big") for i in range(0, 64, 4)]
    for i in range(16, 64):
        s0 = rotr32(w[i - 15], 7) ^ rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3)
        s1 = rotr32(w[i - 2], 17) ^ rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10)
        w.append((w[i - 16] + s0 + w[i - 7] + s1) & _M32)

    a, b, c, d, e, f, g, h = state
    for i in range(64):
        s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25)
        ch = (e & f) ^ (~e & g)
        temp1 = (h + s1 + ch + _K[i] + w[i]) & _M32
        s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (s0 + maj) & _M32
        h, g, f, e = g, f, e, (d + temp1) & _M32
        d, c, b, a = c, b, a, (temp1 + temp2) & _M32

    return [
        (state[0] + a) & _M32, (state[1] + b) & _M32,
        (state[2] + c) & _M32, (state[3] + d) & _M32,
        (state[4] + e) & _M32, (state[5] + f) & _M32,
        (state[6] + g) & _M32, (state[7] + h) & _M32,
    ]


def pad_message(length):
    """Return the SHA-256 padding for a message of ``length`` bytes."""
    padding = b"\x80" + b"\x00" * ((55 - length) % 64)
    return padding + (length * 8).to_bytes(8, "big")


def padded_block_count(length):
    """Number of 512-bit blocks SHA-256 processes for ``length`` bytes.

    Used by the latency model: the verification engine's latency scales
    with the number of compression rounds.
    """
    return (length + len(pad_message(length))) // 64


class Sha256:
    """Incremental SHA-256 hasher.

    >>> Sha256().update(b"abc").hexdigest()
    'ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad'
    """

    digest_size = 32
    block_size = 64

    def __init__(self, data=b""):
        self._state = list(_H0)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data):
        self._buffer += bytes(data)
        self._length += len(data)
        while len(self._buffer) >= 64:
            self._state = _compress(self._state, self._buffer[:64])
            self._buffer = self._buffer[64:]
        return self

    def digest(self):
        state = list(self._state)
        tail = self._buffer + pad_message(self._length)
        for i in range(0, len(tail), 64):
            state = _compress(state, tail[i : i + 64])
        return b"".join(word.to_bytes(4, "big") for word in state)

    def hexdigest(self):
        return self.digest().hex()

    def copy(self):
        clone = Sha256()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha256(data):
    """One-shot SHA-256 digest of ``data``."""
    return Sha256(data).digest()
