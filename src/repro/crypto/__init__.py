"""Cryptographic substrate.

Everything here is implemented from scratch (no ``hashlib``/``hmac``
imports in the primitives) because the attack suite needs to manipulate
real ciphertext and the paper's latency analysis (Table 1) is parameterised
by the ciphers' structure:

- :mod:`repro.crypto.aes` -- AES-128/192/256 block cipher (Rijndael).
- :mod:`repro.crypto.sha256` -- SHA-256 compression function and digest.
- :mod:`repro.crypto.hmac` -- HMAC and truncated MACs over any hash.
- :mod:`repro.crypto.modes` -- ECB, CBC and counter (CTR) modes.
- :mod:`repro.crypto.cbc_mac` -- CBC-MAC for the Table 1 comparison.
- :mod:`repro.crypto.latency` -- the latency model used by the timing
  simulator (decryption vs authentication gap, Table 1).
"""

from repro.crypto.aes import AES
from repro.crypto.cbc_mac import cbc_mac
from repro.crypto.hmac import hmac_sha256, truncated_mac
from repro.crypto.latency import CryptoLatencyModel, LatencyGap, latency_gap_table
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_keystream,
    ctr_transform,
    ecb_decrypt,
    ecb_encrypt,
)
from repro.crypto.sha256 import Sha256, sha256

__all__ = [
    "AES",
    "Sha256",
    "sha256",
    "hmac_sha256",
    "truncated_mac",
    "cbc_mac",
    "ecb_encrypt",
    "ecb_decrypt",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_keystream",
    "ctr_transform",
    "CryptoLatencyModel",
    "LatencyGap",
    "latency_gap_table",
]
