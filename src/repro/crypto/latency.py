"""Latency model for decryption and integrity verification (Table 1).

The paper's central premise is a *latency gap*: with a performance-
optimised encryption mode (counter mode) the decryption pad is ready by
the time data arrives from memory, while the MAC can only be computed
*after* the data arrives.  This module captures both reference schemes:

``counter+hmac``
    decryption latency = max(memory fetch latency, decrypt latency)
    authentication latency = memory fetch latency + HMAC hash latency

``cbc+cbcmac``
    decryption latency of chunk *n* (0-based) =
        memory fetch latency + decrypt latency * (n + 1)
    authentication latency = memory fetch latency + decrypt latency * N

where *N* is the number of 128-bit chunks per cache line.

All latencies are expressed in core cycles; at the paper's 1.0 GHz
reference frequency 1 ns == 1 cycle, so the defaults (80 ns decrypt,
74 ns HMAC) appear directly as cycle counts.
"""

from dataclasses import dataclass

from repro.crypto.sha256 import padded_block_count


@dataclass(frozen=True)
class LatencyGap:
    """Latency summary for one (scheme, memory latency) point."""

    scheme: str
    memory_fetch_latency: int
    decryption_latency: int       # latency until the critical (first) chunk
    full_decryption_latency: int  # latency until the whole line is plaintext
    authentication_latency: int

    @property
    def gap(self):
        """Cycles between whole-line decryption and authentication."""
        return self.authentication_latency - self.full_decryption_latency


class CryptoLatencyModel:
    """Reference latency model used by the timing simulator.

    Parameters mirror Section 5.2 of the paper:

    - ``decrypt_latency``: pipelined AES latency (default 80 cycles/ns).
    - ``hmac_latency``: SHA-256 HMAC latency per 512-bit padded input
      (default 74 cycles/ns).
    - ``line_bytes``: protected block size (L2 line, default 64 bytes).
    - ``mac_throughput``: initiation interval of the (pipelined)
      verification engine in cycles -- a new MAC can start this many
      cycles after the previous one, even though each takes
      ``hmac_latency`` to finish.
    """

    def __init__(self, decrypt_latency=80, hmac_latency=74, line_bytes=64,
                 mac_throughput=None):
        if decrypt_latency <= 0 or hmac_latency <= 0:
            raise ValueError("latencies must be positive")
        if line_bytes % 16:
            raise ValueError("line_bytes must be a multiple of the AES block")
        self.decrypt_latency = int(decrypt_latency)
        self.hmac_latency = int(hmac_latency)
        self.line_bytes = int(line_bytes)
        # A fully pipelined SHA-256 engine can accept a new line once the
        # previous line's message blocks have been absorbed.
        if mac_throughput is None:
            mac_throughput = max(1, self.hmac_latency // 4)
        self.mac_throughput = int(mac_throughput)

    @property
    def chunks_per_line(self):
        """N in Table 1: 128-bit chunks per protected line."""
        return self.line_bytes // 16

    def hmac_line_latency(self):
        """HMAC latency for one line, scaled by SHA-256 block count.

        The 74 ns reference is for one 512-bit padded input; a 64-byte line
        plus padding needs two compression blocks, and HMAC adds the outer
        hash.  We keep the paper's flat reference number by default and
        scale only with extra message blocks beyond the reference size.
        """
        blocks = padded_block_count(self.line_bytes)
        return self.hmac_latency * max(1, blocks - 1)

    def counter_mode_data_ready(self, fetch_issue, data_arrival,
                                pad_start=None):
        """Cycle when counter-mode plaintext is available.

        ``pad_start`` is when pad precomputation could begin (the cycle the
        line's counter was known); it defaults to ``fetch_issue``.  A
        counter-cache miss is modelled by passing a later ``pad_start``.
        """
        if pad_start is None:
            pad_start = fetch_issue
        return max(data_arrival, pad_start + self.decrypt_latency)

    def counter_mode_auth_done(self, data_arrival):
        """Cycle when a line fetched at ``data_arrival`` is authenticated,
        ignoring verification-queue serialisation (the queue adds more)."""
        return data_arrival + self.hmac_line_latency()

    def cbc_chunk_ready(self, data_arrival, chunk_index):
        """Cycle when CBC chunk ``chunk_index`` (0-based) is plaintext."""
        if not 0 <= chunk_index < self.chunks_per_line:
            raise ValueError("chunk_index out of range")
        return data_arrival + self.decrypt_latency * (chunk_index + 1)

    def cbc_mac_auth_done(self, data_arrival):
        """Cycle when a CBC-MAC over the line completes."""
        return data_arrival + self.decrypt_latency * self.chunks_per_line

    #: Galois-MAC latency: one carry-less multiply per 128-bit chunk,
    #: pipelined -- a handful of cycles after the last chunk arrives.
    gmac_latency = 8

    def gmac_line_latency(self):
        """GMAC latency for one line (shallow GF(2^128) pipeline)."""
        return self.gmac_latency

    def gap_for(self, scheme, memory_fetch_latency):
        """Build the Table 1 row for ``scheme`` at a given memory latency."""
        mem = int(memory_fetch_latency)
        if scheme == "counter+gmac":
            first = max(mem, self.decrypt_latency)
            return LatencyGap(
                scheme=scheme,
                memory_fetch_latency=mem,
                decryption_latency=first,
                full_decryption_latency=first,
                authentication_latency=mem + self.gmac_line_latency(),
            )
        if scheme == "counter+hmac":
            first = max(mem, self.decrypt_latency)
            return LatencyGap(
                scheme=scheme,
                memory_fetch_latency=mem,
                decryption_latency=first,
                full_decryption_latency=first,
                authentication_latency=mem + self.hmac_line_latency(),
            )
        if scheme == "cbc+cbcmac":
            return LatencyGap(
                scheme=scheme,
                memory_fetch_latency=mem,
                decryption_latency=mem + self.decrypt_latency,
                full_decryption_latency=mem
                + self.decrypt_latency * self.chunks_per_line,
                authentication_latency=mem
                + self.decrypt_latency * self.chunks_per_line,
            )
        raise ValueError("unknown scheme %r" % scheme)


def latency_gap_table(model, memory_fetch_latency):
    """Return both Table 1 rows for the given latency model."""
    return [
        model.gap_for("counter+hmac", memory_fetch_latency),
        model.gap_for("cbc+cbcmac", memory_fetch_latency),
    ]
