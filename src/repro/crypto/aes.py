"""AES (Rijndael) block cipher, implemented from scratch.

Supports 128-, 192- and 256-bit keys on 128-bit blocks, matching the
paper's reference cipher (Section 5.2.1: a pipelined 256-bit Rijndael with
an 80 ns reference decryption latency).  This implementation is the
*functional* half: it produces real ciphertext that the attack suite
tampers with.  Timing is modelled separately in
:mod:`repro.crypto.latency`.

The implementation follows FIPS-197: byte-oriented state, S-box generated
from the GF(2^8) inverse plus affine transform, and the standard
SubBytes/ShiftRows/MixColumns/AddRoundKey round structure.
"""

_ROUNDS_BY_KEYLEN = {16: 10, 24: 12, 32: 14}


def _build_sbox():
    """Generate the AES S-box from first principles (GF(2^8) inversion)."""
    # Build exp/log tables for GF(2^8) with the AES polynomial 0x11B,
    # using generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inv(a):
        return 0 if a == 0 else exp[255 - log[a]]

    sbox = [0] * 256
    for value in range(256):
        b = inv(value)
        res = 0
        for i in range(8):
            res |= (
                (
                    (b >> i)
                    ^ (b >> ((i + 4) % 8))
                    ^ (b >> ((i + 5) % 8))
                    ^ (b >> ((i + 6) % 8))
                    ^ (b >> ((i + 7) % 8))
                    ^ (0x63 >> i)
                )
                & 1
            ) << i
        sbox[value] = res
    return sbox, exp, log


_SBOX, _EXP, _LOG = _build_sbox()
_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i


def _gmul(a, b):
    """Multiply in GF(2^8) with the AES reduction polynomial."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


_RCON = [0x01]
while len(_RCON) < 14:
    _last = _RCON[-1]
    _RCON.append(((_last << 1) ^ (0x11B if _last & 0x80 else 0)) & 0xFF)


class AES:
    """AES block cipher with a fixed key.

    >>> key = bytes(range(16))
    >>> aes = AES(key)
    >>> block = b"theblockis16byte"
    >>> aes.decrypt_block(aes.encrypt_block(block)) == block
    True
    """

    block_size = 16

    def __init__(self, key):
        key = bytes(key)
        if len(key) not in _ROUNDS_BY_KEYLEN:
            raise ValueError(
                "AES key must be 16, 24 or 32 bytes, got %d" % len(key)
            )
        self.key = key
        self.rounds = _ROUNDS_BY_KEYLEN[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key):
        """FIPS-197 key schedule; returns a list of 4-byte words."""
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        return words

    def _round_key(self, round_index):
        words = self._round_keys[4 * round_index : 4 * round_index + 4]
        return [words[c][r] for c in range(4) for r in range(4)]

    # State layout: column-major list of 16 bytes (state[4*c + r]).

    def encrypt_block(self, block):
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError("block must be 16 bytes, got %d" % len(block))
        state = list(block)
        state = [b ^ k for b, k in zip(state, self._round_key(0))]
        for rnd in range(1, self.rounds):
            state = self._sub_bytes(state, _SBOX)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = [b ^ k for b, k in zip(state, self._round_key(rnd))]
        state = self._sub_bytes(state, _SBOX)
        state = self._shift_rows(state)
        state = [b ^ k for b, k in zip(state, self._round_key(self.rounds))]
        return bytes(state)

    def decrypt_block(self, block):
        """Decrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError("block must be 16 bytes, got %d" % len(block))
        state = list(block)
        state = [b ^ k for b, k in zip(state, self._round_key(self.rounds))]
        for rnd in range(self.rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = self._sub_bytes(state, _INV_SBOX)
            state = [b ^ k for b, k in zip(state, self._round_key(rnd))]
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = self._sub_bytes(state, _INV_SBOX)
        state = [b ^ k for b, k in zip(state, self._round_key(0))]
        return bytes(state)

    @staticmethod
    def _sub_bytes(state, box):
        return [box[b] for b in state]

    @staticmethod
    def _shift_rows(state):
        out = list(state)
        for r in range(1, 4):
            row = [state[4 * c + r] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                out[4 * c + r] = row[c]
        return out

    @staticmethod
    def _inv_shift_rows(state):
        out = list(state)
        for r in range(1, 4):
            row = [state[4 * c + r] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                out[4 * c + r] = row[c]
        return out

    @staticmethod
    def _mix_columns(state):
        out = [0] * 16
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            out[4 * c + 0] = _gmul(col[0], 2) ^ _gmul(col[1], 3) ^ col[2] ^ col[3]
            out[4 * c + 1] = col[0] ^ _gmul(col[1], 2) ^ _gmul(col[2], 3) ^ col[3]
            out[4 * c + 2] = col[0] ^ col[1] ^ _gmul(col[2], 2) ^ _gmul(col[3], 3)
            out[4 * c + 3] = _gmul(col[0], 3) ^ col[1] ^ col[2] ^ _gmul(col[3], 2)
        return out

    @staticmethod
    def _inv_mix_columns(state):
        out = [0] * 16
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            out[4 * c + 0] = (
                _gmul(col[0], 14) ^ _gmul(col[1], 11) ^ _gmul(col[2], 13) ^ _gmul(col[3], 9)
            )
            out[4 * c + 1] = (
                _gmul(col[0], 9) ^ _gmul(col[1], 14) ^ _gmul(col[2], 11) ^ _gmul(col[3], 13)
            )
            out[4 * c + 2] = (
                _gmul(col[0], 13) ^ _gmul(col[1], 9) ^ _gmul(col[2], 14) ^ _gmul(col[3], 11)
            )
            out[4 * c + 3] = (
                _gmul(col[0], 11) ^ _gmul(col[1], 13) ^ _gmul(col[2], 9) ^ _gmul(col[3], 14)
            )
        return out
