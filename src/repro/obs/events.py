"""Typed trace events emitted by the simulator.

Every event is a point (or interval, when ``dur`` > 0) on a *lane*: a
pipeline stage or shared resource whose activity the event describes.
Lanes map one-to-one onto Perfetto/chrome://tracing threads, so a
recorded run opens as a per-stage timeline with the decrypt-to-verify
window (the paper's Figure 6 gap) visible as slices on the ``gap`` lane.

Event kinds are plain strings (not an enum) so sinks can serialise them
without translation and new producers can add kinds without touching
this module; the canonical taxonomy lives in ``KINDS`` and is documented
in ``docs/observability.md``.
"""

# ---- event kinds ------------------------------------------------------

FETCH_ISSUED = "FETCH_ISSUED"      # core begins fetching a new I-line
ISSUE = "ISSUE"                    # instruction issues to a function unit
COMMIT = "COMMIT"                  # instruction commits (in order)
SQUASH = "SQUASH"                  # branch mispredict redirect resolves
STORE_RELEASED = "STORE_RELEASED"  # store leaves the store buffer
L2_MISS = "L2_MISS"                # external fetch leaves the L2
MSHR_STALL = "MSHR_STALL"          # external fetch waited for an MSHR
DECRYPT_DONE = "DECRYPT_DONE"      # line's decrypted data available
VERIFY_DONE = "VERIFY_DONE"        # line's integrity verification done
VERIFY_WINDOW = "VERIFY_WINDOW"    # decrypt-to-verify interval (dur > 0)
AUTH_QUEUE_FULL = "AUTH_QUEUE_FULL"  # verification queue backpressure
BUS_GRANT = "BUS_GRANT"            # memory data bus granted (dur = hold)
ROW_CONFLICT = "ROW_CONFLICT"      # DRAM bank row-buffer conflict
JOB_DONE = "JOB_DONE"              # executor finished one SimJob
JOB_RETRY = "JOB_RETRY"            # job attempt failed; will run again
JOB_FAILED = "JOB_FAILED"          # job exhausted its failure policy
BACKEND_DEGRADED = "BACKEND_DEGRADED"  # pool gave up; serial fallback
JOURNAL_DEGRADED = "JOURNAL_DEGRADED"  # journal append failed (e.g.
                                       # ENOSPC); run continues unjournaled
HOST_LOST = "HOST_LOST"            # dist worker host stopped heartbeating;
                                   # its lease was released for re-claim

KINDS = (
    FETCH_ISSUED, ISSUE, COMMIT, SQUASH, STORE_RELEASED,
    L2_MISS, MSHR_STALL, DECRYPT_DONE, VERIFY_DONE, VERIFY_WINDOW,
    AUTH_QUEUE_FULL, BUS_GRANT, ROW_CONFLICT, JOB_DONE, JOB_RETRY,
    JOB_FAILED, BACKEND_DEGRADED, JOURNAL_DEGRADED, HOST_LOST,
)

# ---- lanes ------------------------------------------------------------

LANE_FETCH = "fetch"
LANE_ISSUE = "issue"
LANE_COMMIT = "commit"
LANE_STORE = "store"
LANE_MEM = "mem"
LANE_DECRYPT = "decrypt"
LANE_VERIFY = "verify"
LANE_GAP = "gap"
LANE_BUS = "bus"
LANE_DRAM = "dram"
# Executor progress: one JOB_DONE per completed SimJob, plus the
# fault-tolerance events (JOB_RETRY, JOB_FAILED, BACKEND_DEGRADED,
# JOURNAL_DEGRADED, HOST_LOST).
# "cycle" on this lane is the completion ordinal, not a simulated cycle.
LANE_JOBS = "jobs"

#: Render order of lanes in trace viewers (top to bottom follows the
#: life of a fetched line through the machine).
LANES = (
    LANE_FETCH, LANE_ISSUE, LANE_COMMIT, LANE_STORE, LANE_MEM,
    LANE_DECRYPT, LANE_VERIFY, LANE_GAP, LANE_BUS, LANE_DRAM,
    LANE_JOBS,
)

#: Lanes whose producers emit in non-decreasing cycle order (in-order
#: pipeline points and serialised resources).  Out-of-order lanes
#: (``issue``, ``decrypt``) follow program order instead.
ORDERED_LANES = (LANE_FETCH, LANE_COMMIT, LANE_VERIFY, LANE_BUS)


class Event:
    """One trace event: a point or interval on a lane."""

    __slots__ = ("cycle", "kind", "lane", "dur", "args")

    def __init__(self, cycle, kind, lane, dur=0, args=None):
        self.cycle = cycle
        self.kind = kind
        self.lane = lane
        self.dur = dur
        self.args = args

    def as_dict(self):
        """Flatten to a JSON-able dict (JSONL sink format)."""
        out = {"cycle": self.cycle, "kind": self.kind, "lane": self.lane}
        if self.dur:
            out["dur"] = self.dur
        if self.args:
            out.update(self.args)
        return out

    def __repr__(self):
        return "Event(%s@%d on %s%s)" % (
            self.kind, self.cycle, self.lane,
            ", dur=%d" % self.dur if self.dur else "")
