"""Event sinks: where traced events go.

Three built-ins cover the workflows in ``docs/observability.md``:

- :class:`MemorySink` -- bounded in-memory ring buffer for tests and the
  ``python -m repro trace`` text timeline;
- :class:`JsonlSink` -- one JSON object per line, grep/pandas friendly;
- :class:`ChromeTraceSink` -- Chrome trace-event JSON that opens directly
  in Perfetto / chrome://tracing with one thread per lane (and one
  process per recorded run, so a policy sweep lands side by side).

Sinks receive :class:`~repro.obs.events.Event` objects via ``accept`` and
must be ``close``d to flush (the tracer's context manager does this).
"""

import json
from collections import deque

from repro.obs.events import LANES


class Sink:
    """Interface: accept events until closed."""

    def accept(self, event):
        raise NotImplementedError

    def close(self):
        pass


class MemorySink(Sink):
    """Ring buffer of the most recent ``capacity`` events (unbounded when
    ``capacity`` is None)."""

    def __init__(self, capacity=None):
        self._events = deque(maxlen=capacity)
        self.dropped = 0

    @property
    def events(self):
        return list(self._events)

    def accept(self, event):
        if self._events.maxlen is not None and \
                len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(event)

    def by_lane(self, lane):
        """Events on one lane, in emission order."""
        return [e for e in self._events if e.lane == lane]

    def by_kind(self, kind):
        """Events of one kind, in emission order."""
        return [e for e in self._events if e.kind == kind]

    def clear(self):
        self._events.clear()
        self.dropped = 0

    def __len__(self):
        return len(self._events)


class JsonlSink(Sink):
    """Append events to a JSON-lines file (or any writable handle)."""

    def __init__(self, path_or_handle):
        if hasattr(path_or_handle, "write"):
            self._handle = path_or_handle
            self._owns = False
        else:
            self._handle = open(path_or_handle, "w")
            self._owns = True

    def accept(self, event):
        self._handle.write(json.dumps(event.as_dict()) + "\n")

    def close(self):
        if self._owns:
            self._handle.close()
        else:
            self._handle.flush()


class ChromeTraceSink(Sink):
    """Buffer events and write Chrome trace-event JSON on close.

    Cycles map one-to-one onto trace microseconds (``ts``), so Perfetto's
    time axis reads directly in core cycles.  Interval events (``dur`` >
    0) become complete (``"X"``) slices; point events become instants
    (``"i"``).  ``begin_process`` starts a new ``pid`` -- the CLI calls it
    once per policy so a multi-policy run opens as parallel processes.
    """

    def __init__(self, path, process_name="run"):
        # Open eagerly so an unwritable path fails before the simulation
        # runs, not after.
        self._handle = open(path, "w")
        self._events = []
        self._pid = 0
        self._process_names = {0: process_name}

    def begin_process(self, name):
        """Route subsequent events to a new process; returns its pid.

        Before any event arrives this renames the initial process, so the
        first ``begin_process`` of a run doesn't leave an empty pid 0.
        """
        if self._events:
            self._pid += 1
        self._process_names[self._pid] = name
        return self._pid

    def accept(self, event):
        record = {
            "name": event.kind,
            "cat": event.lane,
            "ts": event.cycle,
            "pid": self._pid,
            "tid": LANES.index(event.lane) if event.lane in LANES else 99,
        }
        if event.dur:
            record["ph"] = "X"
            record["dur"] = event.dur
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if event.args:
            record["args"] = dict(event.args)
        self._events.append(record)

    def _metadata(self):
        meta = []
        for pid, name in self._process_names.items():
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": name}})
            for tid, lane in enumerate(LANES):
                meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                             "tid": tid, "args": {"name": lane}})
        return meta

    def close(self):
        payload = {
            "traceEvents": self._metadata() + self._events,
            "displayTimeUnit": "ns",
            "otherData": {"clock": "core cycles (1 cycle == 1 us in ts)"},
        }
        with self._handle as handle:
            json.dump(payload, handle)
