"""The event tracer: one ``emit`` call per observable simulator event.

Producers hold an optional tracer and guard every emission site with a
plain ``is not None`` / ``enabled`` check, so a run without tracing pays
one hoisted boolean test per hot loop -- the disabled path allocates
nothing and calls nothing.  When enabled, ``emit`` builds one
:class:`~repro.obs.events.Event` and hands it to every attached sink.
"""

from repro.obs.events import Event


class Tracer:
    """Fans simulator events out to the attached sinks."""

    __slots__ = ("enabled", "_sinks")

    def __init__(self, sinks=()):
        self._sinks = list(sinks)
        self.enabled = bool(self._sinks)

    @property
    def sinks(self):
        return tuple(self._sinks)

    def add_sink(self, sink):
        """Attach a sink; enables the tracer."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def emit(self, kind, lane, cycle, dur=0, **args):
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        event = Event(cycle, kind, lane, dur, args or None)
        for sink in self._sinks:
            sink.accept(event)

    def pause(self):
        """Temporarily drop events (e.g. during warmup)."""
        self.enabled = False

    def resume(self):
        self.enabled = bool(self._sinks)

    def close(self):
        """Flush and close every sink."""
        for sink in self._sinks:
            sink.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class _NullTracer(Tracer):
    """Shared always-disabled tracer for call sites that want an object
    rather than ``None``; refuses sinks so it stays disabled."""

    __slots__ = ()

    def __init__(self):
        super().__init__(())

    def add_sink(self, sink):
        raise ValueError("NULL_TRACER cannot take sinks; build a Tracer")

    def resume(self):
        pass


#: Module-level disabled tracer (safe to share: it never holds state).
NULL_TRACER = _NullTracer()
