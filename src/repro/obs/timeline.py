"""Text rendering of the decrypt-to-verify timeline.

``python -m repro trace BENCH`` records a run into a
:class:`~repro.obs.sinks.MemorySink` and renders the per-fetch
decrypt-to-verify windows (the paper's Figure 6 gap) as an ASCII
timeline, plus a per-lane event census -- a no-dependencies first look
before opening the Chrome trace in Perfetto.
"""

from repro.obs.events import (
    BACKEND_DEGRADED,
    JOB_DONE,
    JOB_FAILED,
    JOB_RETRY,
    JOURNAL_DEGRADED,
    LANE_JOBS,
    VERIFY_WINDOW,
)
from repro.util.statistics import Histogram

#: Executor-lane event kinds the jobs summary reports, in display order.
JOB_EVENT_KINDS = (JOB_DONE, JOB_RETRY, JOB_FAILED, BACKEND_DEGRADED,
                   JOURNAL_DEGRADED)


def gap_histogram(events):
    """Fold VERIFY_WINDOW events into a gap histogram (cycles)."""
    hist = Histogram("decrypt_verify_gap")
    for event in events:
        if event.kind == VERIFY_WINDOW:
            hist.add(event.dur)
    return hist


def render_gap_timeline(events, limit=32, width=48):
    """Render per-fetch decrypt-to-verify windows as text bars.

    Each row is one externally fetched line: when its decrypted data
    became usable, when its verification completed, and the vulnerable
    window between the two (bar scaled to the largest window shown).
    """
    windows = [e for e in events if e.kind == VERIFY_WINDOW]
    if not windows:
        return "no decrypt-to-verify windows recorded " \
               "(authentication disabled, or every line verified " \
               "before its data was consumed)"
    shown = windows[:limit]
    scale = max(e.dur for e in shown) or 1
    lines = [
        "decrypt-to-verify windows: first %d of %d (cycles)"
        % (len(shown), len(windows)),
        "%10s %10s %6s  %s" % ("data@", "verify@", "gap", "window"),
    ]
    for event in shown:
        addr = (event.args or {}).get("addr")
        bar = "#" * max(1, round(width * event.dur / scale))
        lines.append("%10d %10d %6d  %-*s %s" % (
            event.cycle, event.cycle + event.dur, event.dur, width, bar,
            "0x%x" % addr if addr is not None else ""))
    hist = gap_histogram(windows)
    lines.append(
        "gap cycles over %d fetches: mean=%.1f p50=%d p95=%d max=%d"
        % (hist.total, hist.mean(), hist.percentile(50),
           hist.percentile(95), hist.max_key()))
    return "\n".join(lines)


def render_jobs_summary(events):
    """Summarize executor-lane events: counts plus first/last ordinal.

    The jobs lane abuses the ``cycle`` field as a completion *ordinal*
    (how many jobs had settled when the event fired), so the span reads
    as "first seen after N settlements, last after M".  Returns None
    when the stream holds no executor events, so callers can omit the
    section for single-run traces.
    """
    summary = {}  # kind -> (count, first ordinal, last ordinal)
    for event in events:
        if event.lane != LANE_JOBS or event.kind not in JOB_EVENT_KINDS:
            continue
        count, first, last = summary.get(event.kind, (0, event.cycle,
                                                      event.cycle))
        summary[event.kind] = (count + 1, min(first, event.cycle),
                               max(last, event.cycle))
    if not summary:
        return None
    lines = ["executor events (ordinal = jobs settled when emitted):",
             "  %-18s %6s %8s %8s" % ("kind", "count", "first", "last")]
    for kind in JOB_EVENT_KINDS:
        if kind not in summary:
            continue
        count, first, last = summary[kind]
        lines.append("  %-18s %6d %8d %8d" % (kind, count, first, last))
    return "\n".join(lines)


def render_lane_census(events):
    """One line per (lane, kind): event count and cycle span."""
    census = {}
    for event in events:
        key = (event.lane, event.kind)
        count, lo, hi = census.get(key, (0, event.cycle, event.cycle))
        census[key] = (count + 1, min(lo, event.cycle),
                       max(hi, event.cycle + event.dur))
    if not census:
        return "no events recorded"
    lines = ["%-8s %-16s %8s %12s" % ("lane", "kind", "count", "span")]
    for (lane, kind), (count, lo, hi) in sorted(census.items()):
        lines.append("%-8s %-16s %8d %5d..%-6d" % (lane, kind, count,
                                                   lo, hi))
    return "\n".join(lines)
