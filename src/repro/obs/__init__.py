"""Observability: event tracing, run manifests, metrics, profiling.

See ``docs/observability.md`` for the event taxonomy, sink formats,
manifest schema and the fleet-telemetry metric taxonomy.
"""

from repro.obs import events
from repro.obs.export import (
    build_run_manifest,
    build_run_set_manifest,
    build_sweep_manifest,
    write_json,
    write_sweep_csv,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    JobMetrics,
    MetricsRegistry,
    write_metrics,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.progress import ProgressLine, ProgressLog, make_progress
from repro.obs.report import build_report, render_report
from repro.obs.sinks import ChromeTraceSink, JsonlSink, MemorySink, Sink
from repro.obs.timeline import (
    render_gap_timeline,
    render_jobs_summary,
    render_lane_census,
)
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "events",
    "Tracer",
    "NULL_TRACER",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "PhaseProfiler",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "JobMetrics",
    "write_metrics",
    "ProgressLine",
    "ProgressLog",
    "make_progress",
    "build_report",
    "render_report",
    "build_run_manifest",
    "build_run_set_manifest",
    "build_sweep_manifest",
    "write_json",
    "write_sweep_csv",
    "render_gap_timeline",
    "render_jobs_summary",
    "render_lane_census",
]
