"""Observability: event tracing, run manifests, phase profiling.

See ``docs/observability.md`` for the event taxonomy, sink formats and
manifest schema.
"""

from repro.obs import events
from repro.obs.export import (
    build_run_manifest,
    build_run_set_manifest,
    build_sweep_manifest,
    write_json,
    write_sweep_csv,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.sinks import ChromeTraceSink, JsonlSink, MemorySink, Sink
from repro.obs.timeline import render_gap_timeline, render_lane_census
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "events",
    "Tracer",
    "NULL_TRACER",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "PhaseProfiler",
    "build_run_manifest",
    "build_run_set_manifest",
    "build_sweep_manifest",
    "write_json",
    "write_sweep_csv",
    "render_gap_timeline",
    "render_lane_census",
]
