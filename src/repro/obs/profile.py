"""Wall-clock phase profiling for simulation runs.

Experiment drivers wrap the expensive stages -- trace generation, warmup,
measurement, metrics collection -- in :meth:`PhaseProfiler.phase` blocks;
the profiler accumulates seconds per phase (re-entering a phase name adds
to it, so per-benchmark sweep loops aggregate naturally).  The result
feeds the run manifest (``phases`` key) and the text report, which is how
"make the hot path faster" PRs prove where the time went.
"""

import time
from contextlib import contextmanager


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._phases = {}   # name -> seconds, insertion-ordered
        self._counts = {}

    @contextmanager
    def phase(self, name):
        """Time a ``with`` block under ``name``."""
        start = self._clock()
        try:
            yield self
        finally:
            self.add(name, self._clock() - start)

    def add(self, name, seconds):
        """Credit ``seconds`` to ``name`` directly (for producers that
        measure their own boundaries, like the core's warmup split)."""
        self._phases[name] = self._phases.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    @property
    def total(self):
        return sum(self._phases.values())

    def seconds(self, name):
        return self._phases.get(name, 0.0)

    def as_dict(self):
        """``{phase: seconds}`` in first-entered order (manifest format)."""
        return {name: round(seconds, 6)
                for name, seconds in self._phases.items()}

    def render(self):
        """Human-readable phase table."""
        if not self._phases:
            return "phases: (none recorded)"
        total = self.total or 1.0
        width = max(len(name) for name in self._phases)
        lines = ["phase timings (wall clock):"]
        for name, seconds in self._phases.items():
            lines.append("  %-*s %8.3fs %5.1f%%  (x%d)" % (
                width, name, seconds, 100.0 * seconds / total,
                self._counts[name]))
        lines.append("  %-*s %8.3fs" % (width, "total", self.total))
        return "\n".join(lines)
