"""Wall-clock phase profiling for simulation runs.

Experiment drivers wrap the expensive stages -- trace generation, warmup,
measurement, metrics collection -- in :meth:`PhaseProfiler.phase` blocks;
the profiler accumulates seconds per phase (re-entering a phase name adds
to it, so per-benchmark sweep loops aggregate naturally).  The result
feeds the run manifest (``phases`` key) and the text report, which is how
"make the hot path faster" PRs prove where the time went.
"""

import time
from contextlib import contextmanager


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._phases = {}   # name -> seconds, insertion-ordered
        self._counts = {}

    @contextmanager
    def phase(self, name):
        """Time a ``with`` block under ``name``."""
        start = self._clock()
        try:
            yield self
        finally:
            self.add(name, self._clock() - start)

    def add(self, name, seconds):
        """Credit ``seconds`` to ``name`` directly (for producers that
        measure their own boundaries, like the core's warmup split)."""
        self._phases[name] = self._phases.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    @property
    def total(self):
        return sum(self._phases.values())

    def seconds(self, name):
        return self._phases.get(name, 0.0)

    def as_dict(self):
        """``{phase: seconds}`` in first-entered order (manifest format)."""
        return {name: round(seconds, 6)
                for name, seconds in self._phases.items()}

    def render(self):
        """Human-readable phase table.

        Header + dashes with right-aligned value columns -- the same
        shape as the sweep tables out of
        :func:`~repro.sim.report.render_table` -- plus a
        percent-of-total column, so phase output and experiment tables
        read as one report.
        """
        if not self._phases:
            return "phases: (none recorded)"
        total = self.total or 1.0
        headers = ["phase", "seconds", "% of total", "calls"]
        rows = [
            [name, "%.3f" % seconds,
             "%.1f%%" % (100.0 * seconds / total),
             "%d" % self._counts[name]]
            for name, seconds in self._phases.items()
        ]
        rows.append(["total", "%.3f" % self.total, "100.0%",
                     "%d" % sum(self._counts.values())])
        widths = [max(len(headers[i]), *(len(row[i]) for row in rows))
                  for i in range(len(headers))]
        lines = [
            "phase timings (wall clock):",
            "  " + "  ".join(h.ljust(widths[i]) if i == 0
                             else h.rjust(widths[i])
                             for i, h in enumerate(headers)),
            "  " + "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  " + "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)))
        return "\n".join(lines)
