"""Run health reports: ``repro report``.

Answers "what happened to that sweep?" after the fact, from the
artifacts a run leaves behind -- no re-simulation.  Feed it any mix of:

- a sweep manifest (``repro sweep --emit-json``),
- a figures manifest (``repro figures``),
- a run / run-set manifest (``repro run --emit-json``),
- a chaos report (``repro chaos --emit-json``),
- a metrics snapshot (``--metrics-out``),

plus optionally the job journal (``--journal``), which contributes the
per-job resource accounting (wall/tracegen seconds, cache hits, peak
RSS) that powers the slowest-jobs table and the distributions.

The report has two forms: :func:`render_report` (text, table style
shared with the sweep tables) and the raw :func:`build_report` dict
(``--json``).  Empty distributions render as ``--``, never 0: a report
over a failed run must not invent numbers.
"""

import json
import os

from repro.errors import ReproError
from repro.obs.metrics import HistogramMetric

#: Artifact kinds build_report understands (sniffed from the payload).
KNOWN_KINDS = ("sweep", "figures", "run", "run-set", "chaos", "metrics")


def sniff_kind(payload):
    """Classify one loaded JSON artifact; raises ReproError if unknown."""
    kind = payload.get("kind")
    if kind in ("sweep", "figures", "run", "run-set", "metrics"):
        return kind
    if "stats_digest" in payload and "faults" in payload:
        return "chaos"
    if "reference_dir" in payload and "figures" in payload:
        return "chaos"  # figures-chaos report
    if "families" in payload:
        return "metrics"
    raise ReproError(
        "unrecognised artifact (no kind field and no known shape); "
        "expected one of: %s" % ", ".join(KNOWN_KINDS))


def _new_report():
    return {
        "kind": "report",
        "sources": [],
        "jobs": {"total": 0, "ok": 0, "resumed": 0, "failed": 0,
                 "retried": 0},
        "cells": [],        # per benchmark x policy outcome rows
        "slowest": [],      # from journal accounting
        "wall": None,       # {"count", "mean", "p50", "p95", "max"}
        "rss": None,        # {"count", "mean_kb", "max_kb"}
        "cache": None,      # {"hits", "misses", "hit_rate", ...}
        "store": None,      # artifact-store traffic (hits, bytes, ...)
        "hosts": None,      # dist backend host health (per-host merges)
        "degradations": [],
        "metrics_families": None,
    }


def _count_status(jobs, status, attempts):
    jobs["total"] += 1
    if status in ("ok", "resumed", "failed"):
        jobs[status] += 1
    else:
        jobs["ok"] += 1  # legacy manifests without a status field
    if attempts and attempts > 1:
        jobs["retried"] += 1


def _add_cell(report, benchmark, policy, status, attempts, error,
              figure=None):
    cell = {"benchmark": benchmark, "policy": policy,
            "status": status or "ok", "attempts": attempts,
            "error": error}
    if figure is not None:
        cell["figure"] = figure
    report["cells"].append(cell)


def _ingest_sweep(report, payload):
    for run in payload.get("runs", ()):
        status = run.get("status") or "ok"
        attempts = run.get("attempts")
        _count_status(report["jobs"], status, attempts)
        _add_cell(report, run.get("benchmark"), run.get("policy"),
                  status, attempts, None)
    for failure in payload.get("failures", ()):
        _count_status(report["jobs"], "failed", failure.get("attempts"))
        _add_cell(report, failure.get("job_id"), None, "failed",
                  failure.get("attempts"), failure.get("error"))
    backend = payload.get("backend") or {}
    if backend.get("pool_rebuilds"):
        report["degradations"].append(
            "worker pool rebuilt %d time(s) after worker loss"
            % backend["pool_rebuilds"])
    if backend.get("degraded"):
        report["degradations"].append(
            "backend degraded to serial execution mid-run")


def _ingest_figures(report, payload):
    for entry in payload.get("figures", ()):
        for job in entry.get("jobs", ()):
            status = job.get("status") or "ok"
            attempts = job.get("attempts")
            _count_status(report["jobs"], status, attempts)
            _add_cell(report, job.get("benchmark"), job.get("policy"),
                      status, attempts, job.get("error"),
                      figure=entry.get("name"))
    backend = payload.get("backend") or {}
    if backend.get("pool_rebuilds"):
        report["degradations"].append(
            "worker pool rebuilt %d time(s) after worker loss"
            % backend["pool_rebuilds"])
    if backend.get("degraded"):
        report["degradations"].append(
            "backend degraded to serial execution mid-run")


def _ingest_run(report, payload):
    _count_status(report["jobs"], "ok", None)
    _add_cell(report, payload.get("benchmark"), payload.get("policy"),
              "ok", None, None)


def _ingest_run_set(report, payload):
    for run in payload.get("runs", ()):
        _count_status(report["jobs"], "ok", None)
        _add_cell(report, payload.get("benchmark"), run.get("policy"),
                  "ok", None, None)


def _ingest_chaos(report, payload, key_names):
    """Fold a chaos report in; ``key_names`` maps job_id -> (bench,
    policy) when a journal was supplied (chaos reports only carry ids).
    """
    attempts = payload.get("attempts") or {}
    failed_ids = {f.get("job_id") for f in payload.get("failures", ())}
    for job_id, count in sorted(attempts.items()):
        status = "failed" if job_id in failed_ids else "ok"
        _count_status(report["jobs"], status, count)
        benchmark, policy = key_names.get(job_id, (job_id, None))
        error = None
        if job_id in failed_ids:
            for failure in payload["failures"]:
                if failure.get("job_id") == job_id:
                    error = failure.get("error")
        _add_cell(report, benchmark, policy, status, count, error)
    report["jobs"]["resumed"] += payload.get("resumed_jobs", 0)
    for job_id, kind in sorted((payload.get("injected") or {}).items()):
        report["degradations"].append(
            "chaos: injected %s into job %s" % (kind, job_id))
    for note in payload.get("journal_corruption", ()):
        report["degradations"].append("chaos: journal %s" % note)
    if payload.get("pool_rebuilds"):
        report["degradations"].append(
            "worker pool rebuilt %d time(s) after worker loss"
            % payload["pool_rebuilds"])
    if payload.get("degraded"):
        report["degradations"].append(
            "backend degraded to serial execution mid-run")
    if payload.get("journal_degraded_events"):
        report["degradations"].append(
            "journal append failed mid-run (%d event(s)); run finished "
            "unjournaled" % payload["journal_degraded_events"])
    if payload.get("quarantined_lines"):
        report["degradations"].append(
            "quarantined %d corrupt journal line(s)"
            % payload["quarantined_lines"])


def _ingest_metrics(report, payload):
    families = payload.get("families") or {}
    summary = {}
    for name, family in families.items():
        samples = family.get("samples", ())
        if family.get("type") == "histogram":
            total = sum(s.get("count", 0) for s in samples)
        else:
            total = sum(s.get("value", 0) for s in samples)
        summary[name] = {"type": family.get("type"), "total": total}
    report["metrics_families"] = summary

    def counter(name):
        return summary.get(name, {}).get("total", 0)

    if report["cache"] is not None:
        # The journal knows per-job hits but not evictions (those are
        # process-wide, not per-job); the metrics snapshot fills the gap.
        if report["cache"].get("evictions") is None:
            report["cache"]["evictions"] = counter(
                "repro_trace_cache_evictions_total")
    elif (counter("repro_trace_cache_hits_total")
            or counter("repro_trace_cache_misses_total")):
        hits = counter("repro_trace_cache_hits_total")
        misses = counter("repro_trace_cache_misses_total")
        report["cache"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 4)
            if hits + misses else None,
            "evictions": counter("repro_trace_cache_evictions_total"),
            "saved_seconds": counter("repro_trace_cache_saved_seconds")
            or None,
        }
    if (counter("repro_store_hits_total")
            or counter("repro_store_misses_total")
            or counter("repro_jobs_store_hits_total")):
        store = report["store"] or {}
        store.update({
            "hits": counter("repro_store_hits_total"),
            "misses": counter("repro_store_misses_total"),
            "bytes_read": counter("repro_store_bytes_read_total"),
            "bytes_written": counter("repro_store_bytes_written_total"),
            "quarantined": counter("repro_store_quarantined_total"),
            "lock_waits": counter("repro_store_lock_waits_total"),
        })
        store.setdefault("result_short_circuits",
                         counter("repro_jobs_store_hits_total"))
        report["store"] = store
    if counter("repro_store_quarantined_total"):
        line = ("artifact store quarantined %d corrupt entr%s"
                % (counter("repro_store_quarantined_total"),
                   "y" if counter("repro_store_quarantined_total") == 1
                   else "ies"))
        if line not in report["degradations"]:
            report["degradations"].append(line)
    by_host = {}
    for sample in families.get("repro_dist_jobs_total",
                               {}).get("samples", ()):
        host = (sample.get("labels") or {}).get("host")
        if host:
            by_host[host] = (by_host.get(host, 0)
                             + sample.get("value", 0))
    if (by_host or counter("repro_dist_host_lost_total")
            or counter("repro_dist_lease_breaks_total")):
        report["hosts"] = {
            "live": counter("repro_dist_hosts"),
            "lost": counter("repro_dist_host_lost_total"),
            "lease_breaks": counter("repro_dist_lease_breaks_total"),
            "jobs_by_host": by_host,
        }
    if counter("repro_dist_host_lost_total"):
        lost = counter("repro_dist_host_lost_total")
        line = ("%d worker host(s) lost mid-run; leases released and "
                "their jobs re-claimed" % lost)
        if line not in report["degradations"]:
            report["degradations"].append(line)
    if counter("repro_pool_rebuilds_total"):
        line = ("worker pool rebuilt %d time(s) after worker loss"
                % counter("repro_pool_rebuilds_total"))
        if line not in report["degradations"]:
            report["degradations"].append(line)
    if counter("repro_backend_degraded_total"):
        line = "backend degraded to serial execution mid-run"
        if line not in report["degradations"]:
            report["degradations"].append(line)
    if counter("repro_journal_degraded_total"):
        line = ("journal append failed mid-run (%d event(s)); run "
                "finished unjournaled"
                % counter("repro_journal_degraded_total"))
        if line not in report["degradations"]:
            report["degradations"].append(line)


def _ingest_journal(report, journal_path, top):
    """Mine the journal's per-job accounting for cost tables."""
    from repro.sim.checkpoint import JobJournal

    if not os.path.exists(journal_path):
        # JobJournal treats a missing file as an empty journal (that is
        # how first runs start); for a report that would silently hide
        # a typo'd path, so fail loudly instead.
        raise ReproError("journal not found: %s" % journal_path)
    journal = JobJournal(journal_path)
    records = journal.accounting()
    key_names = {job_id: (info["benchmark"], info["policy"])
                 for job_id, info in records.items()}
    wall_hist = HistogramMetric(resolution=1e-3)
    rss_hist = HistogramMetric(resolution=1.0)
    tracegen_hist = HistogramMetric(resolution=1e-3)
    hits = misses = store_hits = 0
    costed = []
    for job_id, info in records.items():
        accounting = info.get("accounting")
        if not accounting:
            continue
        wall = accounting.get("wall_seconds")
        if wall is not None:
            wall_hist.observe(wall)
            costed.append((wall, job_id, info, accounting))
        rss = accounting.get("peak_rss_kb")
        if rss:
            rss_hist.observe(rss)
        if accounting.get("store_hit"):
            # Result served straight from the artifact store: the job
            # never consulted the trace cache, so it belongs in neither
            # the hit nor the miss column.
            store_hits += 1
        elif accounting.get("cache_hit"):
            hits += 1
        else:
            misses += 1
            tracegen_hist.observe(accounting.get("tracegen_seconds")
                                  or 0.0)
    costed.sort(key=lambda item: (-item[0], item[1]))
    report["slowest"] = [
        {
            "job_id": job_id,
            "benchmark": info["benchmark"],
            "policy": info["policy"],
            "wall_seconds": wall,
            "tracegen_seconds": accounting.get("tracegen_seconds"),
            "cache_hit": accounting.get("cache_hit"),
            "store_hit": accounting.get("store_hit"),
            "peak_rss_kb": accounting.get("peak_rss_kb"),
        }
        for wall, job_id, info, accounting in costed[:top]
    ]
    report["wall"] = {
        "count": wall_hist.count,
        "mean": round(wall_hist.mean(), 6) if wall_hist.count else None,
        "p50": wall_hist.percentile(50),
        "p95": wall_hist.percentile(95),
        "max": wall_hist.max_value(),
    }
    report["rss"] = {
        "count": rss_hist.count,
        "mean_kb": round(rss_hist.mean()) if rss_hist.count else None,
        "max_kb": rss_hist.max_value(),
    }
    if hits or misses:
        saved = (round(hits * tracegen_hist.mean(), 6)
                 if tracegen_hist.count else None)
        report["cache"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 4),
            # Evictions are process-wide, not per-job, so the journal
            # cannot supply them; _ingest_metrics fills this in when a
            # --metrics snapshot is given.
            "evictions": None,
            "saved_seconds": saved,
        }
    if store_hits:
        report["store"] = {"result_short_circuits": store_hits}
    return key_names


def build_report(paths, journal=None, top=10):
    """Build the health-report dict from artifact ``paths``.

    ``paths`` is a sequence of JSON artifacts (kinds sniffed per file);
    ``journal`` optionally names the run's job journal.  Raises
    :class:`~repro.errors.ReproError` for unreadable or unrecognised
    inputs.
    """
    report = _new_report()
    payloads = []
    for path in paths:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise ReproError("cannot read %s: %s" % (path, exc))
        except ValueError as exc:
            raise ReproError("%s is not valid JSON: %s" % (path, exc))
        if not isinstance(payload, dict):
            raise ReproError("%s: expected a JSON object" % path)
        kind = sniff_kind(payload)
        report["sources"].append({"path": os.fspath(path), "kind": kind})
        payloads.append((kind, payload))

    key_names = {}
    if journal:
        key_names = _ingest_journal(report, journal, top)
        report["sources"].append({"path": os.fspath(journal),
                                  "kind": "journal"})

    for kind, payload in payloads:
        if kind == "sweep":
            _ingest_sweep(report, payload)
        elif kind == "figures":
            _ingest_figures(report, payload)
        elif kind == "run":
            _ingest_run(report, payload)
        elif kind == "run-set":
            _ingest_run_set(report, payload)
        elif kind == "chaos":
            _ingest_chaos(report, payload, key_names)
        elif kind == "metrics":
            _ingest_metrics(report, payload)
    return report


def _fmt(value, pattern="%.3f"):
    """Format a possibly-absent number; ``--`` for None."""
    if value is None:
        return "--"
    return pattern % value


#: Above this many grid cells the text health table keeps only the
#: interesting rows (non-ok or retried); --json always carries all.
_CELL_TABLE_LIMIT = 30


def render_report(report, top=10):
    """Text form of a :func:`build_report` dict."""
    from repro.sim.report import render_table  # lazy: leaf-module style

    lines = ["run health report"]
    if report["sources"]:
        lines.append("sources: " + ", ".join(
            "%s (%s)" % (src["path"], src["kind"])
            for src in report["sources"]))
    jobs = report["jobs"]
    lines.append("")
    lines.append("jobs: %d total | %d ok | %d resumed | %d failed | "
                 "%d retried"
                 % (jobs["total"], jobs["ok"], jobs["resumed"],
                    jobs["failed"], jobs["retried"]))

    cells = report["cells"]
    if cells:
        shown = cells
        note = ""
        if len(cells) > _CELL_TABLE_LIMIT:
            shown = [cell for cell in cells
                     if cell["status"] != "ok"
                     or (cell.get("attempts") or 1) > 1]
            note = (" (showing %d interesting of %d cells; --json has "
                    "all)" % (len(shown), len(cells)))
        if shown:
            has_figures = any("figure" in cell for cell in shown)
            headers = (["figure"] if has_figures else []) + \
                ["benchmark", "policy", "status", "attempts", "error"]
            rows = []
            for cell in shown:
                row = ([cell.get("figure", "--")] if has_figures
                       else [])
                row += [cell.get("benchmark") or "--",
                        cell.get("policy") or "--",
                        cell["status"],
                        cell.get("attempts"),
                        _shorten(cell.get("error"))]
                rows.append(row)
            lines.append("")
            lines.append("health by benchmark x policy%s:" % note)
            lines.extend("  " + line for line
                         in render_table(headers, rows).splitlines())

    if report["slowest"]:
        lines.append("")
        lines.append("slowest %d job(s) (journal accounting):"
                     % min(top, len(report["slowest"])))
        rows = [
            [entry["benchmark"] or entry["job_id"],
             entry["policy"] or "--",
             entry["wall_seconds"],          # floats/ints/None go in raw:
             entry["tracegen_seconds"],      # render_table right-aligns
             "store" if entry.get("store_hit")   # numbers, formats them
             else ("hit" if entry["cache_hit"]
                   else ("miss" if entry["cache_hit"] is not None
                         else "--")),
             entry["peak_rss_kb"]]
            for entry in report["slowest"][:top]
        ]
        table = render_table(
            ["benchmark", "policy", "wall s", "tracegen s", "cache",
             "rss KB"], rows)
        lines.extend("  " + line for line in table.splitlines())

    wall = report["wall"]
    if wall is not None:
        lines.append("")
        lines.append("wall time per job: n=%d mean=%s p50=%s p95=%s "
                     "max=%s (seconds)"
                     % (wall["count"], _fmt(wall["mean"]),
                        _fmt(wall["p50"]), _fmt(wall["p95"]),
                        _fmt(wall["max"])))
    rss = report["rss"]
    if rss is not None and rss["count"]:
        lines.append("peak rss: mean=%s max=%s KB"
                     % (_fmt(rss["mean_kb"], "%d"),
                        _fmt(rss["max_kb"], "%d")))

    cache = report["cache"]
    if cache is not None:
        rate = ("%.0f%%" % (100.0 * cache["hit_rate"])
                if cache.get("hit_rate") is not None else "--")
        saved = cache.get("saved_seconds")
        evictions = cache.get("evictions")
        lines.append("trace cache: %d hit(s) / %d miss(es), %s hit rate"
                     "%s%s" % (cache["hits"], cache["misses"], rate,
                               ", %d eviction(s)" % evictions
                               if evictions is not None else "",
                               ", ~%ss tracegen saved" % _fmt(saved)
                               if saved else ""))

    store = report.get("store")
    if store is not None:
        parts = []
        if store.get("result_short_circuits") is not None:
            parts.append("%d job(s) served without simulation"
                         % store["result_short_circuits"])
        if store.get("hits") is not None:
            parts.append("%d entry hit(s) / %d miss(es)"
                         % (store["hits"], store.get("misses", 0)))
        if store.get("bytes_read"):
            parts.append("%d KB read" % (store["bytes_read"] // 1024))
        if store.get("bytes_written"):
            parts.append("%d KB written"
                         % (store["bytes_written"] // 1024))
        if parts:
            lines.append("artifact store: " + ", ".join(parts))

    hosts = report.get("hosts")
    if hosts is not None:
        lines.append("")
        lines.append("host health: %d live at last census | %d lost | "
                     "%d lease break(s)"
                     % (hosts.get("live", 0), hosts.get("lost", 0),
                        hosts.get("lease_breaks", 0)))
        for host, merged in sorted(hosts.get("jobs_by_host",
                                             {}).items()):
            lines.append("  %-24s %d job(s) merged" % (host, merged))

    lines.append("")
    if report["degradations"]:
        lines.append("degradations:")
        lines.extend("  - " + entry
                     for entry in report["degradations"])
    else:
        lines.append("degradations: none")

    families = report["metrics_families"]
    if families:
        lines.append("")
        lines.append("metrics snapshot: %d famil%s"
                     % (len(families),
                        "y" if len(families) == 1 else "ies"))
        for name in sorted(families):
            info = families[name]
            lines.append("  %-40s %-9s total=%s"
                         % (name, info["type"], info["total"]))
    return "\n".join(lines)


def _shorten(text, limit=48):
    if not text:
        return None if text is None else text
    text = str(text)
    return text if len(text) <= limit else text[:limit - 3] + "..."
