"""Fleet metrics: labeled counters, gauges and histograms + exporters.

The execution layer (executors, trace cache, retry machinery) records
what it does into a :class:`MetricsRegistry` -- the measurement
substrate the serving-tier and multi-host roadmap items build on.  The
registry mirrors the Prometheus data model at miniature scale:

- a *family* is a named metric with a fixed label schema
  (``repro_jobs_total`` labeled by ``status``);
- a *child* is one time series within the family, addressed by label
  values (``.labels("ok")``);
- families are counters (monotonic), gauges (set/inc/dec) or histograms
  (distribution of observations, reusing the percentile machinery of
  :class:`~repro.util.statistics.Histogram`).

Disabled-path contract (the PR-1 invariant): a registry built with
``enabled=False`` -- and the shared :data:`NULL_REGISTRY` -- hands every
caller the shared :data:`NULL_METRIC`, whose mutators are empty methods.
Producers precreate their family handles once (see :class:`JobMetrics`),
so a run without telemetry pays one no-op call per job event and
allocates nothing.  Nothing in this module ever touches simulated state,
so cycle counts are bit-identical with metrics on or off.

Exports: :meth:`MetricsRegistry.snapshot` (JSON-able dict, written by
``--metrics-out``) and :meth:`MetricsRegistry.render_prometheus`
(Prometheus text exposition; histograms export as summaries).
"""

import json

from repro.util.statistics import Histogram

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class _NullMetric:
    """Shared no-op family/child: every mutator is an empty method.

    Stands in for both a family (``labels`` returns itself) and a child
    (``inc``/``set``/``observe`` do nothing), so disabled-registry call
    sites run the exact same code as enabled ones.
    """

    __slots__ = ()

    count = 0
    value = 0

    def labels(self, *values):
        return self

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def total(self):
        return 0

    def mean(self):
        return 0.0

    def percentile(self, q):
        return None

    def max_value(self):
        return None


#: The shared disabled metric (see module docstring).
NULL_METRIC = _NullMetric()


class CounterMetric:
    """One monotonically increasing time series."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % (amount,))
        self.value += amount


class GaugeMetric:
    """One settable time series."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount


class HistogramMetric:
    """One observation distribution.

    Observations are quantised to ``resolution`` (default 1ms for
    seconds-valued metrics) and folded into a
    :class:`~repro.util.statistics.Histogram`, whose weighted-percentile
    machinery this class reuses; ``sum``/``count`` stay exact so the
    mean is not quantised.  Quantisation bounds the bucket count however
    many distinct wall times a fleet produces.
    """

    __slots__ = ("resolution", "count", "sum", "_hist")

    def __init__(self, resolution=1e-3):
        self.resolution = resolution
        self.count = 0
        self.sum = 0.0
        self._hist = Histogram("observations")

    def observe(self, value):
        self.count += 1
        self.sum += value
        self._hist.add(int(round(value / self.resolution)))

    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q):
        """The q-th percentile observation; None when empty."""
        key = self._hist.percentile(q)
        return None if key is None else key * self.resolution

    def max_value(self):
        """The largest observation (quantised); None when empty."""
        key = self._hist.max_key()
        return None if key is None else key * self.resolution


_CHILD_TYPES = {
    COUNTER: CounterMetric,
    GAUGE: GaugeMetric,
    HISTOGRAM: HistogramMetric,
}


class MetricFamily:
    """A named metric with a fixed label schema and per-labelset children."""

    __slots__ = ("name", "kind", "help", "labelnames", "resolution",
                 "_children")

    def __init__(self, name, kind, help="", labelnames=(),
                 resolution=1e-3):
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.resolution = resolution
        self._children = {}  # label values tuple -> child metric

    def labels(self, *values):
        """The child for one label-value tuple (created on first use)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                "metric %s takes %d label value(s) %r, got %d"
                % (self.name, len(self.labelnames), self.labelnames,
                   len(values)))
        values = tuple(str(v) for v in values)
        child = self._children.get(values)
        if child is None:
            if self.kind == HISTOGRAM:
                child = HistogramMetric(self.resolution)
            else:
                child = _CHILD_TYPES[self.kind]()
            self._children[values] = child
        return child

    # Unlabeled families proxy their single () child, so call sites
    # write family.inc() / family.observe(x) directly.

    def inc(self, amount=1):
        self.labels().inc(amount)

    def dec(self, amount=1):
        self.labels().dec(amount)

    def set(self, value):
        self.labels().set(value)

    def observe(self, value):
        self.labels().observe(value)

    @property
    def value(self):
        return self.labels().value

    @property
    def count(self):
        return self.labels().count

    @property
    def sum(self):
        return self.labels().sum

    def mean(self):
        return self.labels().mean()

    def percentile(self, q):
        return self.labels().percentile(q)

    def max_value(self):
        return self.labels().max_value()

    def total(self):
        """Sum over children: values (counter/gauge) or counts (histogram)."""
        if self.kind == HISTOGRAM:
            return sum(c.count for c in self._children.values())
        return sum(c.value for c in self._children.values())

    def value_for(self, *values):
        """One child's value *without* creating it (0 when absent), so
        read-only consumers never pollute snapshots with empty series."""
        child = self._children.get(tuple(str(v) for v in values))
        return 0 if child is None else child.value

    def samples(self):
        """JSON-able sample dicts, one per child, in creation order."""
        out = []
        for values, child in self._children.items():
            sample = {"labels": dict(zip(self.labelnames, values))}
            if self.kind == HISTOGRAM:
                sample.update(
                    count=child.count,
                    sum=round(child.sum, 6),
                    mean=round(child.mean(), 6),
                    p50=child.percentile(50),
                    p95=child.percentile(95),
                    max=child.max_value(),
                )
            else:
                sample["value"] = child.value
            out.append(sample)
        return out


SNAPSHOT_VERSION = 1


class MetricsRegistry:
    """A process-local collection of metric families.

    ``enabled=False`` turns every family request into the shared
    :data:`NULL_METRIC`; see the module docstring for the no-op
    contract.  Families are created on first request and returned
    as-is afterwards; re-registering a name with a different kind or
    label schema raises ``ValueError`` (one name, one meaning).
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self._families = {}  # name -> MetricFamily, insertion-ordered

    def _family(self, name, kind, help, labelnames, resolution=1e-3):
        if not self.enabled:
            return NULL_METRIC
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    "metric %s already registered as a %s (requested %s)"
                    % (name, family.kind, kind))
            if family.labelnames != tuple(labelnames):
                raise ValueError(
                    "metric %s already registered with labels %r "
                    "(requested %r)"
                    % (name, family.labelnames, tuple(labelnames)))
            return family
        family = MetricFamily(name, kind, help=help, labelnames=labelnames,
                              resolution=resolution)
        self._families[name] = family
        return family

    def counter(self, name, help="", labelnames=()):
        return self._family(name, COUNTER, help, labelnames)

    def gauge(self, name, help="", labelnames=()):
        return self._family(name, GAUGE, help, labelnames)

    def histogram(self, name, help="", labelnames=(), resolution=1e-3):
        return self._family(name, HISTOGRAM, help, labelnames,
                            resolution=resolution)

    def get(self, name):
        """The family registered under ``name``, or None."""
        return self._families.get(name)

    def families(self):
        """All families, in registration order."""
        return list(self._families.values())

    def snapshot(self):
        """JSON-able snapshot of every family (the --metrics-out body)."""
        return {
            "kind": "metrics",
            "format_version": SNAPSHOT_VERSION,
            "enabled": self.enabled,
            "families": {
                family.name: {
                    "type": family.kind,
                    "help": family.help,
                    "labels": list(family.labelnames),
                    "samples": family.samples(),
                }
                for family in self._families.values()
            },
        }

    def render_prometheus(self):
        """Prometheus text exposition (histograms export as summaries)."""
        lines = []
        for family in self._families.values():
            if family.help:
                lines.append("# HELP %s %s"
                             % (family.name, _escape_help(family.help)))
            prom_type = ("summary" if family.kind == HISTOGRAM
                         else family.kind)
            lines.append("# TYPE %s %s" % (family.name, prom_type))
            for values, child in family._children.items():
                labels = list(zip(family.labelnames, values))
                if family.kind == HISTOGRAM:
                    for q in (0.5, 0.95, 0.99):
                        pct = child.percentile(q * 100)
                        if pct is None:
                            continue
                        lines.append("%s%s %s" % (
                            family.name,
                            _label_text(labels + [("quantile", str(q))]),
                            _format_value(pct)))
                    lines.append("%s_sum%s %s" % (
                        family.name, _label_text(labels),
                        _format_value(child.sum)))
                    lines.append("%s_count%s %d" % (
                        family.name, _label_text(labels), child.count))
                else:
                    lines.append("%s%s %s" % (
                        family.name, _label_text(labels),
                        _format_value(child.value)))
        return "\n".join(lines) + ("\n" if lines else "")


def _escape_help(text):
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text):
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_text(pairs):
    if not pairs:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (name, _escape_label(str(value)))
                             for name, value in pairs)


def _format_value(value):
    if isinstance(value, float):
        return repr(round(value, 9))
    return str(value)


#: Shared disabled registry for call sites given ``metrics=None``.
NULL_REGISTRY = MetricsRegistry(enabled=False)


class JobMetrics:
    """The standard execution-layer families, precreated from a registry.

    Both executor backends, the ``repro run`` serial loop and the sweep
    drivers record through this one schema, so every snapshot a command
    writes speaks the same metric taxonomy (documented in
    ``docs/observability.md``).  Built against :data:`NULL_REGISTRY`
    (or any disabled registry), every handle is :data:`NULL_METRIC` and
    all recording collapses to no-ops.
    """

    def __init__(self, registry=None):
        registry = registry if registry is not None else NULL_REGISTRY
        self.registry = registry
        self.jobs = registry.counter(
            "repro_jobs_total", "Jobs settled, by terminal status",
            ("status",))
        self.wall = registry.histogram(
            "repro_job_wall_seconds",
            "Per-job wall time, first attempt to settlement "
            "(backoff included)")
        self.pending = registry.gauge(
            "repro_jobs_pending", "Jobs not yet settled in the active run")
        self.retries = registry.counter(
            "repro_job_retries_total",
            "Attempts that failed and re-entered the retry loop")
        self.timeouts = registry.counter(
            "repro_job_timeouts_total",
            "Attempts that tripped the per-attempt timeout")
        self.backoff = registry.histogram(
            "repro_retry_backoff_seconds",
            "Deterministic backoff slept before each retry")
        self.pool_rebuilds = registry.counter(
            "repro_pool_rebuilds_total",
            "Process pools torn down and rebuilt after a worker loss")
        self.degraded = registry.counter(
            "repro_backend_degraded_total",
            "Times a backend gave up on its pool and went serial")
        self.journal_degraded = registry.counter(
            "repro_journal_degraded_total",
            "Journal appends that failed; the run continued unjournaled")
        self.cache_hits = registry.counter(
            "repro_trace_cache_hits_total",
            "Jobs whose trace came out of the per-process cache")
        self.cache_misses = registry.counter(
            "repro_trace_cache_misses_total",
            "Jobs that had to generate their trace")
        self.cache_evictions = registry.counter(
            "repro_trace_cache_evictions_total",
            "Traces evicted from the driver-side LRU cache")
        self.cache_saved = registry.gauge(
            "repro_trace_cache_saved_seconds",
            "Estimated tracegen seconds avoided by cache hits "
            "(hits x mean observed miss cost)")
        self.tracegen = registry.histogram(
            "repro_tracegen_seconds",
            "Trace generation wall time on cache misses")
        self.rss = registry.histogram(
            "repro_job_peak_rss_kb",
            "Peak RSS of the executing process after each job (KB)",
            resolution=1.0)
        self.store_jobs = registry.counter(
            "repro_jobs_store_hits_total",
            "Jobs short-circuited by an artifact-store result hit "
            "(no simulation, no tracegen)")
        self.dist_hosts = registry.gauge(
            "repro_dist_hosts",
            "Worker hosts with a fresh heartbeat on the spool")
        self.dist_jobs = registry.counter(
            "repro_dist_jobs_total",
            "Member results merged from per-host journal segments, "
            "by executing host", ("host",))
        self.host_lost = registry.counter(
            "repro_dist_host_lost_total",
            "Worker hosts declared dead after missed lease heartbeats")
        self.lease_breaks = registry.counter(
            "repro_dist_lease_breaks_total",
            "Expired job leases released back to the spool for re-claim")
        self.spooled = registry.gauge(
            "repro_dist_spooled_jobs",
            "Job units spooled for remote claim and not yet settled")

    def observe_completed(self, result, wall, status="ok"):
        """Record one settled job plus its per-job accounting."""
        self.jobs.labels(status).inc()
        self.wall.observe(wall)
        accounting = getattr(result, "accounting", None)
        if not accounting:
            return
        if accounting.get("store_hit"):
            # The trace cache was never consulted: neither a cache hit
            # nor a generating miss happened.
            self.store_jobs.inc()
        elif accounting.get("cache_hit"):
            self.cache_hits.inc()
        else:
            self.cache_misses.inc()
            self.tracegen.observe(accounting.get("tracegen_seconds") or 0.0)
        if self.tracegen.count:
            self.cache_saved.set(
                round(self.cache_hits.value * self.tracegen.mean(), 6))
        rss = accounting.get("peak_rss_kb")
        if rss:
            self.rss.observe(rss)


def write_metrics(registry, path):
    """Write a snapshot to ``path``.

    ``.prom``/``.txt`` suffixes get the Prometheus text exposition;
    anything else gets the JSON snapshot.
    """
    path = str(path)
    if path.endswith((".prom", ".txt")):
        text = registry.render_prometheus()
    else:
        text = json.dumps(registry.snapshot(), indent=1, sort_keys=True) \
            + "\n"
    with open(path, "w") as handle:
        handle.write(text)
    return path
