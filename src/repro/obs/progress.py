"""Live fleet progress: a single rewriting status line for sweeps.

``repro sweep/figures --progress`` used to print one line per completed
job -- fine for a 4-cell smoke, useless noise for a 300-job grid.  The
:class:`ProgressLine` renderer rewrites one status line in place
(carriage return, no scrollback spam) showing done/total, percent, an
ETA derived from the wall-time histogram in the run's
:class:`~repro.obs.metrics.MetricsRegistry`, retry/failure counts and
the trace-cache hit rate.

:func:`make_progress` is the factory the CLI uses: it hands back the
rewriting renderer only when the stream is a real TTY and falls back to
the classic one-line-per-job printer otherwise (CI logs, pipes), so
redirected output stays grep-able.  Both renderers have the executor's
``progress(job, result, done, total)`` signature plus a ``close()``
that finishes the line.
"""

import time
from collections import deque


def _describe_outcome(result):
    """A short human string for a non-completed job's outcome.

    Executor failure paths hand renderers the failed
    :class:`~repro.exec.executor.JobResult` (status/error, no
    ``.cycles``); completions hand the simulation's RunResult.  Returns
    None for the latter so callers keep the cycles fast path.
    """
    if getattr(result, "cycles", None) is not None:
        return None
    status = str(getattr(result, "status", None) or "failed").upper()
    error = getattr(result, "error", None)
    return "%s (%s)" % (status, error) if error else status


class ProgressLog:
    """Per-completion line printer (the non-TTY fallback)."""

    def __init__(self, stream):
        self._stream = stream

    def __call__(self, job, result, done, total):
        outcome = _describe_outcome(result)
        if outcome is not None:
            self._stream.write("[%d/%d] %s/%s: %s\n"
                               % (done, total, job.benchmark, job.policy,
                                  outcome))
        else:
            self._stream.write("[%d/%d] %s/%s: %d cycles\n"
                               % (done, total, job.benchmark, job.policy,
                                  result.cycles))
        self._stream.flush()

    def close(self):
        pass


class ProgressLine:
    """Single rewriting TTY status line fed by the metrics registry."""

    #: Completions the concurrency estimate looks back over.  Wide
    #: enough to smooth jitter, narrow enough that a mid-run pool
    #: degrade (or a warm-cache prefix) ages out of the estimate after
    #: a handful of jobs instead of skewing the ETA for the whole run.
    ETA_WINDOW = 8

    def __init__(self, stream, metrics=None, clock=time.monotonic):
        self._stream = stream
        self._metrics = metrics
        self._clock = clock
        self._started = clock()
        self._last_width = 0
        self._dirty = False
        # (clock, wall.sum) at each completion, for the recent-window
        # concurrency estimate in _eta.
        self._samples = deque(maxlen=self.ETA_WINDOW)

    def _family_total(self, name):
        if self._metrics is None:
            return 0
        family = self._metrics.get(name)
        return family.total() if family is not None else 0

    def _wall(self):
        return (self._metrics.get("repro_job_wall_seconds")
                if self._metrics is not None else None)

    def _eta(self, done, total, now):
        """Remaining seconds, estimated from the wall-time histogram.

        mean-wall x remaining, divided by the observed concurrency so a
        parallel backend's ETA does not overshoot by the worker count.
        Concurrency is wall banked per second of elapsed time over the
        last :attr:`ETA_WINDOW` completions (falling back to the
        whole-run ratio while the window is degenerate), so a long
        warm-cache prefix or a mid-run pool degrade stops skewing the
        estimate once it ages out of the window.  The divisor is also
        clamped to the pending count: with only ``remaining`` jobs
        left, no backend can bank wall faster than ``remaining``-wide.
        Falls back to elapsed-rate when no histogram is available; None
        until anything completes.
        """
        remaining = total - done
        if remaining <= 0:
            return 0.0
        elapsed = now - self._started
        wall = self._wall()
        if wall is not None and wall.count:
            concurrency = wall.sum / elapsed if elapsed else 1.0
            if len(self._samples) >= 2:
                (t0, sum0), (t1, sum1) = self._samples[0], self._samples[-1]
                if t1 > t0:
                    concurrency = (sum1 - sum0) / (t1 - t0)
            concurrency = max(1.0, min(concurrency, float(remaining)))
            return remaining * wall.mean() / concurrency
        if done and elapsed:
            return elapsed / done * remaining
        return None

    def _segments(self, done, total, now):
        parts = ["[%d/%d]" % (done, total),
                 "%3.0f%%" % (100.0 * done / total if total else 100.0)]
        eta = self._eta(done, total, now)
        if eta is not None:
            parts.append("eta %s" % _format_seconds(eta))
        retries = self._family_total("repro_job_retries_total")
        if retries:
            parts.append("retried %d" % retries)
        failed = 0
        if self._metrics is not None:
            jobs = self._metrics.get("repro_jobs_total")
            if jobs is not None:
                failed = jobs.value_for("failed")
        if failed:
            parts.append("failed %d" % failed)
        hits = self._family_total("repro_trace_cache_hits_total")
        misses = self._family_total("repro_trace_cache_misses_total")
        if hits + misses:
            parts.append("cache %.0f%%" % (100.0 * hits / (hits + misses)))
        hosts = self._family_total("repro_dist_hosts")
        spooled = self._family_total("repro_dist_spooled_jobs")
        lost = self._family_total("repro_dist_host_lost_total")
        if hosts or spooled or lost:
            # Only on dist runs (the families exist but stay zero
            # elsewhere).  "hosts 0" with work spooled is the cue that
            # the fleet is gone and the degrade clock is running.
            parts.append("hosts %d" % hosts)
            if lost:
                parts.append("lost %d" % lost)
        return parts

    def __call__(self, job, result, done, total):
        now = self._clock()
        wall = self._wall()
        if wall is not None and wall.count:
            self._samples.append((now, wall.sum))
        suffix = "%s/%s" % (job.benchmark, job.policy)
        outcome = _describe_outcome(result)
        if outcome is not None:
            suffix = "%s: %s" % (suffix, outcome)
        line = "%s | %s" % (" ".join(self._segments(done, total, now)),
                            suffix)
        padding = " " * max(0, self._last_width - len(line))
        self._stream.write("\r" + line + padding)
        self._stream.flush()
        self._last_width = len(line)
        self._dirty = True

    def close(self):
        """Finish the status line so following output starts clean."""
        if self._dirty:
            self._stream.write("\n")
            self._stream.flush()
            self._dirty = False


def _format_seconds(seconds):
    if seconds >= 3600:
        return "%dh%02dm" % (seconds // 3600, seconds % 3600 // 60)
    if seconds >= 60:
        return "%dm%02ds" % (seconds // 60, seconds % 60)
    return "%.1fs" % seconds


def make_progress(stream, metrics=None):
    """The right progress renderer for ``stream``.

    A real TTY gets the rewriting :class:`ProgressLine` (fed by
    ``metrics`` when given); anything else -- CI logs, ``2>file`` --
    gets the classic :class:`ProgressLog` line-per-job printer.
    """
    try:
        is_tty = stream.isatty()
    except (AttributeError, ValueError):
        is_tty = False
    if is_tty:
        return ProgressLine(stream, metrics=metrics)
    return ProgressLog(stream)
