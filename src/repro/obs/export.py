"""Run manifests and machine-readable result export.

A *manifest* is a self-describing JSON artifact for one run (or one
sweep): the full configuration, policy, seed, git revision, wall-clock
phase timings, the complete :class:`~repro.util.statistics.StatGroup`
snapshot and the derived :class:`~repro.sim.metrics.RunMetrics`.  Two
manifests are comparable without knowing how they were produced, which is
what regression dashboards and the perf work on ROADMAP.md key off.
"""

import dataclasses
import json
import os
import subprocess

MANIFEST_VERSION = 1


def config_to_dict(config):
    """Flatten a (possibly nested) frozen-dataclass config to plain data."""
    if config is None:
        return None
    if dataclasses.is_dataclass(config):
        return dataclasses.asdict(config)
    return dict(config)


def git_describe():
    """Best-effort ``git describe`` of the working tree (None offline)."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def build_run_manifest(result, metrics=None, config=None, seed=None,
                       profiler=None, extra=None):
    """Manifest for one :class:`~repro.cpu.core.RunResult`."""
    manifest = {
        "format_version": MANIFEST_VERSION,
        "kind": "run",
        "benchmark": result.name,
        "policy": result.policy_name,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "seed": seed,
        "git": git_describe(),
        "config": config_to_dict(config),
        "phases": profiler.as_dict() if profiler is not None else {},
        "stats": result.stats.as_dict(),
        "miss_rates": dict(result.miss_summary),
        "metrics": metrics.as_dict() if metrics is not None else None,
    }
    if extra:
        manifest.update(extra)
    return manifest


def build_run_set_manifest(runs, config=None, seed=None, profiler=None,
                           benchmark=None):
    """Manifest for several policies over one benchmark trace.

    ``runs`` is a list of ``(result, metrics-or-None)`` pairs.
    """
    return {
        "format_version": MANIFEST_VERSION,
        "kind": "run-set",
        "benchmark": benchmark or (runs[0][0].name if runs else None),
        "seed": seed,
        "git": git_describe(),
        "config": config_to_dict(config),
        "phases": profiler.as_dict() if profiler is not None else {},
        "runs": [
            {
                "policy": result.policy_name,
                "instructions": result.instructions,
                "cycles": result.cycles,
                "ipc": result.ipc,
                "stats": result.stats.as_dict(),
                "miss_rates": dict(result.miss_summary),
                "metrics": metrics.as_dict() if metrics is not None
                else None,
            }
            for result, metrics in runs
        ],
    }


def build_sweep_manifest(sweep, profiler=None):
    """Manifest for a finished :class:`~repro.sim.sweep.PolicySweep`.

    ``policies`` lists what actually ran, in the sweep's deterministic
    execution order (so an injected baseline always shows up, last), and
    ``policy_labels`` resolves each name through the registry -- the
    manifest records the resolved policy set, not just the request.
    Each run carries its :class:`~repro.exec.job.SimJob` ``job_id`` and
    the top level records the executor ``backend`` and whether execution
    was ``grouped`` (one decoded trace fanned out per benchmark), which
    is how two manifests produced by different backends or pipeline
    shapes stay comparable.
    """
    from repro.policies.registry import policy_label

    job_ids = getattr(sweep, "job_ids", {})
    outcomes = getattr(sweep, "job_outcomes", {})
    runs = []
    for (benchmark, policy), result in sorted(sweep.results.items()):
        job_id = job_ids.get((benchmark, policy))
        outcome = outcomes.get(job_id)
        runs.append({
            "benchmark": benchmark,
            "policy": policy,
            "policy_label": policy_label(policy),
            "job_id": job_id,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            # Fault-tolerance provenance: how many attempts this run
            # took and whether it was simulated or journal-resumed.
            "attempts": outcome.attempts if outcome is not None else None,
            "status": outcome.status if outcome is not None else None,
            # Per-job resource accounting (wall/tracegen seconds, cache
            # hit, peak RSS).  Volatile by design -- backend- and
            # machine-dependent -- so bit-identical manifest
            # comparisons must strip this key (and the wall_time /
            # cache_hit / peak_rss_kb fields inside "failures" entries;
            # see JobResult.VOLATILE_FIELDS).
            "accounting": getattr(result, "accounting", None),
            "stats": result.stats.as_dict(),
            "miss_rates": dict(result.miss_summary),
            "metrics": (result.metrics.as_dict()
                        if getattr(result, "metrics", None) is not None
                        else None),
        })
    failures = [
        outcome.as_dict()
        for outcome in sorted(outcomes.values(), key=lambda o: o.job_id)
        if outcome.status == "failed"
    ]
    return {
        "format_version": MANIFEST_VERSION,
        "kind": "sweep",
        "benchmarks": list(sweep.benchmarks),
        "policies": list(getattr(sweep, "executed_policies",
                                 sweep.policies)),
        "policy_labels": {
            name: policy_label(name)
            for name in getattr(sweep, "executed_policies",
                                sweep.policies)
        },
        "num_instructions": sweep.num_instructions,
        "warmup": sweep.warmup,
        "seed": sweep.seed,
        "backend": getattr(sweep, "backend", None),
        "grouped": getattr(sweep, "grouped", None),
        "git": git_describe(),
        "config": config_to_dict(sweep.config),
        "phases": profiler.as_dict() if profiler is not None else {},
        "failures": failures,
        "runs": runs,
    }


def build_figures_manifest(entries, backend=None, num_instructions=None,
                           warmup=None, profiler=None):
    """Combined manifest for one ``repro figures`` invocation.

    ``entries`` is a list of dicts -- one per regenerated artifact --
    each carrying ``name``, ``artifact`` (the text file written),
    ``jobs`` (per-job outcome dicts, sorted by job_id) and ``failures``
    (the terminal-failure subset).  The top level records the shared
    executor ``backend``, so a serial and a parallel regeneration of
    the same artifact set differ only in that field (and phases/git).
    """
    total_jobs = sum(len(entry.get("jobs", ())) for entry in entries)
    total_failures = sum(len(entry.get("failures", ()))
                         for entry in entries)
    return {
        "format_version": MANIFEST_VERSION,
        "kind": "figures",
        "artifacts": [entry["name"] for entry in entries],
        "num_instructions": num_instructions,
        "warmup": warmup,
        "backend": backend,
        "git": git_describe(),
        "phases": profiler.as_dict() if profiler is not None else {},
        "total_jobs": total_jobs,
        "total_failures": total_failures,
        "figures": entries,
    }


FIGURE_SERIES_VERSION = 1


def series_from_rows(rows, columns):
    """Series list from sweep-table rows ``[(x, {column: value})]``.

    One series per column (the policies, in the given order), one point
    per row (the benchmarks).  A failed cell's None survives as-is --
    it renders as ``--`` in the text table and as JSON null here.
    """
    return [
        {"name": column,
         "points": [{"x": x, "y": values.get(column)}
                    for x, values in rows]}
        for column in columns
    ]


def series_from_matrix(headers, rows):
    """Series list from a plain list-of-lists table.

    ``headers[0]`` labels the x axis; each remaining header becomes one
    series whose points walk the rows (``row[0]`` is x).
    """
    return [
        {"name": header,
         "points": [{"x": row[0], "y": row[index + 1]} for row in rows]}
        for index, header in enumerate(headers[1:])
    ]


def series_panel(name, title, series, x_label="benchmark"):
    """One panel of a figure-series artifact."""
    return {"name": name, "title": title, "x_label": x_label,
            "series": series}


def build_figure_series(figure, title, panels, extra=None):
    """The machine-readable twin of one figure/table text artifact.

    Same numbers as the ``.txt`` render, structured: a list of panels
    (a single-table figure has one), each a list of named series of
    ``{"x", "y"}`` points.  ``extra`` carries figure-specific scalars
    that are not series-shaped (fig6's cycle advantage, variance's
    ordering verdict).  Serialise with :func:`write_json` so serial and
    parallel regenerations -- and the figure server -- stay
    byte-identical.
    """
    payload = {
        "format_version": FIGURE_SERIES_VERSION,
        "kind": "figure-series",
        "figure": figure,
        "title": title,
        "panels": panels,
    }
    if extra:
        payload["extra"] = extra
    return payload


def write_json(payload, path):
    """Write any manifest to ``path`` (stable key order)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True, default=str)
    return path


def write_json_atomic(payload, path):
    """:func:`write_json` via rename, for files a server may be reading.

    Byte-identical output to :func:`write_json` (same dump arguments);
    the tmp-write + ``os.replace`` means a concurrent reader sees the
    old complete file or the new complete file, never a torn one.
    """
    from repro.sim.checkpoint import atomic_write_text

    text = json.dumps(payload, indent=1, sort_keys=True, default=str)
    atomic_write_text(path, text)
    return path


def write_sweep_csv(sweep, path, baseline="decrypt-only"):
    """Flatten a sweep to CSV: one row per (benchmark, policy) job.

    Completed runs carry their numbers plus a ``status`` column
    (``ok``/``resumed``); jobs that failed terminally under a skipping
    failure policy still get a row -- status ``failed``, numeric fields
    empty -- so a partial sweep's CSV names every grid point instead of
    raising KeyError on the missing ones.
    """
    import csv

    from repro.exec.retry import STATUS_FAILED

    outcomes = getattr(sweep, "job_outcomes", {})
    job_ids = getattr(sweep, "job_ids", {})
    miss_keys = ("l1i", "l1d", "l2", "itlb", "dtlb")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["benchmark", "policy", "status", "instructions",
                         "cycles", "ipc", "ipc_normalized"]
                        + ["miss_%s" % key for key in miss_keys])
        for (benchmark, policy), result in sorted(sweep.results.items()):
            if (benchmark, baseline) in sweep.results:
                base = sweep.results[(benchmark, baseline)].ipc
                normalized = result.ipc / base if base else 0.0
            else:
                normalized = ""
            outcome = outcomes.get(job_ids.get((benchmark, policy)))
            writer.writerow(
                [benchmark, policy,
                 outcome.status if outcome is not None else "ok",
                 result.instructions, result.cycles,
                 "%.6f" % result.ipc,
                 "%.6f" % normalized if normalized != "" else ""]
                + ["%.6f" % result.miss_summary.get(key, 0.0)
                   for key in miss_keys])
        failed = (sweep.failed_jobs()
                  if hasattr(sweep, "failed_jobs") else {})
        for (benchmark, policy), outcome in sorted(failed.items()):
            writer.writerow([benchmark, policy, STATUS_FAILED,
                             "", "", "", ""] + [""] * len(miss_keys))
    return path
