"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``table1 | table2 | table3 | fig6 | fig7 | fig8 | fig9 | fig10 | fig12``
    Regenerate a paper table/figure (text form).
``figures``
    Regenerate any subset of the paper artifacts (default: all of them,
    plus the ablation/variance/sensitivity studies) through the job
    executor: ``--jobs N`` shares one worker pool across every figure
    with byte-identical artifacts, ``--timeout/--retries/--on-error``
    govern fault tolerance, ``--out DIR`` collects ``<name>.txt`` files
    and one combined ``figures-manifest.json``.
``run BENCH``
    Simulate one benchmark under one or more policies.  ``--trace-out``
    records a Chrome trace-event file (open in Perfetto); ``--emit-json``
    writes the run manifest (config, seed, phase timings, stats);
    ``--jobs N`` fans the policies out over N worker processes.
``sweep BENCH [BENCH ...]``
    Run a benchmarks x policies sweep through the job executor:
    ``--jobs N`` parallelises over processes with bit-identical results,
    ``--checkpoint FILE`` makes the sweep resumable (completed jobs are
    skipped on rerun), ``--emit-json``/``--csv`` export the results.
``trace BENCH``
    Record one run and render the decrypt-to-verify gap timeline as text.
``report FILE [FILE ...]``
    Render a run health report (job totals, per-cell outcomes, slowest
    jobs, cache savings, degradations) from any mix of sweep/figures/
    run/chaos manifests and metrics snapshots, plus ``--journal`` for
    per-job resource accounting.
``attack NAME``
    Run one exploit against one policy and report leak/detection.
``store stats|verify|gc``
    Inspect or maintain the persistent artifact store: tier sizes,
    CRC verification with quarantine, LRU eviction to ``--max-bytes``.
``worker``
    Run one work-stealing daemon against a shared ``--spool``
    directory: claim job units via exclusive leases, heartbeat them,
    append results to this host's journal segment.  ``--stop`` asks
    every worker on the spool to drain and exit.
``list``
    Show available benchmarks, policies and attacks.

``run``, ``sweep`` and ``figures`` all accept ``--metrics-out FILE`` to
dump the run's fleet-telemetry snapshot (JSON, or Prometheus text when
the file ends in ``.prom``/``.txt``), ``--store [DIR]`` to reuse
traces, prepass columns and finished results through the persistent
content-addressed artifact store (bare ``--store`` resolves
``$REPRO_STORE`` or ``~/.cache/repro/store``), and ``--spool DIR`` to
execute through the multi-host work-stealing backend: the driver spools
job units to DIR and merges results journaled by ``repro worker``
daemons (falling back to in-process execution if no worker ever shows
up).
"""

import argparse
import sys

from repro.policies.registry import available_policies, policy_set
from repro.workloads.spec import SPEC2000_PROFILES


def _add_scale(parser, default_n=12_000):
    parser.add_argument("-n", "--instructions", type=int, default=default_n,
                        help="measured instructions per run")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warmup instructions (default: same as -n)")


def _scale(args):
    warmup = args.warmup if args.warmup is not None else args.instructions
    return dict(num_instructions=args.instructions, warmup=warmup)


def _cmd_figure(args):
    from repro.experiments import (fig6, fig7, fig8, fig9, fig10_11,
                                   fig12_13, table1, table2, table3)

    name = args.command
    if name == "table1":
        print(table1.render(memory_fetch_latency=args.memory_latency))
    elif name == "table2":
        print(table2.render(empirical=not args.static))
    elif name == "table3":
        print(table3.render())
    elif name == "fig6":
        print(fig6.render(compute_latency=args.compute_latency))
    elif name == "fig7":
        print(fig7.render(**_scale(args)))
    elif name == "fig8":
        print(fig8.render(**_scale(args)))
    elif name == "fig9":
        print(fig9.render(**_scale(args)))
    elif name == "fig10":
        print(fig10_11.render(args.ruu, **_scale(args)))
    elif name == "fig12":
        print(fig12_13.render(**_scale(args)))
    return 0


_DEFAULT_POLICIES = list(policy_set("cli-default"))


def _metrics_registry(args):
    """The run's MetricsRegistry, or None when telemetry is off.

    Telemetry turns on when the user asked for a snapshot
    (``--metrics-out``) or for live progress (the TTY progress line
    feeds on the wall-time histogram).  Off means the executor sees
    ``metrics=None`` and every recording site degrades to the shared
    no-op metric -- the PR-1 invariant that observability must cost
    nothing when unused.
    """
    if getattr(args, "metrics_out", None) or getattr(args, "progress",
                                                     False):
        from repro.obs import MetricsRegistry
        return MetricsRegistry()
    return None


def _write_metrics(metrics, args):
    if getattr(args, "metrics_out", None):
        from repro.obs import write_metrics

        write_metrics(metrics, args.metrics_out)
        print("metrics snapshot written to %s" % args.metrics_out)


def _activate_store(args, metrics=None):
    """Turn on the persistent artifact store when ``--store`` was given.

    Exports :data:`~repro.exec.store.STORE_ENV` so forked pool workers
    resolve the same store after fork (the same propagation path
    ``REPRO_JOBS``/``REPRO_NATIVE`` use), and binds the parent's store
    to the run's metrics registry so store traffic shows up in
    ``--metrics-out`` snapshots.
    """
    import os

    target = getattr(args, "store", None)
    if not target:
        return None
    from repro.exec.store import (STORE_ENV, ArtifactStore,
                                  default_store_path, set_active_store)

    path = default_store_path() if target == "auto" else target
    store = ArtifactStore(path, metrics=metrics)
    os.environ[STORE_ENV] = os.fspath(store.root)
    set_active_store(store)
    print("artifact store: %s" % store.root, file=sys.stderr)
    return store


def _add_store(parser):
    parser.add_argument("--store", metavar="DIR", nargs="?", const="auto",
                        help="reuse traces/prepass/results through a "
                             "persistent content-addressed store at DIR "
                             "(bare --store: $REPRO_STORE or "
                             "~/.cache/repro/store)")


def _add_spool(parser):
    parser.add_argument("--spool", metavar="DIR", default=None,
                        help="execute through the multi-host "
                             "work-stealing backend: spool job units "
                             "to DIR and merge results from `repro "
                             "worker --spool DIR` daemons (degrades to "
                             "in-process execution if no worker "
                             "appears)")


def _dist_executor(args):
    """The DistExecutor ``--spool`` asks for (None when absent)."""
    spool = getattr(args, "spool", None)
    if not spool:
        return None
    from repro.exec import DistExecutor

    print("dist backend: spooling job units to %s (serve with "
          "`repro worker --spool %s`)" % (spool, spool), file=sys.stderr)
    return DistExecutor(spool)


def _cmd_run(args):
    import time

    from repro.config import SimConfig
    from repro.exec import ParallelExecutor, build_jobs, execute_job
    from repro.exec.job import build_job_groups
    from repro.obs import (ChromeTraceSink, JobMetrics, PhaseProfiler,
                           Tracer, build_run_manifest,
                           build_run_set_manifest, write_json)

    config = SimConfig().with_l2_size(args.l2 * 1024)
    if args.hash_tree:
        config = config.with_secure(hash_tree_enabled=True)
    policies = args.policy or list(_DEFAULT_POLICIES)
    scale = _scale(args)
    profiler = PhaseProfiler()
    try:
        chrome = ChromeTraceSink(args.trace_out) if args.trace_out else None
        if args.emit_json:  # fail before the simulation, not after it
            open(args.emit_json, "a").close()
    except OSError as exc:
        print("error: cannot write output file: %s" % exc, file=sys.stderr)
        return 2
    tracer = Tracer([chrome]) if chrome is not None else None

    jobs = build_jobs([args.benchmark], policies, config=config,
                      num_instructions=scale["num_instructions"],
                      warmup=scale["warmup"])
    num_workers = args.jobs
    if chrome is not None and (num_workers > 1 or args.spool):
        print("note: --trace-out records per-run events, which only the "
              "serial backend supports; running with --jobs 1",
              file=sys.stderr)
        num_workers = 1
        args.spool = None
    metrics = _metrics_registry(args)
    _activate_store(args, metrics)
    dist = _dist_executor(args)
    if dist is not None:
        groups = build_job_groups([args.benchmark], policies,
                                  config=config,
                                  num_instructions=scale[
                                      "num_instructions"],
                                  warmup=scale["warmup"])
        with dist as executor:
            results = executor.run(groups, profiler=profiler,
                                   metrics=metrics)
    elif num_workers > 1:
        # One grouped job: the worker decodes the trace once and fans it
        # out to every requested policy (results keyed per member job,
        # identical to the per-job expansion below).
        groups = build_job_groups([args.benchmark], policies,
                                  config=config,
                                  num_instructions=scale[
                                      "num_instructions"],
                                  warmup=scale["warmup"])
        with ParallelExecutor(num_workers) as executor:
            results = executor.run(groups, profiler=profiler,
                                   metrics=metrics)
    else:
        results = {}
        jm = JobMetrics(metrics)
        jm.pending.set(len(jobs))
        for job in jobs:
            if chrome is not None:
                chrome.begin_process("%s/%s" % (args.benchmark, job.policy))
            job_started = time.perf_counter()
            result = execute_job(job, tracer=tracer, profiler=profiler)
            results[job] = result
            jm.observe_completed(result,
                                 time.perf_counter() - job_started)
            jm.pending.dec()

    baseline = None
    recorded = []
    print("%-26s %10s %10s" % ("policy", "IPC", "normalized"))
    for job in jobs:
        result = results[job]
        recorded.append((result, result.metrics))
        if baseline is None:
            baseline = result.ipc
        print("%-26s %10.4f %10.3f"
              % (job.policy, result.ipc, result.ipc / baseline))
    if tracer is not None:
        tracer.close()
        print("chrome trace written to %s (open in Perfetto)"
              % args.trace_out)
    if args.emit_json:
        if len(recorded) == 1:
            manifest = build_run_manifest(
                recorded[0][0], recorded[0][1], config=config,
                seed=config.seed, profiler=profiler,
                extra={"job_id": jobs[0].job_id})
        else:
            manifest = build_run_set_manifest(
                recorded, config=config, seed=config.seed,
                profiler=profiler, benchmark=args.benchmark)
        write_json(manifest, args.emit_json)
        print("run manifest written to %s" % args.emit_json)
    _write_metrics(metrics, args)
    if args.trace_out or args.emit_json:
        print(profiler.render())
    return 0


def _failure_policy(args):
    """Build the FailurePolicy the sweep/figures/chaos flags describe.

    ``--retries N`` promotes *any* non-retrying ``--on-error`` mode to
    ``retry-then-skip`` (asking for retries while in ``skip`` mode used
    to be silently ignored); when a promotion happens, the resolved
    policy is printed so the run records what actually governed it.
    """
    from repro.exec import (FAIL_FAST, RETRY_THEN_SKIP, SKIP_AND_REPORT,
                            FailurePolicy)

    mode = {"fail": FAIL_FAST, "skip": SKIP_AND_REPORT,
            "retry": RETRY_THEN_SKIP}[args.on_error]
    if args.retries and mode != RETRY_THEN_SKIP:
        # --retries implies retrying, whatever the terminal mode was.
        mode = RETRY_THEN_SKIP
        print("note: --retries %d promotes --on-error %s to %s"
              % (args.retries, args.on_error, mode), file=sys.stderr)
    return FailurePolicy(mode=mode, max_attempts=max(1, args.retries + 1),
                         timeout=args.timeout)


def _cmd_sweep(args):
    import time

    from repro.config import SimConfig
    from repro.exec import make_executor
    from repro.obs import PhaseProfiler, build_sweep_manifest, write_json
    from repro.sim.checkpoint import JobJournal
    from repro.sim.report import failure_footer, render_table, series_rows
    from repro.sim.sweep import BASELINE, PolicySweep, normalized_ipc_table

    config = SimConfig().with_l2_size(args.l2 * 1024)
    if args.hash_tree:
        config = config.with_secure(hash_tree_enabled=True)
    policies = args.policy or list(_DEFAULT_POLICIES)
    scale = _scale(args)
    profiler = PhaseProfiler()
    if args.compact and not args.checkpoint:
        print("error: --compact requires --checkpoint", file=sys.stderr)
        return 2

    sweep = PolicySweep(args.benchmark, policies, config=config,
                        num_instructions=scale["num_instructions"],
                        warmup=scale["warmup"], seed=args.seed)

    journal = None
    if args.checkpoint:
        journal = JobJournal(args.checkpoint)
        if journal.quarantined_lines:
            print("journal: quarantined %d corrupt line(s) to %s"
                  % (journal.quarantined_lines, journal.rej_path))
        if journal.incompatible_lines:
            print("journal: ignored %d line(s) from an incompatible "
                  "journal version" % journal.incompatible_lines)
        if args.compact:
            keep = {job.job_id
                    for job in sweep.jobs(not args.no_baseline)}
            dropped = journal.compact(keep_ids=keep)
            print("journal: compacted %s (%d stale line(s) dropped, %d "
                  "record(s) kept)"
                  % (args.checkpoint, dropped, len(journal)))
        if len(journal):
            print("resuming from %s: %d completed job(s) will be skipped"
                  % (args.checkpoint, len(journal)))

    metrics = _metrics_registry(args)
    _activate_store(args, metrics)
    progress = None
    if args.progress:
        # A real TTY gets the single rewriting status line (done/total,
        # ETA, retries, cache hit rate); pipes keep line-per-job logs.
        from repro.obs import make_progress
        progress = make_progress(sys.stderr, metrics=metrics)

    start = time.perf_counter()
    try:
        with _dist_executor(args) or make_executor(args.jobs) as executor:
            sweep.run(include_baseline=not args.no_baseline,
                      profiler=profiler, executor=executor,
                      journal=journal, progress=progress,
                      failure_policy=_failure_policy(args),
                      metrics=metrics)
    finally:
        if progress is not None:
            progress.close()
    elapsed = time.perf_counter() - start

    failed = sweep.failed_jobs()
    policies_run = sweep.executed_policies
    headers = ["benchmark"] + policies_run
    if failed:
        print("WARNING: %d job(s) failed terminally and were skipped:"
              % len(failed), file=sys.stderr)
        for (benchmark, policy), outcome in sorted(failed.items()):
            print("  %s/%s: %s after %d attempt(s)"
                  % (benchmark, policy, outcome.error, outcome.attempts),
                  file=sys.stderr)
    # Failed cells render as "--" and drop out of averages; the table
    # itself always prints, however partial the sweep came back.
    if BASELINE in policies_run:
        rows = normalized_ipc_table(sweep, policies_run)
        print("normalized IPC (baseline: %s)" % BASELINE)
        print(render_table(headers, series_rows(rows, policies_run)))
    else:
        print("absolute IPC")
        print(render_table(headers, [
            [benchmark] + [sweep.ipc_or_none(benchmark, p)
                           for p in policies_run]
            for benchmark in sweep.benchmarks], "%.4f"))
    if failed:
        print(failure_footer(sweep))
    backend = sweep.backend or {}
    retried = sum(1 for outcome in sweep.job_outcomes.values()
                  if outcome.attempts > 1)
    suffix = ", %d retried" % retried if retried else ""
    print("%d jobs in %.2fs (backend=%s, workers=%s%s)"
          % (len(sweep.results), elapsed,
             backend.get("backend"), backend.get("jobs"), suffix))
    if args.emit_json:
        write_json(build_sweep_manifest(sweep, profiler=profiler),
                   args.emit_json)
        print("sweep manifest written to %s" % args.emit_json)
    if args.csv:
        sweep.write_csv(args.csv)
        print("sweep CSV written to %s" % args.csv)
    _write_metrics(metrics, args)
    return 1 if failed else 0


def _cmd_figures(args):
    from repro.experiments.figures import ARTIFACTS, run_figures

    if args.only and args.all:
        print("error: --only and --all are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.only:
        names = [name.strip() for name in args.only.split(",")
                 if name.strip()]
        unknown = sorted(set(names) - set(ARTIFACTS))
        if unknown:
            print("error: unknown artifact(s) %s (choose from %s)"
                  % (", ".join(unknown), ", ".join(ARTIFACTS)),
                  file=sys.stderr)
            return 2
    else:
        names = list(ARTIFACTS)
    scale = _scale(args)
    metrics = _metrics_registry(args)
    _activate_store(args, metrics)
    dist = _dist_executor(args)
    try:
        summary = run_figures(names, args.out,
                              num_instructions=scale["num_instructions"],
                              warmup=scale["warmup"], jobs=args.jobs,
                              executor=dist,
                              failure_policy=_failure_policy(args),
                              log=print, metrics=metrics,
                              emit_json=args.emit_json)
    finally:
        if dist is not None:
            dist.close()
    print("figures manifest written to %s" % summary["manifest_path"])
    _write_metrics(metrics, args)
    if summary["total_failures"]:
        print("WARNING: %d job(s) failed terminally; affected cells "
              "are shown as -- in the artifacts"
              % summary["total_failures"], file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args):
    from repro.obs import MetricsRegistry
    from repro.serve import FigureService, serve_forever

    # /metricsz always has something to say, so the registry is
    # unconditional here (unlike the batch commands, where telemetry
    # is opt-in).
    metrics = MetricsRegistry()
    store = _activate_store(args, metrics)
    scale = _scale(args)
    log = (lambda message: print(message, file=sys.stderr)) \
        if not args.quiet else None
    service = FigureService(args.out, store=store,
                            num_instructions=scale["num_instructions"],
                            warmup=scale["warmup"], jobs=args.jobs,
                            failure_policy=_failure_policy(args),
                            metrics=metrics, log=log)
    if args.warm:
        names = [name.strip() for name in args.warm.split(",")
                 if name.strip()]
        from repro.experiments.figures import run_figures
        run_figures(names, args.out,
                    num_instructions=scale["num_instructions"],
                    warmup=scale["warmup"], jobs=args.jobs,
                    failure_policy=_failure_policy(args),
                    metrics=metrics, emit_json=True)
    return serve_forever(service, args.host, args.port,
                         log=lambda message: print(message,
                                                   file=sys.stderr))


def _cmd_diff(args):
    import json

    from repro.serve import diff_figures, render_diff

    only = None
    if args.only:
        only = {name.strip() for name in args.only.split(",")
                if name.strip()}
    report = diff_figures(args.dir_a, args.dir_b, atol=args.atol,
                          rtol=args.rtol, only=only)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_diff(report))
    if (not report["compared"] and not report["only_a"]
            and not report["only_b"]):
        print("error: no figure-series artifacts found under %s or %s "
              "(generate them with repro figures --emit-json)"
              % (args.dir_a, args.dir_b), file=sys.stderr)
        return 2
    return 0 if report["identical"] else 1


def _cmd_chaos(args):
    from repro.exec.chaos import (ALL_FAULTS, run_chaos, run_dist_chaos,
                                  run_figures_chaos, run_group_chaos,
                                  run_store_chaos)
    from repro.obs import write_json

    scale = _scale(args)
    if args.dist:
        from repro.errors import ReproError

        try:
            report = run_dist_chaos(
                benchmarks=args.benchmark or ["gzip", "mcf"],
                policies=args.policy or ["decrypt-only",
                                         "authen-then-commit",
                                         "authen-then-issue"],
                num_instructions=scale["num_instructions"],
                warmup=scale["warmup"], seed=args.seed,
                workdir=args.workdir)
        except ReproError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        print(report.render())
        if args.emit_json:
            write_json(report.as_dict(), args.emit_json)
            print("chaos report written to %s" % args.emit_json)
        return 0 if report.identical else 1

    if args.store:
        from repro.errors import ReproError

        try:
            report = run_store_chaos(
                benchmarks=args.benchmark or ["gzip", "mcf"],
                policies=args.policy or ["decrypt-only",
                                         "authen-then-commit",
                                         "authen-then-issue"],
                num_instructions=scale["num_instructions"],
                warmup=scale["warmup"], seed=args.seed,
                workdir=args.workdir)
        except ReproError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        print(report.render())
        if args.emit_json:
            write_json(report.as_dict(), args.emit_json)
            print("chaos report written to %s" % args.emit_json)
        return 0 if report.identical else 1

    if args.group:
        from repro.errors import ReproError

        try:
            report = run_group_chaos(
                benchmarks=args.benchmark or ["gzip", "mcf"],
                policies=args.policy or ["decrypt-only",
                                         "authen-then-commit",
                                         "authen-then-issue",
                                         "authen-then-write"],
                num_instructions=scale["num_instructions"],
                warmup=scale["warmup"], seed=args.seed,
                workers=args.jobs, timeout=args.timeout,
                workdir=args.workdir)
        except ReproError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        print(report.render())
        if args.emit_json:
            write_json(report.as_dict(), args.emit_json)
            print("chaos report written to %s" % args.emit_json)
        return 0 if report.identical else 1

    if args.figures:
        from repro.errors import ReproError

        names = [name.strip() for name in args.figures.split(",")
                 if name.strip()]
        try:
            report = run_figures_chaos(
                figures=names,
                benchmarks=args.benchmark or ["gzip", "mcf"],
                num_instructions=scale["num_instructions"],
                warmup=scale["warmup"], seed=args.seed,
                workers=args.jobs, workdir=args.workdir)
        except ReproError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        print(report.render())
        if args.emit_json:
            write_json(report.as_dict(), args.emit_json)
            print("chaos report written to %s" % args.emit_json)
        return 0 if report.identical else 1

    if args.faults:
        faults = tuple(f.strip() for f in args.faults.split(",")
                       if f.strip())
        unknown = set(faults) - set(ALL_FAULTS)
        if unknown:
            print("error: unknown fault(s) %s (choose from %s)"
                  % (", ".join(sorted(unknown)), ", ".join(ALL_FAULTS)),
                  file=sys.stderr)
            return 2
    else:
        faults = ALL_FAULTS
    policies = args.policy or ["decrypt-only", "authen-then-commit",
                               "authen-then-issue"]
    report = run_chaos(benchmarks=args.benchmark or ["gzip"],
                       policies=policies,
                       num_instructions=scale["num_instructions"],
                       warmup=scale["warmup"], seed=args.seed,
                       faults=faults, workers=args.jobs,
                       hang_seconds=args.hang_seconds,
                       timeout=args.timeout, workdir=args.workdir)
    print(report.render())
    if args.emit_json:
        write_json(report.as_dict(), args.emit_json)
        print("chaos report written to %s" % args.emit_json)
    return 0 if report.identical else 1


def _cmd_trace(args):
    from repro.config import SimConfig
    from repro.obs import (MemorySink, Tracer, render_gap_timeline,
                           render_jobs_summary, render_lane_census)
    from repro.sim.runner import run_benchmark

    sink = MemorySink(capacity=args.buffer)
    tracer = Tracer([sink])
    result = run_benchmark(args.benchmark, args.instructions,
                           config=SimConfig(), policy=args.policy,
                           tracer=tracer)
    print("%s under %s: %d instructions, %d cycles, ipc=%.4f"
          % (args.benchmark, args.policy, result.instructions,
             result.cycles, result.ipc))
    if sink.dropped:
        print("(ring buffer dropped %d oldest events; raise --buffer)"
              % sink.dropped)
    print()
    print(render_lane_census(sink.events))
    jobs_summary = render_jobs_summary(sink.events)
    if jobs_summary is not None:  # single-run traces omit the section
        print()
        print(jobs_summary)
    print()
    print(render_gap_timeline(sink.events, limit=args.limit))
    return 0


def _cmd_report(args):
    import json

    from repro.errors import ReproError
    from repro.obs import build_report, render_report

    if not args.artifact and not args.journal:
        print("error: nothing to report on; pass at least one manifest/"
              "snapshot file or --journal", file=sys.stderr)
        return 2
    try:
        report = build_report(args.artifact, journal=args.journal,
                              top=args.top)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report, top=args.top))
    return 0


def _cmd_attack(args):
    from repro.attacks.harness import ALL_ATTACKS, run_attack

    attacks = [args.attack] if args.attack != "all" else list(ALL_ATTACKS)
    failures = 0
    for attack in attacks:
        result = run_attack(attack, args.policy)
        status = "LEAKED" if result.leaked else "blocked"
        detected = "detected" if result.detected else "undetected"
        print("%-26s vs %-22s %-8s (%s)"
              % (attack, args.policy, status, detected))
        failures += int(result.leaked)
    return 1 if failures and args.fail_on_leak else 0


def _cmd_perf(args):
    from repro.perf.bench import (check_goldens, render_group_table,
                                  render_table, run_group_matrix,
                                  run_matrix, write_report)
    from repro.perf.golden import GOLDEN_CYCLES

    if args.check:
        mismatches = check_goldens()
        if mismatches:
            print("golden parity FAILED (%d cell(s)):" % len(mismatches),
                  file=sys.stderr)
            for line in mismatches:
                print("  " + line, file=sys.stderr)
            return 1
        print("golden parity OK: %d cells bit-identical through both "
              "the legacy and the shared-pass path"
              % len(GOLDEN_CYCLES))
        return 0

    report = run_matrix(num_instructions=args.instructions,
                        warmup=args.warmup, repeats=args.repeats)
    print(render_table(report))
    if not args.no_group:
        group = run_group_matrix(num_instructions=args.instructions,
                                 warmup=args.warmup,
                                 repeats=args.repeats)
        report["multi_policy"] = group
        print()
        print("multi-policy sweep (decode once, evaluate %d policies):"
              % len(group["matrix"]["policies"]))
        print(render_group_table(group))
        if not group["cycles_identical"]:
            print("grouped path cycle MISMATCH -- see table above",
                  file=sys.stderr)
            return 1
    if args.store_bench:
        from repro.perf.bench import render_store_table, run_store_bench

        store = run_store_bench(num_instructions=args.instructions,
                                warmup=args.warmup)
        report["store"] = store
        print()
        print("artifact store (no-store vs cold vs warm):")
        print(render_store_table(store))
        if not store["identical"]:
            print("store path digest MISMATCH -- warm results diverge "
                  "from cold/no-store", file=sys.stderr)
            return 1
    if not args.no_json:
        path = write_report(report, path=args.out)
        print("benchmark report written to %s" % path)
    return 0


def _parse_size(text):
    """Parse ``500M``-style size strings into bytes (K/M/G suffixes)."""
    text = str(text).strip()
    multiplier = 1
    suffixes = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}
    if text and text[-1].lower() in suffixes:
        multiplier = suffixes[text[-1].lower()]
        text = text[:-1]
    try:
        return int(float(text) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError("invalid size: %r" % text)


def _cmd_store(args):
    import json

    from repro.exec.store import ArtifactStore, default_store_path

    path = args.dir or default_store_path()
    store = ArtifactStore(path)
    if args.action == "stats":
        payload = store.stats()
    elif args.action == "verify":
        payload = store.verify()
        payload["root"] = str(store.root)
    else:  # gc
        payload = store.gc(args.max_bytes)
        payload["root"] = str(store.root)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.action == "stats":
        print("artifact store %s" % payload["root"])
        for tier in sorted(payload["tiers"]):
            info = payload["tiers"][tier]
            print("  %-8s %6d entr%s %12d bytes"
                  % (tier, info["entries"],
                     "y " if info["entries"] == 1 else "ies",
                     info["bytes"]))
        print("  total    %19d bytes" % payload["total_bytes"])
        if payload["quarantined_entries"]:
            print("  quarantined: %d entr%s (see quarantine.rej)"
                  % (payload["quarantined_entries"],
                     "y" if payload["quarantined_entries"] == 1
                     else "ies"))
    elif args.action == "verify":
        print("verified %d entr%s: %d ok, %d corrupt (quarantined), "
              "%d stale"
              % (payload["checked"],
                 "y" if payload["checked"] == 1 else "ies",
                 payload["ok"], payload["corrupt"], payload["stale"]))
    else:
        print("gc: evicted %d entr%s (%d bytes freed), kept %d "
              "(%d bytes, %d recently-touched pinned)"
              % (payload["evicted"],
                 "y" if payload["evicted"] == 1 else "ies",
                 payload["freed_bytes"], payload["kept"],
                 payload["kept_bytes"], payload["pinned"]))
    if args.action == "verify" and payload["corrupt"]:
        return 1
    return 0


def _cmd_worker(args):
    import os

    from repro.exec import run_worker
    from repro.exec.dist import ensure_spool, request_stop

    if args.stop:
        ensure_spool(args.spool)
        request_stop(args.spool)
        print("stop requested: workers on %s will drain and exit"
              % args.spool)
        return 0
    _activate_store(args)
    on_record = None
    die_after = os.environ.get("REPRO_WORKER_DIE_AFTER")
    if die_after:
        # Chaos/CI hook: SIGKILL this worker right after its Nth
        # journal append -- mid-unit by construction -- so host-death
        # recovery can be exercised from a plain shell script.
        import signal

        budget = [int(die_after)]

        def on_record(job, result):
            budget[0] -= 1
            if budget[0] <= 0:
                os.kill(os.getpid(), signal.SIGKILL)

    summary = run_worker(args.spool, host_id=args.host_id,
                         poll=args.poll,
                         lease_timeout=args.lease_timeout,
                         idle_exit=args.idle_exit,
                         max_units=args.max_units, on_record=on_record,
                         log=lambda line: print(line, file=sys.stderr))
    print("worker %s: %d unit(s), %d member result(s), %d error(s)"
          % (summary["host_id"], summary["units"], summary["members"],
             summary["errors"]))
    return 1 if summary["errors"] else 0


def _cmd_list(args):
    from repro.attacks.harness import ALL_ATTACKS

    print("benchmarks: " + ", ".join(sorted(SPEC2000_PROFILES)))
    print("policies:   " + ", ".join(available_policies()))
    print("attacks:    " + ", ".join(ALL_ATTACKS) + ", all")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Authentication control points for secure processors "
                    "(MICRO 2006 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table1", "table2", "table3", "fig6", "fig7", "fig8",
                 "fig9", "fig10", "fig12"):
        p = sub.add_parser(name, help="regenerate %s" % name)
        _add_scale(p)
        if name == "table1":
            p.add_argument("--memory-latency", type=int, default=200)
        if name == "table2":
            p.add_argument("--static", action="store_true",
                           help="skip the empirical attack runs")
        if name == "fig6":
            p.add_argument("--compute-latency", type=int, default=30)
        if name == "fig10":
            p.add_argument("--ruu", type=int, default=64)
        p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("run", help="simulate one benchmark")
    p.add_argument("benchmark", choices=sorted(SPEC2000_PROFILES))
    p.add_argument("-p", "--policy", action="append",
                   choices=available_policies())
    p.add_argument("--l2", type=int, default=256, help="L2 size in KB")
    p.add_argument("--hash-tree", action="store_true")
    p.add_argument("--trace-out", metavar="FILE",
                   help="record a Chrome trace-event JSON (Perfetto)")
    p.add_argument("--emit-json", metavar="FILE",
                   help="write the run manifest (config, seed, phase "
                        "timings, full stats snapshot)")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes (default 1: serial backend)")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write the fleet-telemetry snapshot (JSON, or "
                        "Prometheus text for .prom/.txt)")
    _add_store(p)
    _add_spool(p)
    _add_scale(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("sweep",
                       help="run a benchmarks x policies sweep through "
                            "the job executor")
    p.add_argument("benchmark", nargs="+",
                   choices=sorted(SPEC2000_PROFILES))
    p.add_argument("-p", "--policy", action="append",
                   choices=available_policies())
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes (default 1: serial backend; "
                        "results are bit-identical either way)")
    p.add_argument("--seed", type=int, default=None,
                   help="trace-generation seed (default: config seed)")
    p.add_argument("--l2", type=int, default=256, help="L2 size in KB")
    p.add_argument("--hash-tree", action="store_true")
    p.add_argument("--no-baseline", action="store_true",
                   help="do not inject the decrypt-only baseline")
    p.add_argument("--checkpoint", metavar="FILE",
                   help="JSONL job journal; rerunning with the same "
                        "file skips already-completed jobs")
    p.add_argument("--csv", metavar="FILE",
                   help="write one CSV row per (benchmark, policy) run")
    p.add_argument("--emit-json", metavar="FILE",
                   help="write the sweep manifest (per-job ids, backend "
                        "metadata, full stats snapshots)")
    p.add_argument("--progress", action="store_true",
                   help="live progress on stderr: a rewriting status "
                        "line (done/total, ETA, retries, cache hit "
                        "rate) on a TTY, per-job lines otherwise")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write the fleet-telemetry snapshot (JSON, or "
                        "Prometheus text for .prom/.txt)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECS",
                   help="per-attempt wall-clock budget for one job")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="re-run a failed/timed-out job up to N more "
                        "times (with backoff) before giving up")
    p.add_argument("--on-error", choices=("fail", "skip", "retry"),
                   default="fail",
                   help="terminal-failure policy: abort the sweep "
                        "(fail, default), skip the job and report it "
                        "(skip), or retry then skip (retry)")
    p.add_argument("--compact", action="store_true",
                   help="before running, rewrite --checkpoint keeping "
                        "only records for this sweep's job grid")
    _add_store(p)
    _add_spool(p)
    _add_scale(p, default_n=6000)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("figures",
                       help="regenerate paper artifacts (all or a "
                            "subset) through the job executor, with a "
                            "combined manifest")
    p.add_argument("--only", metavar="CSV", default=None,
                   help="comma-separated artifact names (default: all); "
                        "e.g. fig7,table1,ablations")
    p.add_argument("--all", action="store_true",
                   help="regenerate every artifact (the default; "
                        "mutually exclusive with --only)")
    p.add_argument("--out", metavar="DIR", default="figures-out",
                   help="output directory for <name>.txt artifacts and "
                        "figures-manifest.json (default: figures-out)")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes shared by every figure "
                        "(default 1: serial backend; artifacts are "
                        "byte-identical either way)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECS",
                   help="per-attempt wall-clock budget for one job")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="re-run a failed/timed-out job up to N more "
                        "times (with backoff) before giving up")
    p.add_argument("--on-error", choices=("fail", "skip", "retry"),
                   default="fail",
                   help="terminal-failure policy: abort (fail, "
                        "default), skip the job and render -- cells "
                        "(skip), or retry then skip (retry)")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write the fleet-telemetry snapshot (JSON, or "
                        "Prometheus text for .prom/.txt)")
    p.add_argument("--emit-json", action="store_true",
                   help="also write each artifact's machine-readable "
                        "figure-series twin to <name>.json (the format "
                        "repro serve and repro diff consume)")
    _add_store(p)
    _add_spool(p)
    _add_scale(p)
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("serve",
                       help="HTTP figure/sweep server over the artifact "
                            "store: warm requests answer from disk, "
                            "cold ones simulate once and 202 until "
                            "ready")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8178,
                   help="bind port (default 8178; 0 picks a free one)")
    p.add_argument("--out", metavar="DIR", default="serve-out",
                   help="artifact directory served and regenerated "
                        "into (default: serve-out)")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes per regeneration (default 1)")
    p.add_argument("--warm", metavar="CSV", default=None,
                   help="regenerate these figures synchronously before "
                        "binding (e.g. fig8,table1)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECS",
                   help="per-attempt wall-clock budget for one job")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="re-run a failed/timed-out job up to N more "
                        "times (with backoff) before giving up")
    p.add_argument("--on-error", choices=("fail", "skip", "retry"),
                   default="skip",
                   help="terminal-failure policy for regenerations "
                        "(default skip: a bad cell renders -- instead "
                        "of wedging the server)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-request/regeneration log lines")
    _add_store(p)
    _add_scale(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("diff",
                       help="compare per-figure JSON artifacts between "
                            "two output directories; exit 0 identical, "
                            "1 differences, 2 nothing to compare")
    p.add_argument("dir_a", help="baseline directory of <figure>.json "
                                 "artifacts (repro figures --emit-json)")
    p.add_argument("dir_b", help="candidate directory to compare")
    p.add_argument("--only", metavar="CSV", default=None,
                   help="restrict to these figures")
    p.add_argument("--atol", type=float, default=0.0,
                   help="absolute tolerance for numeric cells "
                        "(default 0: exact)")
    p.add_argument("--rtol", type=float, default=0.0,
                   help="relative tolerance for numeric cells "
                        "(default 0: exact)")
    p.add_argument("--json", action="store_true",
                   help="print the structured diff report instead of "
                        "the changed-cells table")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("chaos",
                       help="fault-injection harness: run a sweep under "
                            "injected worker kills, hangs and journal "
                            "corruption; verify bit-identical recovery")
    p.add_argument("--benchmark", action="append", default=None,
                   choices=sorted(SPEC2000_PROFILES),
                   help="benchmark(s) to sweep (default: gzip)")
    p.add_argument("-p", "--policy", action="append",
                   choices=available_policies())
    p.add_argument("--seed", type=int, default=0,
                   help="chaos schedule seed (default 0)")
    p.add_argument("--faults", metavar="CSV", default=None,
                   help="comma-separated fault kinds (default: all): "
                        "worker-kill, job-exception, hang, "
                        "journal-truncate, journal-bitflip, "
                        "pool-init-failure, journal-enospc")
    p.add_argument("--figures", metavar="CSV", default=None,
                   help="run the figures chaos smoke instead: "
                        "regenerate these artifacts (e.g. fig8) with a "
                        "worker kill injected and verify byte-identical "
                        "output")
    p.add_argument("--group", action="store_true",
                   help="run the grouped-pipeline campaign instead: "
                        "worker-kill a multi-policy group mid-"
                        "evaluation and gate that journal resume "
                        "re-runs only the unfinished policy "
                        "evaluations bit-identically")
    p.add_argument("--store", action="store_true",
                   help="run the artifact-store campaign instead: "
                        "corrupt store entries (truncation, bit flip) "
                        "and plant a stale single-flight lock, then "
                        "gate that quarantine + regeneration keep "
                        "results bit-identical")
    p.add_argument("--dist", action="store_true",
                   help="run the multi-host campaign instead: a worker "
                        "daemon SIGKILLed mid-unit, two daemons "
                        "appending one journal segment (then torn), "
                        "and a vanished fleet must all heal to "
                        "bit-identical results")
    p.add_argument("-j", "--jobs", type=int, default=2,
                   help="worker processes for the faulty phase "
                        "(default 2)")
    p.add_argument("--hang-seconds", type=float, default=2.0,
                   help="how long the injected hang sleeps")
    p.add_argument("--timeout", type=float, default=0.75,
                   help="per-attempt timeout used to break the hang")
    p.add_argument("--workdir", metavar="DIR", default=None,
                   help="keep journal/sidecar artifacts here instead "
                        "of a temp dir")
    p.add_argument("--emit-json", metavar="FILE",
                   help="write the chaos report as JSON")
    _add_scale(p, default_n=1500)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("trace",
                       help="record one run and render the decrypt-to-"
                            "verify gap timeline")
    p.add_argument("benchmark", choices=sorted(SPEC2000_PROFILES))
    p.add_argument("-p", "--policy", default="authen-then-commit",
                   choices=available_policies())
    p.add_argument("-n", "--instructions", type=int, default=4000)
    p.add_argument("--limit", type=int, default=32,
                   help="max windows rendered in the timeline")
    p.add_argument("--buffer", type=int, default=None,
                   help="ring-buffer capacity (default: unbounded)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("report",
                       help="render a run health report from sweep/"
                            "figures/run/chaos manifests, metrics "
                            "snapshots and the job journal")
    p.add_argument("artifact", nargs="*", metavar="FILE",
                   help="manifest / metrics-snapshot / chaos-report "
                        "JSON files (kinds are sniffed per file)")
    p.add_argument("--journal", metavar="FILE",
                   help="job journal (--checkpoint file) to mine for "
                        "per-job wall/RSS/cache accounting")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="rows in the slowest-jobs table (default 10)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of text")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("attack", help="run an exploit against a policy")
    p.add_argument("attack")
    p.add_argument("-p", "--policy", default="authen-then-commit",
                   choices=available_policies())
    p.add_argument("--fail-on-leak", action="store_true")
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("perf",
                       help="measure replay instructions/sec, or verify "
                            "timing parity against the pinned goldens")
    p.add_argument("--check", action="store_true",
                   help="re-run the golden matrix and fail on any cycle "
                        "or stats drift (no timing measurement)")
    p.add_argument("-n", "--instructions", type=int, default=20_000,
                   help="measured instructions per cell")
    p.add_argument("--warmup", type=int, default=5_000,
                   help="warmup instructions per cell")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats per cell (best-of is reported)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="report path (default: BENCH_<stamp>.json in the "
                        "current directory)")
    p.add_argument("--no-json", action="store_true",
                   help="print the table only, do not write a report")
    p.add_argument("--no-group", action="store_true",
                   help="skip the grouped-vs-legacy multi-policy sweep "
                        "benchmark (all registered policies)")
    p.add_argument("--store-bench", action="store_true",
                   help="also benchmark the artifact store: no-store vs "
                        "cold-store vs warm-store phases over a pinned "
                        "mini-matrix, gated on bit-identical results")
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser("store",
                       help="inspect or maintain the persistent "
                            "artifact store (stats, verify, gc)")
    p.add_argument("action", choices=("stats", "verify", "gc"),
                   help="stats: tier sizes and counters; verify: CRC-"
                        "check every entry (corrupt ones are "
                        "quarantined); gc: evict least-recently-used "
                        "entries down to --max-bytes")
    p.add_argument("--dir", metavar="DIR", default=None,
                   help="store directory (default: $REPRO_STORE or "
                        "~/.cache/repro/store)")
    p.add_argument("--max-bytes", type=_parse_size, default="1G",
                   metavar="SIZE",
                   help="gc target size; accepts K/M/G suffixes "
                        "(default 1G)")
    p.add_argument("--json", action="store_true",
                   help="emit the result as JSON")
    p.set_defaults(func=_cmd_store)

    p = sub.add_parser("worker",
                       help="run one work-stealing daemon against a "
                            "shared --spool directory (claim units via "
                            "leases, heartbeat, journal results)")
    p.add_argument("--spool", metavar="DIR", required=True,
                   help="the shared spool directory drivers submit "
                        "job units to")
    p.add_argument("--host-id", metavar="NAME", default=None,
                   help="name for this worker's journal segment and "
                        "census entry (default: <hostname>-<pid>)")
    p.add_argument("--poll", type=float, default=0.25, metavar="SECS",
                   help="idle claim-loop poll interval (default 0.25)")
    p.add_argument("--lease-timeout", type=float, default=5.0,
                   metavar="SECS",
                   help="lease heartbeat budget; the driver reclaims a "
                        "unit whose lease goes this long without a "
                        "heartbeat (default 5.0; must match the "
                        "driver's)")
    p.add_argument("--idle-exit", type=float, default=None,
                   metavar="SECS",
                   help="exit after this long with nothing claimable "
                        "(default: run until --stop)")
    p.add_argument("--max-units", type=int, default=None, metavar="N",
                   help="exit after executing N job units")
    p.add_argument("--stop", action="store_true",
                   help="ask every worker on the spool to drain and "
                        "exit, then return")
    _add_store(p)
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser("list", help="list benchmarks/policies/attacks")
    p.set_defaults(func=_cmd_list)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
