"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Raised when a configuration value is invalid or inconsistent."""


class IsaError(ReproError):
    """Raised on invalid instruction encodings or assembly input."""


class MemoryError_(ReproError):
    """Raised on invalid physical memory accesses (out of range, misaligned)."""


class IntegrityError(ReproError):
    """Raised when integrity verification fails (a MAC or hash mismatch).

    In the functional machine this models the processor's security
    exception.  The offending physical line address is attached so that
    tests and attack harnesses can assert *where* tampering was caught.
    """

    def __init__(self, message, line_addr=None):
        super().__init__(message)
        self.line_addr = line_addr


class SecurityException(IntegrityError):
    """Alias used when a policy raises the architectural security fault."""


class SimulationError(ReproError):
    """Raised when the timing simulator reaches an inconsistent state."""


class CheckpointError(ReproError):
    """Raised when a persisted artifact (sweep checkpoint, run manifest)
    is malformed or has an incompatible format version."""


class JobError(ReproError):
    """Raised when a job fails terminally under a fail-fast policy.

    Carries the ``job_id`` and how many attempts were spent, so sweep
    drivers can report *which* grid point aborted the run.
    """

    def __init__(self, message, job_id=None, attempts=0):
        super().__init__(message)
        self.job_id = job_id
        self.attempts = attempts


class JobTimeoutError(JobError):
    """Raised when one job attempt exceeds its FailurePolicy timeout."""
