"""Simulation configuration (the paper's Table 3, plus secure-layer knobs).

All timing parameters are expressed in **core cycles** at the reference
1.0 GHz clock, so 1 ns == 1 cycle and the paper's numbers appear verbatim.
The memory bus runs at 200 MHz, i.e. ``bus_multiplier = 5`` core cycles per
bus clock.
"""

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


def _power_of_two(value):
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int
    latency: int
    write_back: bool = True

    def __post_init__(self):
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ConfigError(
                "%s: size %d not divisible by line*assoc"
                % (self.name, self.size_bytes)
            )
        if not _power_of_two(self.line_bytes):
            raise ConfigError("%s: line size must be a power of two" % self.name)
        if self.latency < 1:
            raise ConfigError("%s: latency must be >= 1 cycle" % self.name)

    @property
    def num_sets(self):
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class DramConfig:
    """PC-SDRAM timing (Table 3) in core cycles.

    ``cas``/``rcd``/``rp`` are given in memory-bus clocks in the paper and
    converted here via ``bus_multiplier``.
    """

    bus_multiplier: int = 5          # core cycles per memory-bus clock
    bus_width_bytes: int = 8         # 8B-wide data bus
    cas_bus_clocks: int = 20
    rcd_bus_clocks: int = 7
    rp_bus_clocks: int = 7
    num_banks: int = 8
    row_bytes: int = 4096
    interleave_bytes: int = 256      # bank-interleave granularity
    chunk_gap_cycles: int = 5        # the "-5-5-5" burst cadence

    def __post_init__(self):
        if not _power_of_two(self.num_banks):
            raise ConfigError("num_banks must be a power of two")
        if not _power_of_two(self.row_bytes):
            raise ConfigError("row_bytes must be a power of two")
        if not _power_of_two(self.interleave_bytes):
            raise ConfigError("interleave_bytes must be a power of two")

    @property
    def cas_cycles(self):
        return self.cas_bus_clocks * self.bus_multiplier

    @property
    def rcd_cycles(self):
        return self.rcd_bus_clocks * self.bus_multiplier

    @property
    def rp_cycles(self):
        return self.rp_bus_clocks * self.bus_multiplier

    def transfer_cycles(self, num_bytes):
        """Core cycles the data bus is busy moving ``num_bytes``."""
        bus_clocks = -(-num_bytes // self.bus_width_bytes)  # ceil division
        return bus_clocks * self.bus_multiplier


@dataclass(frozen=True)
class SecureConfig:
    """Secure-memory engine parameters (Section 5.2)."""

    decrypt_latency: int = 80            # pipelined AES, cycles
    hmac_latency: int = 74               # SHA-256 per 512-bit input, cycles
    # "ctr": counter mode + HMAC (reference); "cbc": CBC + CBC-MAC, the
    # Table 1 alternative with serial decryption but no decrypt/verify gap
    encryption_mode: str = "ctr"
    # "hmac": SHA-256 HMAC (reference); "gmac": Galois MAC -- a shallow
    # GF(2^128) pipeline that nearly closes the decrypt-to-verify gap
    mac_scheme: str = "hmac"
    gmac_latency: int = 8
    # Split counters (per-page major + per-line minor): one 64B counter
    # block covers a whole 4KB page, multiplying counter-cache coverage.
    # Minor-counter overflow forces a page re-encryption burst.
    split_counters: bool = False
    minor_counter_bits: int = 7
    mac_bits: int = 64                   # truncated HMAC tag width
    auth_queue_depth: int = 16
    mac_throughput: int = 9              # verification initiation interval
    counter_cache_bytes: int = 32 * 1024
    counter_bytes: int = 8               # per-line counter size in memory
    # The reference decryption path is the prediction/precomputation
    # scheme of [19]: on a counter-cache miss the engine speculates the
    # counter value and starts the pad anyway; this is its success rate.
    counter_prediction_rate: float = 0.93
    store_buffer_entries: int = 32       # for authen-then-write
    # CHTree hash tree (Section 5.3.3)
    hash_tree_enabled: bool = False
    hash_tree_cache_bytes: int = 8 * 1024
    hash_bytes: int = 8                  # per-node hash size -> arity 8
    # Address obfuscation (Sections 4.3 / 5.2.4)
    obfuscation_enabled: bool = False
    remap_cache_bytes: int = 256 * 1024
    remap_entry_bytes: int = 8
    remap_cache_latency: int = 2
    remap_chunk_bytes: int = 4096        # HIDE-style chunk granularity
    remap_shuffle_period: int = 64       # writebacks per chunk re-shuffle


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table 3)."""

    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    ruu_entries: int = 128
    lsq_entries: int = 64
    pipeline_depth: int = 5          # fetch-to-dispatch depth
    branch_mispredict_penalty: int = 8
    int_alu_latency: int = 1
    int_mul_latency: int = 3
    fp_latency: int = 4
    branch_predictor_accuracy: float = 0.94   # trace-driven predictor model

    def __post_init__(self):
        if self.ruu_entries < 8:
            raise ConfigError("ruu_entries too small")
        if not 0.0 <= self.branch_predictor_accuracy <= 1.0:
            raise ConfigError("branch_predictor_accuracy must be in [0,1]")


def l1i_config():
    return CacheConfig("l1i", 16 * 1024, 32, 1, 1)


def l1d_config():
    return CacheConfig("l1d", 16 * 1024, 32, 1, 1)


def l2_config(size_bytes=256 * 1024):
    latency = 4 if size_bytes <= 256 * 1024 else 8
    return CacheConfig("l2", size_bytes, 64, 4, latency)


@dataclass(frozen=True)
class SimConfig:
    """Complete simulation configuration with Table 3 defaults."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(default_factory=l1i_config)
    l1d: CacheConfig = field(default_factory=l1d_config)
    l2: CacheConfig = field(default_factory=l2_config)
    dram: DramConfig = field(default_factory=DramConfig)
    secure: SecureConfig = field(default_factory=SecureConfig)
    mshr_entries: int = 16           # outstanding external misses
    # Next-N-lines stream prefetcher on L2 misses.  0 disables it (the
    # paper's machine has none); prefetched lines start verification
    # early, which narrows the authentication-policy gaps.
    prefetch_degree: int = 0
    itlb_entries: int = 128
    dtlb_entries: int = 128
    tlb_associativity: int = 4
    tlb_miss_latency: int = 30
    page_bytes: int = 4096
    seed: int = 2006

    def __post_init__(self):
        if self.l2.line_bytes % self.l1d.line_bytes:
            raise ConfigError("L2 line must be a multiple of the L1 line")

    def with_l2_size(self, size_bytes):
        """Return a copy with the L2 resized (latency follows Table 3)."""
        return replace(self, l2=l2_config(size_bytes))

    def with_ruu(self, entries):
        """Return a copy with a different RUU size (Section 5.3.2)."""
        return replace(self, core=replace(self.core, ruu_entries=entries))

    def with_secure(self, **kwargs):
        """Return a copy with secure-engine fields replaced."""
        return replace(self, secure=replace(self.secure, **kwargs))


def table3_parameters(config=None):
    """Render the Table 3 parameter dump for reports."""
    config = config or SimConfig()
    dram = config.dram
    return [
        ("Frequency", "1.0 GHz (1 cycle == 1 ns)"),
        ("Fetch/Decode width", str(config.core.fetch_width)),
        ("Issue/Commit width", str(config.core.issue_width)),
        ("L1 I-Cache", "DM, 16KB, 32B line"),
        ("L1 D-Cache", "DM, 16KB, 32B line"),
        ("L2 Cache", "4way, unified, 64B line, write-back, %dKB"
         % (config.l2.size_bytes // 1024)),
        ("L1 latency", "%d cycle" % config.l1d.latency),
        ("L2 latency", "%d cycles" % config.l2.latency),
        ("I-TLB", "%d-way, %d entries" % (config.tlb_associativity,
                                          config.itlb_entries)),
        ("D-TLB", "%d-way, %d entries" % (config.tlb_associativity,
                                          config.dtlb_entries)),
        ("RUU", "%d entries" % config.core.ruu_entries),
        ("Memory bus", "200 MHz, %dB wide" % dram.bus_width_bytes),
        ("CAS latency", "%d mem bus clocks" % dram.cas_bus_clocks),
        ("Precharge (RP)", "%d mem bus clocks" % dram.rp_bus_clocks),
        ("RAS-to-CAS (RCD)", "%d mem bus clocks" % dram.rcd_bus_clocks),
        ("Decryption latency", "%d ns" % config.secure.decrypt_latency),
        ("MAC latency", "%d ns" % config.secure.hmac_latency),
    ]
