"""Table 3: processor model parameters."""

from repro.config import SimConfig, table3_parameters
from repro.sim.report import render_table


def run(config=None):
    return table3_parameters(config or SimConfig())


TITLE = "Table 3 -- processor model parameters"


def to_series(rows):
    """Machine-readable twin of the rendered table (string cells)."""
    from repro.obs.export import (build_figure_series, series_from_matrix,
                                  series_panel)
    return build_figure_series(
        "table3", TITLE,
        [series_panel("table3", TITLE,
                      series_from_matrix(["parameter", "value"],
                                         [list(r) for r in rows]),
                      x_label="parameter")])


def emit(config=None, executor=None, failure_policy=None):
    """Both artifact forms: ``(text, series)``.

    executor/failure_policy: interface uniformity only -- the table
    prints SimConfig defaults, no jobs run.
    """
    rows = run(config)
    return (TITLE + "\n"
            + render_table(["parameter", "value"], [list(r) for r in rows]),
            to_series(rows))


def render(config=None, executor=None, failure_policy=None):
    return emit(config, executor=executor,
                failure_policy=failure_policy)[0]


if __name__ == "__main__":
    print(render())
