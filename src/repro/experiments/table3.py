"""Table 3: processor model parameters."""

from repro.config import SimConfig, table3_parameters
from repro.sim.report import render_table


def run(config=None):
    return table3_parameters(config or SimConfig())


def render(config=None, executor=None, failure_policy=None):
    # executor/failure_policy: interface uniformity only -- the table
    # prints SimConfig defaults, no jobs run.
    rows = run(config)
    return ("Table 3 -- processor model parameters\n"
            + render_table(["parameter", "value"], [list(r) for r in rows]))


if __name__ == "__main__":
    print(render())
