"""Figure 8: IPC speedup over authen-then-issue, 256KB L2.

The paper compares authen-then-commit, authen-then-write and
commit+fetch against the conservative authen-then-issue baseline:
commit ~ +12% average, write ~ +14%, commit+fetch ~ +10% for several
benchmarks.

``executor=``/``failure_policy=`` thread through to the underlying
:class:`~repro.sim.sweep.PolicySweep`; a job that fails terminally
under a skipping policy renders as a ``--`` cell.
"""

from repro.config import SimConfig
from repro.policies.registry import policy_set
from repro.sim.report import render_table, series_rows
from repro.sim.sweep import PolicySweep, speedup_over
from repro.workloads.spec import fp_benchmarks, int_benchmarks

REFERENCE = "authen-then-issue"
COMPARED = policy_set("figure8")


def run(num_instructions=12_000, warmup=12_000, l2_bytes=256 * 1024,
        benchmarks=None, compared=COMPARED, executor=None,
        failure_policy=None):
    if benchmarks is None:
        benchmarks = int_benchmarks() + fp_benchmarks()
    config = SimConfig().with_l2_size(l2_bytes)
    sweep = PolicySweep(benchmarks, [REFERENCE] + list(compared),
                        config=config, num_instructions=num_instructions,
                        warmup=warmup).run(include_baseline=False,
                                           executor=executor,
                                           failure_policy=failure_policy)
    return sweep, speedup_over(sweep, REFERENCE, list(compared))


def render(num_instructions=12_000, warmup=12_000, benchmarks=None,
           executor=None, failure_policy=None):
    _, rows = run(num_instructions, warmup, benchmarks=benchmarks,
                  executor=executor, failure_policy=failure_policy)
    headers = ["benchmark"] + list(COMPARED)
    return ("Figure 8 -- IPC speedup over authen-then-issue (256KB L2)\n"
            + render_table(headers, series_rows(rows, list(COMPARED))))


if __name__ == "__main__":
    print(render())
