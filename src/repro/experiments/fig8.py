"""Figure 8: IPC speedup over authen-then-issue, 256KB L2.

The paper compares authen-then-commit, authen-then-write and
commit+fetch against the conservative authen-then-issue baseline:
commit ~ +12% average, write ~ +14%, commit+fetch ~ +10% for several
benchmarks.

``executor=``/``failure_policy=`` thread through to the underlying
:class:`~repro.sim.sweep.PolicySweep`; a job that fails terminally
under a skipping policy renders as a ``--`` cell.
"""

from repro.config import SimConfig
from repro.policies.registry import policy_set
from repro.sim.report import render_table, series_rows
from repro.sim.sweep import PolicySweep, speedup_over
from repro.workloads.spec import fp_benchmarks, int_benchmarks

REFERENCE = "authen-then-issue"
COMPARED = policy_set("figure8")
TITLE = "Figure 8 -- IPC speedup over authen-then-issue (256KB L2)"


def run(num_instructions=12_000, warmup=12_000, l2_bytes=256 * 1024,
        benchmarks=None, compared=COMPARED, executor=None,
        failure_policy=None):
    if benchmarks is None:
        benchmarks = int_benchmarks() + fp_benchmarks()
    config = SimConfig().with_l2_size(l2_bytes)
    sweep = PolicySweep(benchmarks, [REFERENCE] + list(compared),
                        config=config, num_instructions=num_instructions,
                        warmup=warmup).run(include_baseline=False,
                                           executor=executor,
                                           failure_policy=failure_policy)
    return sweep, speedup_over(sweep, REFERENCE, list(compared))


def to_series(rows):
    """Machine-readable twin of the rendered table (same numbers)."""
    from repro.obs.export import (build_figure_series, series_from_rows,
                                  series_panel)
    return build_figure_series(
        "fig8", TITLE,
        [series_panel("fig8", TITLE, series_from_rows(rows,
                                                      list(COMPARED)))])


def emit(num_instructions=12_000, warmup=12_000, benchmarks=None,
         executor=None, failure_policy=None):
    """One workload run, both artifact forms: ``(text, series)``."""
    _, rows = run(num_instructions, warmup, benchmarks=benchmarks,
                  executor=executor, failure_policy=failure_policy)
    headers = ["benchmark"] + list(COMPARED)
    text = TITLE + "\n" + render_table(headers,
                                       series_rows(rows, list(COMPARED)))
    return text, to_series(rows)


def render(num_instructions=12_000, warmup=12_000, benchmarks=None,
           executor=None, failure_policy=None):
    return emit(num_instructions, warmup, benchmarks=benchmarks,
                executor=executor, failure_policy=failure_policy)[0]


if __name__ == "__main__":
    print(render())
