"""Figures 10 and 11: sensitivity to the RUU size (64 entries).

Figure 10: normalized IPC of the four schemes with a 64-entry RUU.
Figure 11: speedup of authen-then-commit and commit+fetch over
authen-then-issue with the 64-entry RUU.  The paper finds the same
performance ranking as with 128 entries.

Both figures come from one sweep, so ``executor=``/``failure_policy=``
thread straight through to it; failed cells render as ``--``.
"""

from repro.config import SimConfig
from repro.policies.registry import policy_set
from repro.sim.report import render_table, series_rows
from repro.sim.sweep import PolicySweep, normalized_ipc_table, speedup_over
from repro.workloads.spec import fp_benchmarks, int_benchmarks

FIG10_POLICIES = policy_set("figure10")


def run(ruu_entries=64, num_instructions=12_000, warmup=12_000,
        l2_bytes=256 * 1024, benchmarks=None, executor=None,
        failure_policy=None):
    if benchmarks is None:
        benchmarks = int_benchmarks() + fp_benchmarks()
    config = SimConfig().with_l2_size(l2_bytes).with_ruu(ruu_entries)
    sweep = PolicySweep(benchmarks, list(FIG10_POLICIES), config=config,
                        num_instructions=num_instructions,
                        warmup=warmup).run(executor=executor,
                                           failure_policy=failure_policy)
    fig10 = normalized_ipc_table(sweep, list(FIG10_POLICIES))
    fig11 = speedup_over(sweep, "authen-then-issue",
                         ["authen-then-commit", "commit+fetch"])
    return sweep, fig10, fig11


FIG11_POLICIES = ("authen-then-commit", "commit+fetch")
TITLE = "Figures 10 and 11 -- RUU-size sensitivity"


def to_series(fig10, fig11, ruu_entries=64):
    """Machine-readable twin of the two rendered tables."""
    from repro.obs.export import (build_figure_series, series_from_rows,
                                  series_panel)
    return build_figure_series(
        "fig10", TITLE,
        [series_panel("fig10",
                      "Figure 10 -- normalized IPC, %d-entry RUU "
                      "(256KB L2)" % ruu_entries,
                      series_from_rows(fig10, list(FIG10_POLICIES))),
         series_panel("fig11",
                      "Figure 11 -- speedup over authen-then-issue, "
                      "%d-entry RUU" % ruu_entries,
                      series_from_rows(fig11, list(FIG11_POLICIES)))])


def emit(ruu_entries=64, num_instructions=12_000, warmup=12_000,
         benchmarks=None, executor=None, failure_policy=None):
    """One workload run, both artifact forms: ``(text, series)``."""
    _, fig10, fig11 = run(ruu_entries, num_instructions, warmup,
                          benchmarks=benchmarks, executor=executor,
                          failure_policy=failure_policy)
    out = [
        "Figure 10 -- normalized IPC, %d-entry RUU (256KB L2)" % ruu_entries,
        render_table(["benchmark"] + list(FIG10_POLICIES),
                     series_rows(fig10, list(FIG10_POLICIES))),
        "",
        "Figure 11 -- speedup over authen-then-issue, %d-entry RUU"
        % ruu_entries,
        render_table(
            ["benchmark"] + list(FIG11_POLICIES),
            series_rows(fig11, list(FIG11_POLICIES)),
        ),
    ]
    return "\n".join(out), to_series(fig10, fig11, ruu_entries)


def render(ruu_entries=64, num_instructions=12_000, warmup=12_000,
           benchmarks=None, executor=None, failure_policy=None):
    return emit(ruu_entries, num_instructions, warmup,
                benchmarks=benchmarks, executor=executor,
                failure_policy=failure_policy)[0]


if __name__ == "__main__":
    print(render())
