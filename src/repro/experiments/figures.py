"""Regenerate paper artifacts as text files: ``repro figures``.

One registry maps every artifact the reproduction produces -- the three
tables, the five figure families, and the ablation / variance /
sensitivity studies -- to a callable that renders its text form.
:func:`run_figures` regenerates any subset under **one** shared
executor (``executor_scope`` spans all requested figures, so a warm
worker pool and the trace cache are reused across them), writes
``<out>/<name>.txt`` per artifact plus one combined
``figures-manifest.json`` recording the backend and every job outcome.

Results are bit-identical across backends: the text artifacts produced
with ``--jobs 8`` are byte-for-byte the artifacts produced serially,
and the manifests differ only in the recorded ``backend`` (and
phases/git metadata).

Failure handling mirrors the sweep CLI: under a skipping
:class:`~repro.exec.retry.FailurePolicy` a terminally-failed job leaves
``--`` cells in its table, a failure footer in the artifact, and a
non-zero failure count in the manifest -- the other figures still
regenerate.
"""

from repro.exec import executor_scope
from repro.exec.retry import STATUS_FAILED


class _OutcomeRecorder:
    """Executor proxy that audits one figure's jobs.

    Delegates ``run()`` to the shared inner executor, injects the
    figure-level failure policy whenever the callee did not supply one,
    and accumulates every job's outcome across the (possibly many)
    sweeps a single figure runs.  This keeps per-figure bookkeeping out
    of the experiment modules: they just thread ``executor=`` through.
    """

    def __init__(self, inner, failure_policy=None, metrics=None):
        self._inner = inner
        self._failure_policy = failure_policy
        self._metrics = metrics
        self.outcomes = {}   # job_id -> JobResult
        self.job_keys = {}   # job_id -> (benchmark, policy)

    def run(self, jobs, **kwargs):
        jobs = list(jobs)
        if kwargs.get("failure_policy") is None:
            kwargs["failure_policy"] = self._failure_policy
        if kwargs.get("metrics") is None:
            kwargs["metrics"] = self._metrics
        results = self._inner.run(jobs, **kwargs)
        for job in jobs:
            # A grouped job settles as its member jobs (one outcome per
            # member job_id), so audit the members, not the group.
            for member in getattr(job, "member_jobs", (job,)):
                self.job_keys[member.job_id] = (member.benchmark,
                                                member.policy)
        self.outcomes.update(self._inner.last_outcomes)
        return results

    @property
    def last_outcomes(self):
        return self._inner.last_outcomes

    def describe(self):
        return self._inner.describe()

    def close(self):
        """No-op: the inner executor's scope is owned by run_figures."""

    def failure_lines(self):
        """Human-readable terminal failures, sorted by (bench, policy)."""
        lines = []
        for job_id, outcome in self.outcomes.items():
            if outcome.status != STATUS_FAILED:
                continue
            benchmark, policy = self.job_keys.get(job_id, (job_id, "?"))
            lines.append("  %s/%s: %s after %d attempt(s)"
                         % (benchmark, policy, outcome.error,
                            outcome.attempts))
        return sorted(lines)

    def manifest_jobs(self):
        """Outcome dicts sorted by job_id, volatile fields stripped.

        Wall time, cache hits and peak RSS differ between a serial and
        a parallel regeneration of the same artifacts (and between
        machines); dropping them keeps the combined manifest comparable
        across backends.
        """
        from repro.exec.retry import JobResult

        jobs = []
        for job_id in sorted(self.outcomes):
            outcome = self.outcomes[job_id].as_dict()
            for field in JobResult.VOLATILE_FIELDS:
                outcome.pop(field, None)
            benchmark, policy = self.job_keys.get(job_id, (None, None))
            outcome["benchmark"] = benchmark
            outcome["policy"] = policy
            jobs.append(outcome)
        return jobs

    def rollup(self):
        """Per-figure outcome rollup (backend-identical by construction:
        derived from statuses and attempt counts only)."""
        counts = {"total": len(self.outcomes), "ok": 0, "resumed": 0,
                  "failed": 0, "retried": 0}
        for outcome in self.outcomes.values():
            if outcome.status in counts:
                counts[outcome.status] += 1
            if outcome.attempts > 1:
                counts["retried"] += 1
        return counts


def _emit_table1(ctx):
    from repro.experiments import table1
    return table1.emit(executor=ctx["executor"],
                       failure_policy=ctx["failure_policy"])


def _emit_table2(ctx):
    from repro.experiments import table2
    return table2.emit(executor=ctx["executor"],
                       failure_policy=ctx["failure_policy"])


def _emit_table3(ctx):
    from repro.experiments import table3
    return table3.emit(executor=ctx["executor"],
                       failure_policy=ctx["failure_policy"])


def _emit_fig6(ctx):
    from repro.experiments import fig6
    return fig6.emit(executor=ctx["executor"],
                     failure_policy=ctx["failure_policy"])


def _emit_fig7(ctx):
    from repro.experiments import fig7
    per_suite = None
    if ctx["benchmarks"] is not None:
        per_suite = {"int": list(ctx["benchmarks"]),
                     "fp": list(ctx["benchmarks"])}
    return fig7.emit(num_instructions=ctx["num_instructions"],
                     warmup=ctx["warmup"],
                     benchmarks_per_suite=per_suite,
                     executor=ctx["executor"],
                     failure_policy=ctx["failure_policy"])


def _emit_fig8(ctx):
    from repro.experiments import fig8
    return fig8.emit(num_instructions=ctx["num_instructions"],
                     warmup=ctx["warmup"],
                     benchmarks=ctx["benchmarks"],
                     executor=ctx["executor"],
                     failure_policy=ctx["failure_policy"])


def _emit_fig9(ctx):
    from repro.experiments import fig9
    return fig9.emit(num_instructions=ctx["num_instructions"],
                     warmup=ctx["warmup"],
                     benchmarks=ctx["benchmarks"],
                     executor=ctx["executor"],
                     failure_policy=ctx["failure_policy"])


def _emit_fig10(ctx):
    from repro.experiments import fig10_11
    return fig10_11.emit(num_instructions=ctx["num_instructions"],
                         warmup=ctx["warmup"],
                         benchmarks=ctx["benchmarks"],
                         executor=ctx["executor"],
                         failure_policy=ctx["failure_policy"])


def _emit_fig12(ctx):
    from repro.experiments import fig12_13
    return fig12_13.emit(num_instructions=ctx["num_instructions"],
                         warmup=ctx["warmup"],
                         benchmarks=ctx["benchmarks"],
                         executor=ctx["executor"],
                         failure_policy=ctx["failure_policy"])


def _emit_ablations(ctx):
    from repro.experiments import ablations
    kwargs = dict(num_instructions=ctx["num_instructions"],
                  warmup=ctx["warmup"],
                  executor=ctx["executor"],
                  failure_policy=ctx["failure_policy"])
    if ctx["benchmarks"] is not None:
        kwargs["benchmarks"] = tuple(ctx["benchmarks"])
    return ablations.emit(**kwargs)


def _emit_variance(ctx):
    from repro.experiments import variance
    kwargs = dict(num_instructions=ctx["num_instructions"],
                  warmup=ctx["warmup"],
                  executor=ctx["executor"],
                  failure_policy=ctx["failure_policy"])
    if ctx["benchmarks"] is not None:
        kwargs["benchmarks"] = tuple(ctx["benchmarks"])
    return variance.emit(**kwargs)


def _emit_sensitivity(ctx):
    from repro.experiments import sensitivity
    kwargs = dict(num_instructions=ctx["num_instructions"],
                  warmup=ctx["warmup"],
                  executor=ctx["executor"],
                  failure_policy=ctx["failure_policy"])
    if ctx["benchmarks"] is not None:
        kwargs["benchmarks"] = tuple(ctx["benchmarks"])
    return sensitivity.emit(**kwargs)


#: Every regenerable artifact, in deterministic regeneration order.
#: Names match the single-figure CLI subcommands (fig10 renders Figures
#: 10 and 11; fig12 renders Figures 12 and 13).  Each callable runs the
#: figure's workload once and returns ``(text, series)`` -- the ``.txt``
#: render and its machine-readable figure-series twin.
ARTIFACTS = {
    "table1": _emit_table1,
    "table2": _emit_table2,
    "table3": _emit_table3,
    "fig6": _emit_fig6,
    "fig7": _emit_fig7,
    "fig8": _emit_fig8,
    "fig9": _emit_fig9,
    "fig10": _emit_fig10,
    "fig12": _emit_fig12,
    "ablations": _emit_ablations,
    "variance": _emit_variance,
    "sensitivity": _emit_sensitivity,
}


def run_figures(names, out_dir, num_instructions=12_000, warmup=12_000,
                jobs=None, executor=None, failure_policy=None,
                benchmarks=None, log=None, metrics=None,
                emit_json=False):
    """Regenerate ``names`` (artifact keys) into ``out_dir``.

    All figures share one executor: a borrowed ``executor`` is used and
    left open, otherwise one is built for ``jobs`` workers and closed on
    exit.  ``benchmarks`` (optional sequence) shrinks every sweep-backed
    figure to that benchmark set -- used by tests and the chaos smoke.

    Writes ``<out_dir>/<name>.txt`` per artifact (with a failure footer
    when jobs failed terminally under a skipping ``failure_policy``) and
    ``<out_dir>/figures-manifest.json``.  With ``emit_json`` each
    artifact additionally gets its machine-readable figure-series twin
    at ``<out_dir>/<name>.json`` (written atomically, so a concurrent
    reader -- the figure server -- never sees a torn file; the text
    artifact is complete before the JSON appears, making the JSON the
    figure's warm marker).  Returns a dict with ``entries`` (per-figure
    manifest entries), ``manifest_path``, ``artifact_paths`` and
    ``total_failures``.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) is
    threaded through every sweep and additionally receives one
    ``repro_figure_jobs_total{figure,status}`` rollup per artifact.
    """
    import os

    from repro.obs.export import (build_figures_manifest, write_json,
                                  write_json_atomic)

    unknown = [name for name in names if name not in ARTIFACTS]
    if unknown:
        raise KeyError("unknown artifact(s): %s (choose from %s)"
                       % (", ".join(unknown), ", ".join(ARTIFACTS)))
    os.makedirs(out_dir, exist_ok=True)
    entries = []
    artifact_paths = {}
    with executor_scope(executor, jobs=jobs) as inner:
        for name in ARTIFACTS:   # registry order, not request order
            if name not in names:
                continue
            recorder = _OutcomeRecorder(inner,
                                        failure_policy=failure_policy,
                                        metrics=metrics)
            ctx = {
                "num_instructions": num_instructions,
                "warmup": warmup,
                "executor": recorder,
                "failure_policy": None,  # recorder injects per sweep
                "benchmarks": benchmarks,
            }
            text, series = ARTIFACTS[name](ctx)
            failures = recorder.failure_lines()
            if failures:
                text += ("\n\n%d job(s) failed terminally and are "
                         "shown as --:\n" % len(failures)
                         + "\n".join(failures))
            path = os.path.join(out_dir, "%s.txt" % name)
            with open(path, "w") as handle:
                handle.write(text + "\n")
            artifact_paths[name] = path
            series_artifact = None
            if emit_json:
                series_artifact = "%s.json" % name
                write_json_atomic(series,
                                  os.path.join(out_dir, series_artifact))
            manifest_jobs = recorder.manifest_jobs()
            entries.append({
                "name": name,
                "artifact": "%s.txt" % name,
                "series_artifact": series_artifact,
                "jobs": manifest_jobs,
                "rollup": recorder.rollup(),
                "failures": [job for job in manifest_jobs
                             if job["status"] == STATUS_FAILED],
            })
            if metrics is not None and metrics.enabled:
                figure_jobs = metrics.counter(
                    "repro_figure_jobs_total",
                    "Figure-regeneration jobs settled, by artifact and "
                    "terminal status", ("figure", "status"))
                for outcome in recorder.outcomes.values():
                    figure_jobs.labels(name, outcome.status).inc()
            if log is not None:
                log("%-12s -> %s (%d job(s), %d failed)"
                    % (name, path, len(manifest_jobs), len(failures)))
        backend = inner.describe()
    manifest = build_figures_manifest(entries, backend=backend,
                                      num_instructions=num_instructions,
                                      warmup=warmup)
    manifest_path = os.path.join(out_dir, "figures-manifest.json")
    write_json(manifest, manifest_path)
    return {
        "entries": entries,
        "manifest_path": manifest_path,
        "artifact_paths": artifact_paths,
        "total_failures": manifest["total_failures"],
    }
