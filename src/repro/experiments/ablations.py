"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper -- these probe the knobs the paper fixes:

- ``mac_latency_sweep``: how the decrypt-to-verify gap (the HMAC latency)
  scales each scheme's overhead;
- ``queue_depth_sweep``: backpressure from a shallow authentication queue;
- ``store_buffer_sweep``: authen-then-write's sensitivity to the store
  buffer that holds unverified stores;
- ``fetch_variant_comparison``: the tag variant vs the drain variant of
  authen-then-fetch (Section 4.2.4 describes both);
- ``lazy_comparison``: lazy authentication (Yan et al. [25]) against the
  gated schemes -- it should cost nearly nothing and protect nothing.

Every grid accepts ``executor=`` (one backend, and therefore one warm
worker pool, shared across its configurations) and ``failure_policy=``
(a :class:`~repro.exec.retry.FailurePolicy`); a grid point whose jobs
all failed under a skipping policy reports None and renders as ``--``.
"""

from repro.config import SimConfig
from repro.exec import executor_scope
from repro.sim.sweep import PolicySweep

DEFAULT_BENCHMARKS = ("mcf", "twolf", "swim", "mgrid", "ammp", "gcc")


def _sweep(benchmarks, policies, config, num_instructions, warmup,
           executor, include_baseline=True, failure_policy=None):
    """One grid point through the shared executor."""
    return PolicySweep(list(benchmarks), list(policies), config=config,
                       num_instructions=num_instructions,
                       warmup=warmup).run(include_baseline=include_baseline,
                                          executor=executor,
                                          failure_policy=failure_policy)


def _average(config, policy, benchmarks, num_instructions, warmup,
             executor=None, failure_policy=None):
    sweep = _sweep(benchmarks, [policy], config, num_instructions,
                   warmup, executor, failure_policy=failure_policy)
    return sweep.average_normalized(policy)


def mac_latency_sweep(latencies=(20, 74, 150, 300),
                      policy="authen-then-commit",
                      benchmarks=DEFAULT_BENCHMARKS,
                      num_instructions=8000, warmup=8000, executor=None,
                      failure_policy=None):
    """Normalized IPC of ``policy`` as the MAC latency grows.

    Every grid function here shares one executor (and therefore one
    warm worker pool) across its configurations, and the trace cache
    means each benchmark's trace is generated once for the whole grid,
    not once per latency.
    """
    out = {}
    with executor_scope(executor) as ex:
        for latency in latencies:
            config = SimConfig().with_secure(hmac_latency=latency)
            out[latency] = _average(config, policy, benchmarks,
                                    num_instructions, warmup, executor=ex,
                                    failure_policy=failure_policy)
    return out


def queue_depth_sweep(depths=(2, 4, 16, 64),
                      policy="authen-then-commit",
                      benchmarks=DEFAULT_BENCHMARKS,
                      num_instructions=8000, warmup=8000, executor=None,
                      failure_policy=None):
    """Normalized IPC vs authentication-queue depth (backpressure)."""
    out = {}
    with executor_scope(executor) as ex:
        for depth in depths:
            config = SimConfig().with_secure(auth_queue_depth=depth)
            out[depth] = _average(config, policy, benchmarks,
                                  num_instructions, warmup, executor=ex,
                                  failure_policy=failure_policy)
    return out


def store_buffer_sweep(entries=(2, 8, 32),
                       benchmarks=DEFAULT_BENCHMARKS,
                       num_instructions=8000, warmup=8000, executor=None,
                       failure_policy=None):
    """authen-then-write vs the unverified-store buffer size."""
    out = {}
    with executor_scope(executor) as ex:
        for count in entries:
            config = SimConfig().with_secure(store_buffer_entries=count)
            out[count] = _average(config, "authen-then-write", benchmarks,
                                  num_instructions, warmup, executor=ex,
                                  failure_policy=failure_policy)
    return out


def fetch_variant_comparison(benchmarks=DEFAULT_BENCHMARKS,
                             num_instructions=8000, warmup=8000,
                             executor=None, failure_policy=None):
    """Tag vs drain vs precise variants of authen-then-fetch.

    A noteworthy (and initially counter-intuitive) finding: the
    dependency-tracking *precise* variant is often **slower** than the
    LastRequest-tag simplification on branchy code.  Control dependence
    is transitive, so once a branch tests a freshly loaded (not yet
    verified) value, every subsequent fetch inherits that load's
    verification frontier -- whereas the tag variant only waits on blocks
    that had physically arrived before the triggering instruction issued.
    Precise wins only on stream codes with rare, predictable branches
    (e.g. swim).  The paper's claim that the simple variants "sufficiently
    satisfy all the requirements" thus comes with no performance penalty.
    """
    sweep = _sweep(benchmarks,
                   ["authen-then-fetch", "authen-then-fetch-drain",
                    "authen-then-fetch-precise"],
                   None, num_instructions, warmup, executor,
                   failure_policy=failure_policy)
    return {
        "tag": sweep.average_normalized("authen-then-fetch"),
        "drain": sweep.average_normalized("authen-then-fetch-drain"),
        "precise": sweep.average_normalized("authen-then-fetch-precise"),
    }


def encryption_mode_comparison(benchmarks=DEFAULT_BENCHMARKS,
                               policies=("decrypt-only",
                                         "authen-then-issue",
                                         "authen-then-commit"),
                               num_instructions=8000, warmup=8000,
                               executor=None, failure_policy=None):
    """Counter mode + HMAC vs CBC + CBC-MAC (Table 1, as performance).

    Returns ``{mode: {policy: avg IPC}}`` (absolute IPC, shared traces).
    Expected shape, and why the paper prefers counter mode: CBC's serial
    per-chunk decryption puts 100+ cycles on every miss's critical path,
    so its *absolute* IPC is far lower even though the full-line
    decrypt-to-verify gap is zero.  Early chunks still wait for the
    line's CBC-MAC, so gated policies pay under CBC too.
    """
    out = {}
    with executor_scope(executor) as ex:
        for mode in ("ctr", "cbc"):
            config = SimConfig().with_secure(encryption_mode=mode)
            sweep = _sweep(benchmarks, policies, config,
                           num_instructions, warmup, ex,
                           include_baseline=False,
                           failure_policy=failure_policy)
            out[mode] = {
                policy: sum(sweep.ipc(b, policy) for b in benchmarks)
                / len(benchmarks)
                for policy in policies
            }
    return out


def mac_scheme_comparison(benchmarks=DEFAULT_BENCHMARKS,
                          policies=("authen-then-issue",
                                    "authen-then-commit",
                                    "commit+fetch"),
                          num_instructions=8000, warmup=8000,
                          executor=None, failure_policy=None):
    """HMAC vs GMAC verification (the direction later work took).

    A Galois MAC closes the decrypt-to-verify gap to a few cycles, which
    collapses the cost of *every* control point -- even authen-then-issue
    becomes nearly free.  Returns ``{scheme: {policy: normalized IPC}}``.
    """
    out = {}
    with executor_scope(executor) as ex:
        for scheme in ("hmac", "gmac"):
            config = SimConfig().with_secure(mac_scheme=scheme)
            sweep = _sweep(benchmarks, policies, config,
                           num_instructions, warmup, ex,
                           failure_policy=failure_policy)
            out[scheme] = {p: sweep.average_normalized(p)
                           for p in policies}
    return out


def prefetch_sweep(degrees=(0, 2, 4),
                   policies=("decrypt-only", "authen-then-issue",
                             "authen-then-commit"),
                   benchmarks=("swim", "mgrid", "applu"),
                   num_instructions=8000, warmup=8000, executor=None,
                   failure_policy=None):
    """Stream prefetching vs the authentication gap.

    Prefetched lines start verification the moment they arrive, usually
    *before* the demand access that would expose the gap -- so a stream
    prefetcher disproportionately helps the strict policies.  Returns
    ``{degree: {policy: avg absolute IPC}}`` on the stream benchmarks.
    """
    import dataclasses

    out = {}
    with executor_scope(executor) as ex:
        for degree in degrees:
            config = dataclasses.replace(SimConfig(),
                                         prefetch_degree=degree)
            sweep = _sweep(benchmarks, policies, config,
                           num_instructions, warmup, ex,
                           include_baseline=False,
                           failure_policy=failure_policy)
            out[degree] = {
                policy: sum(sweep.ipc(b, policy) for b in benchmarks)
                / len(benchmarks)
                for policy in policies
            }
    return out


def split_counter_comparison(benchmarks=DEFAULT_BENCHMARKS,
                             policy="authen-then-commit",
                             num_instructions=8000, warmup=8000,
                             executor=None, failure_policy=None):
    """Monolithic vs split (major/minor) counters, with prediction off so
    the counter-cache coverage difference is visible.

    Reports *absolute* average IPC: split counters speed up the
    decryption path itself (fewer counter fetches), which benefits the
    baseline and every policy alike, so normalized IPC would hide it.
    """
    out = {}
    with executor_scope(executor) as ex:
        for split in (False, True):
            config = SimConfig().with_secure(split_counters=split,
                                             counter_prediction_rate=0.0)
            sweep = _sweep(benchmarks, [policy], config,
                           num_instructions, warmup, ex,
                           include_baseline=False,
                           failure_policy=failure_policy)
            out["split" if split else "monolithic"] = sum(
                sweep.ipc(b, policy) for b in benchmarks) \
                / len(benchmarks)
    return out


def lazy_comparison(benchmarks=DEFAULT_BENCHMARKS,
                    num_instructions=8000, warmup=8000, executor=None,
                    failure_policy=None):
    """Lazy authentication vs commit gating (performance side of [25])."""
    sweep = _sweep(benchmarks, ["lazy", "authen-then-commit"], None,
                   num_instructions, warmup, executor,
                   failure_policy=failure_policy)
    return {
        "lazy": sweep.average_normalized("lazy"),
        "authen-then-commit": sweep.average_normalized(
            "authen-then-commit"),
    }


def to_series(mac, depth, lazy, benchmarks=DEFAULT_BENCHMARKS):
    """Machine-readable twin of the three rendered grids."""
    from repro.obs.export import (build_figure_series, series_panel)
    title = ("Ablations -- normalized IPC of authen-then-commit "
             "(averaged over %s)" % ", ".join(benchmarks))

    def grid_series(grid):
        return [{"name": "normalized ipc",
                 "points": [{"x": key, "y": grid[key]}
                            for key in sorted(grid)]}]

    return build_figure_series(
        "ablations", title,
        [series_panel("mac-latency", "MAC latency sweep",
                      grid_series(mac), x_label="hmac_latency"),
         series_panel("queue-depth", "Authentication-queue depth sweep",
                      grid_series(depth), x_label="queue_depth"),
         series_panel("lazy", "Lazy authentication vs commit gating",
                      grid_series(lazy), x_label="policy")])


def emit(num_instructions=8000, warmup=8000,
         benchmarks=DEFAULT_BENCHMARKS, executor=None,
         failure_policy=None):
    """Both artifact forms for ``repro figures``: ``(text, series)``.

    Covers the three grids DESIGN.md leans on most -- MAC latency,
    authentication-queue depth and the lazy-vs-gated comparison -- under
    one shared executor.  The exhaustive grids remain importable
    functions; this keeps the regenerated artifact bounded.
    """
    from repro.sim.report import render_table

    with executor_scope(executor) as ex:
        mac = mac_latency_sweep(benchmarks=benchmarks,
                                num_instructions=num_instructions,
                                warmup=warmup, executor=ex,
                                failure_policy=failure_policy)
        depth = queue_depth_sweep(benchmarks=benchmarks,
                                  num_instructions=num_instructions,
                                  warmup=warmup, executor=ex,
                                  failure_policy=failure_policy)
        lazy = lazy_comparison(benchmarks=benchmarks,
                               num_instructions=num_instructions,
                               warmup=warmup, executor=ex,
                               failure_policy=failure_policy)
    out = [
        "Ablations -- normalized IPC of authen-then-commit "
        "(averaged over %s)" % ", ".join(benchmarks),
        "",
        "MAC latency sweep:",
        render_table(["hmac_latency", "normalized ipc"],
                     [[latency, mac[latency]] for latency in sorted(mac)]),
        "",
        "Authentication-queue depth sweep:",
        render_table(["queue_depth", "normalized ipc"],
                     [[d, depth[d]] for d in sorted(depth)]),
        "",
        "Lazy authentication vs commit gating:",
        render_table(["policy", "normalized ipc"],
                     [[name, lazy[name]] for name in sorted(lazy)]),
    ]
    return "\n".join(out), to_series(mac, depth, lazy, benchmarks)


def render(num_instructions=8000, warmup=8000,
           benchmarks=DEFAULT_BENCHMARKS, executor=None,
           failure_policy=None):
    return emit(num_instructions, warmup, benchmarks=benchmarks,
                executor=executor, failure_policy=failure_policy)[0]
