"""Table 2: security characteristics of the schemes.

Two views: the *analytical* matrix (the policies' declared properties,
matching the paper's table) and the *empirical* first column, obtained by
actually running the Section 3 exploits against each policy on the
functional secure machine.
"""

from repro.attacks.harness import (
    FETCH_CHANNEL_ATTACKS,
    empirical_security_matrix,
)
from repro.policies.security import TABLE2_POLICIES, table2_rows
from repro.sim.report import render_table


def run_static(policies=TABLE2_POLICIES):
    """The analytical matrix (paper's Table 2)."""
    return table2_rows(policies)


def run_empirical(policies=TABLE2_POLICIES, attacks=FETCH_CHANNEL_ATTACKS):
    """Attack-by-attack outcomes per policy."""
    return empirical_security_matrix(policies, attacks)


def render(policies=TABLE2_POLICIES, empirical=True, executor=None,
           failure_policy=None):
    # executor/failure_policy: interface uniformity only -- the
    # empirical column runs the functional attack harness in-process,
    # not SimJobs through the executor.
    rows = run_static(policies)
    out = ["Table 2 -- characteristics of the authentication schemes",
           render_table(rows[0], rows[1:])]
    if empirical:
        matrix = run_empirical(policies)
        headers = ["scheme"] + [a for a in FETCH_CHANNEL_ATTACKS]
        table = []
        for policy in policies:
            table.append(
                [policy]
                + ["LEAK" if matrix[policy][a].leaked else "blocked"
                   for a in FETCH_CHANNEL_ATTACKS]
            )
        out.append("")
        out.append("Empirical fetch-side-channel outcomes "
                   "(functional machine, real ciphertext tampering):")
        out.append(render_table(headers, table))
    return "\n".join(out)


if __name__ == "__main__":
    print(render())
