"""Table 2: security characteristics of the schemes.

Two views: the *analytical* matrix (the policies' declared properties,
matching the paper's table) and the *empirical* first column, obtained by
actually running the Section 3 exploits against each policy on the
functional secure machine.
"""

from repro.attacks.harness import (
    FETCH_CHANNEL_ATTACKS,
    empirical_security_matrix,
)
from repro.policies.security import TABLE2_POLICIES, table2_rows
from repro.sim.report import render_table


def run_static(policies=TABLE2_POLICIES):
    """The analytical matrix (paper's Table 2)."""
    return table2_rows(policies)


def run_empirical(policies=TABLE2_POLICIES, attacks=FETCH_CHANNEL_ATTACKS):
    """Attack-by-attack outcomes per policy."""
    return empirical_security_matrix(policies, attacks)


TITLE = "Table 2 -- characteristics of the authentication schemes"
EMPIRICAL_TITLE = ("Empirical fetch-side-channel outcomes "
                   "(functional machine, real ciphertext tampering)")


def _empirical_table(policies, matrix):
    headers = ["scheme"] + [a for a in FETCH_CHANNEL_ATTACKS]
    table = []
    for policy in policies:
        table.append(
            [policy]
            + ["LEAK" if matrix[policy][a].leaked else "blocked"
               for a in FETCH_CHANNEL_ATTACKS]
        )
    return headers, table


def to_series(rows, matrix=None, policies=TABLE2_POLICIES):
    """Machine-readable twin of the rendered tables (string cells)."""
    from repro.obs.export import (build_figure_series, series_from_matrix,
                                  series_panel)
    panels = [series_panel("static", TITLE,
                           series_from_matrix(rows[0], rows[1:]),
                           x_label=rows[0][0])]
    if matrix is not None:
        headers, table = _empirical_table(policies, matrix)
        panels.append(series_panel("empirical", EMPIRICAL_TITLE,
                                   series_from_matrix(headers, table),
                                   x_label="scheme"))
    return build_figure_series("table2", TITLE, panels)


def emit(policies=TABLE2_POLICIES, empirical=True, executor=None,
         failure_policy=None):
    """Both artifact forms: ``(text, series)``.

    executor/failure_policy: interface uniformity only -- the
    empirical column runs the functional attack harness in-process,
    not SimJobs through the executor.
    """
    rows = run_static(policies)
    out = [TITLE, render_table(rows[0], rows[1:])]
    matrix = None
    if empirical:
        matrix = run_empirical(policies)
        headers, table = _empirical_table(policies, matrix)
        out.append("")
        out.append(EMPIRICAL_TITLE + ":")
        out.append(render_table(headers, table))
    return "\n".join(out), to_series(rows, matrix, policies)


def render(policies=TABLE2_POLICIES, empirical=True, executor=None,
           failure_policy=None):
    return emit(policies, empirical, executor=executor,
                failure_policy=failure_policy)[0]


if __name__ == "__main__":
    print(render())
