"""Figures 12 and 13: hash-tree (CHTree) authentication.

Figure 12: normalized IPC of five schemes when per-line MACs are replaced
by an m-ary hash tree with an 8KB on-chip node cache.  Verification
latency grows (tree-node fetches), every scheme slows down, and the gaps
between authen-then-write / commit / fetch compress -- while the ranking
stays the same.  Figure 13: speedup of commit and commit+fetch over
authen-then-issue under the tree.

Both figures come from one sweep, so ``executor=``/``failure_policy=``
thread straight through to it; failed cells render as ``--``.
"""

from repro.config import SimConfig
from repro.policies.registry import policy_set
from repro.sim.report import render_table, series_rows
from repro.sim.sweep import PolicySweep, normalized_ipc_table, speedup_over
from repro.workloads.spec import fp_benchmarks, int_benchmarks

FIG12_POLICIES = policy_set("figure12")


def run(num_instructions=12_000, warmup=12_000, l2_bytes=256 * 1024,
        tree_cache_bytes=8 * 1024, benchmarks=None, executor=None,
        failure_policy=None):
    if benchmarks is None:
        benchmarks = int_benchmarks() + fp_benchmarks()
    config = (SimConfig().with_l2_size(l2_bytes)
              .with_secure(hash_tree_enabled=True,
                           hash_tree_cache_bytes=tree_cache_bytes))
    sweep = PolicySweep(benchmarks, list(FIG12_POLICIES), config=config,
                        num_instructions=num_instructions,
                        warmup=warmup).run(executor=executor,
                                           failure_policy=failure_policy)
    fig12 = normalized_ipc_table(sweep, list(FIG12_POLICIES))
    fig13 = speedup_over(sweep, "authen-then-issue",
                         ["authen-then-commit", "commit+fetch"])
    return sweep, fig12, fig13


FIG13_POLICIES = ("authen-then-commit", "commit+fetch")
TITLE = "Figures 12 and 13 -- CHTree hash-tree authentication"
FIG12_TITLE = ("Figure 12 -- normalized IPC under CHTree hash-tree "
               "authentication (256KB L2, 8KB tree cache; baseline: "
               "decryption only)")
FIG13_TITLE = "Figure 13 -- speedup over authen-then-issue, hash tree"


def to_series(fig12, fig13):
    """Machine-readable twin of the two rendered tables."""
    from repro.obs.export import (build_figure_series, series_from_rows,
                                  series_panel)
    return build_figure_series(
        "fig12", TITLE,
        [series_panel("fig12", FIG12_TITLE,
                      series_from_rows(fig12, list(FIG12_POLICIES))),
         series_panel("fig13", FIG13_TITLE,
                      series_from_rows(fig13, list(FIG13_POLICIES)))])


def emit(num_instructions=12_000, warmup=12_000, benchmarks=None,
         executor=None, failure_policy=None):
    """One workload run, both artifact forms: ``(text, series)``."""
    _, fig12, fig13 = run(num_instructions, warmup,
                          benchmarks=benchmarks, executor=executor,
                          failure_policy=failure_policy)
    out = [
        "Figure 12 -- normalized IPC under CHTree hash-tree authentication"
        " (256KB L2, 8KB tree cache; baseline: decryption only)",
        render_table(["benchmark"] + list(FIG12_POLICIES),
                     series_rows(fig12, list(FIG12_POLICIES))),
        "",
        FIG13_TITLE,
        render_table(
            ["benchmark"] + list(FIG13_POLICIES),
            series_rows(fig13, list(FIG13_POLICIES)),
        ),
    ]
    return "\n".join(out), to_series(fig12, fig13)


def render(num_instructions=12_000, warmup=12_000, benchmarks=None,
           executor=None, failure_policy=None):
    return emit(num_instructions, warmup, benchmarks=benchmarks,
                executor=executor, failure_policy=failure_policy)[0]


if __name__ == "__main__":
    print(render())
