"""Figure 6: timeline of authen-then-fetch vs authen-then-issue.

Two external memory fetches where the second depends on the first, with a
fixed latency ``compute_latency`` between the first fetch's data being
usable and the second fetch's address being ready.

- Under *authen-then-issue*, the dependent computation cannot start until
  the first line is **verified**, so the second fetch issues at
  ``verify1 + compute_latency``.
- Under *authen-then-fetch*, the computation runs on decrypted data
  immediately; only the **bus grant** of the second fetch waits for the
  first line's verification: ``max(data1 + compute_latency, verify1)``.

The advantage of authen-then-fetch is ``min(compute_latency, gap)``.
"""

from dataclasses import dataclass

from repro.config import SimConfig
from repro.mem.controller import MemoryController
from repro.secure.engine import SecureMemoryEngine
from repro.secure.metadata import MetadataLayout


@dataclass
class Timeline:
    scheme: str
    fetch1_issue: int
    data1: int
    verify1: int
    fetch2_issue: int
    data2: int
    verify2: int

    @property
    def finish(self):
        return self.data2


def _fresh_engine(config):
    controller = MemoryController(config.dram,
                                  line_bytes=config.l2.line_bytes)
    layout = MetadataLayout(protected_bytes=1 << 24,
                            line_bytes=config.l2.line_bytes)
    return SecureMemoryEngine(config.secure, layout, controller)


def run(compute_latency=30, config=None):
    """Returns ``{scheme: Timeline}`` for the two schemes."""
    config = config or SimConfig()
    timelines = {}

    # authen-then-issue: the dependent address computation starts only
    # after verification of fetch 1.
    engine = _fresh_engine(config)
    f1 = engine.fetch_line(0x0, 0)
    addr_ready = f1.verify_time + compute_latency
    f2 = engine.fetch_line(0x8000, addr_ready)
    timelines["authen-then-issue"] = Timeline(
        "authen-then-issue", 0, f1.data_time, f1.verify_time,
        addr_ready, f2.data_time, f2.verify_time)

    # authen-then-fetch: computation on decrypted data; bus grant gated.
    engine = _fresh_engine(config)
    f1 = engine.fetch_line(0x0, 0)
    addr_ready = f1.data_time + compute_latency
    f2 = engine.fetch_line(0x8000, addr_ready,
                           gate_time=f1.verify_time)
    timelines["authen-then-fetch"] = Timeline(
        "authen-then-fetch", 0, f1.data_time, f1.verify_time,
        addr_ready, f2.data_time, f2.verify_time)
    return timelines


#: Timeline milestones, in event order (the x axis of the series).
MILESTONES = ("fetch1_issue", "data1", "verify1", "fetch2_issue",
              "data2", "verify2")


def to_series(timelines, compute_latency=30):
    """Machine-readable twin of the timeline render.

    One series per scheme, one point per milestone (cycle numbers),
    plus the headline cycle advantage in ``extra``.
    """
    from repro.obs.export import build_figure_series, series_panel
    title = ("Figure 6 -- two dependent external fetches "
             "(compute latency between them: %d cycles)"
             % compute_latency)
    series = [
        {"name": scheme,
         "points": [{"x": milestone,
                     "y": getattr(timelines[scheme], milestone)}
                    for milestone in MILESTONES]}
        for scheme in ("authen-then-issue", "authen-then-fetch")
    ]
    advantage = (timelines["authen-then-issue"].finish
                 - timelines["authen-then-fetch"].finish)
    return build_figure_series(
        "fig6", title,
        [series_panel("fig6", title, series, x_label="milestone")],
        extra={"advantage_cycles": advantage,
               "compute_latency": compute_latency})


def emit(compute_latency=30, config=None, executor=None,
         failure_policy=None):
    """Both artifact forms of the Figure 6 timeline: ``(text, series)``.

    ``executor``/``failure_policy`` are accepted for interface
    uniformity with the sweep-backed figures (``repro figures`` passes
    them to every artifact) but unused: this figure is two analytic
    engine timelines, not simulation jobs.
    """
    timelines = run(compute_latency, config)
    lines = ["Figure 6 -- two dependent external fetches "
             "(compute latency between them: %d cycles)" % compute_latency]
    for scheme in ("authen-then-issue", "authen-then-fetch"):
        t = timelines[scheme]
        lines.append(
            "%-18s fetch1@%-4d data1@%-4d verify1@%-4d | "
            "fetch2-ready@%-4d data2@%-4d"
            % (t.scheme, t.fetch1_issue, t.data1, t.verify1,
               t.fetch2_issue, t.data2)
        )
    advantage = (timelines["authen-then-issue"].finish
                 - timelines["authen-then-fetch"].finish)
    lines.append("authen-then-fetch finishes %d cycles earlier" % advantage)
    return "\n".join(lines), to_series(timelines, compute_latency)


def render(compute_latency=30, config=None, executor=None,
           failure_policy=None):
    return emit(compute_latency, config, executor=executor,
                failure_policy=failure_policy)[0]


if __name__ == "__main__":
    print(render())
