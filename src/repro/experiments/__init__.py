"""Experiment drivers: one module per table/figure of the paper.

Every module exposes a ``run(...)`` returning plain data structures and a
``render(...)`` producing the text table, so the benchmark harness, the
examples and EXPERIMENTS.md all share one source of truth.

Scale note: the paper simulates 400M-instruction SimPoint windows; these
drivers default to tens of thousands of trace instructions (pure-Python
cycle accounting).  Pass larger ``num_instructions`` for tighter numbers.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10_11,
    fig12_13,
    sensitivity,
    table1,
    table2,
    table3,
    variance,
)

__all__ = ["table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9",
           "fig10_11", "fig12_13", "ablations", "sensitivity", "variance"]
