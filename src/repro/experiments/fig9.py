"""Figure 9: normalized IPC vs re-map cache size.

Address obfuscation + authen-then-commit at three re-map cache sizes;
IPC improves with the size of the re-map cache.
"""

from repro.config import SimConfig
from repro.sim.report import render_table
from repro.sim.sweep import PolicySweep

POLICY = "commit+obfuscation"
DEFAULT_SIZES = (16 * 1024, 64 * 1024, 256 * 1024)


def run(sizes=DEFAULT_SIZES, benchmarks=None, num_instructions=12_000,
        warmup=12_000, l2_bytes=256 * 1024):
    """Returns ``{size: {benchmark: normalized ipc}}`` plus averages."""
    if benchmarks is None:
        from repro.workloads.spec import fp_benchmarks, int_benchmarks

        benchmarks = int_benchmarks() + fp_benchmarks()
    results = {}
    for size in sizes:
        config = (SimConfig().with_l2_size(l2_bytes)
                  .with_secure(remap_cache_bytes=size))
        sweep = PolicySweep(benchmarks, [POLICY], config=config,
                            num_instructions=num_instructions,
                            warmup=warmup).run()
        results[size] = sweep.normalized_series(POLICY)
    return results


def averages(results):
    return {
        size: sum(series.values()) / len(series)
        for size, series in results.items()
    }


def render(sizes=DEFAULT_SIZES, num_instructions=12_000, warmup=12_000):
    results = run(sizes, num_instructions=num_instructions, warmup=warmup)
    benchmarks = sorted(next(iter(results.values())))
    headers = ["benchmark"] + ["%dKB" % (s // 1024) for s in sizes]
    rows = [[b] + [results[s][b] for s in sizes] for b in benchmarks]
    avg = averages(results)
    rows.append(["average"] + [avg[s] for s in sizes])
    return ("Figure 9 -- normalized IPC vs re-map cache size "
            "(obfuscation + authen-then-commit, 256KB L2)\n"
            + render_table(headers, rows))


if __name__ == "__main__":
    print(render())
