"""Figure 9: normalized IPC vs re-map cache size.

Address obfuscation + authen-then-commit at three re-map cache sizes;
IPC improves with the size of the re-map cache.

``executor=`` shares one backend (and warm worker pool) across all
sizes; ``failure_policy=`` governs per-job retries/skips, with failed
cells rendered as ``--`` and excluded from the averages.
"""

from repro.config import SimConfig
from repro.exec import executor_scope
from repro.sim.report import render_table
from repro.sim.sweep import PolicySweep

POLICY = "commit+obfuscation"
DEFAULT_SIZES = (16 * 1024, 64 * 1024, 256 * 1024)


def run(sizes=DEFAULT_SIZES, benchmarks=None, num_instructions=12_000,
        warmup=12_000, l2_bytes=256 * 1024, executor=None,
        failure_policy=None):
    """Returns ``{size: {benchmark: normalized ipc}}`` plus averages."""
    if benchmarks is None:
        from repro.workloads.spec import fp_benchmarks, int_benchmarks

        benchmarks = int_benchmarks() + fp_benchmarks()
    results = {}
    with executor_scope(executor) as active:
        for size in sizes:
            config = (SimConfig().with_l2_size(l2_bytes)
                      .with_secure(remap_cache_bytes=size))
            sweep = PolicySweep(benchmarks, [POLICY], config=config,
                                num_instructions=num_instructions,
                                warmup=warmup).run(
                                    executor=active,
                                    failure_policy=failure_policy)
            results[size] = sweep.normalized_series(POLICY)
    return results


def averages(results):
    """Per-size average over the benchmarks that completed (None: none)."""
    out = {}
    for size, series in results.items():
        values = [v for v in series.values() if v is not None]
        out[size] = sum(values) / len(values) if values else None
    return out


TITLE = ("Figure 9 -- normalized IPC vs re-map cache size "
         "(obfuscation + authen-then-commit, 256KB L2)")


def _table(results, sizes):
    """The rendered table's (headers, rows) from ``run`` results."""
    benchmark_names = sorted(next(iter(results.values())))
    headers = ["benchmark"] + ["%dKB" % (s // 1024) for s in sizes]
    rows = [[b] + [results[s][b] for s in sizes]
            for b in benchmark_names]
    avg = averages(results)
    rows.append(["average"] + [avg[s] for s in sizes])
    return headers, rows


def to_series(results, sizes=DEFAULT_SIZES):
    """Machine-readable twin of the rendered table (same numbers)."""
    from repro.obs.export import (build_figure_series, series_from_matrix,
                                  series_panel)
    headers, rows = _table(results, sizes)
    return build_figure_series(
        "fig9", TITLE,
        [series_panel("fig9", TITLE, series_from_matrix(headers, rows))])


def emit(sizes=DEFAULT_SIZES, num_instructions=12_000, warmup=12_000,
         benchmarks=None, executor=None, failure_policy=None):
    """One workload run, both artifact forms: ``(text, series)``."""
    results = run(sizes, benchmarks=benchmarks,
                  num_instructions=num_instructions, warmup=warmup,
                  executor=executor, failure_policy=failure_policy)
    headers, rows = _table(results, sizes)
    return (TITLE + "\n" + render_table(headers, rows),
            to_series(results, sizes))


def render(sizes=DEFAULT_SIZES, num_instructions=12_000, warmup=12_000,
           benchmarks=None, executor=None, failure_policy=None):
    return emit(sizes, num_instructions, warmup, benchmarks=benchmarks,
                executor=executor, failure_policy=failure_policy)[0]


if __name__ == "__main__":
    print(render())
