"""Figure 7(a-d): normalized IPC of the six schemes.

Four panels: {INT, FP} x {256KB, 1MB} L2, all normalized against the
decrypt-only baseline, plus the per-suite averages the paper quotes
(authen-then-issue ~0.87, ... authen-then-write ~0.98).

Every entry point accepts ``executor=`` (a
:func:`repro.exec.make_executor` backend, shared across panels so one
warm worker pool serves the whole figure) and ``failure_policy=`` (a
:class:`~repro.exec.retry.FailurePolicy`); under a skipping policy a
failed job renders as a ``--`` cell instead of aborting the figure.
"""

from repro.config import SimConfig
from repro.exec import executor_scope
from repro.policies.registry import FIGURE7_POLICIES
from repro.sim.report import render_table, series_rows
from repro.sim.sweep import PolicySweep, normalized_ipc_table
from repro.workloads.spec import fp_benchmarks, int_benchmarks

DEFAULT_N = 12_000
DEFAULT_WARMUP = 12_000


def run(l2_bytes=256 * 1024, suite="int", num_instructions=DEFAULT_N,
        warmup=DEFAULT_WARMUP, policies=FIGURE7_POLICIES, benchmarks=None,
        executor=None, failure_policy=None):
    """One panel of Figure 7; returns (sweep, table_rows)."""
    if benchmarks is None:
        benchmarks = int_benchmarks() if suite == "int" else fp_benchmarks()
    config = SimConfig().with_l2_size(l2_bytes)
    sweep = PolicySweep(benchmarks, list(policies), config=config,
                        num_instructions=num_instructions,
                        warmup=warmup).run(executor=executor,
                                           failure_policy=failure_policy)
    return sweep, normalized_ipc_table(sweep, list(policies))


def run_all_panels(num_instructions=DEFAULT_N, warmup=DEFAULT_WARMUP,
                   policies=FIGURE7_POLICIES, benchmarks_per_suite=None,
                   executor=None, failure_policy=None):
    """All four panels; returns {(suite, l2): table_rows}."""
    panels = {}
    with executor_scope(executor) as active:
        for l2 in (256 * 1024, 1024 * 1024):
            for suite in ("int", "fp"):
                benchmarks = None
                if benchmarks_per_suite is not None:
                    benchmarks = benchmarks_per_suite[suite]
                _, rows = run(l2, suite, num_instructions, warmup,
                              policies, benchmarks, executor=active,
                              failure_policy=failure_policy)
                panels[(suite, l2)] = rows
    return panels


def render_panel(rows, title, policies=FIGURE7_POLICIES):
    headers = ["benchmark"] + list(policies)
    return title + "\n" + render_table(headers,
                                       series_rows(rows, list(policies)))


#: Panel key -> (short name, title), in the (a)-(d) render order.
PANELS = {("int", 256 * 1024): ("fig7a", "Figure 7(a) SPEC2000 INT, "
                                         "256KB L2"),
          ("fp", 256 * 1024): ("fig7b", "Figure 7(b) SPEC2000 FP, "
                                        "256KB L2"),
          ("int", 1024 * 1024): ("fig7c", "Figure 7(c) SPEC2000 INT, "
                                          "1MB L2"),
          ("fp", 1024 * 1024): ("fig7d", "Figure 7(d) SPEC2000 FP, "
                                         "1MB L2")}
TITLE = "Figure 7 -- normalized IPC of the six schemes"


def _panel_order():
    return sorted(PANELS, key=lambda k: (k[1], k[0]))


def to_series(panels, policies=FIGURE7_POLICIES):
    """Machine-readable twin of the four rendered panels."""
    from repro.obs.export import (build_figure_series, series_from_rows,
                                  series_panel)
    return build_figure_series(
        "fig7", TITLE,
        [series_panel(PANELS[key][0], PANELS[key][1],
                      series_from_rows(panels[key], list(policies)))
         for key in _panel_order()])


def emit(num_instructions=DEFAULT_N, warmup=DEFAULT_WARMUP,
         policies=FIGURE7_POLICIES, benchmarks_per_suite=None,
         executor=None, failure_policy=None):
    """One workload run, both artifact forms: ``(text, series)``."""
    panels = run_all_panels(num_instructions, warmup, policies,
                            benchmarks_per_suite, executor=executor,
                            failure_policy=failure_policy)
    out = []
    for key in _panel_order():
        out.append(render_panel(panels[key], PANELS[key][1], policies))
        out.append("")
    return "\n".join(out), to_series(panels, policies)


def render(num_instructions=DEFAULT_N, warmup=DEFAULT_WARMUP,
           policies=FIGURE7_POLICIES, benchmarks_per_suite=None,
           executor=None, failure_policy=None):
    return emit(num_instructions, warmup, policies,
                benchmarks_per_suite, executor=executor,
                failure_policy=failure_policy)[0]


if __name__ == "__main__":
    print(render())
