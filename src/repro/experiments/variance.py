"""Seed-variance analysis for the headline results.

The synthetic workloads are stochastic; the paper's conclusions should
not depend on one RNG draw.  This experiment repeats the Figure 7
averages across independent seeds and reports mean and spread per
policy, so the reproduction's claims carry their own error bars.
"""

import math

from repro.config import SimConfig
from repro.sim.sweep import PolicySweep

DEFAULT_POLICIES = ("authen-then-issue", "authen-then-write",
                    "authen-then-commit", "commit+fetch")
DEFAULT_BENCHMARKS = ("mcf", "twolf", "swim", "mgrid")


def run(seeds=(2006, 7, 42), policies=DEFAULT_POLICIES,
        benchmarks=DEFAULT_BENCHMARKS, num_instructions=8000,
        warmup=8000, l2_bytes=256 * 1024, executor=None):
    """Per-policy normalized-IPC samples across seeds.

    ``executor`` (a :func:`repro.exec.make_executor` backend) fans each
    seed's sweep out over worker processes; results are bit-identical to
    the serial default.

    Returns ``{policy: {"samples": [...], "mean": m, "std": s}}``.
    """
    samples = {policy: [] for policy in policies}
    for seed in seeds:
        sweep = PolicySweep(list(benchmarks), list(policies),
                            config=SimConfig().with_l2_size(l2_bytes),
                            num_instructions=num_instructions,
                            warmup=warmup, seed=seed).run(executor=executor)
        for policy in policies:
            samples[policy].append(sweep.average_normalized(policy))
    out = {}
    for policy, values in samples.items():
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        out[policy] = {
            "samples": values,
            "mean": mean,
            "std": math.sqrt(variance),
        }
    return out


def ordering_is_stable(result, order=("authen-then-issue",
                                      "authen-then-commit",
                                      "authen-then-write")):
    """True when the given slow-to-fast ordering holds for every seed.

    The default omits commit+fetch: its average sits within noise of
    authen-then-issue (the paper separates them by only ~3pp), so its
    rank against issue is not seed-stable on small benchmark subsets.
    """
    present = [p for p in order if p in result]
    count = len(result[present[0]]["samples"])
    for index in range(count):
        values = [result[p]["samples"][index] for p in present]
        if any(b < a - 0.005 for a, b in zip(values, values[1:])):
            return False
    return True


def render(result):
    lines = ["Seed variance of normalized IPC (mean +/- std):"]
    for policy, stats in sorted(result.items()):
        lines.append("  %-24s %.3f +/- %.3f   %s"
                     % (policy, stats["mean"], stats["std"],
                        ["%.3f" % v for v in stats["samples"]]))
    lines.append("ordering stable across seeds: %s"
                 % ordering_is_stable(result))
    return "\n".join(lines)
