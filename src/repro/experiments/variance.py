"""Seed-variance analysis for the headline results.

The synthetic workloads are stochastic; the paper's conclusions should
not depend on one RNG draw.  This experiment repeats the Figure 7
averages across independent seeds and reports mean and spread per
policy, so the reproduction's claims carry their own error bars.
"""

import math

from repro.config import SimConfig
from repro.policies.registry import policy_set
from repro.sim.sweep import PolicySweep

DEFAULT_POLICIES = policy_set("figure10")
DEFAULT_BENCHMARKS = ("mcf", "twolf", "swim", "mgrid")


def run(seeds=(2006, 7, 42), policies=DEFAULT_POLICIES,
        benchmarks=DEFAULT_BENCHMARKS, num_instructions=8000,
        warmup=8000, l2_bytes=256 * 1024, executor=None,
        failure_policy=None):
    """Per-policy normalized-IPC samples across seeds.

    ``executor`` (a :func:`repro.exec.make_executor` backend) fans each
    seed's sweep out over worker processes; results are bit-identical to
    the serial default.  Under a skipping ``failure_policy`` a seed whose
    jobs all failed contributes a None sample, kept in place so samples
    stay seed-aligned across policies; mean/std are computed over the
    surviving samples (None when none survived).

    Returns ``{policy: {"samples": [...], "mean": m, "std": s}}``.
    """
    samples = {policy: [] for policy in policies}
    for seed in seeds:
        sweep = PolicySweep(list(benchmarks), list(policies),
                            config=SimConfig().with_l2_size(l2_bytes),
                            num_instructions=num_instructions,
                            warmup=warmup, seed=seed).run(
                                executor=executor,
                                failure_policy=failure_policy)
        for policy in policies:
            samples[policy].append(sweep.average_normalized(policy))
    out = {}
    for policy, values in samples.items():
        present = [v for v in values if v is not None]
        if present:
            mean = sum(present) / len(present)
            variance = sum((v - mean) ** 2 for v in present) / len(present)
            std = math.sqrt(variance)
        else:
            mean = std = None
        out[policy] = {
            "samples": values,
            "mean": mean,
            "std": std,
        }
    return out


def ordering_is_stable(result, order=("authen-then-issue",
                                      "authen-then-commit",
                                      "authen-then-write")):
    """True when the given slow-to-fast ordering holds for every seed.

    The default omits commit+fetch: its average sits within noise of
    authen-then-issue (the paper separates them by only ~3pp), so its
    rank against issue is not seed-stable on small benchmark subsets.

    An ordering over policies none of which appear in ``result`` is
    vacuously stable: the empty intersection returns True instead of
    indexing into an empty list.
    """
    present = [p for p in order if p in result]
    if not present:
        return True
    count = len(result[present[0]]["samples"])
    for index in range(count):
        values = [result[p]["samples"][index] for p in present]
        if any(v is None for v in values):
            continue  # a skipped seed can't witness an inversion
        if any(b < a - 0.005 for a, b in zip(values, values[1:])):
            return False
    return True


TITLE = "Seed variance of normalized IPC (mean +/- std)"


def to_series(result):
    """Machine-readable twin of the variance render.

    ``mean``/``std`` series walk the policies; one ``samples:<policy>``
    series per policy walks the seed-aligned sample index (a skipped
    seed's None sample survives as JSON null).  The seed-stability
    verdict rides in ``extra``.
    """
    from repro.obs.export import build_figure_series, series_panel
    policies = sorted(result)
    stats_series = [
        {"name": name,
         "points": [{"x": policy, "y": result[policy][name]}
                    for policy in policies]}
        for name in ("mean", "std")
    ]
    sample_series = [
        {"name": "samples:%s" % policy,
         "points": [{"x": index, "y": value}
                    for index, value in
                    enumerate(result[policy]["samples"])]}
        for policy in policies
    ]
    return build_figure_series(
        "variance", TITLE,
        [series_panel("stats", TITLE, stats_series, x_label="policy"),
         series_panel("samples", "Per-seed samples", sample_series,
                      x_label="seed_index")],
        extra={"ordering_stable": ordering_is_stable(result)})


def render(result):
    def fmt(value):
        return "--" if value is None else "%.3f" % value

    lines = ["Seed variance of normalized IPC (mean +/- std):"]
    for policy, stats in sorted(result.items()):
        lines.append("  %-24s %s +/- %s   %s"
                     % (policy, fmt(stats["mean"]), fmt(stats["std"]),
                        [fmt(v) for v in stats["samples"]]))
    lines.append("ordering stable across seeds: %s"
                 % ordering_is_stable(result))
    return "\n".join(lines)


def emit(**kwargs):
    """Both artifact forms: ``(text, series)`` from one :func:`run`."""
    result = run(**kwargs)
    return render(result), to_series(result)
