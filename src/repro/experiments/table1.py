"""Table 1: latency gap between decryption and integrity verification."""

from repro.crypto.latency import CryptoLatencyModel, latency_gap_table
from repro.sim.report import render_table


def run(memory_fetch_latency=200, decrypt_latency=80, hmac_latency=74,
        line_bytes=64):
    """Compute both Table 1 rows; returns a list of LatencyGap."""
    model = CryptoLatencyModel(decrypt_latency=decrypt_latency,
                               hmac_latency=hmac_latency,
                               line_bytes=line_bytes)
    return latency_gap_table(model, memory_fetch_latency)


HEADERS = ["scheme", "decrypt (critical)", "decrypt (full line)",
           "authenticate", "gap"]


def to_series(rows, memory_fetch_latency=200):
    """Machine-readable twin of the rendered table (same numbers)."""
    from repro.obs.export import (build_figure_series, series_from_matrix,
                                  series_panel)
    title = ("Table 1 -- decryption vs authentication latency "
             "(memory fetch = %d cycles)" % memory_fetch_latency)
    table = [
        [r.scheme, r.decryption_latency, r.full_decryption_latency,
         r.authentication_latency, r.gap]
        for r in rows
    ]
    return build_figure_series(
        "table1", title,
        [series_panel("table1", title, series_from_matrix(HEADERS, table),
                      x_label="scheme")])


def emit(memory_fetch_latency=200, executor=None, failure_policy=None):
    """Both artifact forms: ``(text, series)``.

    executor/failure_policy: interface uniformity only -- this table
    is computed from the analytic crypto latency model, no jobs run.
    """
    rows = run(memory_fetch_latency)
    table = [
        [r.scheme, r.decryption_latency, r.full_decryption_latency,
         r.authentication_latency, r.gap]
        for r in rows
    ]
    title = ("Table 1 -- decryption vs authentication latency "
             "(memory fetch = %d cycles)" % memory_fetch_latency)
    return (title + "\n" + render_table(HEADERS, table),
            to_series(rows, memory_fetch_latency))


def render(memory_fetch_latency=200, executor=None, failure_policy=None):
    return emit(memory_fetch_latency, executor=executor,
                failure_policy=failure_policy)[0]


if __name__ == "__main__":
    print(render())
