"""Sensitivity studies (Section 5.2: "we conduct sensitivity study to
capture different variations and design scenarios").

Each sweep varies one reference-implementation parameter and reports the
average normalized IPC of a representative policy set, so the robustness
of the Figure 7 conclusions can be checked directly.

Every sweep accepts ``executor=`` (a :func:`repro.exec.make_executor`
backend) to fan the underlying policy sweeps out over worker processes;
results are bit-identical to the serial default.
"""

from repro.config import SimConfig
from repro.policies.registry import policy_set
from repro.sim.sweep import PolicySweep

POLICIES = policy_set("sensitivity")
BENCHMARKS = ("mcf", "twolf", "swim", "mgrid")


def _averages(config, benchmarks, num_instructions, warmup,
              policies=POLICIES, executor=None, failure_policy=None):
    sweep = PolicySweep(list(benchmarks), list(policies), config=config,
                        num_instructions=num_instructions,
                        warmup=warmup).run(executor=executor,
                                           failure_policy=failure_policy)
    return {p: sweep.average_normalized(p) for p in policies}


def decrypt_latency_sweep(latencies=(40, 80, 160),
                          benchmarks=BENCHMARKS,
                          num_instructions=8000, warmup=8000,
                          executor=None, failure_policy=None):
    """AES pipeline latency: mostly hidden behind the fetch, so the
    policy ranking should barely move."""
    return {
        latency: _averages(
            SimConfig().with_secure(decrypt_latency=latency),
            benchmarks, num_instructions, warmup, executor=executor,
            failure_policy=failure_policy)
        for latency in latencies
    }


def memory_speed_sweep(cas_values=(10, 20, 40),
                       benchmarks=BENCHMARKS,
                       num_instructions=8000, warmup=8000,
                       executor=None, failure_policy=None):
    """Memory CAS latency (bus clocks): slower memory widens every
    miss but shrinks verification's *relative* share."""
    import dataclasses

    out = {}
    for cas in cas_values:
        config = SimConfig()
        config = dataclasses.replace(
            config, dram=dataclasses.replace(config.dram,
                                             cas_bus_clocks=cas))
        out[cas] = _averages(config, benchmarks, num_instructions, warmup,
                             executor=executor,
                             failure_policy=failure_policy)
    return out


def mshr_sweep(entries=(2, 8, 16),
               benchmarks=BENCHMARKS,
               num_instructions=8000, warmup=8000, executor=None,
               failure_policy=None):
    """Outstanding-miss slots: fewer MSHRs serialise misses, which makes
    fetch gating relatively cheaper (the misses were serial anyway)."""
    import dataclasses

    out = {}
    for count in entries:
        config = dataclasses.replace(SimConfig(), mshr_entries=count)
        out[count] = _averages(config, benchmarks, num_instructions,
                               warmup, executor=executor,
                               failure_policy=failure_policy)
    return out


def ruu_sweep(sizes=(32, 64, 128, 256),
              benchmarks=BENCHMARKS,
              num_instructions=8000, warmup=8000, executor=None,
              failure_policy=None):
    """Window size beyond the paper's 128/64 pair."""
    return {
        size: _averages(SimConfig().with_ruu(size), benchmarks,
                        num_instructions, warmup, executor=executor,
                        failure_policy=failure_policy)
        for size in sizes
    }


def to_series(grids, benchmarks=BENCHMARKS):
    """Machine-readable twin of the four rendered sweep tables."""
    from repro.obs.export import build_figure_series, series_panel
    title = ("Sensitivity -- average normalized IPC per policy "
             "(benchmarks: %s)" % ", ".join(benchmarks))
    panels = []
    for grid_title, grid in grids:
        series = [
            {"name": policy,
             "points": [{"x": value, "y": grid[value][policy]}
                        for value in sorted(grid)]}
            for policy in POLICIES
        ]
        panels.append(series_panel(grid_title, grid_title, series,
                                   x_label=grid_title))
    return build_figure_series("sensitivity", title, panels)


def emit(num_instructions=8000, warmup=8000, benchmarks=BENCHMARKS,
         executor=None, failure_policy=None):
    """Both artifact forms for ``repro figures``: all four sensitivity
    sweeps under one shared executor, one table per varied parameter;
    returns ``(text, series)``."""
    from repro.exec import executor_scope
    from repro.sim.report import render_table

    with executor_scope(executor) as ex:
        grids = [
            ("decrypt latency (cycles)",
             decrypt_latency_sweep(benchmarks=benchmarks,
                                   num_instructions=num_instructions,
                                   warmup=warmup, executor=ex,
                                   failure_policy=failure_policy)),
            ("memory CAS (bus clocks)",
             memory_speed_sweep(benchmarks=benchmarks,
                                num_instructions=num_instructions,
                                warmup=warmup, executor=ex,
                                failure_policy=failure_policy)),
            ("MSHR entries",
             mshr_sweep(benchmarks=benchmarks,
                        num_instructions=num_instructions,
                        warmup=warmup, executor=ex,
                        failure_policy=failure_policy)),
            ("RUU size",
             ruu_sweep(benchmarks=benchmarks,
                       num_instructions=num_instructions,
                       warmup=warmup, executor=ex,
                       failure_policy=failure_policy)),
        ]
    out = ["Sensitivity -- average normalized IPC per policy "
           "(benchmarks: %s)" % ", ".join(benchmarks)]
    for title, grid in grids:
        out.append("")
        out.append("%s:" % title)
        rows = [[value] + [grid[value][p] for p in POLICIES]
                for value in sorted(grid)]
        out.append(render_table([title] + list(POLICIES), rows))
    return "\n".join(out), to_series(grids, benchmarks)


def render(num_instructions=8000, warmup=8000, benchmarks=BENCHMARKS,
           executor=None, failure_policy=None):
    return emit(num_instructions, warmup, benchmarks=benchmarks,
                executor=executor, failure_policy=failure_policy)[0]
