"""Lightweight statistics collection for the simulator.

The timing model and the memory hierarchy attach counters and histograms to
a shared :class:`StatGroup` so that experiment drivers can render a single
report per run (miss rates, queue occupancies, stall cycles, ...).
"""


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def add(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0

    def __repr__(self):
        return "Counter(%s=%d)" % (self.name, self.value)


class Histogram:
    """A named histogram over integer buckets."""

    __slots__ = ("name", "buckets")

    def __init__(self, name):
        self.name = name
        self.buckets = {}

    def add(self, key, amount=1):
        self.buckets[key] = self.buckets.get(key, 0) + amount

    @property
    def total(self):
        return sum(self.buckets.values())

    def mean(self):
        """Weighted mean of bucket keys; 0.0 for an empty histogram."""
        total = self.total
        if total == 0:
            return 0.0
        return sum(k * v for k, v in self.buckets.items()) / total

    def percentile(self, q):
        """Smallest key whose cumulative weight covers the ``q``-th
        percentile (``q`` in [0, 100]); None for an empty histogram.

        None (not 0) so consumers can tell "no observations" apart from
        "the percentile is the 0 bucket"; renderers show it as ``--``.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100], got %r" % q)
        total = self.total
        if total == 0:
            return None
        need = q / 100.0 * total
        cumulative = 0
        for key in sorted(self.buckets):
            cumulative += self.buckets[key]
            if cumulative >= need:
                return key
        return key

    def max_key(self):
        """Largest observed key; None for an empty histogram."""
        return max(self.buckets) if self.buckets else None

    def reset(self):
        self.buckets.clear()

    def __repr__(self):
        return "Histogram(%s, n=%d)" % (self.name, self.total)


class StatGroup:
    """A flat namespace of counters and histograms.

    >>> stats = StatGroup("l2")
    >>> stats.counter("miss").add()
    >>> stats["miss"].value
    1
    """

    def __init__(self, name=""):
        self.name = name
        self._stats = {}

    def counter(self, name):
        stat = self._stats.get(name)
        if stat is None:
            stat = Counter(name)
            self._stats[name] = stat
        elif not isinstance(stat, Counter):
            raise TypeError("stat %r exists and is not a Counter" % name)
        return stat

    def histogram(self, name):
        stat = self._stats.get(name)
        if stat is None:
            stat = Histogram(name)
            self._stats[name] = stat
        elif not isinstance(stat, Histogram):
            raise TypeError("stat %r exists and is not a Histogram" % name)
        return stat

    def __getitem__(self, name):
        return self._stats[name]

    def __contains__(self, name):
        return name in self._stats

    def names(self):
        return sorted(self._stats)

    def reset(self):
        for stat in self._stats.values():
            stat.reset()

    def as_dict(self):
        """Flatten to ``{name: value-or-bucket-dict}`` for reporting."""
        out = {}
        for name, stat in self._stats.items():
            if isinstance(stat, Counter):
                out[name] = stat.value
            else:
                out[name] = dict(stat.buckets)
        return out

    @classmethod
    def from_dict(cls, payload, name=""):
        """Rebuild a group from an :meth:`as_dict` snapshot.

        Inverse of :meth:`as_dict` up to JSON round-tripping: histogram
        bucket keys that JSON turned into digit strings come back as
        ints.  This is what lets checkpoint journals hand back live
        ``StatGroup``s instead of bare dicts.
        """
        group = cls(name)
        for stat_name, value in payload.items():
            if isinstance(value, dict):
                histogram = group.histogram(stat_name)
                for key, count in value.items():
                    if isinstance(key, str):
                        try:
                            key = int(key)
                        except ValueError:
                            pass
                    histogram.buckets[key] = count
            else:
                group.counter(stat_name).value = value
        return group
