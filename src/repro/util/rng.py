"""Deterministic random-number streams.

Every stochastic component in the simulator (workload generation, address
re-mapping, tampering choices in randomized attacks) draws from a named
stream so that experiments are exactly reproducible and independent
components never perturb each other's sequences.
"""

import hashlib
import random


class DeterministicRng:
    """A factory of independent, reproducible ``random.Random`` streams.

    Streams are derived from a root seed and a string name, so adding a new
    consumer never shifts the sequence seen by existing consumers:

    >>> rng = DeterministicRng(7)
    >>> a = rng.stream("workload.mcf")
    >>> b = rng.stream("remap")
    >>> a is not b
    True
    >>> DeterministicRng(7).stream("workload.mcf").random() == \\
    ...     DeterministicRng(7).stream("workload.mcf").random()
    True
    """

    def __init__(self, seed):
        self._seed = int(seed)
        self._streams = {}

    @property
    def seed(self):
        return self._seed

    def stream(self, name):
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                ("%d:%s" % (self._seed, name)).encode()
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def derive(self, name):
        """Return a new :class:`DeterministicRng` rooted under ``name``."""
        digest = hashlib.sha256(("%d:%s" % (self._seed, name)).encode()).digest()
        return DeterministicRng(int.from_bytes(digest[8:16], "big"))
