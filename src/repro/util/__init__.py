"""Utility layer: bit manipulation, deterministic RNG streams, statistics."""

from repro.util.bitops import (
    bit,
    bits_of,
    bytes_to_words_be,
    mask,
    rotl32,
    rotr32,
    set_bits,
    sign_extend,
    words_to_bytes_be,
    xor_bytes,
)
from repro.util.rng import DeterministicRng
from repro.util.statistics import Counter, Histogram, StatGroup

__all__ = [
    "bit",
    "bits_of",
    "bytes_to_words_be",
    "mask",
    "rotl32",
    "rotr32",
    "set_bits",
    "sign_extend",
    "words_to_bytes_be",
    "xor_bytes",
    "DeterministicRng",
    "Counter",
    "Histogram",
    "StatGroup",
]
