"""Bit-manipulation helpers shared by the crypto, ISA and cache layers.

All helpers operate on plain Python integers (arbitrary precision) or
``bytes``.  Widths are explicit everywhere; nothing here assumes a machine
word size.
"""

_WORD32 = 0xFFFFFFFF


def mask(width):
    """Return an integer with the low ``width`` bits set.

    >>> hex(mask(12))
    '0xfff'
    """
    if width < 0:
        raise ValueError("width must be non-negative, got %d" % width)
    return (1 << width) - 1


def bit(value, index):
    """Return bit ``index`` (0 = LSB) of ``value`` as 0 or 1."""
    return (value >> index) & 1


def bits_of(value, low, width):
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    >>> bits_of(0b110110, 1, 3)
    3
    """
    return (value >> low) & mask(width)


def set_bits(value, low, width, field):
    """Return ``value`` with bits [low, low+width) replaced by ``field``."""
    cleared = value & ~(mask(width) << low)
    return cleared | ((field & mask(width)) << low)


def rotl32(value, amount):
    """Rotate a 32-bit value left by ``amount`` bits."""
    amount %= 32
    value &= _WORD32
    return ((value << amount) | (value >> (32 - amount))) & _WORD32 if amount else value


def rotr32(value, amount):
    """Rotate a 32-bit value right by ``amount`` bits."""
    return rotl32(value, 32 - (amount % 32))


def sign_extend(value, width):
    """Interpret the low ``width`` bits of ``value`` as a signed integer.

    >>> sign_extend(0xFFF, 12)
    -1
    """
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def xor_bytes(a, b):
    """XOR two equal-length byte strings.

    Raises ``ValueError`` on length mismatch -- silently truncating would
    hide tampering-mask construction bugs in the attack toolkit.
    """
    if len(a) != len(b):
        raise ValueError("xor_bytes length mismatch: %d vs %d" % (len(a), len(b)))
    return bytes(x ^ y for x, y in zip(a, b))


def bytes_to_words_be(data):
    """Split ``data`` (length divisible by 4) into big-endian 32-bit words."""
    if len(data) % 4:
        raise ValueError("data length %d is not a multiple of 4" % len(data))
    return [int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)]


def words_to_bytes_be(words):
    """Concatenate 32-bit words into big-endian bytes."""
    return b"".join(int(w & _WORD32).to_bytes(4, "big") for w in words)
