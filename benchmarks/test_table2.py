"""Bench: regenerate Table 2 (security characteristics, empirically)."""

from conftest import once

from repro.experiments import table2


def test_table2(benchmark):
    text = once(benchmark, lambda: table2.render(empirical=True))
    print("\n" + text)
    # The two recommended combinations block every fetch-channel exploit.
    for line in text.splitlines():
        if line.startswith(("commit+fetch", "commit+obfuscation")):
            assert "LEAK" not in line
