"""Bench: regenerate Figure 8 -- IPC speedup over authen-then-issue."""

from conftest import once

from repro.experiments import fig8
from repro.sim.report import render_table, series_rows


def test_fig8(benchmark, bench_scale, bench_benchmarks):
    benchmarks = bench_benchmarks["int"] + bench_benchmarks["fp"]

    def run():
        return fig8.run(benchmarks=benchmarks, **bench_scale)

    _, rows = once(benchmark, run)
    headers = ["benchmark"] + list(fig8.COMPARED)
    print("\nFigure 8 -- IPC speedup over authen-then-issue (256KB L2)")
    print(render_table(headers, series_rows(rows, list(fig8.COMPARED))))

    averages = rows[-1][1]
    # Paper shape: every relaxed scheme is at least as fast as
    # authen-then-issue on average; write is the biggest winner.
    assert averages["authen-then-write"] >= 1.0
    assert averages["authen-then-commit"] >= 1.0
    assert (averages["authen-then-write"]
            >= averages["authen-then-commit"] - 0.01)
