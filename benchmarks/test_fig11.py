"""Bench: regenerate Figure 11 -- speedup over authen-then-issue with the
64-entry RUU."""

from conftest import once

from repro.experiments import fig10_11
from repro.sim.report import render_table, series_rows


def test_fig11(benchmark, bench_scale, bench_benchmarks):
    benchmarks = bench_benchmarks["int"] + bench_benchmarks["fp"]

    def run():
        return fig10_11.run(ruu_entries=64, benchmarks=benchmarks,
                            **bench_scale)

    _, _, fig11_rows = once(benchmark, run)
    policies = ["authen-then-commit", "commit+fetch"]
    print("\nFigure 11 -- speedup over authen-then-issue, 64-entry RUU")
    print(render_table(["benchmark"] + policies,
                       series_rows(fig11_rows, policies)))

    averages = fig11_rows[-1][1]
    assert averages["authen-then-commit"] >= 1.0
    assert averages["commit+fetch"] >= 0.97
