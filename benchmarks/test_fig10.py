"""Bench: regenerate Figure 10 -- normalized IPC with a 64-entry RUU."""

from conftest import once

from repro.experiments import fig10_11
from repro.experiments.fig10_11 import FIG10_POLICIES
from repro.sim.report import render_table, series_rows


def test_fig10(benchmark, bench_scale, bench_benchmarks):
    benchmarks = bench_benchmarks["int"] + bench_benchmarks["fp"]

    def run():
        return fig10_11.run(ruu_entries=64, benchmarks=benchmarks,
                            **bench_scale)

    _, fig10_rows, _ = once(benchmark, run)
    print("\nFigure 10 -- normalized IPC, 64-entry RUU (256KB L2)")
    print(render_table(["benchmark"] + list(FIG10_POLICIES),
                       series_rows(fig10_rows, list(FIG10_POLICIES))))

    averages = fig10_rows[-1][1]
    # Paper shape: same ranking as the 128-entry RUU -- issue lowest,
    # write highest.
    assert averages["authen-then-write"] == max(averages.values())
    assert averages["authen-then-issue"] <= averages["authen-then-commit"]
