"""Bench: seed-variance of the Figure 7 averages (robustness check)."""

from conftest import once

from repro.experiments import variance


def test_seed_variance(benchmark):
    result = once(benchmark, lambda: variance.run(
        seeds=(2006, 7), benchmarks=("twolf", "swim"),
        num_instructions=4000, warmup=4000))
    print("\n" + variance.render(result))
    # The policy ordering is a property of the mechanisms, not the RNG.
    assert variance.ordering_is_stable(result)
    for stats in result.values():
        assert stats["std"] < 0.05
