"""Bench: regenerate Figure 9 -- normalized IPC vs re-map cache size."""

from conftest import once

from repro.experiments import fig9


def test_fig9(benchmark, bench_scale, bench_benchmarks):
    benchmarks = bench_benchmarks["int"] + bench_benchmarks["fp"]
    sizes = fig9.DEFAULT_SIZES

    def run():
        return fig9.run(sizes=sizes, benchmarks=benchmarks, **bench_scale)

    results = once(benchmark, run)
    averages = fig9.averages(results)
    print("\nFigure 9 -- normalized IPC vs re-map cache size")
    for size in sizes:
        print("  %4dKB: %.3f" % (size // 1024, averages[size]))

    # Paper shape: IPC improves with the size of the re-map cache.
    ordered = [averages[s] for s in sorted(sizes)]
    assert ordered[-1] >= ordered[0] - 0.01
