"""Bench: regenerate Figure 12 -- normalized IPC under CHTree hash-tree
authentication."""

from conftest import once

from repro.experiments import fig12_13
from repro.experiments.fig12_13 import FIG12_POLICIES
from repro.sim.report import render_table, series_rows


def test_fig12(benchmark, bench_scale, bench_benchmarks):
    benchmarks = bench_benchmarks["int"] + bench_benchmarks["fp"]

    def run():
        return fig12_13.run(benchmarks=benchmarks, **bench_scale)

    _, fig12_rows, _ = once(benchmark, run)
    print("\nFigure 12 -- normalized IPC, hash-tree authentication")
    print(render_table(["benchmark"] + list(FIG12_POLICIES),
                       series_rows(fig12_rows, list(FIG12_POLICIES))))

    averages = fig12_rows[-1][1]
    # Paper shape: ranking preserved (issue slowest single scheme, write
    # fastest) and the write/commit/fetch gaps compress under the tree.
    assert averages["authen-then-write"] == max(averages.values())
    for single in ("authen-then-write", "authen-then-commit",
                   "authen-then-fetch"):
        assert averages["authen-then-issue"] <= averages[single] + 0.01
    spread = (averages["authen-then-write"]
              - averages["authen-then-commit"])
    assert spread < 0.15
