"""Shared benchmark-harness configuration.

Every bench regenerates one of the paper's tables/figures and *prints*
the reproduced rows/series (run pytest with ``-s`` to see them).  Scale
knobs come from the environment so CI can run small while a full
regeneration uses paper-scale windows:

- ``REPRO_BENCH_N``      measured instructions per run (default 6000)
- ``REPRO_BENCH_WARMUP`` warmup instructions (default = N)
- ``REPRO_BENCH_FULL=1`` use all 18 benchmarks instead of the
  representative subset
- ``REPRO_BENCH_JOBS``   executor worker processes (default 1: serial);
  results are bit-identical across backends, only wall clock changes
"""

import os

import pytest

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "6000"))
BENCH_WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", str(BENCH_N)))
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

# Representative subset: the paper's five worst-under-issue benchmarks
# plus one mild INT and one streaming FP.
SUBSET_INT = ["bzip2", "twolf", "vpr", "gcc"]
SUBSET_FP = ["ammp", "mgrid", "swim", "art"]


@pytest.fixture(scope="session")
def bench_scale():
    return {"num_instructions": BENCH_N, "warmup": BENCH_WARMUP}


@pytest.fixture(scope="session")
def bench_executor():
    """One executor (and worker pool) shared by the whole bench session."""
    from repro.exec import make_executor

    executor = make_executor(BENCH_JOBS)
    yield executor
    executor.close()


@pytest.fixture(scope="session")
def bench_benchmarks():
    if FULL:
        from repro.workloads.spec import fp_benchmarks, int_benchmarks

        return {"int": int_benchmarks(), "fp": fp_benchmarks()}
    return {"int": SUBSET_INT, "fp": SUBSET_FP}


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
