"""Bench: regenerate Figure 13 -- speedup over authen-then-issue under
hash-tree authentication."""

from conftest import once

from repro.experiments import fig12_13
from repro.sim.report import render_table, series_rows


def test_fig13(benchmark, bench_scale, bench_benchmarks):
    benchmarks = bench_benchmarks["int"] + bench_benchmarks["fp"]

    def run():
        return fig12_13.run(benchmarks=benchmarks, **bench_scale)

    _, _, fig13_rows = once(benchmark, run)
    policies = ["authen-then-commit", "commit+fetch"]
    print("\nFigure 13 -- speedup over authen-then-issue, hash tree")
    print(render_table(["benchmark"] + policies,
                       series_rows(fig13_rows, policies)))

    averages = fig13_rows[-1][1]
    assert averages["authen-then-commit"] >= 1.0
