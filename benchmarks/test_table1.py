"""Bench: regenerate Table 1 (decryption vs authentication latency)."""

from conftest import once

from repro.experiments import table1


def test_table1(benchmark):
    text = once(benchmark, lambda: table1.render(memory_fetch_latency=200))
    print("\n" + text)
    assert "counter+hmac" in text
