"""Bench: regenerate Figure 6 (authen-then-fetch vs authen-then-issue
timeline for two dependent fetches)."""

from conftest import once

from repro.experiments import fig6


def test_fig6(benchmark):
    timelines = once(benchmark, lambda: fig6.run(compute_latency=30))
    print("\n" + fig6.render(compute_latency=30))
    assert (timelines["authen-then-fetch"].finish
            <= timelines["authen-then-issue"].finish)
