"""Bench: regenerate Figure 7(a-d) -- normalized IPC of the six schemes,
INT and FP suites, 256KB and 1MB L2."""

import pytest
from conftest import once

from repro.experiments import fig7
from repro.experiments.fig7 import FIGURE7_POLICIES
from repro.sim.report import render_table, series_rows

PANELS = [
    ("a", "int", 256 * 1024),
    ("b", "fp", 256 * 1024),
    ("c", "int", 1024 * 1024),
    ("d", "fp", 1024 * 1024),
]


@pytest.mark.parametrize("panel,suite,l2", PANELS,
                         ids=["fig7a_int_256K", "fig7b_fp_256K",
                              "fig7c_int_1M", "fig7d_fp_1M"])
def test_fig7_panel(benchmark, bench_scale, bench_benchmarks, panel, suite,
                    l2):
    def run():
        return fig7.run(l2_bytes=l2, suite=suite,
                        benchmarks=bench_benchmarks[suite], **bench_scale)

    _, rows = once(benchmark, run)
    title = "Figure 7(%s) %s, %dKB L2" % (panel, suite.upper(), l2 // 1024)
    print("\n" + fig7.render_panel(rows, title))
    from repro.sim.charts import render_bars

    print("\naverages:")
    print(render_bars(rows[-1][1], width=34, max_value=1.0))

    averages = rows[-1][1]
    # Paper shape: write is the fastest scheme, issue/obfuscation slowest.
    assert averages["authen-then-write"] == max(averages.values())
    assert averages["authen-then-issue"] <= averages["authen-then-commit"]
    for value in averages.values():
        assert 0.3 < value <= 1.01
