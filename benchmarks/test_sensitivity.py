"""Sensitivity benches (Section 5.2's sensitivity-study companion)."""

from conftest import once

from repro.experiments import sensitivity

SMALL = dict(num_instructions=4000, warmup=4000,
             benchmarks=("twolf", "swim"))


def _show(title, table):
    print("\n%s" % title)
    for knob, averages in sorted(table.items()):
        print("  %6s: %s" % (knob, {k: round(v, 3)
                                    for k, v in averages.items()}))


def test_decrypt_latency_sensitivity(benchmark):
    table = once(benchmark, lambda: sensitivity.decrypt_latency_sweep(
        latencies=(40, 160), **SMALL))
    _show("decrypt latency sweep", table)
    for averages in table.values():
        # The ranking is invariant across decryption speeds.
        assert averages["authen-then-write"] >= averages["authen-then-issue"]


def test_memory_speed_sensitivity(benchmark):
    table = once(benchmark, lambda: sensitivity.memory_speed_sweep(
        cas_values=(10, 40), **SMALL))
    _show("CAS latency sweep", table)
    for averages in table.values():
        assert averages["authen-then-write"] >= averages["authen-then-issue"]


def test_mshr_sensitivity(benchmark):
    table = once(benchmark, lambda: sensitivity.mshr_sweep(
        entries=(2, 16), **SMALL))
    _show("MSHR sweep", table)
    for averages in table.values():
        assert averages["authen-then-write"] >= averages["authen-then-issue"]


def test_ruu_sweep(benchmark):
    table = once(benchmark, lambda: sensitivity.ruu_sweep(
        sizes=(32, 256), **SMALL))
    _show("RUU sweep", table)
    for averages in table.values():
        assert averages["authen-then-write"] >= averages["authen-then-issue"]
