"""Ablation benches: sensitivity of the design choices (see DESIGN.md)."""

from conftest import once

from repro.experiments import ablations

SMALL = dict(num_instructions=4000, warmup=4000,
             benchmarks=("twolf", "swim", "mcf"))


def test_mac_latency_sweep(benchmark, bench_executor):
    result = once(benchmark, lambda: ablations.mac_latency_sweep(
        latencies=(20, 74, 300), executor=bench_executor, **SMALL))
    print("\nMAC latency sweep (authen-then-commit):", {
        k: round(v, 3) for k, v in result.items()})
    # A longer MAC latency can only hurt.
    assert result[20] >= result[300] - 0.01


def test_queue_depth_sweep(benchmark, bench_executor):
    result = once(benchmark, lambda: ablations.queue_depth_sweep(
        depths=(2, 16), executor=bench_executor, **SMALL))
    print("\nAuth-queue depth sweep:", {
        k: round(v, 3) for k, v in result.items()})
    # A deeper queue relieves backpressure.
    assert result[16] >= result[2] - 0.01


def test_store_buffer_sweep(benchmark, bench_executor):
    result = once(benchmark, lambda: ablations.store_buffer_sweep(
        entries=(2, 32), executor=bench_executor, **SMALL))
    print("\nStore buffer sweep (authen-then-write):", {
        k: round(v, 3) for k, v in result.items()})
    assert result[32] >= result[2] - 0.01


def test_fetch_variants(benchmark, bench_executor):
    result = once(benchmark,
                  lambda: ablations.fetch_variant_comparison(
                      executor=bench_executor, **SMALL))
    print("\nauthen-then-fetch variants:", {
        k: round(v, 3) for k, v in result.items()})
    # The drain variant is at least as conservative as the tag variant.
    assert result["tag"] >= result["drain"] - 0.01
    # All variants are functional; precise may win or lose depending on
    # how branchy the workload is (see ablations docstring).
    assert 0 < result["precise"] <= 1.01


def test_mac_scheme_comparison(benchmark, bench_executor):
    result = once(benchmark,
                  lambda: ablations.mac_scheme_comparison(
                      benchmarks=SMALL["benchmarks"],
                      num_instructions=SMALL["num_instructions"],
                      warmup=SMALL["warmup"],
                      executor=bench_executor))
    print("\nHMAC vs GMAC:", {
        scheme: {k: round(v, 3) for k, v in avgs.items()}
        for scheme, avgs in result.items()})
    # A Galois MAC closes the gap: every control point gets cheaper.
    for policy in result["hmac"]:
        assert result["gmac"][policy] >= result["hmac"][policy] - 0.01


def test_encryption_mode_comparison(benchmark):
    result = once(benchmark,
                  lambda: ablations.encryption_mode_comparison(
                      benchmarks=SMALL["benchmarks"],
                      num_instructions=SMALL["num_instructions"],
                      warmup=SMALL["warmup"]))
    print("\nCTR+HMAC vs CBC+CBC-MAC (absolute IPC):", {
        mode: {k: round(v, 4) for k, v in avgs.items()}
        for mode, avgs in result.items()})
    # Counter mode's absolute performance dominates CBC's -- the reason
    # the paper (and the field) standardised on counter-mode memory
    # encryption despite the verification gap it opens.
    assert (result["ctr"]["decrypt-only"]
            > result["cbc"]["decrypt-only"])


def test_prefetch_sweep(benchmark):
    result = once(benchmark, lambda: ablations.prefetch_sweep(
        degrees=(0, 4), benchmarks=("swim",),
        num_instructions=SMALL["num_instructions"],
        warmup=SMALL["warmup"]))
    print("\nprefetch sweep (absolute IPC):", {
        deg: {k: round(v, 4) for k, v in avgs.items()}
        for deg, avgs in result.items()})
    # Prefetching helps streams, and it helps the strict policy at least
    # as much (verification hides behind the prefetch distance).
    assert result[4]["decrypt-only"] >= result[0]["decrypt-only"] - 0.001
    gain_issue = (result[4]["authen-then-issue"]
                  / max(result[0]["authen-then-issue"], 1e-9))
    gain_base = (result[4]["decrypt-only"]
                 / max(result[0]["decrypt-only"], 1e-9))
    assert gain_issue >= gain_base - 0.03


def test_split_counters(benchmark):
    result = once(benchmark, lambda: ablations.split_counter_comparison(
        benchmarks=("swim", "twolf"),
        num_instructions=SMALL["num_instructions"],
        warmup=SMALL["warmup"]))
    print("\nsplit counters (absolute IPC):",
          {k: round(v, 4) for k, v in result.items()})
    # Compact counters cover more data per cache line: never worse.
    assert result["split"] >= result["monolithic"] * 0.98


def test_lazy_comparison(benchmark):
    result = once(benchmark, lambda: ablations.lazy_comparison(**SMALL))
    print("\nlazy vs commit:", {k: round(v, 3) for k, v in result.items()})
    # Lazy gates nothing, so it outruns commit -- that is its weakness.
    assert result["lazy"] >= result["authen-then-commit"] - 0.01
