"""Policy semantics and registry tests."""

import pytest

from repro.errors import ConfigError
from repro.policies.base import AuthPolicy
from repro.policies.registry import (
    FIGURE7_POLICIES,
    POLICY_NAMES,
    available_policies,
    make_policy,
)
from repro.policies.security import TABLE2_POLICIES, security_matrix


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in available_policies():
            policy = make_policy(name)
            assert policy.name == name

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_policy("authen-then-magic")

    def test_figure7_policies_registered(self):
        for name in FIGURE7_POLICIES:
            assert name in POLICY_NAMES

    def test_instances_are_fresh(self):
        assert make_policy("lazy") is not make_policy("lazy")


class TestGates:
    def test_baseline_gates_nothing(self):
        p = make_policy("decrypt-only")
        assert not (p.gate_issue or p.gate_commit or p.gate_store
                    or p.gate_fetch or p.authentication)

    def test_issue_gates_values(self):
        p = make_policy("authen-then-issue")
        assert p.value_ready(100, 180) == 180
        assert p.commit_ready(200, 180) == 200

    def test_commit_gates_commit_only(self):
        p = make_policy("authen-then-commit")
        assert p.value_ready(100, 180) == 100
        assert p.commit_ready(150, 180) == 180
        assert p.commit_ready(200, 180) == 200

    def test_write_gates_stores_only(self):
        p = make_policy("authen-then-write")
        assert p.value_ready(100, 180) == 100
        assert p.commit_ready(150, 180) == 150
        assert p.store_release(150, 300) == 300
        assert p.store_release(400, 300) == 400

    def test_non_write_store_release(self):
        p = make_policy("authen-then-commit")
        assert p.store_release(150, 300) == 150

    def test_speculation_window(self):
        assert not make_policy("authen-then-issue").speculation_window
        assert make_policy("authen-then-commit").speculation_window

    def test_combined_policies(self):
        p = make_policy("commit+fetch")
        assert p.gate_commit and p.gate_fetch and not p.gate_issue
        p = make_policy("commit+obfuscation")
        assert p.gate_commit and p.obfuscation and not p.gate_fetch

    def test_lazy_has_wide_window(self):
        assert make_policy("lazy").window_scale > 1


class _StubEngine:
    def __init__(self, frontier_by_cycle):
        self._table = frontier_by_cycle

    def auth_frontier(self, cycle):
        return self._table.get(cycle, 0)


class TestFetchGate:
    def test_ungated_policy_returns_zero(self):
        p = make_policy("authen-then-commit")
        assert p.fetch_gate_time(_StubEngine({10: 500}), 10, 20) == 0

    def test_tag_variant_uses_issue_time(self):
        p = make_policy("authen-then-fetch")
        engine = _StubEngine({10: 500, 20: 900})
        assert p.fetch_gate_time(engine, 10, 20) == 500

    def test_drain_variant_uses_fetch_time(self):
        p = make_policy("authen-then-fetch-drain")
        engine = _StubEngine({10: 500, 20: 900})
        assert p.fetch_gate_time(engine, 10, 20) == 900


class TestSecurityMatrix:
    def test_table2_rows_present(self):
        matrix = security_matrix()
        assert set(matrix) == set(TABLE2_POLICIES)

    def test_issue_has_all_properties(self):
        s = make_policy("authen-then-issue").security
        assert (s.prevents_fetch_side_channel and s.precise_exception
                and s.authenticated_memory_state
                and s.authenticated_processor_state)

    def test_write_only_memory_state(self):
        s = make_policy("authen-then-write").security
        assert s.authenticated_memory_state
        assert not s.prevents_fetch_side_channel
        assert not s.precise_exception
        assert not s.authenticated_processor_state

    def test_commit_lacks_side_channel_protection(self):
        s = make_policy("authen-then-commit").security
        assert not s.prevents_fetch_side_channel
        assert s.precise_exception

    def test_recommended_combinations_full_marks(self):
        for name in ("commit+fetch", "commit+obfuscation"):
            s = make_policy(name).security
            assert (s.prevents_fetch_side_channel and s.precise_exception
                    and s.authenticated_memory_state
                    and s.authenticated_processor_state)

    def test_matrix_matches_paper_table2(self):
        """The exact check/blank pattern of the paper's Table 2."""
        matrix = security_matrix()
        expected = {
            "authen-then-issue": (True, True, True, True),
            "authen-then-write": (False, False, True, False),
            "authen-then-commit": (False, True, True, True),
            "commit+fetch": (True, True, True, True),
            "commit+obfuscation": (True, True, True, True),
        }
        for policy, flags in expected.items():
            row = matrix[policy]
            assert tuple(row.values()) == flags, policy
