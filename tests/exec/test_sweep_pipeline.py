"""PolicySweep-on-executor tests: ordering, manifests, backends, CLI."""

import json

import pytest

from repro.exec import ParallelExecutor, SerialExecutor
from repro.obs.export import build_sweep_manifest
from repro.sim.checkpoint import JobJournal, sweep_to_dict
from repro.sim.sweep import BASELINE, PolicySweep


def small_sweep():
    return PolicySweep(["gzip"], ["authen-then-commit"],
                       num_instructions=600, warmup=300)


class TestBaselineOrdering:
    def test_baseline_appended_deterministically(self):
        sweep = small_sweep()
        assert sweep.policy_order() == ["authen-then-commit", BASELINE]
        assert sweep.policy_order(include_baseline=False) == \
            ["authen-then-commit"]

    def test_duplicates_dropped_first_wins(self):
        sweep = PolicySweep(["gzip"],
                            ["authen-then-commit", BASELINE,
                             "authen-then-commit"],
                            num_instructions=600, warmup=300)
        assert sweep.policy_order() == ["authen-then-commit", BASELINE]

    def test_order_is_call_independent(self):
        # Whatever include_baseline was used, the recorded order for a
        # given policy list is the same.
        a = small_sweep().run()
        b = small_sweep().run(include_baseline=True)
        assert a.executed_policies == b.executed_policies

    def test_manifest_reflects_injected_baseline(self):
        sweep = small_sweep().run()
        manifest = build_sweep_manifest(sweep)
        assert manifest["policies"] == ["authen-then-commit", BASELINE]
        assert {run["policy"] for run in manifest["runs"]} == \
            {"authen-then-commit", BASELINE}

    def test_checkpoint_reflects_injected_baseline(self):
        payload = sweep_to_dict(small_sweep().run())
        assert payload["policies"] == ["authen-then-commit", BASELINE]


class TestManifestJobMetadata:
    def test_job_ids_and_backend_recorded(self):
        sweep = small_sweep().run()
        manifest = build_sweep_manifest(sweep)
        assert manifest["backend"] == {"backend": "serial", "jobs": 1}
        ids = [run["job_id"] for run in manifest["runs"]]
        assert all(ids) and len(set(ids)) == len(ids)

    def test_checkpoint_carries_job_ids(self):
        payload = sweep_to_dict(small_sweep().run())
        assert all(run["job_id"] for run in payload["runs"])


class TestBackendEquivalence:
    def test_parallel_sweep_matches_serial(self):
        serial = small_sweep().run(executor=SerialExecutor())
        with ParallelExecutor(2) as executor:
            parallel = small_sweep().run(executor=executor)
        assert parallel.backend == {"backend": "process", "jobs": 2}
        for key, result in serial.results.items():
            assert parallel.results[key].cycles == result.cycles
            assert parallel.results[key].stats.as_dict() == \
                result.stats.as_dict()

    def test_sweep_journal_resume(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = small_sweep().run(journal=JobJournal(path))
        resumed = small_sweep().run(journal=JobJournal(path))
        for key in first.results:
            assert resumed.results[key].cycles == first.results[key].cycles


class TestSweepCli:
    def test_sweep_command_table_and_exports(self, capsys, tmp_path):
        from repro.cli import main

        manifest_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        code = main(["sweep", "gzip", "-p", "authen-then-commit",
                     "-n", "600", "--warmup", "300",
                     "--emit-json", str(manifest_path),
                     "--csv", str(csv_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "normalized IPC" in out
        assert "backend=serial" in out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["kind"] == "sweep"
        assert manifest["backend"]["backend"] == "serial"
        assert all(run["job_id"] for run in manifest["runs"])
        assert csv_path.read_text().startswith("benchmark,policy")

    def test_sweep_command_checkpoint_resume(self, capsys, tmp_path):
        from repro.cli import main

        journal = tmp_path / "journal.jsonl"
        args = ["sweep", "gzip", "-p", "authen-then-commit",
                "-n", "600", "--warmup", "300",
                "--checkpoint", str(journal)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 completed job(s) will be skipped" in out

    def test_sweep_command_parallel_matches_serial(self, capsys):
        from repro.cli import main

        args = ["sweep", "gzip", "mcf", "-p", "authen-then-commit",
                "-n", "600", "--warmup", "300"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        table = lambda text: [line for line in text.splitlines()
                              if line and "jobs in" not in line
                              and "backend" not in line]
        assert table(serial_out) == table(parallel_out)

    def test_sweep_command_no_baseline(self, capsys):
        from repro.cli import main

        assert main(["sweep", "gzip", "-p", "authen-then-commit",
                     "-n", "600", "--warmup", "300",
                     "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "absolute IPC" in out
        assert "decrypt-only" not in out


class TestSweepFaultTolerance:
    @pytest.fixture
    def hook(self):
        from repro.exec import set_attempt_hook

        installed = []

        def install(fn):
            installed.append(set_attempt_hook(fn))
            return fn

        yield install
        while installed:
            set_attempt_hook(installed.pop())

    def test_outcomes_land_in_manifest(self):
        sweep = small_sweep().run()
        manifest = build_sweep_manifest(sweep)
        assert manifest["failures"] == []
        for run in manifest["runs"]:
            assert run["status"] == "ok"
            assert run["attempts"] == 1
            assert run["metrics"]["ipc"] > 0

    def test_failed_job_skipped_and_reported(self, hook):
        from repro.exec import SKIP_AND_REPORT, FailurePolicy

        sweep = small_sweep()
        victim = sweep.jobs()[0]

        def fail_one(job, attempt):
            if job.job_id == victim.job_id:
                raise RuntimeError("injected")

        hook(fail_one)
        sweep.run(failure_policy=FailurePolicy(mode=SKIP_AND_REPORT))
        assert (victim.benchmark, victim.policy) not in sweep.results
        failed = sweep.failed_jobs()
        assert set(failed) == {(victim.benchmark, victim.policy)}
        manifest = build_sweep_manifest(sweep)
        assert len(manifest["failures"]) == 1
        assert manifest["failures"][0]["job_id"] == victim.job_id
        assert all(run["job_id"] != victim.job_id
                   for run in manifest["runs"])

    def test_cli_retries_heal_transient_failure(self, capsys, hook):
        from repro.cli import main

        failed_once = set()

        def fail_first(job, attempt):
            if job.job_id not in failed_once:
                failed_once.add(job.job_id)
                raise RuntimeError("transient")

        hook(fail_first)
        code = main(["sweep", "gzip", "-p", "authen-then-commit",
                     "-n", "600", "--warmup", "300", "--retries", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 retried" in out

    def test_cli_skip_mode_reports_and_exits_one(self, capsys, hook):
        from repro.cli import main

        def always_fail(job, attempt):
            if job.policy == "authen-then-commit":
                raise RuntimeError("injected terminal failure")

        hook(always_fail)
        code = main(["sweep", "gzip", "-p", "authen-then-commit",
                     "-n", "600", "--warmup", "300",
                     "--on-error", "skip"])
        assert code == 1
        captured = capsys.readouterr()
        assert "failed terminally" in captured.err
        # The table still renders: the failed cell is a placeholder and
        # the footer names the casualty.
        assert "normalized IPC" in captured.out
        assert "--" in captured.out
        assert "shown as --" in captured.out
        assert "gzip/authen-then-commit" in captured.out

    def test_retries_promote_skip_mode_to_retry(self, capsys):
        # "--on-error skip --retries 2" used to silently drop the
        # retries; now it resolves to retry-then-skip and says so.
        from repro.cli import _failure_policy, build_parser
        from repro.exec import RETRY_THEN_SKIP

        args = build_parser().parse_args(
            ["sweep", "gzip", "--on-error", "skip", "--retries", "2"])
        policy = _failure_policy(args)
        assert policy.mode == RETRY_THEN_SKIP
        assert policy.max_attempts == 3
        assert "promotes --on-error skip" in capsys.readouterr().err

    def test_retries_with_retry_mode_print_no_note(self, capsys):
        from repro.cli import _failure_policy, build_parser

        args = build_parser().parse_args(
            ["sweep", "gzip", "--on-error", "retry", "--retries", "2"])
        _failure_policy(args)
        assert "promotes" not in capsys.readouterr().err

    def test_cli_skip_retries_actually_retry(self, capsys, hook):
        from repro.cli import main

        attempts_seen = []

        def fail_first(job, attempt):
            if job.policy == "authen-then-commit":
                attempts_seen.append(attempt)
                if attempt == 1:
                    raise RuntimeError("transient")

        hook(fail_first)
        code = main(["sweep", "gzip", "-p", "authen-then-commit",
                     "-n", "600", "--warmup", "300",
                     "--on-error", "skip", "--retries", "2"])
        assert code == 0
        assert attempts_seen == [1, 2]

    def test_cli_compact_requires_checkpoint(self, capsys):
        from repro.cli import main

        assert main(["sweep", "gzip", "-n", "600", "--warmup", "300",
                     "--compact"]) == 2
        assert "--compact requires" in capsys.readouterr().err

    def test_cli_compact_drops_superseded_records(self, capsys, tmp_path):
        from repro.cli import main

        journal = tmp_path / "journal.jsonl"
        base = ["sweep", "gzip", "-n", "600", "--warmup", "300",
                "--checkpoint", str(journal)]
        assert main(base + ["-p", "authen-then-commit"]) == 0
        capsys.readouterr()
        # A different grid supersedes authen-then-commit's record.
        assert main(base + ["-p", "authen-then-write", "--compact"]) == 0
        out = capsys.readouterr().out
        assert "1 stale line(s) dropped" in out
        assert "1 completed job(s) will be skipped" in out  # baseline

    def test_cli_reports_quarantined_lines(self, capsys, tmp_path):
        from repro.cli import main

        journal = tmp_path / "journal.jsonl"
        args = ["sweep", "gzip", "-p", "authen-then-commit",
                "-n", "600", "--warmup", "300",
                "--checkpoint", str(journal)]
        assert main(args) == 0
        with open(journal, "a") as handle:
            handle.write('{"torn half-line\n')
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "quarantined 1 corrupt line(s)" in out
